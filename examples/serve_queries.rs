//! Run the epoch-snapshot core-number query service in-process: one
//! writer applies mixed churn while reader threads answer consistent
//! queries, then the same snapshots are served over the TCP line
//! protocol.
//!
//! Run: `cargo run --release --example serve_queries`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use dkcore_repro::data::{churn_stream, collaboration, ChurnWorkload};
use dkcore_repro::dkcore::seq::batagelj_zaversnik;
use dkcore_repro::graph::NodeId;
use dkcore_repro::metrics::Percentiles;
use dkcore_repro::serve::{wire, CoreService};

fn main() {
    // A collaboration network with a rich shell structure.
    let g = collaboration(3_000, 4_500, 2..=8, 42);
    println!("graph: {} nodes, {} edges", g.node_count(), g.edge_count());

    // The writer owns the service; readers get cloneable handles.
    let mut svc = CoreService::new(&g);
    let handle = svc.handle();
    let done = Arc::new(AtomicBool::new(false));

    // Two in-process readers: query continuously, each against a pinned
    // consistent epoch, and spot-check it against ground truth.
    let readers: Vec<_> = (0..2)
        .map(|id| {
            let handle = svc.handle();
            let done = done.clone();
            std::thread::spawn(move || {
                let mut last_epoch = 0;
                let mut queries = 0u64;
                while !done.load(Ordering::Acquire) {
                    let snap = handle.snapshot();
                    queries += 3;
                    let hub = snap.top_k(1)[0];
                    let kmax = snap.max_coreness();
                    let core_size = snap.kcore_size(kmax);
                    if snap.epoch() != last_epoch {
                        last_epoch = snap.epoch();
                        assert_eq!(
                            snap.values(),
                            batagelj_zaversnik(snap.graph()).as_slice(),
                            "reader observed a torn epoch"
                        );
                        println!(
                            "  reader {id}: epoch {last_epoch}: kmax={kmax} \
                             ({core_size} nodes), hub {} (coreness {})",
                            hub.0, hub.1
                        );
                    }
                }
                queries
            })
        })
        .collect();

    // The writer sustains mixed churn, one published epoch per batch.
    let stream = churn_stream(&g, ChurnWorkload::Mixed { insert_pct: 55 }, 12, 64, 7);
    let mut publish = Percentiles::new();
    for batch in &stream {
        let report = svc.apply_batch(batch).expect("valid batch");
        publish.record(report.publish_micros);
    }
    done.store(true, Ordering::Release);
    let total: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    println!("readers answered {total} queries during the churn");
    println!("publish latency (us): {publish}");

    // The same handle drives the TCP front end (`dkcore serve` does
    // exactly this).
    let server = wire::serve(handle.clone(), "127.0.0.1:0").expect("bind");
    let mut client = wire::WireClient::connect(server.local_addr()).expect("connect");
    println!("wire: {}", client.request("EPOCH").unwrap());
    println!("wire: {}", client.request("CORENESS 0").unwrap());
    println!("wire: {}", client.request("TOPK 3").unwrap());

    // Epoch pinning: a held snapshot outlives further churn.
    let pinned = handle.snapshot();
    let mut toggle = dkcore_repro::dkcore::stream::EdgeBatch::new();
    let (u, v) = (NodeId(0), NodeId(1));
    if svc.stream().has_edge(u, v) {
        toggle.remove(u, v);
    } else {
        toggle.insert(u, v);
    }
    svc.apply_batch(&toggle).expect("valid toggle");
    assert_eq!(pinned.epoch() + 1, handle.snapshot().epoch());
    assert_eq!(
        pinned.values(),
        batagelj_zaversnik(pinned.graph()).as_slice()
    );
    println!(
        "pinned epoch {} still consistent after the writer advanced to {}",
        pinned.epoch(),
        handle.snapshot().epoch()
    );
}
