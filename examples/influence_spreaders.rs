//! Influential-spreader identification — the application that motivates
//! the paper's interest in coreness (its reference [8], Kitsak et al.,
//! *"Identification of influential spreaders in complex networks"*,
//! Nature Physics 2010): nodes in the innermost k-cores spread epidemics
//! further than merely high-degree nodes.
//!
//! This example computes coreness with the distributed protocol, then runs
//! single-seed SIR epidemics from (a) random innermost-core members,
//! (b) random members of the equally-sized top-degree set, and (c) random
//! nodes, comparing average outbreak sizes.
//!
//! Run: `cargo run --example influence_spreaders --release`

use dkcore_repro::data::collaboration;
use dkcore_repro::dkcore::CoreDecomposition;
use dkcore_repro::graph::{Graph, NodeId};
use dkcore_repro::sim::{NodeSim, NodeSimConfig};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Simple discrete-time SIR epidemic: each infected node infects each
/// susceptible neighbor with probability `beta`, then recovers. Returns
/// the final number of ever-infected nodes.
fn sir_outbreak(g: &Graph, seed_node: NodeId, beta: f64, rng: &mut StdRng) -> usize {
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Susceptible,
        Infected,
        Recovered,
    }
    let mut state = vec![State::Susceptible; g.node_count()];
    state[seed_node.index()] = State::Infected;
    let mut frontier = vec![seed_node];
    let mut infected_total = 1usize;
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &u in &frontier {
            for &v in g.neighbors(u) {
                if state[v.index()] == State::Susceptible && rng.random_bool(beta) {
                    state[v.index()] = State::Infected;
                    next.push(v);
                    infected_total += 1;
                }
            }
            state[u.index()] = State::Recovered;
        }
        frontier = next;
    }
    infected_total
}

fn avg_outbreak(g: &Graph, pool: &[NodeId], beta: f64, trials: u32, rng: &mut StdRng) -> f64 {
    let mut total = 0usize;
    for _ in 0..trials {
        let seed = pool[rng.random_range(0..pool.len())];
        total += sir_outbreak(g, seed, beta, rng);
    }
    total as f64 / trials as f64
}

fn main() {
    // A collaboration network: clique-stacking gives a deep, small inner
    // core — exactly the structure where coreness beats degree.
    let g = collaboration(10_000, 9_000, 2..=6, 17);
    println!(
        "network: {} nodes, {} edges",
        g.node_count(),
        g.edge_count()
    );

    // Compute coreness with the distributed protocol (one-to-one, as a
    // live overlay would).
    let result = NodeSim::new(&g, NodeSimConfig::random_order(3)).run();
    let decomp = CoreDecomposition::from_coreness(result.final_estimates);
    println!(
        "distributed decomposition finished in {} rounds; k_max = {}",
        result.rounds_executed,
        decomp.max_coreness()
    );

    // Pool A: the innermost core.
    let core_pool: Vec<NodeId> = decomp.shell(decomp.max_coreness());
    // Pool B: the same number of top-degree nodes.
    let mut by_degree: Vec<NodeId> = g.nodes().collect();
    by_degree.sort_by_key(|&u| std::cmp::Reverse(g.degree(u)));
    let degree_pool: Vec<NodeId> = by_degree[..core_pool.len()].to_vec();
    // Pool C: everyone.
    let all_pool: Vec<NodeId> = g.nodes().collect();

    // Sweep the infectivity through the epidemic threshold: around it,
    // seed placement matters most (Kitsak et al.'s regime).
    let trials = 400;
    let mut rng = StdRng::seed_from_u64(1);
    println!(
        "\nsingle-seed SIR, {trials} trials per strategy ({} core candidates):",
        core_pool.len()
    );
    println!(
        "{:>6}  {:>10}  {:>10}  {:>10}  {:>11}",
        "beta", "core", "degree", "random", "core/random"
    );
    for beta in [0.03, 0.05, 0.08] {
        let core_avg = avg_outbreak(&g, &core_pool, beta, trials, &mut rng);
        let degree_avg = avg_outbreak(&g, &degree_pool, beta, trials, &mut rng);
        let random_avg = avg_outbreak(&g, &all_pool, beta, trials, &mut rng);
        println!(
            "{beta:>6}  {core_avg:>10.1}  {degree_avg:>10.1}  {random_avg:>10.1}  {:>10.2}x",
            core_avg / random_avg
        );
    }
    println!(
        "\nseeding from the innermost k-core consistently beats random seeding and \
         tracks the degree heuristic — coreness identifies well-connected *regions*, \
         not just well-connected nodes, and the distributed protocol lets a live \
         system compute it in-place"
    );
}
