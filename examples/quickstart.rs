//! Quickstart: compute a k-core decomposition three ways — sequentially,
//! with the simulated one-to-one protocol, and on live threads — and check
//! they agree.
//!
//! Run: `cargo run --example quickstart`

use dkcore_repro::data::collaboration;
use dkcore_repro::dkcore::{seq::batagelj_zaversnik, CoreDecomposition};
use dkcore_repro::metrics::Table;
use dkcore_repro::runtime::{Runtime, RuntimeConfig};
use dkcore_repro::sim::{NodeSim, NodeSimConfig};

fn main() {
    // A collaboration network (CA-AstroPh-like): cliques of co-authors
    // stacked into a rich core structure.
    let g = collaboration(2_000, 3_000, 2..=8, 42);
    println!(
        "graph: {} nodes, {} edges, max degree {}",
        g.node_count(),
        g.edge_count(),
        g.max_degree()
    );

    // 1. Sequential ground truth (Batagelj–Zaveršnik, the paper's ref [3]).
    let truth = batagelj_zaversnik(&g);

    // 2. The paper's one-to-one distributed protocol, simulated.
    let result = NodeSim::new(&g, NodeSimConfig::random_order(7)).run();
    assert_eq!(result.final_estimates, truth, "distributed == sequential");
    println!(
        "one-to-one simulation: {} rounds, {} messages ({:.2} per node)",
        result.rounds_executed,
        result.total_messages,
        result.avg_messages_per_sender()
    );

    // 3. The one-to-many protocol on real threads (4 hosts).
    let live = Runtime::new(RuntimeConfig::with_hosts(4)).run(&g);
    assert_eq!(live.coreness, truth, "live run == sequential");
    println!(
        "live 4-host run: {} rounds, {} host messages, {} estimates shipped",
        live.rounds, live.messages, live.estimates_sent
    );

    // Inspect the decomposition.
    let decomp = CoreDecomposition::from_coreness(truth);
    let mut table = Table::new(["k-shell", "nodes"]);
    for (k, &size) in decomp.shell_sizes().iter().enumerate() {
        if size > 0 {
            table.row([k.to_string(), size.to_string()]);
        }
    }
    println!(
        "\nk-shell sizes (max coreness = {}):",
        decomp.max_coreness()
    );
    print!("{table}");
}
