//! The paper's *one-to-one* scenario (§1): a live P2P overlay inspecting
//! itself. Every host is one node of the graph; the overlay computes its
//! own k-core decomposition at run time to find good "spreaders" for
//! epidemic message dissemination, with fully decentralized (gossip-based)
//! termination detection — no central server anywhere.
//!
//! Run: `cargo run --example p2p_overlay`

use dkcore_repro::data::with_hub_clique;
use dkcore_repro::dkcore::seq::batagelj_zaversnik;
use dkcore_repro::dkcore::termination::GossipDetector;
use dkcore_repro::graph::generators::barabasi_albert;
use dkcore_repro::sim::{NodeSim, NodeSimConfig};

fn main() {
    // A preferential-attachment overlay of 5,000 peers whose long-lived
    // hubs have interconnected densely — the structure Kitsak et al.
    // found in real P2P and social overlays.
    let overlay = with_hub_clique(&barabasi_albert(5_000, 2, 99), 24, 5);
    println!(
        "overlay: {} peers, {} links",
        overlay.node_count(),
        overlay.edge_count()
    );

    // Each peer runs Algorithm 1; termination is detected by epidemic
    // max-aggregation (§3.3, decentralized approach): peers gossip the
    // last round in which anyone changed an estimate and stop after a
    // quiet window no central party needs to observe.
    let hosts = overlay.node_count();
    let patience = GossipDetector::recommended_patience(hosts);
    let mut detector = GossipDetector::new(hosts, patience, 1);
    println!(
        "gossip termination: patience = {patience} rounds ({} hosts)",
        hosts
    );

    let mut sim = NodeSim::new(&overlay, NodeSimConfig::random_order(2));
    let result = sim.run_with(&mut detector, &mut []);
    println!(
        "protocol finished after {} rounds ({} with traffic), {} messages",
        result.rounds_executed, result.execution_time, result.total_messages
    );

    // The decentralized result matches the ground truth.
    let truth = batagelj_zaversnik(&overlay);
    assert_eq!(result.final_estimates, truth);
    println!("estimates verified against the sequential baseline");

    // Use the coreness at run time: pick spreaders from the innermost
    // core, the nodes Kitsak et al. identify as the best spreaders (the
    // paper's motivation [8]) — and seed epidemic dissemination there.
    let kmax = *truth.iter().max().unwrap();
    let spreaders: Vec<usize> = truth
        .iter()
        .enumerate()
        .filter(|&(_, &k)| k == kmax)
        .map(|(u, _)| u)
        .collect();
    println!(
        "innermost core: k = {kmax}, {} peers — selected as epidemic seeds, e.g. {:?}",
        spreaders.len(),
        &spreaders[..spreaders.len().min(8)]
    );
}
