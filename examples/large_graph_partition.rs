//! The paper's *one-to-many* scenario (§1): a graph too large (or too
//! naturally distributed) for one machine, partitioned over a cluster of
//! hosts. Each host runs Algorithm 3 on behalf of its node set; internal
//! emulation (Algorithm 4) cascades estimates locally for free, and only
//! cross-host updates travel the network.
//!
//! Demonstrates both dissemination policies of §3.2.1 and the effect of
//! the assignment policy, then verifies the same computation on the live
//! threaded runtime.
//!
//! Run: `cargo run --example large_graph_partition --release`

use dkcore_repro::dkcore::one_to_many::{AssignmentPolicy, DisseminationPolicy};
use dkcore_repro::dkcore::seq::batagelj_zaversnik;
use dkcore_repro::graph::generators::planted_partition;
use dkcore_repro::metrics::Table;
use dkcore_repro::runtime::{Runtime, RuntimeConfig};
use dkcore_repro::sim::{HostSim, HostSimConfig};

fn main() {
    // A community-structured graph (Amazon-like): 30,000 nodes in
    // communities of ~12, the natural unit of partitioning.
    let g = planted_partition(30_000, 2_500, 0.75, 0.00005, 5);
    println!("graph: {} nodes, {} edges", g.node_count(), g.edge_count());
    let truth = batagelj_zaversnik(&g);

    let hosts = 16;
    let mut table = Table::new([
        "policy",
        "assignment",
        "rounds",
        "estimates/node",
        "messages",
    ]);
    for policy in [
        DisseminationPolicy::Broadcast,
        DisseminationPolicy::PointToPoint,
    ] {
        for (name, assignment) in [
            ("modulo", AssignmentPolicy::Modulo),
            ("bfs-blocks", AssignmentPolicy::BfsBlocks),
        ] {
            let mut config = HostSimConfig::synchronous(hosts);
            config.protocol.policy = policy;
            config.assignment = assignment;
            let mut sim = HostSim::new(&g, config);
            let result = sim.run();
            assert_eq!(result.final_estimates, truth);
            table.row([
                format!("{policy:?}"),
                name.to_string(),
                result.rounds_executed.to_string(),
                format!("{:.2}", sim.overhead_per_node()),
                result.total_messages.to_string(),
            ]);
        }
    }
    println!("\nsimulated cluster of {hosts} hosts:");
    print!("{table}");

    // The same deployment on real threads.
    let mut config = RuntimeConfig::with_hosts(hosts);
    config.assignment = AssignmentPolicy::BfsBlocks;
    let live = Runtime::new(config).run(&g);
    assert_eq!(live.coreness, truth);
    println!(
        "\nlive {hosts}-thread run: {} rounds, {} messages, {} estimates shipped — \
         matches the sequential decomposition",
        live.rounds, live.messages, live.estimates_sent
    );
}
