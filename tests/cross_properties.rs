//! Property-based cross-crate tests: on *arbitrary* graphs, every
//! execution path computes the Batagelj–Zaveršnik decomposition.

use dkcore_repro::dkcore::one_to_many::{AssignmentPolicy, DisseminationPolicy, EmulationMode};
use dkcore_repro::dkcore::seq::batagelj_zaversnik;
use dkcore_repro::graph::Graph;
use dkcore_repro::runtime::{Runtime, RuntimeConfig};
use dkcore_repro::sim::{HostSim, HostSimConfig, NodeSim, NodeSimConfig};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..40).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..120);
        edges.prop_map(move |es| Graph::from_edges(n, es).expect("endpoints in range"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// One-to-one, synchronous engine == sequential baseline.
    #[test]
    fn sync_one_to_one_equals_bz(g in arb_graph()) {
        let result = NodeSim::new(&g, NodeSimConfig::synchronous()).run();
        prop_assert!(result.converged);
        prop_assert_eq!(result.final_estimates, batagelj_zaversnik(&g));
    }

    /// One-to-one, random-order engine == sequential baseline, any seed.
    #[test]
    fn random_order_equals_bz(g in arb_graph(), seed in any::<u64>()) {
        let result = NodeSim::new(&g, NodeSimConfig::random_order(seed)).run();
        prop_assert!(result.converged);
        prop_assert_eq!(result.final_estimates, batagelj_zaversnik(&g));
    }

    /// One-to-many == sequential for arbitrary host counts, policies and
    /// emulation modes.
    #[test]
    fn one_to_many_equals_bz(
        g in arb_graph(),
        hosts in 1usize..12,
        broadcast in any::<bool>(),
        emulation_pick in 0u8..3,
        block in any::<bool>(),
    ) {
        let mut config = HostSimConfig::synchronous(hosts);
        config.protocol.policy = if broadcast {
            DisseminationPolicy::Broadcast
        } else {
            DisseminationPolicy::PointToPoint
        };
        config.protocol.emulation = match emulation_pick {
            0 => EmulationMode::Worklist,
            1 => EmulationMode::Sweep,
            _ => EmulationMode::PerRound,
        };
        config.assignment = if block { AssignmentPolicy::Block } else { AssignmentPolicy::Modulo };
        let result = HostSim::new(&g, config).run();
        prop_assert!(result.converged);
        prop_assert_eq!(result.final_estimates, batagelj_zaversnik(&g));
    }

    /// The live threaded runtime == sequential baseline.
    #[test]
    fn runtime_equals_bz(g in arb_graph(), hosts in 1usize..6) {
        let result = Runtime::new(RuntimeConfig::with_hosts(hosts)).run(&g);
        prop_assert!(result.converged);
        prop_assert_eq!(result.coreness, batagelj_zaversnik(&g));
    }

    /// Execution-time bounds (Theorems 4, 5) hold on arbitrary graphs.
    #[test]
    fn execution_time_bounds(g in arb_graph()) {
        let truth = batagelj_zaversnik(&g);
        let mut config = NodeSimConfig::synchronous();
        config.protocol.send_optimization = false;
        let result = NodeSim::new(&g, config).run();
        let t = result.execution_time as u64;
        let initial_error: u64 =
            g.nodes().map(|u| (g.degree(u) - truth[u.index()]) as u64).sum();
        prop_assert!(t <= 1 + initial_error, "Theorem 4");
        prop_assert!(t as usize <= g.node_count().max(1), "Theorem 5");
    }

    /// The final estimates satisfy the locality fixpoint (Theorem 1): no
    /// node could justify a higher value from its neighbors' coreness.
    #[test]
    fn converged_estimates_are_locality_fixpoint(g in arb_graph()) {
        let result = NodeSim::new(&g, NodeSimConfig::synchronous()).run();
        let est = &result.final_estimates;
        for u in g.nodes() {
            let i = dkcore_repro::dkcore::compute_index(
                g.neighbors(u).iter().map(|v| est[v.index()]),
                g.degree(u),
            );
            prop_assert_eq!(i, est[u.index()]);
        }
    }
}
