//! Cross-crate integration tests: dataset analogs through every execution
//! path (sequential, simulated one-to-one, simulated one-to-many, live
//! threads) must agree on the decomposition.

use dkcore_repro::data;
use dkcore_repro::dkcore::one_to_many::{AssignmentPolicy, DisseminationPolicy};
use dkcore_repro::dkcore::seq::batagelj_zaversnik;
use dkcore_repro::dkcore::termination::{FixedRoundsDetector, GossipDetector};
use dkcore_repro::dkcore::CoreDecomposition;
use dkcore_repro::runtime::{Runtime, RuntimeConfig};
use dkcore_repro::sim::{HostSim, HostSimConfig, NodeSim, NodeSimConfig};

const SCALE: usize = 1_500;

#[test]
fn every_dataset_analog_agrees_across_execution_paths() {
    for spec in data::catalog() {
        let g = spec.build_scaled(SCALE, 11);
        let truth = batagelj_zaversnik(&g);

        // Simulated one-to-one, random order.
        let r1 = NodeSim::new(&g, NodeSimConfig::random_order(3)).run();
        assert!(r1.converged, "{}", spec.name);
        assert_eq!(r1.final_estimates, truth, "{} one-to-one", spec.name);

        // Simulated one-to-many over 8 hosts, point-to-point.
        let r2 = HostSim::new(&g, HostSimConfig::random_order(8, 4)).run();
        assert!(r2.converged, "{}", spec.name);
        assert_eq!(r2.final_estimates, truth, "{} one-to-many", spec.name);

        // Live threads, 4 hosts, broadcast dissemination.
        let mut config = RuntimeConfig::with_hosts(4);
        config.protocol.policy = DisseminationPolicy::Broadcast;
        let r3 = Runtime::new(config).run(&g);
        assert!(r3.converged, "{}", spec.name);
        assert_eq!(r3.coreness, truth, "{} live", spec.name);
    }
}

#[test]
fn gossip_termination_matches_centralized_result() {
    let g = data::by_name("gnutella-like")
        .unwrap()
        .build_scaled(2_000, 5);
    let truth = batagelj_zaversnik(&g);
    let hosts = g.node_count();
    let patience = GossipDetector::recommended_patience(hosts);
    let mut det = GossipDetector::new(hosts, patience, 9);
    let mut sim = NodeSim::new(&g, NodeSimConfig::random_order(1));
    let result = sim.run_with(&mut det, &mut []);
    // Gossip detection fires only after true convergence (patience covers
    // the dissemination latency), so the estimates are exact.
    assert_eq!(result.final_estimates, truth);
    assert!(result.converged);
}

#[test]
fn fixed_round_budget_gives_good_approximation() {
    // §5.1: "if the exact computation of coreness is not required ... the
    // algorithms may be stopped after a predefined number of rounds,
    // knowing that both the average and the maximum errors would be
    // extremely low."
    let g = data::by_name("astroph-like")
        .unwrap()
        .build_scaled(4_000, 7);
    let truth = batagelj_zaversnik(&g);
    let n = g.node_count() as f64;
    let avg_err_after = |budget: u32| -> f64 {
        let mut det = FixedRoundsDetector::new(budget);
        let mut sim = NodeSim::new(&g, NodeSimConfig::random_order(2));
        let result = sim.run_with(&mut det, &mut []);
        assert_eq!(result.rounds_executed, budget);
        let total: u64 = result
            .final_estimates
            .iter()
            .zip(truth.iter())
            .map(|(e, t)| (e - t) as u64)
            .sum();
        total as f64 / n
    };
    // Figure 4's regime: error below 1 within ~15 rounds and essentially
    // gone a handful of rounds later.
    let at_15 = avg_err_after(15);
    let at_25 = avg_err_after(25);
    assert!(
        at_15 < 1.0,
        "average error after 15 rounds should be < 1, got {at_15}"
    );
    assert!(
        at_25 < 0.05,
        "average error after 25 rounds should be tiny, got {at_25}"
    );
    assert!(at_25 <= at_15, "error must not grow with budget");
}

#[test]
fn decomposition_api_roundtrip_through_sim() {
    let g = data::fixtures::figure2_graph();
    let result = NodeSim::new(&g, NodeSimConfig::synchronous()).run();
    let decomp = CoreDecomposition::from_coreness(result.final_estimates);
    assert_eq!(decomp.max_coreness(), 2);
    let (core2, original) = decomp.k_core(&g, 2);
    assert_eq!(core2.node_count(), 4);
    // The 2-core consists of paper nodes 2..5 (zero-based 1..4).
    let ids: Vec<u32> = original.iter().map(|u| u.0).collect();
    assert_eq!(ids, vec![1, 2, 3, 4]);
}

#[test]
fn host_counts_and_policies_product_space() {
    let g = data::by_name("amazon-like").unwrap().build_scaled(1_200, 3);
    let truth = batagelj_zaversnik(&g);
    for hosts in [1usize, 3, 16, 64] {
        for policy in [
            DisseminationPolicy::Broadcast,
            DisseminationPolicy::PointToPoint,
        ] {
            for assignment in [
                AssignmentPolicy::Modulo,
                AssignmentPolicy::BfsBlocks,
                AssignmentPolicy::Random { seed: 1 },
            ] {
                let mut config = HostSimConfig::synchronous(hosts);
                config.protocol.policy = policy;
                config.assignment = assignment.clone();
                let result = HostSim::new(&g, config).run();
                assert_eq!(
                    result.final_estimates, truth,
                    "hosts={hosts} policy={policy:?} assignment={assignment:?}"
                );
            }
        }
    }
}

#[test]
fn snap_file_roundtrip_through_the_full_pipeline() {
    // Write an analog out in SNAP format, read it back, decompose both.
    let g = data::by_name("condmat-like")
        .unwrap()
        .build_scaled(1_000, 13);
    let mut buf = Vec::new();
    dkcore_repro::graph::io::write_edge_list(&g, &mut buf).unwrap();
    let (reloaded, raw) = dkcore_repro::graph::io::read_edge_list(&buf[..]).unwrap();
    // The reloaded graph drops isolated nodes; compare coreness through
    // the id mapping.
    let original = batagelj_zaversnik(&g);
    let reloaded_core = batagelj_zaversnik(&reloaded);
    for (dense, &orig_id) in raw.iter().enumerate() {
        assert_eq!(
            reloaded_core[dense], original[orig_id as usize],
            "coreness preserved through io for node {orig_id}"
        );
    }
}
