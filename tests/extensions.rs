//! Integration tests for the systems built beyond the paper's evaluation:
//! the Pregel deployment (§6's proposal), dynamic maintenance, and the
//! asynchronous engine — all agreeing with the core protocol stack.

use dkcore_repro::data;
use dkcore_repro::dkcore::dynamic::{warm_start_estimates, DynamicCore};
use dkcore_repro::dkcore::seq::batagelj_zaversnik;
use dkcore_repro::graph::NodeId;
use dkcore_repro::pregel::{KCoreProgram, Pregel};
use dkcore_repro::sim::{AsyncSim, AsyncSimConfig, NodeSim, NodeSimConfig};

#[test]
fn all_five_execution_paths_agree_on_dataset_analogs() {
    for name in ["gnutella-like", "condmat-like", "wikitalk-like"] {
        let g = data::by_name(name).unwrap().build_scaled(1_200, 5);
        let truth = batagelj_zaversnik(&g);

        let sim = NodeSim::new(&g, NodeSimConfig::random_order(1)).run();
        assert_eq!(sim.final_estimates, truth, "{name} round engine");

        let async_run = AsyncSim::new(&g, AsyncSimConfig::new(2)).run();
        assert_eq!(async_run.final_estimates, truth, "{name} async engine");

        let pregel = Pregel::new(4).run(&g, &KCoreProgram::default());
        let pregel_core: Vec<u32> = pregel.states.iter().map(|s| s.core).collect();
        assert_eq!(pregel_core, truth, "{name} pregel");

        let runtime = dkcore_repro::runtime::Runtime::new(
            dkcore_repro::runtime::RuntimeConfig::with_hosts(4),
        )
        .run(&g);
        assert_eq!(runtime.coreness, truth, "{name} threaded runtime");
    }
}

#[test]
fn pregel_supersteps_match_round_engine_scale() {
    // One superstep = one protocol round: counts should be comparable.
    let g = data::by_name("amazon-like").unwrap().build_scaled(2_000, 9);
    let sim = NodeSim::new(&g, NodeSimConfig::synchronous()).run();
    let pregel = Pregel::new(4).run(&g, &KCoreProgram::default());
    let diff = (pregel.supersteps as i64 - sim.rounds_executed as i64).abs();
    assert!(
        diff <= 2,
        "supersteps {} vs rounds {}",
        pregel.supersteps,
        sim.rounds_executed
    );
}

#[test]
fn churn_loop_stays_consistent_across_stack() {
    // Simulate a churning overlay: mutate, repair incrementally, verify
    // the warm-started protocol and Pregel both land on the repair's
    // answer.
    use rand::prelude::*;
    let g = data::by_name("gnutella-like")
        .unwrap()
        .build_scaled(800, 13);
    let mut dc = DynamicCore::new(&g);
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    for step in 0..15 {
        let a = NodeId(rng.random_range(0..800));
        let b = NodeId(rng.random_range(0..800));
        if a == b {
            continue;
        }
        let old = dc.values().to_vec();
        let inserted = if dc.has_edge(a, b) {
            dc.remove_edge(a, b).unwrap();
            None
        } else {
            dc.insert_edge(a, b).unwrap();
            Some((a, b))
        };
        let now = dc.to_graph();
        let est = warm_start_estimates(&old, &now, inserted);
        let warm = NodeSim::with_estimates(&now, NodeSimConfig::synchronous(), &est).run();
        assert_eq!(
            warm.final_estimates.as_slice(),
            dc.values(),
            "step {step} warm"
        );
        let pregel = Pregel::new(2).run(&now, &KCoreProgram::default());
        let pregel_core: Vec<u32> = pregel.states.iter().map(|s| s.core).collect();
        assert_eq!(pregel_core.as_slice(), dc.values(), "step {step} pregel");
    }
}

#[test]
fn async_engine_handles_all_analogs() {
    for spec in data::catalog() {
        let g = spec.build_scaled(800, 21);
        let truth = batagelj_zaversnik(&g);
        let config = AsyncSimConfig {
            delta: 8,
            latency: (1, 20),
            ..AsyncSimConfig::new(3)
        };
        let result = AsyncSim::new(&g, config).run();
        assert!(result.converged, "{}", spec.name);
        assert_eq!(result.final_estimates, truth, "{}", spec.name);
    }
}
