//! The paper's worked examples and §5 claims, verified verbatim where the
//! text is specific.

use dkcore_repro::data::fixtures::{figure1_style_graph, figure2_graph};
use dkcore_repro::data::{self};
use dkcore_repro::dkcore::seq::batagelj_zaversnik;
use dkcore_repro::dkcore::termination::CentralizedDetector;
use dkcore_repro::sim::{CoreCompletionObserver, ErrorEvolutionObserver, NodeSim, NodeSimConfig};

#[test]
fn figure2_walkthrough_matches_the_papers_narration() {
    // §3.1.1: nodes 2..5 have degree 3, nodes 1 and 6 degree 1; the
    // algorithm converges with core = 2 for nodes 2..5 and 1 for 1 and 6
    // in three rounds of message exchange.
    let g = figure2_graph();
    let mut sim = NodeSim::new(&g, NodeSimConfig::synchronous());

    // Round 1: everyone announces its degree.
    let r1 = sim.step();
    assert_eq!(r1.active_count(), 6);
    assert_eq!(sim.estimates(), vec![1, 3, 3, 3, 3, 1]);

    // Round 2: "node 2 and 5 update their estimates to core = 2".
    let r2 = sim.step();
    assert!(r2.messages > 0);
    assert_eq!(sim.estimates(), vec![1, 2, 3, 3, 2, 1]);

    // Round 3: "this causes an update core = 2 at nodes 3 and 4".
    let r3 = sim.step();
    assert!(r3.messages > 0);
    assert_eq!(sim.estimates(), vec![1, 2, 2, 2, 2, 1]);

    // "However, no local estimate changes from now on."
    let r4 = sim.step();
    assert!(r4.is_quiet() || sim.is_quiescent());
    assert_eq!(sim.estimates(), batagelj_zaversnik(&g));
}

#[test]
fn figure1_concentric_cores() {
    // §1: "by definition cores are 'concentric' ... nodes belonging to the
    // 3-core belong to the 2-core and 1-core, as well."
    let (g, expected) = figure1_style_graph();
    let result = NodeSim::new(&g, NodeSimConfig::synchronous()).run();
    assert_eq!(result.final_estimates, expected);
    let d = dkcore_repro::dkcore::CoreDecomposition::from_coreness(result.final_estimates);
    let c3: Vec<bool> = d.k_core_mask(3);
    let c2: Vec<bool> = d.k_core_mask(2);
    let c1: Vec<bool> = d.k_core_mask(1);
    for u in 0..g.node_count() {
        assert!(!c3[u] || c2[u]);
        assert!(!c2[u] || c1[u]);
    }
}

#[test]
fn execution_times_are_tens_of_rounds_not_thousands() {
    // §5.1: "the execution time is of the order of few tens of rounds for
    // most of the graphs" — dramatically below the theoretical N bound.
    for name in [
        "astroph-like",
        "condmat-like",
        "gnutella-like",
        "slashdot-like",
    ] {
        let g = data::by_name(name).unwrap().build_scaled(3_000, 21);
        let result = NodeSim::new(&g, NodeSimConfig::random_order(4)).run();
        assert!(
            result.rounds_executed < 60,
            "{name}: {} rounds for {} nodes",
            result.rounds_executed,
            g.node_count()
        );
        assert!(result.rounds_executed as usize <= g.node_count());
    }
}

#[test]
fn messages_per_node_track_average_degree() {
    // §5.1: "the average ... number of messages per node is, in general,
    // comparable to the average ... degree of nodes."
    let g = data::by_name("gnutella-like")
        .unwrap()
        .build_scaled(4_000, 9);
    let result = NodeSim::new(&g, NodeSimConfig::random_order(6)).run();
    let m_avg = result.avg_messages_per_sender();
    let d_avg = g.avg_degree();
    assert!(
        m_avg < 4.0 * d_avg,
        "messages per node {m_avg} should be comparable to avg degree {d_avg}"
    );
}

#[test]
fn max_error_drops_to_one_within_tens_of_cycles() {
    // §5.1 / Figure 4 right: "in all our experimental data sets, the
    // maximum error is at most equal to 1 by cycle 22". Our analogs are
    // smaller, so give a little slack beyond the paper's 22.
    for name in [
        "astroph-like",
        "gnutella-like",
        "amazon-like",
        "wikitalk-like",
    ] {
        let g = data::by_name(name).unwrap().build_scaled(3_000, 33);
        let truth = batagelj_zaversnik(&g);
        let mut obs = ErrorEvolutionObserver::new(truth);
        let mut det = CentralizedDetector::new();
        let mut sim = NodeSim::new(&g, NodeSimConfig::random_order(8));
        sim.run_with(&mut det, &mut [&mut obs]);
        let by = obs
            .first_round_max_error_at_most(1.0)
            .expect("max error reaches 1");
        assert!(by <= 30, "{name}: max error <= 1 only by round {by}");
    }
}

#[test]
fn deep_chains_delay_the_one_core_like_berkstan() {
    // Table 2's diagnosis: "delays in computing the 1-core may be
    // associated to the high diameter of this particular graph, with
    // 'deep' pages very far away from the highest cores". The web analog
    // reproduces the effect: at a mid-run checkpoint the 1-shell still has
    // wrong nodes after the densest core has settled.
    let g = data::by_name("berkstan-like")
        .unwrap()
        .build_scaled(6_000, 3);
    let truth = batagelj_zaversnik(&g);
    let result = NodeSim::new(&g, NodeSimConfig::random_order(2)).run();
    assert_eq!(result.final_estimates, truth);
    // Convergence takes much longer than on the small-diameter analogs.
    let small = data::by_name("slashdot-like")
        .unwrap()
        .build_scaled(6_000, 3);
    let small_run = NodeSim::new(&small, NodeSimConfig::random_order(2)).run();
    assert!(
        result.rounds_executed > 2 * small_run.rounds_executed,
        "web analog ({}) should converge far slower than social analog ({})",
        result.rounds_executed,
        small_run.rounds_executed
    );
}

#[test]
fn core_completion_observer_reproduces_table2_shape() {
    let g = data::by_name("berkstan-like")
        .unwrap()
        .build_scaled(6_000, 3);
    let truth = batagelj_zaversnik(&g);
    let checkpoints: Vec<u32> = (1..=12).map(|i| i * 10).collect();
    let mut obs = CoreCompletionObserver::new(truth.clone(), checkpoints.clone());
    let mut det = CentralizedDetector::new();
    let mut sim = NodeSim::new(&g, NodeSimConfig::random_order(2));
    sim.run_with(&mut det, &mut [&mut obs]);
    // The 1-shell (the pendant chains) is the straggler: still wrong at
    // the first checkpoint, and wrong LATER than every denser shell.
    let one_shell_wrong_at_first = obs.wrong_fraction(0, 1).unwrap_or(0.0);
    assert!(
        one_shell_wrong_at_first > 0.0,
        "1-shell should lag at round 10"
    );
    let last_wrong_checkpoint = |k: u32| -> Option<usize> {
        (0..checkpoints.len())
            .rev()
            .find(|&c| obs.wrong_fraction(c, k).unwrap_or(0.0) > 0.0)
    };
    let one = last_wrong_checkpoint(1);
    let densest = last_wrong_checkpoint(obs.max_coreness());
    assert!(
        one >= densest,
        "the 1-core should finish no earlier than the densest core ({one:?} vs {densest:?})"
    );
}
