//! The paper's §4 theory, checked end to end through the engines
//! (experiment E6): execution-time bounds, message bounds, the worst-case
//! family and the safety/liveness invariants.

use dkcore_repro::dkcore::seq::batagelj_zaversnik;
use dkcore_repro::graph::generators::{gnp, path, worst_case};
use dkcore_repro::graph::metrics::{exact_diameter, min_degree_count};
use dkcore_repro::sim::{NodeSim, NodeSimConfig, SimMode};

fn no_opt_sync() -> NodeSimConfig {
    let mut config = NodeSimConfig::synchronous();
    config.protocol.send_optimization = false;
    config
}

#[test]
fn worst_case_family_needs_exactly_n_minus_1_rounds() {
    // §4.2 and Figure 3: execution time N − 1 (the paper's count includes
    // the final delivery-only round) while the diameter stays constant 3.
    for n in [5usize, 7, 10, 12, 15, 20, 30, 50] {
        let g = worst_case(n);
        let result = NodeSim::new(&g, no_opt_sync()).run();
        assert!(result.converged);
        assert_eq!(result.rounds_executed as usize, n - 1, "N = {n}");
        // "the diameter is 3, i.e., a constant regardless of N" — the very
        // smallest instances are even tighter.
        assert!(
            exact_diameter(&g) <= 3,
            "diameter must stay constant at N = {n}"
        );
        if n >= 10 {
            assert_eq!(exact_diameter(&g), 3, "diameter must be 3 at N = {n}");
        }
        assert!(result.final_estimates.iter().all(|&c| c == 2));
    }
}

#[test]
fn worst_case_demonstrates_diameter_independence() {
    // The paper's point: "the convergence time increases linearly with N
    // but the diameter is 3". Verify the linear growth explicitly.
    let r20 = NodeSim::new(&worst_case(20), no_opt_sync()).run();
    let r40 = NodeSim::new(&worst_case(40), no_opt_sync()).run();
    assert_eq!(r40.rounds_executed - r20.rounds_executed, 20);
}

#[test]
fn chain_needs_ceil_n_over_2_send_rounds() {
    for n in [2usize, 3, 8, 9, 40, 41, 100] {
        let g = path(n);
        let result = NodeSim::new(&g, no_opt_sync()).run();
        assert_eq!(result.execution_time as usize, n.div_ceil(2), "N = {n}");
    }
}

#[test]
fn theorem4_and_corollary1_bounds() {
    for seed in 0..10u64 {
        let g = gnp(200, 0.03, seed);
        let truth = batagelj_zaversnik(&g);
        let result = NodeSim::new(&g, no_opt_sync()).run();
        let t = result.execution_time as u64;

        // Theorem 4: T <= 1 + sum of initial errors.
        let initial_error: u64 = g
            .nodes()
            .map(|u| (g.degree(u) - truth[u.index()]) as u64)
            .sum();
        assert!(t <= 1 + initial_error, "Theorem 4, seed {seed}");

        // Corollary 1: T <= N - K + 1.
        let k = min_degree_count(&g);
        assert!(
            t as usize <= g.node_count() - k + 1,
            "Corollary 1, seed {seed}"
        );

        // Theorem 5: T <= N (weaker, implied).
        assert!(t as usize <= g.node_count(), "Theorem 5, seed {seed}");
    }
}

#[test]
fn corollary2_message_bound() {
    for seed in 0..10u64 {
        let g = gnp(150, 0.04, 100 + seed);
        let result = NodeSim::new(&g, no_opt_sync()).run();
        let d2: u64 = g.nodes().map(|u| (g.degree(u) as u64).pow(2)).sum();
        let bound = d2 - 2 * g.edge_count() as u64;
        let initial = 2 * g.edge_count() as u64;
        assert!(
            result.total_messages - initial <= bound,
            "Corollary 2, seed {seed}: {} > {bound}",
            result.total_messages - initial
        );
    }
}

#[test]
fn safety_estimates_never_drop_below_coreness() {
    // Theorem 2 through the engine, at every round, in both modes.
    for mode in [SimMode::Synchronous, SimMode::RandomOrder { seed: 5 }] {
        let g = gnp(120, 0.05, 77);
        let truth = batagelj_zaversnik(&g);
        let mut config = NodeSimConfig::synchronous();
        config.mode = mode;
        let mut sim = NodeSim::new(&g, config);
        for _ in 0..500 {
            let report = sim.step();
            for (u, &est) in sim.estimates().iter().enumerate() {
                assert!(est >= truth[u], "safety violated at node {u}");
            }
            if report.is_quiet() && sim.is_quiescent() {
                break;
            }
        }
        assert_eq!(sim.estimates(), truth, "liveness: converged to coreness");
    }
}

#[test]
fn estimates_are_monotone_nonincreasing_over_rounds() {
    // The observation backing Theorem 2's proof: core never grows.
    let g = gnp(100, 0.06, 42);
    let mut sim = NodeSim::new(&g, NodeSimConfig::random_order(3));
    let mut last = sim.estimates();
    for _ in 0..300 {
        let report = sim.step();
        let now = sim.estimates();
        for (a, b) in last.iter().zip(now.iter()) {
            assert!(b <= a, "estimate grew");
        }
        last = now;
        if report.is_quiet() && sim.is_quiescent() {
            break;
        }
    }
}

#[test]
fn send_optimization_preserves_results_and_saves_messages() {
    // §3.1.2: optimization only suppresses messages that cannot matter.
    for seed in 0..5u64 {
        let g = gnp(150, 0.05, 200 + seed);
        let mut plain = NodeSimConfig::synchronous();
        plain.protocol.send_optimization = false;
        let mut optimized = NodeSimConfig::synchronous();
        optimized.protocol.send_optimization = true;
        let a = NodeSim::new(&g, plain).run();
        let b = NodeSim::new(&g, optimized).run();
        assert_eq!(a.final_estimates, b.final_estimates, "same fixpoint");
        assert!(
            b.total_messages < a.total_messages,
            "optimization saves messages"
        );
    }
}
