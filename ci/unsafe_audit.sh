#!/usr/bin/env bash
# Static gate: the workspace stays safe Rust, auditable at a glance.
#
# Two rules:
#
# 1. Every crate root (`lib.rs` under crates/ or the facade src/) must
#    carry `#![forbid(unsafe_code)]` — forbid, not deny, so a stray
#    `#[allow(unsafe_code)]` cannot reopen the door lower down.
# 2. If an `unsafe` block ever does land (behind a deliberate removal of
#    the forbid), it must carry a `// SAFETY:` comment on the same or an
#    immediately preceding line stating the invariant that makes it
#    sound. Today the workspace has zero unsafe blocks; this rule exists
#    so the audit stays meaningful the day that changes.

set -euo pipefail
cd "$(dirname "$0")/.."

status=0

while IFS= read -r f; do
  if ! grep -q 'forbid(unsafe_code)' "$f"; then
    echo "error: $f: crate root missing #![forbid(unsafe_code)]"
    status=1
  fi
done < <(find crates src -name lib.rs -not -path '*/target/*')

# Scan for unsafe blocks/fns/impls (not the word in comments or strings:
# require it as a code token at the start of an expression or item).
while IFS=: read -r file line text; do
  # Skip comment lines mentioning unsafe prose.
  trimmed="${text#"${text%%[![:space:]]*}"}"
  case "$trimmed" in '//'*) continue ;; esac
  ctx=$(sed -n "$((line > 1 ? line - 1 : 1)),${line}p" "$file")
  if ! printf '%s\n' "$ctx" | grep -q '// SAFETY:'; then
    echo "error: $file:$line: unsafe without a // SAFETY: comment"
    echo "  $trimmed"
    status=1
  fi
done < <(grep -rn --include='*.rs' -E '(^|[^a-zA-Z_"])unsafe([[:space:]]*\{|[[:space:]]+(fn|impl|trait))' crates/ src/ || true)

if [ "$status" -eq 0 ]; then
  echo "unsafe audit clean: every crate root forbids unsafe_code, no unannotated unsafe"
fi
exit "$status"
