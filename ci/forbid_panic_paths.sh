#!/usr/bin/env bash
# Static gate: no new panic sites on the serving request paths.
#
# The wire front end and the sharded writer must degrade or return
# protocol errors instead of panicking: a panic in a request handler
# tears down a client connection, and one in the writer kills a primary
# (exercising failover for the wrong reason). This check scans the
# non-test regions of the gated files for `unwrap()` / `expect(` /
# `panic!` / `unreachable!` / `todo!` / `unimplemented!` and fails on
# any site not in ci/panic_allowlist.txt.
#
# The allowlist pins the *reviewed* sites (each is an invariant the
# surrounding code establishes — slicing a frame that was just length-
# checked, looking up a slot that was just range-checked). Entries are
# `<file>:<trimmed source line>` so they survive unrelated line drift;
# genuinely new panic sites need a new entry, which makes them visible
# in review. Removing a site leaves a stale entry: the check fails on
# that too, so the list can only shrink in step with the code.

set -euo pipefail
cd "$(dirname "$0")/.."

GATED_FILES=(crates/serve/src/wire.rs crates/serve/src/sharded.rs)
ALLOWLIST=ci/panic_allowlist.txt
PATTERN='unwrap\(\)|expect\(|panic!|unreachable!|todo!|unimplemented!'

found=$(mktemp)
trap 'rm -f "$found"' EXIT

for f in "${GATED_FILES[@]}"; do
  # Only the shipped request path: stop at the test module.
  end=$(grep -nE '^mod tests|^#\[cfg\(test\)\]' "$f" | head -1 | cut -d: -f1)
  end=${end:-$(wc -l < "$f")}
  sed -n "1,${end}p" "$f" \
    | grep -E "$PATTERN" \
    | sed -e 's/^[[:space:]]*//' -e 's/[[:space:]]*$//' \
    | sed "s|^|$f:|" >> "$found" || true
done

status=0

# New panic sites: found but not allowlisted.
while IFS= read -r site; do
  if ! grep -qxF "$site" "$ALLOWLIST"; then
    echo "error: new panic site on a request path (add error handling, or review + allowlist):"
    echo "  $site"
    status=1
  fi
done < "$found"

# Stale allowlist entries: allowlisted but no longer in the code.
while IFS= read -r entry; do
  case "$entry" in ''|'#'*) continue ;; esac
  if ! grep -qxF "$entry" "$found"; then
    echo "error: stale allowlist entry (site removed — drop it from $ALLOWLIST):"
    echo "  $entry"
    status=1
  fi
done < "$ALLOWLIST"

if [ "$status" -eq 0 ]; then
  echo "panic-path audit clean: $(grep -cvE '^$|^#' "$ALLOWLIST") reviewed sites, no new ones"
fi
exit "$status"
