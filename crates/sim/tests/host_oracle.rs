//! Oracle verification for [`HostSim`] itself (the PR 2 satellite): the
//! legacy host engine is the reference that `ActiveSetHostEngine` is
//! property-tested against, so this suite independently pins *it* to the
//! sequential Batagelj–Zaveršnik ground truth — seed-randomized graphs,
//! random partitions, both execution modes, both dissemination policies.

use dkcore::one_to_many::{AssignmentPolicy, DisseminationPolicy};
use dkcore::seq::batagelj_zaversnik;
use dkcore_graph::Graph;
use dkcore_sim::{HostSim, HostSimConfig, SimMode};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (1usize..70).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..250);
        edges.prop_map(move |es| Graph::from_edges(n, es).expect("endpoints in range"))
    })
}

fn arb_assignment() -> impl Strategy<Value = AssignmentPolicy> {
    (0u32..4, any::<u64>()).prop_map(|(which, seed)| match which {
        0 => AssignmentPolicy::Modulo,
        1 => AssignmentPolicy::Block,
        2 => AssignmentPolicy::Random { seed },
        _ => AssignmentPolicy::BfsBlocks,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Synchronous mode: every random graph × partition × policy run
    /// converges exactly to the sequential coreness.
    #[test]
    fn host_sim_synchronous_matches_ground_truth(
        g in arb_graph(),
        hosts in 1usize..16,
        broadcast in any::<bool>(),
        assignment in arb_assignment(),
    ) {
        let truth = batagelj_zaversnik(&g);
        let mut config = HostSimConfig::synchronous(hosts);
        config.protocol.policy = if broadcast {
            DisseminationPolicy::Broadcast
        } else {
            DisseminationPolicy::PointToPoint
        };
        config.assignment = assignment;
        let result = HostSim::new(&g, config).run();
        prop_assert!(result.converged);
        prop_assert_eq!(result.final_estimates, truth);
    }

    /// Random-order (PeerSim-style buffered cycles) mode: schedule noise
    /// never changes the fixpoint either.
    #[test]
    fn host_sim_random_order_matches_ground_truth(
        g in arb_graph(),
        hosts in 1usize..12,
        seed in any::<u64>(),
        assignment in arb_assignment(),
    ) {
        let truth = batagelj_zaversnik(&g);
        let mut config = HostSimConfig::synchronous(hosts);
        config.mode = SimMode::RandomOrder { seed };
        config.assignment = assignment;
        let result = HostSim::new(&g, config).run();
        prop_assert!(result.converged);
        prop_assert_eq!(result.final_estimates, truth);
    }
}
