//! Property tests for the PR 2 fast path: the [`ActiveSetHostEngine`]
//! must be indistinguishable from the legacy synchronous host engine —
//! same coreness (cross-checked against Batagelj–Zaveršnik ground truth),
//! same round count, same per-host `⟨S⟩` message counts — across random
//! graphs, random partitions, both dissemination policies, all emulation
//! modes, and arbitrary thread counts.
//!
//! The CI `determinism` job re-runs this suite with `DKCORE_TEST_THREADS`
//! forced to 1, 2 and 8 and `DKCORE_TEST_SEED` varied, proving that
//! sharding never changes rounds, messages or estimates.

use dkcore::one_to_many::{AssignmentPolicy, DisseminationPolicy, EmulationMode};
use dkcore::seq::batagelj_zaversnik;
use dkcore_graph::generators::{complete, gnp, star, worst_case};
use dkcore_graph::Graph;
use dkcore_sim::{
    ActiveSetHostConfig, ActiveSetHostEngine, HostSim, HostSimConfig, RunResult, SimMode,
};
use proptest::prelude::*;

mod common;
use common::{seed_offset, test_threads};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (1usize..60).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..220);
        edges.prop_map(move |es| Graph::from_edges(n, es).expect("endpoints in range"))
    })
}

fn arb_assignment() -> impl Strategy<Value = AssignmentPolicy> {
    (0u32..4, any::<u64>()).prop_map(|(which, seed)| match which {
        0 => AssignmentPolicy::Modulo,
        1 => AssignmentPolicy::Block,
        2 => AssignmentPolicy::Random { seed },
        _ => AssignmentPolicy::BfsBlocks,
    })
}

fn legacy_config(
    hosts: usize,
    policy: DisseminationPolicy,
    assignment: &AssignmentPolicy,
) -> HostSimConfig {
    let mut config = HostSimConfig::synchronous(hosts);
    config.protocol.policy = policy;
    config.assignment = assignment.clone();
    config
}

fn run_legacy(
    g: &Graph,
    hosts: usize,
    policy: DisseminationPolicy,
    assignment: &AssignmentPolicy,
) -> RunResult {
    HostSim::new(g, legacy_config(hosts, policy, assignment)).run()
}

fn run_fast(
    g: &Graph,
    hosts: usize,
    policy: DisseminationPolicy,
    assignment: &AssignmentPolicy,
    threads: usize,
) -> RunResult {
    let mut config = ActiveSetHostConfig::synchronous(hosts);
    config.protocol.policy = policy;
    config.assignment = assignment.clone();
    config.threads = threads;
    ActiveSetHostEngine::new(g, config).run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The tentpole equivalence on random graphs and random partitions:
    /// coreness equals the sequential ground truth, and the whole
    /// `RunResult` (rounds, execution time, total and per-host messages)
    /// matches the legacy engine under both dissemination policies, with
    /// sequential and sharded execution.
    #[test]
    fn active_set_host_equals_legacy_and_bz(
        g in arb_graph(),
        hosts in 1usize..12,
        broadcast in any::<bool>(),
        assignment in arb_assignment(),
    ) {
        let policy = if broadcast {
            DisseminationPolicy::Broadcast
        } else {
            DisseminationPolicy::PointToPoint
        };
        let truth = batagelj_zaversnik(&g);
        let legacy = run_legacy(&g, hosts, policy, &assignment);
        let fast = run_fast(&g, hosts, policy, &assignment, 1);
        prop_assert_eq!(&fast.final_estimates, &truth);
        prop_assert_eq!(&fast, &legacy);
        // Sharded execution changes nothing either.
        let sharded = run_fast(&g, hosts, policy, &assignment, test_threads(3));
        prop_assert_eq!(&sharded, &legacy);
    }

    /// All three emulation modes stay bit-identical to the legacy engine,
    /// including PerRound's cross-round internal propagation, whose
    /// pending hosts exercise the worklist carry-over.
    #[test]
    fn emulation_modes_equal_legacy(
        g in arb_graph(),
        hosts in 1usize..8,
        which in 0u32..3,
    ) {
        let emulation = match which {
            0 => EmulationMode::Worklist,
            1 => EmulationMode::Sweep,
            _ => EmulationMode::PerRound,
        };
        let mut legacy_cfg = HostSimConfig::synchronous(hosts);
        legacy_cfg.protocol.emulation = emulation;
        let legacy = HostSim::new(&g, legacy_cfg).run();
        let mut fast_cfg = ActiveSetHostConfig::synchronous(hosts);
        fast_cfg.protocol.emulation = emulation;
        fast_cfg.threads = test_threads(2);
        let fast = ActiveSetHostEngine::new(&g, fast_cfg).run();
        prop_assert_eq!(&fast, &legacy);
    }
}

/// The fixed-family × policy × host-count matrix, with per-field failure
/// messages (the counterpart of `active_set.rs`'s family matrix).
#[test]
fn family_matrix_identical_counts() {
    let off = seed_offset();
    let families: Vec<(&str, Graph)> = vec![
        ("gnp", gnp(120, 0.06, 5 + off)),
        ("star", star(30)),
        ("complete", complete(14)),
        ("worst_case", worst_case(20)),
    ];
    let threads = test_threads(3);
    for (name, g) in &families {
        let truth = batagelj_zaversnik(g);
        for policy in [
            DisseminationPolicy::Broadcast,
            DisseminationPolicy::PointToPoint,
        ] {
            for hosts in [1usize, 3, 8] {
                let legacy = run_legacy(g, hosts, policy, &AssignmentPolicy::Modulo);
                let fast = run_fast(g, hosts, policy, &AssignmentPolicy::Modulo, threads);
                let tag = format!("{name} {policy:?} hosts={hosts} threads={threads}");
                assert_eq!(fast.final_estimates, truth, "{tag}: coreness");
                assert_eq!(
                    fast.rounds_executed, legacy.rounds_executed,
                    "{tag}: rounds"
                );
                assert_eq!(
                    fast.execution_time, legacy.execution_time,
                    "{tag}: execution time"
                );
                assert_eq!(
                    fast.total_messages, legacy.total_messages,
                    "{tag}: total messages"
                );
                assert_eq!(
                    fast.messages_per_sender, legacy.messages_per_sender,
                    "{tag}: per-host messages"
                );
                assert_eq!(fast.converged, legacy.converged, "{tag}: convergence");
            }
        }
    }
}

/// Sharding is invisible: any thread count yields the same `RunResult`.
#[test]
fn thread_count_invariance() {
    let off = seed_offset();
    let g = gnp(250, 0.04, 13 + off);
    let reference = run_fast(
        &g,
        16,
        DisseminationPolicy::PointToPoint,
        &AssignmentPolicy::Modulo,
        1,
    );
    for threads in [2, 3, 8, 16] {
        let sharded = run_fast(
            &g,
            16,
            DisseminationPolicy::PointToPoint,
            &AssignmentPolicy::Modulo,
            threads,
        );
        assert_eq!(sharded, reference, "threads={threads}");
    }
}

/// The engine rejects nothing HostSim accepts: degenerate shapes (more
/// hosts than nodes, single host, empty graph) behave identically.
#[test]
fn degenerate_shapes_equal_legacy() {
    let threads = test_threads(2);
    for (name, g, hosts) in [
        ("empty", Graph::from_edges(0, []).unwrap(), 3usize),
        ("isolated", Graph::from_edges(6, []).unwrap(), 4),
        ("more_hosts_than_nodes", gnp(5, 0.5, 2), 9),
        ("single_host", gnp(40, 0.1, 3), 1),
    ] {
        let legacy = run_legacy(
            &g,
            hosts,
            DisseminationPolicy::PointToPoint,
            &AssignmentPolicy::Modulo,
        );
        let fast = run_fast(
            &g,
            hosts,
            DisseminationPolicy::PointToPoint,
            &AssignmentPolicy::Modulo,
            threads,
        );
        assert_eq!(fast, legacy, "{name}");
    }
}

/// `SimMode::RandomOrder` stays the legacy engine's exclusive domain; the
/// fast engine's synchronous results still agree with what a random-order
/// run converges to (the protocol's fixpoint is schedule-independent).
#[test]
fn synchronous_fixpoint_matches_random_order_runs() {
    let off = seed_offset();
    let g = gnp(90, 0.07, 23 + off);
    let fast = run_fast(
        &g,
        6,
        DisseminationPolicy::PointToPoint,
        &AssignmentPolicy::Modulo,
        test_threads(2),
    );
    for seed in 0..3u64 {
        let mut config = HostSimConfig::synchronous(6);
        config.mode = SimMode::RandomOrder { seed };
        let random = HostSim::new(&g, config).run();
        assert!(random.converged);
        assert_eq!(random.final_estimates, fast.final_estimates, "seed {seed}");
    }
}
