//! Helpers shared by the engine-equivalence suites: the environment
//! knobs of the CI `determinism` job, which re-runs them at 1, 2 and 8
//! threads with shifted graph seeds.

/// Thread count for the sharded runs: the `DKCORE_TEST_THREADS` override
/// (the CI determinism matrix), or `default` when unset.
pub fn test_threads(default: usize) -> usize {
    std::env::var("DKCORE_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&t| t > 0)
        .unwrap_or(default)
}

/// Offset mixed into every graph seed, from `DKCORE_TEST_SEED` (the CI
/// determinism matrix); 0 when unset.
pub fn seed_offset() -> u64 {
    std::env::var("DKCORE_TEST_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(0, |s| s.wrapping_mul(0x9E37_79B9))
}
