//! Property tests for the PR 1 fast path: the [`ActiveSetEngine`] must be
//! indistinguishable from the legacy synchronous engine — same coreness
//! (cross-checked against Batagelj–Zaveršnik ground truth), same round
//! count, same message counts, per sender — across random graphs, the
//! named graph families, and the §3.1.2 send-optimization on/off matrix.

use dkcore::one_to_one::OneToOneConfig;
use dkcore::seq::batagelj_zaversnik;
use dkcore::{compute_index, IncrementalIndex};
use dkcore_graph::generators::{complete, gnp, star, worst_case};
use dkcore_graph::Graph;
use dkcore_sim::{ActiveSetConfig, ActiveSetEngine, NodeSim, NodeSimConfig, RunResult};
use proptest::prelude::*;

mod common;
use common::{seed_offset, test_threads};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (1usize..70).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..250);
        edges.prop_map(move |es| Graph::from_edges(n, es).expect("endpoints in range"))
    })
}

fn run_legacy(g: &Graph, send_optimization: bool) -> RunResult {
    let mut config = NodeSimConfig::synchronous();
    config.protocol.send_optimization = send_optimization;
    NodeSim::new(g, config).run()
}

fn run_fast(g: &Graph, send_optimization: bool, threads: usize) -> RunResult {
    let config = ActiveSetConfig {
        protocol: OneToOneConfig { send_optimization },
        threads,
        max_rounds: 0,
    };
    ActiveSetEngine::new(g, config).run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole equivalence on random graphs: coreness equals the
    /// sequential ground truth, and the whole `RunResult` (rounds,
    /// execution time, total and per-sender messages) matches the legacy
    /// engine, with the §3.1.2 optimization both on and off.
    #[test]
    fn active_set_equals_legacy_and_bz(g in arb_graph(), opt in any::<bool>()) {
        let truth = batagelj_zaversnik(&g);
        let legacy = run_legacy(&g, opt);
        let fast = run_fast(&g, opt, 1);
        prop_assert_eq!(&fast.final_estimates, &truth);
        prop_assert_eq!(&fast, &legacy);
        // Sharded execution changes nothing either.
        let sharded = run_fast(&g, opt, test_threads(3));
        prop_assert_eq!(&sharded, &legacy);
    }

    /// `IncrementalIndex` tracks Algorithm 2 exactly under arbitrary
    /// monotone estimate-drop traces.
    #[test]
    fn incremental_index_tracks_compute_index(
        degree in 0u32..40,
        drops in proptest::collection::vec((0u32..40, 0u32..50), 0..120),
    ) {
        let mut est = vec![u32::MAX; degree as usize];
        let mut idx = IncrementalIndex::new(degree);
        let mut core = degree;
        for (slot, new) in drops {
            if degree == 0 {
                break;
            }
            let i = (slot % degree) as usize;
            if new >= est[i] {
                continue; // only drops are legal protocol events
            }
            let dropped = idx.update(est[i], new);
            est[i] = new;
            let t = compute_index(est.iter().copied(), core);
            prop_assert_eq!(dropped, t < core);
            core = core.min(t);
            prop_assert_eq!(idx.core(), core);
        }
    }
}

/// The fixed-family × optimization matrix named by the PR issue. The CI
/// determinism job re-runs it with `DKCORE_TEST_THREADS`/`DKCORE_TEST_SEED`
/// varied, proving sharding never changes the counts.
#[test]
fn family_matrix_identical_counts() {
    let off = seed_offset();
    let families: Vec<(&str, Graph)> = vec![
        ("gnp", gnp(120, 0.06, 5 + off)),
        ("star", star(30)),
        ("complete", complete(14)),
        ("worst_case", worst_case(20)),
    ];
    let threads = test_threads(1);
    for (name, g) in &families {
        let truth = batagelj_zaversnik(g);
        for opt in [true, false] {
            let legacy = run_legacy(g, opt);
            let fast = run_fast(g, opt, threads);
            assert_eq!(fast.final_estimates, truth, "{name} opt={opt}: coreness");
            assert_eq!(
                fast.rounds_executed, legacy.rounds_executed,
                "{name} opt={opt}: rounds"
            );
            assert_eq!(
                fast.execution_time, legacy.execution_time,
                "{name} opt={opt}: execution time"
            );
            assert_eq!(
                fast.total_messages, legacy.total_messages,
                "{name} opt={opt}: total messages"
            );
            assert_eq!(
                fast.messages_per_sender, legacy.messages_per_sender,
                "{name} opt={opt}: per-sender messages"
            );
        }
    }
}

/// The optimization matrix is not vacuous: on a graph where the §3.1.2
/// filter matters, on/off runs genuinely differ — and the fast engine
/// reproduces both sides of the difference.
#[test]
fn optimization_changes_counts_identically() {
    let g = gnp(150, 0.05, 8);
    let legacy_on = run_legacy(&g, true);
    let legacy_off = run_legacy(&g, false);
    assert!(
        legacy_on.total_messages < legacy_off.total_messages,
        "filter should save messages"
    );
    let threads = test_threads(1);
    assert_eq!(run_fast(&g, true, threads), legacy_on);
    assert_eq!(run_fast(&g, false, threads), legacy_off);
}
