//! Property tests for the PR 1 fast path: the [`ActiveSetEngine`] must be
//! indistinguishable from the legacy synchronous engine — same coreness
//! (cross-checked against Batagelj–Zaveršnik ground truth), same round
//! count, same message counts, per sender — across random graphs, the
//! named graph families, and the §3.1.2 send-optimization on/off matrix.

use dkcore::one_to_one::OneToOneConfig;
use dkcore::seq::batagelj_zaversnik;
use dkcore::{compute_index, IncrementalIndex};
use dkcore_graph::generators::{complete, gnp, star, worst_case};
use dkcore_graph::Graph;
use dkcore_sim::{ActiveSetConfig, ActiveSetEngine, NodeSim, NodeSimConfig, RunResult};
use proptest::prelude::*;

mod common;
use common::{seed_offset, test_threads};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (1usize..70).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..250);
        edges.prop_map(move |es| Graph::from_edges(n, es).expect("endpoints in range"))
    })
}

fn run_legacy(g: &Graph, send_optimization: bool) -> RunResult {
    let mut config = NodeSimConfig::synchronous();
    config.protocol.send_optimization = send_optimization;
    NodeSim::new(g, config).run()
}

fn run_fast(g: &Graph, send_optimization: bool, threads: usize) -> RunResult {
    let config = ActiveSetConfig {
        protocol: OneToOneConfig { send_optimization },
        threads,
        max_rounds: 0,
    };
    ActiveSetEngine::new(g, config).run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole equivalence on random graphs: coreness equals the
    /// sequential ground truth, and the whole `RunResult` (rounds,
    /// execution time, total and per-sender messages) matches the legacy
    /// engine, with the §3.1.2 optimization both on and off.
    #[test]
    fn active_set_equals_legacy_and_bz(g in arb_graph(), opt in any::<bool>()) {
        let truth = batagelj_zaversnik(&g);
        let legacy = run_legacy(&g, opt);
        let fast = run_fast(&g, opt, 1);
        prop_assert_eq!(&fast.final_estimates, &truth);
        prop_assert_eq!(&fast, &legacy);
        // Sharded execution changes nothing either.
        let sharded = run_fast(&g, opt, test_threads(3));
        prop_assert_eq!(&sharded, &legacy);
    }

    /// `IncrementalIndex` tracks Algorithm 2 exactly under arbitrary
    /// monotone estimate-drop traces.
    #[test]
    fn incremental_index_tracks_compute_index(
        degree in 0u32..40,
        drops in proptest::collection::vec((0u32..40, 0u32..50), 0..120),
    ) {
        let mut est = vec![u32::MAX; degree as usize];
        let mut idx = IncrementalIndex::new(degree);
        let mut core = degree;
        for (slot, new) in drops {
            if degree == 0 {
                break;
            }
            let i = (slot % degree) as usize;
            if new >= est[i] {
                continue; // only drops are legal protocol events
            }
            let dropped = idx.update(est[i], new);
            est[i] = new;
            let t = compute_index(est.iter().copied(), core);
            prop_assert_eq!(dropped, t < core);
            core = core.min(t);
            prop_assert_eq!(idx.core(), core);
        }
    }
}

/// The fixed-family × optimization matrix named by the PR issue. The CI
/// determinism job re-runs it with `DKCORE_TEST_THREADS`/`DKCORE_TEST_SEED`
/// varied, proving sharding never changes the counts.
#[test]
fn family_matrix_identical_counts() {
    let off = seed_offset();
    let families: Vec<(&str, Graph)> = vec![
        ("gnp", gnp(120, 0.06, 5 + off)),
        ("star", star(30)),
        ("complete", complete(14)),
        ("worst_case", worst_case(20)),
    ];
    let threads = test_threads(1);
    for (name, g) in &families {
        let truth = batagelj_zaversnik(g);
        for opt in [true, false] {
            let legacy = run_legacy(g, opt);
            let fast = run_fast(g, opt, threads);
            assert_eq!(fast.final_estimates, truth, "{name} opt={opt}: coreness");
            assert_eq!(
                fast.rounds_executed, legacy.rounds_executed,
                "{name} opt={opt}: rounds"
            );
            assert_eq!(
                fast.execution_time, legacy.execution_time,
                "{name} opt={opt}: execution time"
            );
            assert_eq!(
                fast.total_messages, legacy.total_messages,
                "{name} opt={opt}: total messages"
            );
            assert_eq!(
                fast.messages_per_sender, legacy.messages_per_sender,
                "{name} opt={opt}: per-sender messages"
            );
        }
    }
}

/// Warm starts: `ActiveSetEngine::with_estimates` is bit-identical to
/// `NodeSim::with_estimates` — stepwise, across thread counts — when
/// re-converging after a real batch of mutations, and both land on the
/// ground truth of the mutated graph. Re-run by the CI determinism
/// matrix under `DKCORE_TEST_THREADS`/`DKCORE_TEST_SEED`.
#[test]
fn warm_start_equals_legacy_warm_start() {
    use dkcore::stream::{warm_start_estimates_batch, EdgeBatch, StreamCore};
    use dkcore_graph::NodeId;

    let off = seed_offset();
    for seed in 0..3u64 {
        let g = gnp(220, 0.03, seed * 7 + 11 + off);
        let mut sc = StreamCore::new(&g);
        let old = sc.values().to_vec();
        // A small scattered batch: a few insertions plus a removal.
        let mut batch = EdgeBatch::new();
        let mut ins: Vec<(NodeId, NodeId)> = Vec::new();
        let mut removed = 0usize;
        let mut k = 0u32;
        while ins.len() < 4 {
            let (u, v) = (NodeId(k % 220), NodeId((k * k + 3 + seed as u32) % 220));
            k += 1;
            if u == v {
                continue;
            }
            let key = if u <= v { (u, v) } else { (v, u) };
            if ins.contains(&key) {
                continue;
            }
            if sc.has_edge(u, v) {
                if removed == 0 {
                    batch.remove(u, v);
                    removed = 1;
                }
            } else {
                batch.insert(u, v);
                ins.push(key);
            }
        }
        sc.apply_batch(&batch).unwrap();
        let new_graph = sc.to_graph();
        let est = warm_start_estimates_batch(&old, &new_graph, &ins, batch.removals());

        let truth = batagelj_zaversnik(&new_graph);
        let legacy_cfg = NodeSimConfig::synchronous();
        let legacy = NodeSim::with_estimates(&new_graph, legacy_cfg, &est).run();
        assert_eq!(legacy.final_estimates, truth, "seed {seed}: legacy warm");
        for threads in [1, test_threads(4)] {
            let cfg = ActiveSetConfig {
                protocol: OneToOneConfig::default(),
                threads,
                max_rounds: 0,
            };
            let fast = ActiveSetEngine::with_estimates(&new_graph, cfg, &est).run();
            assert_eq!(
                fast, legacy,
                "seed {seed}, threads {threads}: warm-start runs diverged"
            );
        }

        // The warm start never does worse than the cold start. (On a
        // homogeneous G(n,p) the safe candidate region can legitimately
        // span the graph, degenerating the warm start to the cold one —
        // the strict win is asserted deterministically in
        // `warm_start_strictly_beats_cold_on_stable_regions`.)
        let cold = NodeSim::new(&new_graph, legacy_cfg).run();
        assert_eq!(cold.final_estimates, truth);
        assert!(
            legacy.total_messages <= cold.total_messages,
            "seed {seed}: warm {} > cold {} messages",
            legacy.total_messages,
            cold.total_messages
        );
        assert!(
            legacy.rounds_executed <= cold.rounds_executed,
            "seed {seed}: warm rounds exceed cold rounds"
        );
    }
}

/// The warm-start payoff, deterministically: a graph whose hard part (a
/// §4.2 worst-case component, which needs ~N rounds from a cold start)
/// is untouched by the mutation. Warm estimates confirm it immediately,
/// so re-convergence is a handful of rounds and a fraction of the
/// messages, at any thread count.
#[test]
fn warm_start_strictly_beats_cold_on_stable_regions() {
    use dkcore::stream::{warm_start_estimates_batch, EdgeBatch, StreamCore};
    use dkcore_graph::NodeId;

    // Component A: worst_case(40) on ids 0..40. Component B: a 30-node
    // path on ids 40..70.
    let wc = worst_case(40);
    let mut edges: Vec<(u32, u32)> = wc.edges().map(|(u, v)| (u.0, v.0)).collect();
    edges.extend((40..69u32).map(|i| (i, i + 1)));
    let g = Graph::from_edges(70, edges).unwrap();

    let mut sc = StreamCore::new(&g);
    let old = sc.values().to_vec();
    // Close the path into a cycle: only component B's coreness changes.
    let mut batch = EdgeBatch::new();
    batch.insert(NodeId(40), NodeId(69));
    sc.apply_batch(&batch).unwrap();
    let new_graph = sc.to_graph();
    let est = warm_start_estimates_batch(&old, &new_graph, &[(NodeId(40), NodeId(69))], &[]);

    let truth = batagelj_zaversnik(&new_graph);
    let cold = NodeSim::new(&new_graph, NodeSimConfig::synchronous()).run();
    assert_eq!(cold.final_estimates, truth);
    // Both runs pay the same initialization broadcast (one message per
    // arc); the warm start's win is in the *update* traffic after it.
    let initial = 2 * new_graph.edge_count() as u64;
    for threads in [1, test_threads(4)] {
        let cfg = ActiveSetConfig {
            protocol: OneToOneConfig::default(),
            threads,
            max_rounds: 0,
        };
        let warm = ActiveSetEngine::with_estimates(&new_graph, cfg, &est).run();
        assert_eq!(warm.final_estimates, truth, "threads {threads}");
        assert!(
            warm.rounds_executed < cold.rounds_executed / 2,
            "threads {threads}: warm {} rounds vs cold {}",
            warm.rounds_executed,
            cold.rounds_executed
        );
        assert!(
            warm.total_messages - initial < (cold.total_messages - initial) / 2,
            "threads {threads}: warm {} update messages vs cold {}",
            warm.total_messages - initial,
            cold.total_messages - initial
        );
    }
}

/// Stepwise warm-start agreement (not just the final result): every
/// intermediate round of the warm engines matches.
#[test]
fn warm_start_stepwise_state_matches_legacy() {
    let off = seed_offset();
    let g = gnp(90, 0.07, 17 + off);
    // Exact coreness as the warm start: the run must confirm and stop.
    let truth = batagelj_zaversnik(&g);
    let mut fast = ActiveSetEngine::with_estimates(&g, ActiveSetConfig::sequential(), &truth);
    let mut legacy = NodeSim::with_estimates(&g, NodeSimConfig::synchronous(), &truth);
    loop {
        let ra = fast.step();
        let rb = legacy.step();
        assert_eq!(ra.messages, rb.messages, "round {}", ra.round);
        assert_eq!(fast.estimates(), legacy.estimates(), "round {}", ra.round);
        if ra.messages == 0 {
            break;
        }
    }
    assert_eq!(fast.execution_time(), 1, "only the confirmation broadcast");
    assert!(fast.is_quiescent() && legacy.is_quiescent());
}

/// The optimization matrix is not vacuous: on a graph where the §3.1.2
/// filter matters, on/off runs genuinely differ — and the fast engine
/// reproduces both sides of the difference.
#[test]
fn optimization_changes_counts_identically() {
    let g = gnp(150, 0.05, 8);
    let legacy_on = run_legacy(&g, true);
    let legacy_off = run_legacy(&g, false);
    assert!(
        legacy_on.total_messages < legacy_off.total_messages,
        "filter should save messages"
    );
    let threads = test_threads(1);
    assert_eq!(run_fast(&g, true, threads), legacy_on);
    assert_eq!(run_fast(&g, false, threads), legacy_off);
}
