//! Flat, active-set, optionally parallel engine for the synchronous
//! one-to-one protocol (Algorithm 1) — the fast path behind the same
//! semantics as [`NodeSim`](crate::NodeSim) in [`SimMode::Synchronous`]
//! mode.
//!
//! The legacy engine materializes every message through per-node
//! `Vec<Vec<(NodeId, u32)>>` inboxes (allocation churn plus a random
//! memory write per message), rescans a node's whole neighborhood per
//! received message, and walks all `N` nodes every round even when only
//! a handful are still active. This engine restructures the round loop
//! around four ideas:
//!
//! 1. **Flat CSR state.** All per-neighbor protocol state lives in arrays
//!    parallel to the arc array: `nbr_est[p]` is Algorithm 1's `est[]`
//!    entry for arc `p`, and a precomputed `mirror[p]` maps each arc to
//!    its reverse arc, so "sending" an estimate is one array write into
//!    the recipient's slot — no message objects, no allocation.
//! 2. **Active sets.** Only nodes whose estimate dropped flush, and only
//!    staged slots are delivered. Quiescent regions cost zero work per
//!    round — matching the protocol's own convergence structure, where
//!    most nodes settle within a few rounds (Table 2). The dense first
//!    exchange (every node broadcasts its degree) skips staging entirely
//!    and is applied as one sequential sweep.
//! 3. **Cache-partitioned, pair-staged delivery.** Staged deliveries are
//!    routed into recycled per-`(src, dst)` buffers at flush time — the
//!    sender resolves the destination shard with a region→shard table
//!    plus a short fixup walk across shard boundaries — and bucketed by
//!    destination *region* (a fixed arc-range window) within the pair.
//!    Delivery then processes one region at a time, so the scattered
//!    writes into the big per-arc arrays stay inside a cache-resident
//!    window, and every shard reads exactly the messages addressed to
//!    it: no boundary-region scan over other shards' traffic.
//! 4. **Incremental index maintenance.** Estimate recomputation uses the
//!    suffix-count histogram scheme of
//!    [`IncrementalIndex`](dkcore::IncrementalIndex), inlined over a
//!    flat arena (one `degree + 1` slice per node), so a delivered
//!    estimate costs O(1) amortized instead of an `O(degree + core)`
//!    Algorithm 2 rescan per message.
//!
//! Delivery and flush optionally run in **parallel** over disjoint
//! contiguous node shards (hence disjoint arc ranges) with scoped
//! threads and one barrier per phase — no locks, no unsafe. The design
//! is rayon-shaped (`par_iter` over shards); with no rayon available
//! offline, `std::thread::scope` plays its role.
//!
//! Synchronous-round semantics are preserved *exactly*: estimates
//! flushed in round `r` are staged and only become visible in round
//! `r + 1`, the §3.1.2 send-optimization filter is evaluated at flush
//! time against the sender's cached estimates, and message/round/
//! estimate accounting matches the legacy engine bit for bit (asserted
//! by `tests/active_set.rs` across graph families and the optimization
//! on/off matrix).
//!
//! # Example
//!
//! ```
//! use dkcore_sim::{ActiveSetConfig, ActiveSetEngine, NodeSim, NodeSimConfig};
//! use dkcore::seq::batagelj_zaversnik;
//! use dkcore_graph::generators::gnp;
//!
//! let g = gnp(300, 0.03, 7);
//! let fast = ActiveSetEngine::new(&g, ActiveSetConfig::default()).run();
//! assert!(fast.converged);
//! assert_eq!(fast.final_estimates, batagelj_zaversnik(&g));
//! // Identical trace to the legacy synchronous engine:
//! let legacy = NodeSim::new(&g, NodeSimConfig::synchronous()).run();
//! assert_eq!(fast, legacy);
//! ```

use dkcore::one_to_one::OneToOneConfig;
use dkcore::INFINITY_EST;
use dkcore_graph::Graph;

use crate::RunResult;

/// Arcs per delivery region: staged estimates are bucketed into windows
/// of this many arc slots so delivery's scattered writes stay inside
/// a cache-resident range (2^13 arcs ≈ 32 KiB of `nbr_est`).
const REGION_BITS: u32 = 13;

/// Configuration of an [`ActiveSetEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ActiveSetConfig {
    /// Protocol configuration (§3.1.2 send optimization).
    pub protocol: OneToOneConfig,
    /// Worker threads for the delivery/flush phases; `0` means automatic
    /// (available parallelism, capped so each shard keeps a meaningful
    /// amount of arcs). `1` forces the sequential path.
    pub threads: usize,
    /// Safety cap on simulated rounds; `0` means automatic (`2·N + 100`),
    /// matching [`NodeSimConfig`](crate::NodeSimConfig).
    pub max_rounds: u32,
}

impl ActiveSetConfig {
    /// Automatic threading with the given protocol configuration.
    pub fn with_protocol(protocol: OneToOneConfig) -> Self {
        ActiveSetConfig {
            protocol,
            ..Self::default()
        }
    }

    /// Forces the sequential (single-thread) path.
    pub fn sequential() -> Self {
        ActiveSetConfig {
            threads: 1,
            ..Self::default()
        }
    }
}

/// Outcome of one [`ActiveSetEngine::step`]: like
/// [`StepReport`](crate::StepReport) but without the per-node activity
/// vector, which would cost `O(N)` per round to materialize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActiveStepReport {
    /// 1-based round index.
    pub round: u32,
    /// Point-to-point messages sent during the round.
    pub messages: u64,
    /// Nodes that sent at least one message this round.
    pub senders: u64,
}

/// A staged delivery: the estimate lands in `nbr_est[arc]` at the start
/// of the next round.
type Staged = (u32, u32); // (arc position in the recipient's row, estimate)

/// Flat active-set simulator of the synchronous one-to-one protocol. See
/// the [module documentation](self).
#[derive(Debug)]
pub struct ActiveSetEngine {
    // --- immutable topology (flattened CSR copy) ---
    /// `offsets[u]..offsets[u + 1]` is node `u`'s arc range.
    offsets: Vec<usize>,
    /// Arc targets (neighbor ids).
    targets: Vec<u32>,
    /// Node degrees (`offsets` deltas, kept as u32 for cache density).
    deg: Vec<u32>,
    /// `mirror[p]`: position of the reverse arc in the target's row.
    mirror: Vec<u32>,
    /// `owner[p]`: the node whose row contains arc `p`.
    owner: Vec<u32>,
    /// Shard boundaries (node ids), length `threads + 1`.
    shard_bounds: Vec<usize>,

    // --- protocol state ---
    /// Current estimate (`core`) per node.
    est: Vec<u32>,
    /// Cached neighbor estimates per arc (Algorithm 1's `est[]`, indexed
    /// by the *owner's* arc).
    nbr_est: Vec<u32>,
    /// Suffix-count histogram arena: node `u`'s `degree(u) + 1` counters
    /// live at `offsets[u] + u ..`, clamped-estimate buckets exactly as
    /// in [`dkcore::IncrementalIndex`].
    cnt: Vec<u32>,
    /// Number of neighbors with clamped estimate `≥ est[u]`, per node.
    ge: Vec<u32>,
    /// Changed-since-flush flag per node.
    changed: Vec<bool>,
    /// `stage[src][dst][local_region]`: deliveries staged by shard `src`
    /// for shard `dst`, bucketed by `dst`'s local arc regions. Written by
    /// `src` during flush (own row), read by `dst` during the next
    /// delivery, cleared by `src` at its next flush — the buffers are
    /// recycled round over round, so a settled pair costs nothing.
    stage: Vec<Vec<Vec<Vec<Staged>>>>,
    /// Flush-time routing of a staged arc to its destination shard.
    route: StageRouter,
    /// Per-shard flush worklist: nodes whose estimate dropped.
    flush_lists: Vec<Vec<u32>>,
    /// The initial degree exchange is in flight (applied as a dense
    /// sweep next round instead of via staging).
    pending_dense: bool,
    /// Warm-start broadcast values: what each node announced in the
    /// initialization round. `None` on a cold start (nodes announce their
    /// degree, read straight from `deg`).
    warm: Option<Vec<u32>>,

    // --- accounting (mirrors the legacy engine) ---
    send_optimization: bool,
    round: u32,
    max_rounds: u32,
    execution_time: u32,
    total_messages: u64,
    messages_per_sender: Vec<u64>,
    started: bool,
}

impl ActiveSetEngine {
    /// Builds the engine for `g` under `config`. Setup is `O(N + M)`;
    /// after it, rounds allocate nothing beyond worklist growth.
    pub fn new(g: &Graph, config: ActiveSetConfig) -> Self {
        let n = g.node_count();
        let arcs = g.arc_count();

        // Flatten the CSR so the hot loops index plain arrays.
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(arcs);
        let mut owner = Vec::with_capacity(arcs);
        offsets.push(0usize);
        for u in g.nodes() {
            for &v in g.neighbors(u) {
                targets.push(v.0);
                owner.push(u.0);
            }
            offsets.push(targets.len());
        }
        let deg: Vec<u32> = (0..n)
            .map(|u| (offsets[u + 1] - offsets[u]) as u32)
            .collect();

        // Reverse-arc positions in one O(N + M) cursor pass: arcs into
        // `v` arrive in ascending source order, exactly the order of
        // `v`'s sorted row, so a per-node cursor pairs them up.
        let mut mirror = vec![0u32; arcs];
        let mut cursor: Vec<usize> = offsets[..n].to_vec();
        for (m, &t) in mirror.iter_mut().zip(targets.iter()) {
            let v = t as usize;
            *m = cursor[v] as u32;
            cursor[v] += 1;
        }

        let threads = effective_threads(config.threads, arcs);
        let shard_bounds = balance_shards(&offsets, threads);
        let route = StageRouter::new(&shard_bounds, &offsets, arcs);
        let stage = (0..threads)
            .map(|_| {
                (0..threads)
                    .map(|d| vec![Vec::new(); route.local_regions(d)])
                    .collect()
            })
            .collect();

        // Histogram arena: all neighbors start at +∞, i.e. in the
        // degree-clamped top bucket — `core ← d(u)`, `ge ← d(u)`.
        let mut cnt = vec![0u32; arcs + n];
        for u in 0..n {
            cnt[offsets[u] + u + deg[u] as usize] = deg[u];
        }

        ActiveSetEngine {
            offsets,
            targets,
            mirror,
            owner,
            shard_bounds,
            est: deg.clone(),
            ge: deg.clone(),
            deg,
            nbr_est: vec![INFINITY_EST; arcs],
            cnt,
            changed: vec![false; n],
            stage,
            route,
            flush_lists: vec![Vec::new(); threads],
            pending_dense: false,
            warm: None,
            send_optimization: config.protocol.send_optimization,
            round: 0,
            max_rounds: if config.max_rounds > 0 {
                config.max_rounds
            } else {
                2 * n as u32 + 100
            },
            execution_time: 0,
            total_messages: 0,
            messages_per_sender: vec![0; n],
            started: false,
        }
    }

    /// Builds a *warm-started* engine: node `u` begins from `initial[u]`
    /// (clamped by its degree) instead of its degree, exactly like
    /// [`NodeSim::with_estimates`](crate::NodeSim::with_estimates) — the
    /// two are bit-identical round for round (property-tested in
    /// `tests/active_set.rs`).
    ///
    /// Used to re-converge after graph mutations with estimates from
    /// [`dkcore::dynamic::warm_start_estimates`] or the batched
    /// [`dkcore::stream::warm_start_estimates_batch`]: unaffected nodes
    /// confirm their old coreness in the initialization exchange and go
    /// quiet, so the active worklist contains only the mutation
    /// candidates and re-convergence costs a handful of sparse rounds
    /// instead of a cold start. **Safety:** every initial value must
    /// upper-bound the node's true coreness.
    ///
    /// # Panics
    ///
    /// Panics if `initial.len() != g.node_count()`.
    pub fn with_estimates(g: &Graph, config: ActiveSetConfig, initial: &[u32]) -> Self {
        assert_eq!(
            initial.len(),
            g.node_count(),
            "one initial estimate per node"
        );
        let mut this = ActiveSetEngine::new(g, config);
        for (u, est) in this.est.iter_mut().enumerate() {
            *est = initial[u].min(this.deg[u]);
        }
        // The histograms still hold every neighbor at +∞ (the top
        // bucket), and `ge == deg ≥ est` everywhere, matching
        // `NodeProtocol::with_initial_estimate`'s `force_bound`.
        this.warm = Some(this.est.clone());
        this
    }

    /// Number of simulated nodes.
    pub fn node_count(&self) -> usize {
        self.est.len()
    }

    /// 1-based index of the last executed round (0 before the first).
    pub fn round(&self) -> u32 {
        self.round
    }

    /// The paper's execution-time counter: rounds in which at least one
    /// message was sent.
    pub fn execution_time(&self) -> u32 {
        self.execution_time
    }

    /// Current estimate of every node, indexed by node id.
    pub fn estimates(&self) -> Vec<u32> {
        self.est.clone()
    }

    /// Whether no deliveries are in flight and no node has unflushed
    /// changes (evaluated between rounds, after [`step`](Self::step)).
    pub fn is_quiescent(&self) -> bool {
        !self.pending_dense
            && self
                .stage
                .iter()
                .all(|row| row.iter().all(|pair| pair.iter().all(Vec::is_empty)))
            && self.flush_lists.iter().all(Vec::is_empty)
    }

    /// Executes one synchronous round: applies the deliveries staged last
    /// round, then flushes every node whose estimate dropped.
    pub fn step(&mut self) -> ActiveStepReport {
        self.round += 1;
        let first = !self.started;
        self.started = true;

        if first {
            // Initialization broadcast: `send ⟨u, core⟩ to neighborV(u)`.
            // Every arc carries exactly one message (the sender's degree),
            // so nothing needs staging: the whole exchange is accounted
            // here and applied as a dense sweep next round.
            let mut messages = 0u64;
            let mut senders = 0u64;
            for u in 0..self.deg.len() {
                let d = self.deg[u] as u64;
                if d > 0 {
                    self.messages_per_sender[u] += d;
                    messages += d;
                    senders += 1;
                }
            }
            self.pending_dense = messages > 0;
            if messages > 0 {
                self.execution_time += 1;
            }
            self.total_messages += messages;
            return ActiveStepReport {
                round: self.round,
                messages,
                senders,
            };
        }

        let threads = self.shard_bounds.len() - 1;
        let (messages, senders) = if threads == 1 {
            let mut shards = carve_impl(
                &self.shard_bounds,
                &self.offsets,
                &mut self.est,
                &mut self.ge,
                &mut self.changed,
                &mut self.messages_per_sender,
                &mut self.nbr_est,
                &mut self.cnt,
                &mut self.flush_lists,
            );
            let shard = &mut shards[0];
            if self.pending_dense {
                let init = self.warm.as_deref().unwrap_or(&self.deg);
                shard.deliver_dense(&self.offsets, &self.targets, init);
            } else {
                shard.deliver(&self.stage, 0, &self.offsets, &self.owner);
            }
            shard.flush(
                &self.offsets,
                &self.mirror,
                &mut self.stage[0],
                &self.route,
                self.send_optimization,
            )
        } else {
            self.parallel_round()
        };
        self.pending_dense = false;

        if messages > 0 {
            self.execution_time += 1;
        }
        self.total_messages += messages;
        ActiveStepReport {
            round: self.round,
            messages,
            senders,
        }
    }

    /// One parallel round: all shards deliver (barrier), then all shards
    /// flush (barrier), each on its disjoint slice of the state.
    fn parallel_round(&mut self) -> (u64, u64) {
        let offsets = &self.offsets;
        let targets = &self.targets;
        let init: &[u32] = self.warm.as_deref().unwrap_or(&self.deg);
        let owner = &self.owner;
        let mirror = &self.mirror;
        let send_optimization = self.send_optimization;
        let pending_dense = self.pending_dense;

        // Phase 1: delivery. The stage grid is shared read-only; every
        // shard mutates only its own node/arc slices.
        {
            let stage = &self.stage;
            let mut shards = carve_impl(
                &self.shard_bounds,
                offsets,
                &mut self.est,
                &mut self.ge,
                &mut self.changed,
                &mut self.messages_per_sender,
                &mut self.nbr_est,
                &mut self.cnt,
                &mut self.flush_lists,
            );
            std::thread::scope(|scope| {
                for (me, shard) in shards.iter_mut().enumerate() {
                    scope.spawn(move || {
                        if pending_dense {
                            shard.deliver_dense(offsets, targets, init);
                        } else {
                            shard.deliver(stage, me, offsets, owner);
                        }
                    });
                }
            });
        }

        // Phase 2: flush. Each shard owns its row of the stage grid.
        let mut shards = carve_impl(
            &self.shard_bounds,
            offsets,
            &mut self.est,
            &mut self.ge,
            &mut self.changed,
            &mut self.messages_per_sender,
            &mut self.nbr_est,
            &mut self.cnt,
            &mut self.flush_lists,
        );
        let route = &self.route;
        std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter_mut()
                .zip(self.stage.iter_mut())
                .map(|(shard, stage_row)| {
                    scope.spawn(move || {
                        shard.flush(offsets, mirror, stage_row, route, send_optimization)
                    })
                })
                .collect();
            let mut messages = 0u64;
            let mut senders = 0u64;
            for h in handles {
                let (m, s) = h.join().expect("shard worker panicked");
                messages += m;
                senders += s;
            }
            (messages, senders)
        })
    }

    /// Runs to quiescence (or the round cap), mirroring the legacy
    /// engine's centralized termination detection: the run ends after the
    /// first round in which nobody sends.
    pub fn run(&mut self) -> RunResult {
        loop {
            let report = self.step();
            if report.messages == 0 || self.round >= self.max_rounds {
                break;
            }
        }
        RunResult {
            execution_time: self.execution_time,
            rounds_executed: self.round,
            total_messages: self.total_messages,
            messages_per_sender: self.messages_per_sender.clone(),
            final_estimates: self.est.clone(),
            converged: self.is_quiescent(),
        }
    }
}

/// Flush-time routing of staged deliveries into per-`(src, dst)`
/// buffers: maps an absolute arc position to the shard that owns it and
/// to that shard's local region index, in O(1) plus a fixup walk of at
/// most a few steps where a region straddles shard boundaries.
#[derive(Debug)]
struct StageRouter {
    /// First shard whose arc range intersects each global region.
    region_shard: Vec<u32>,
    /// Exclusive arc-range end per shard (`offsets[bounds[d + 1]]`).
    arc_end: Vec<usize>,
    /// First global region of each shard's arc range (0 for an empty
    /// shard — never routed to, the fixup walk steps past it).
    r_lo: Vec<usize>,
}

impl StageRouter {
    fn new(bounds: &[usize], offsets: &[usize], arcs: usize) -> Self {
        let shards = bounds.len() - 1;
        let regions = (arcs >> REGION_BITS) + 1;
        let mut region_shard = vec![u32::MAX; regions];
        let mut arc_end = Vec::with_capacity(shards);
        let mut r_lo = vec![0usize; shards];
        for d in 0..shards {
            let (a, b) = (offsets[bounds[d]], offsets[bounds[d + 1]]);
            arc_end.push(b);
            if a == b {
                continue;
            }
            r_lo[d] = a >> REGION_BITS;
            for slot in &mut region_shard[(a >> REGION_BITS)..=((b - 1) >> REGION_BITS)] {
                if *slot == u32::MAX {
                    *slot = d as u32;
                }
            }
        }
        StageRouter {
            region_shard,
            arc_end,
            r_lo,
        }
    }

    /// Number of local region buckets shard `d` needs (0 when it owns no
    /// arcs).
    fn local_regions(&self, d: usize) -> usize {
        let start = if d == 0 { 0 } else { self.arc_end[d - 1] };
        let end = self.arc_end[d];
        if start == end {
            0
        } else {
            ((end - 1) >> REGION_BITS) - (start >> REGION_BITS) + 1
        }
    }

    /// Destination shard and local region bucket of arc `q`.
    #[inline]
    fn route(&self, q: usize) -> (usize, usize) {
        let region = q >> REGION_BITS;
        let mut d = self.region_shard[region] as usize;
        while q >= self.arc_end[d] {
            d += 1;
        }
        (d, region - self.r_lo[d])
    }
}

/// Mutable view of one shard's disjoint node range `[lo, hi)` and the
/// matching arc/histogram ranges, all re-based to 0. The parallel phases
/// run one `Shard` per thread; the sequential path uses one full-range
/// shard.
struct Shard<'a> {
    lo: usize,
    hi: usize,
    est: &'a mut [u32],
    ge: &'a mut [u32],
    changed: &'a mut [bool],
    msgs: &'a mut [u64],
    /// Arc range `offsets[lo]..offsets[hi]`.
    nbr_est: &'a mut [u32],
    /// Histogram arena range `offsets[lo] + lo..offsets[hi] + hi`.
    cnt: &'a mut [u32],
    flush_list: &'a mut Vec<u32>,
}

/// Carves the engine's node/arc state into per-shard disjoint mutable
/// views (free function so the parallel phases can re-carve between the
/// delivery and flush barriers).
#[allow(clippy::too_many_arguments)]
fn carve_impl<'a>(
    bounds: &[usize],
    offsets: &[usize],
    mut est: &'a mut [u32],
    mut ge: &'a mut [u32],
    mut changed: &'a mut [bool],
    mut msgs: &'a mut [u64],
    mut nbr_est: &'a mut [u32],
    mut cnt: &'a mut [u32],
    flush_lists: &'a mut [Vec<u32>],
) -> Vec<Shard<'a>> {
    let mut shards = Vec::with_capacity(bounds.len() - 1);
    let mut arc_base = 0usize;
    let mut lists = flush_lists.iter_mut();
    for w in bounds.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let nodes = hi - lo;
        let (e, e_rest) = est.split_at_mut(nodes);
        let (g_, g_rest) = ge.split_at_mut(nodes);
        let (c, c_rest) = changed.split_at_mut(nodes);
        let (m, m_rest) = msgs.split_at_mut(nodes);
        let (nb, nb_rest) = nbr_est.split_at_mut(offsets[hi] - arc_base);
        // The histogram arena allots degree(u) + 1 slots per node.
        let (ct, ct_rest) = cnt.split_at_mut(offsets[hi] + hi - (arc_base + lo));
        shards.push(Shard {
            lo,
            hi,
            est: e,
            ge: g_,
            changed: c,
            msgs: m,
            nbr_est: nb,
            cnt: ct,
            flush_list: lists.next().expect("one flush list per shard"),
        });
        est = e_rest;
        ge = g_rest;
        changed = c_rest;
        msgs = m_rest;
        nbr_est = nb_rest;
        cnt = ct_rest;
        arc_base = offsets[hi];
    }
    shards
}

/// The suffix-count walk of `IncrementalIndex::walk_down`, inlined over
/// one node's histogram slice: finds the largest `t < core` justified by
/// the counts (`running(t) >= t`), returning `(t, running(t))`.
/// Precondition: `core > 0` and `ge < core`.
#[inline]
fn walk_down(cnt: &[u32], cnt_base: usize, core: u32, ge: u32) -> (u32, u32) {
    let mut t = core - 1;
    let mut running = ge;
    loop {
        if t == 0 {
            break;
        }
        running += cnt[cnt_base + t as usize];
        if running >= t {
            break;
        }
        t -= 1;
    }
    (t, running)
}

impl Shard<'_> {
    /// Applies one delivered estimate to the arc `q` (absolute position,
    /// must belong to this shard): the inlined equivalent of
    /// `IncrementalIndex::update` plus the worklist bookkeeping.
    #[inline]
    fn apply(&mut self, q: usize, val: u32, x: usize, offsets: &[usize], arc_base: usize) {
        let old = self.nbr_est[q - arc_base];
        if val >= old {
            return; // stale (Algorithm 1: only lower estimates matter)
        }
        self.nbr_est[q - arc_base] = val;
        let xi = x - self.lo;
        let cap = (offsets[x + 1] - offsets[x]) as u32;
        let core = self.est[xi];
        let o = old.min(cap);
        let nn = val.min(cap);
        if o == nn {
            return;
        }
        let cnt_base = offsets[x] + x - (arc_base + self.lo);
        self.cnt[cnt_base + o as usize] -= 1;
        self.cnt[cnt_base + nn as usize] += 1;
        if core == 0 || o < core || nn >= core {
            return;
        }
        let ge = self.ge[xi] - 1;
        if ge >= core {
            self.ge[xi] = ge;
            return;
        }
        // Walk down to the largest justified value (amortized O(1):
        // the walk is monotone over the whole execution).
        let (t, running) = walk_down(self.cnt, cnt_base, core, ge);
        self.est[xi] = t;
        self.ge[xi] = running;
        if !self.changed[xi] {
            self.changed[xi] = true;
            self.flush_list.push(x as u32);
        }
    }

    /// Delivery phase: applies every estimate staged for this shard
    /// (`stage[src][me]` across all sources), region by region so the
    /// scattered writes stay in a cache-resident window. Senders routed
    /// every message at flush time, so each bucket holds only arcs this
    /// shard owns — no boundary filtering.
    fn deliver(
        &mut self,
        stage: &[Vec<Vec<Vec<Staged>>>],
        me: usize,
        offsets: &[usize],
        owner: &[u32],
    ) {
        let arc_base = offsets[self.lo];
        let arc_hi = offsets[self.hi];
        if arc_base == arc_hi {
            return;
        }
        let locals = ((arc_hi - 1) >> REGION_BITS) - (arc_base >> REGION_BITS) + 1;
        for local in 0..locals {
            for row in stage {
                for &(q, val) in &row[me][local] {
                    let q = q as usize;
                    debug_assert!(
                        (arc_base..arc_hi).contains(&q),
                        "staged delivery routed to the wrong shard"
                    );
                    self.apply(q, val, owner[q] as usize, offsets, arc_base);
                }
            }
        }
    }

    /// Dense delivery of the initialization exchange: every node hears
    /// every neighbor's announced value — its degree on a cold start, its
    /// warm estimate under [`ActiveSetEngine::with_estimates`]. One
    /// sequential sweep over this shard's rows — no staging, no scatter —
    /// rebuilding each histogram fresh (equivalent to, but cheaper than,
    /// `degree` bucket moves off the `+∞` top bucket).
    fn deliver_dense(&mut self, offsets: &[usize], targets: &[u32], init: &[u32]) {
        let arc_base = offsets[self.lo];
        for x in self.lo..self.hi {
            let (a, b) = (offsets[x], offsets[x + 1]);
            if a == b {
                continue;
            }
            let xi = x - self.lo;
            let cap = (b - a) as u32;
            let core = self.est[xi]; // == cap on a cold start; ≤ cap warm
            let cnt_base = a + x - (arc_base + self.lo);
            self.cnt[cnt_base + cap as usize] = 0;
            let mut below = 0u32; // neighbors with clamped estimate < core
            for p in a..b {
                let val = init[targets[p] as usize];
                // old == +∞: every value applies.
                self.nbr_est[p - arc_base] = val;
                let nn = val.min(cap);
                self.cnt[cnt_base + nn as usize] += 1;
                below += u32::from(nn < core);
            }
            let mut ge = cap - below;
            if core > 0 && ge < core {
                let (t, running) = walk_down(self.cnt, cnt_base, core, ge);
                self.est[xi] = t;
                ge = running;
                if !self.changed[xi] {
                    self.changed[xi] = true;
                    self.flush_list.push(x as u32);
                }
            }
            self.ge[xi] = ge;
        }
    }

    /// Flush phase: every changed node stages its new estimate to the
    /// neighbors that should hear it (§3.1.2 filter against the sender's
    /// cached estimates, exactly as in Algorithm 1) and the messages are
    /// accounted. Returns `(messages, senders)`.
    fn flush(
        &mut self,
        offsets: &[usize],
        mirror: &[u32],
        stage_row: &mut [Vec<Vec<Staged>>],
        route: &StageRouter,
        send_optimization: bool,
    ) -> (u64, u64) {
        // Last round's staging from this shard has been consumed by every
        // destination; reset the row's buckets (keeping their
        // allocations) for this round's output.
        for pair in stage_row.iter_mut() {
            for bucket in pair.iter_mut() {
                bucket.clear();
            }
        }
        let mut messages = 0u64;
        let mut senders = 0u64;
        let arc_base = offsets[self.lo];
        for wi in 0..self.flush_list.len() {
            let u = self.flush_list[wi] as usize;
            let ui = u - self.lo;
            self.changed[ui] = false;
            let c = self.est[ui];
            let (a, b) = (offsets[u], offsets[u + 1]);
            let mut sent = 0u64;
            for (&q, &cached) in mirror[a..b]
                .iter()
                .zip(&self.nbr_est[a - arc_base..b - arc_base])
            {
                // §3.1.2: address only neighbors that might improve.
                if !send_optimization || c < cached {
                    let (dst, local) = route.route(q as usize);
                    stage_row[dst][local].push((q, c));
                    sent += 1;
                }
            }
            if sent > 0 {
                self.msgs[ui] += sent;
                messages += sent;
                senders += 1;
            }
        }
        self.flush_list.clear();
        (messages, senders)
    }
}

/// Resolves the worker-thread count: explicit, or available parallelism
/// bounded so each shard keeps at least ~64k arcs (below that the barrier
/// overhead dominates any speedup).
fn effective_threads(configured: usize, arcs: usize) -> usize {
    if configured > 0 {
        return configured;
    }
    let by_size = (arcs / 65_536).max(1);
    let available = std::thread::available_parallelism().map_or(1, usize::from);
    available.min(by_size).min(16)
}

/// Splits nodes into `threads` contiguous shards of roughly equal arc
/// count. Returns `threads + 1` boundaries starting at 0 and ending at N.
fn balance_shards(offsets: &[usize], threads: usize) -> Vec<usize> {
    let n = offsets.len() - 1;
    let total = offsets[n];
    let mut bounds = Vec::with_capacity(threads + 1);
    bounds.push(0);
    for t in 1..threads {
        let target = total * t / threads;
        // First node whose row starts at or after the target.
        let b = offsets.partition_point(|&o| o < target).min(n);
        let b = (*bounds.last().unwrap()).max(b.saturating_sub(1)).min(n);
        bounds.push(b);
    }
    bounds.push(n);
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NodeSim, NodeSimConfig};
    use dkcore::seq::batagelj_zaversnik;
    use dkcore_graph::generators::{complete, gnp, path, star, worst_case};

    fn legacy(g: &Graph, send_optimization: bool) -> RunResult {
        let mut config = NodeSimConfig::synchronous();
        config.protocol.send_optimization = send_optimization;
        NodeSim::new(g, config).run()
    }

    fn fast(g: &Graph, send_optimization: bool, threads: usize) -> RunResult {
        let config = ActiveSetConfig {
            protocol: dkcore::one_to_one::OneToOneConfig { send_optimization },
            threads,
            max_rounds: 0,
        };
        ActiveSetEngine::new(g, config).run()
    }

    #[test]
    fn identical_to_legacy_on_graph_families() {
        for (name, g) in [
            ("gnp", gnp(200, 0.04, 3)),
            ("star", star(40)),
            ("complete", complete(12)),
            ("worst_case", worst_case(25)),
            ("path", path(60)),
        ] {
            for opt in [true, false] {
                for threads in [1, 4] {
                    let a = fast(&g, opt, threads);
                    let b = legacy(&g, opt);
                    assert_eq!(a, b, "{name}, opt={opt}, threads={threads}");
                    assert_eq!(a.final_estimates, batagelj_zaversnik(&g), "{name}");
                }
            }
        }
    }

    #[test]
    fn shard_balance_covers_all_nodes() {
        let g = gnp(500, 0.02, 1);
        let engine = ActiveSetEngine::new(
            &g,
            ActiveSetConfig {
                threads: 7,
                ..Default::default()
            },
        );
        let b = &engine.shard_bounds;
        assert_eq!(b.first(), Some(&0));
        assert_eq!(b.last(), Some(&500));
        assert!(b.windows(2).all(|w| w[0] <= w[1]), "monotone bounds: {b:?}");
    }

    #[test]
    fn empty_and_isolated_graphs() {
        let g = Graph::from_edges(0, []).unwrap();
        let r = ActiveSetEngine::new(&g, ActiveSetConfig::default()).run();
        assert!(r.converged);
        assert_eq!(r.total_messages, 0);

        let g = Graph::from_edges(5, []).unwrap();
        let r = ActiveSetEngine::new(&g, ActiveSetConfig::default()).run();
        assert_eq!(r.final_estimates, vec![0; 5]);
        assert_eq!(r.execution_time, 0);
    }

    #[test]
    fn stepwise_state_matches_legacy() {
        // Not just the final result: every intermediate round agrees.
        let g = gnp(80, 0.08, 11);
        let mut a = ActiveSetEngine::new(&g, ActiveSetConfig::sequential());
        let mut b = NodeSim::new(&g, NodeSimConfig::synchronous());
        loop {
            let ra = a.step();
            let rb = b.step();
            assert_eq!(ra.messages, rb.messages, "round {}", ra.round);
            assert_eq!(a.estimates(), b.estimates(), "round {}", ra.round);
            if ra.messages == 0 {
                break;
            }
        }
        assert!(a.is_quiescent() && b.is_quiescent());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let g = gnp(300, 0.05, 9);
        let r1 = fast(&g, true, 3);
        let r2 = fast(&g, true, 5);
        let r3 = fast(&g, true, 1);
        assert_eq!(r1, r2);
        assert_eq!(r1, r3);
    }

    #[test]
    fn max_rounds_cap_reports_nonconvergence() {
        let g = path(50);
        let mut engine = ActiveSetEngine::new(
            &g,
            ActiveSetConfig {
                max_rounds: 3,
                ..ActiveSetConfig::sequential()
            },
        );
        let r = engine.run();
        assert_eq!(r.rounds_executed, 3);
        assert!(!r.converged);
    }

    #[test]
    fn run_result_fields_match_legacy_per_node() {
        let g = gnp(150, 0.06, 21);
        let a = fast(&g, true, 1);
        let b = legacy(&g, true);
        assert_eq!(a.messages_per_sender, b.messages_per_sender);
        assert_eq!(a.execution_time, b.execution_time);
        assert_eq!(a.rounds_executed, b.rounds_executed);
        assert_eq!(a.total_messages, b.total_messages);
    }
}
