//! Round-based simulation engine for the distributed k-core protocols —
//! the workspace's stand-in for PeerSim, which the paper's §5 used for all
//! experiments.
//!
//! Two execution models are provided, selected by [`SimMode`]:
//!
//! * [`SimMode::Synchronous`] — lock-step rounds: messages sent in round
//!   `r` are delivered at the start of round `r + 1`. This is the model of
//!   the paper's §4 proofs (Theorems 4–5, Corollary 1); the theory-bound
//!   experiments use it.
//! * [`SimMode::RandomOrder`] — PeerSim-style cycles: within each cycle
//!   nodes are processed in a random order and messages become visible to
//!   nodes processed later *in the same cycle*. The paper: "Experiments
//!   differ in the (random) order with which operations performed at
//!   different nodes are considered in the simulation." Table 1, Table 2
//!   and Figures 4–5 use this model.
//!
//! [`NodeSim`] drives the one-to-one protocol, [`HostSim`] the one-to-many
//! protocol; both expose a per-round [`Observer`] hook (error evolution for
//! Figure 4, per-core completion for Table 2) and work with any
//! [`TerminationDetector`](dkcore::termination::TerminationDetector).
//! [`experiment`] wraps repetition + aggregation ("average over 50
//! experiments").
//!
//! # Engine selection
//!
//! Four engines cover the protocol × performance matrix; the slow pair is
//! the semantic reference (both execution models, observers, pluggable
//! termination detectors), the fast pair is the bit-identical synchronous
//! fast path:
//!
//! | engine | protocol | modes | when to use |
//! |--------|----------|-------|-------------|
//! | [`NodeSim`] | one-to-one (Alg. 1) | sync + random-order | reference runs, observers, Table 1/2 + Figure 4 experiments |
//! | [`ActiveSetEngine`] | one-to-one (Alg. 1) | sync only | large synchronous runs: flat CSR, active sets, sharded threads (`BENCH_PR1.json`) |
//! | [`HostSim`] | one-to-many (Alg. 3–5) | sync + random-order | reference host runs, observers, Figure 5 experiments |
//! | [`ActiveSetHostEngine`] | one-to-many (Alg. 3–5) | sync only | large multi-host synchronous runs: estimates arena, shard-staged `⟨S⟩` batches, host worklists (`BENCH_PR2.json`) |
//!
//! Both fast engines produce results bit-identical to their reference
//! engine (rounds, execution time, total and per-sender messages, final
//! estimates — property-tested in `tests/active_set.rs` and
//! `tests/active_set_host.rs`), so they are safe drop-in replacements
//! whenever the execution model is synchronous. The `dkcore simulate`
//! CLI exposes the choice as `--engine legacy|active-set`.
//!
//! The one-to-one engines also support **warm starts** for edge-churn
//! streams: [`NodeSim::with_estimates`] and
//! [`ActiveSetEngine::with_estimates`] (bit-identical to each other)
//! begin from per-node upper bounds — e.g.
//! [`dkcore::stream::warm_start_estimates_batch`] after a batch of
//! mutations — so only the mutation candidates reactivate and
//! re-convergence costs a fraction of a cold start (`dkcore stream
//! --engine warm-dist`, `BENCH_PR3.json`).
//!
//! Beyond the protocol simulators, two maintenance/serving layers build
//! on the same decomposition core and extend the selection matrix for
//! *churning* graphs:
//!
//! | engine | layer | concurrency | when to use |
//! |--------|-------|-------------|-------------|
//! | `dkcore::stream::StreamCore` | batched streaming repair | single-threaded writer | re-converge after each mutation batch without rescanning the graph (`BENCH_PR3.json`) |
//! | `dkcore_serve::CoreService` | epoch-snapshot query service | one writer + lock-free readers | answer coreness / k-core / histogram / top-k queries concurrently *while* the graph churns — readers pin immutable epochs, the writer publishes one per batch (`dkcore serve`, `BENCH_PR4.json`) |
//!
//! Pick a simulator when the object of study is the *protocol* (rounds,
//! messages, convergence); pick the serving stack when the object is the
//! *answers* and the graph never stops changing.
//!
//! # Example
//!
//! ```
//! use dkcore_sim::{NodeSim, NodeSimConfig, SimMode};
//! use dkcore_graph::generators::worst_case;
//!
//! // The paper's Figure 3 worst-case graph needs exactly N - 1 = 11
//! // synchronous rounds (counting, as the paper does, the final round in
//! // which the last updates arrive without further effect).
//! let g = worst_case(12);
//! let mut sim = NodeSim::new(&g, NodeSimConfig::synchronous());
//! let result = sim.run();
//! assert!(result.converged);
//! assert_eq!(result.rounds_executed, 11);
//! assert!(result.final_estimates.iter().all(|&c| c == 2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod active_set;
mod active_set_host;
mod active_set_host_flat;
mod async_engine;
mod host_engine;
mod node_engine;
mod observer;
mod report;

pub mod experiment;

pub use active_set::{ActiveSetConfig, ActiveSetEngine, ActiveStepReport};
pub use active_set_host::{ActiveSetHostConfig, ActiveSetHostEngine, HostStepReport};
pub use async_engine::{AsyncRunResult, AsyncSim, AsyncSimConfig};
pub use host_engine::{HostSim, HostSimConfig};
pub use node_engine::{NodeSim, NodeSimConfig};
pub use observer::{CoreCompletionObserver, ErrorEvolutionObserver, Observer, ProgressObserver};
pub use report::{RunResult, StepReport};

/// Execution model of a simulation (see the [crate docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimMode {
    /// Lock-step rounds; messages cross exactly one round boundary. The
    /// model under which the paper's §4 bounds are proven.
    Synchronous,
    /// PeerSim-style cycles: random per-cycle processing order, immediate
    /// message visibility within the cycle. The model of the paper's §5
    /// experiments.
    RandomOrder {
        /// Seed for the per-cycle permutation; vary it across repetitions.
        seed: u64,
    },
}
