//! The fully flat implementation behind
//! [`ActiveSetHostEngine`](crate::ActiveSetHostEngine) for the default
//! Worklist emulation mode — the host-layer analog of the flat-CSR
//! one-to-one [`ActiveSetEngine`](crate::ActiveSetEngine).
//!
//! Instead of driving per-host
//! [`HostProtocol`](dkcore::one_to_many::HostProtocol) state machines
//! (boxed per-local `IncrementalIndex` histograms, per-pair slot
//! lookups), every host's slot space (`V(x) ∪ neighborV(x)`, locals
//! first) is concatenated into global arrays:
//!
//! * `est` — the **contiguous estimates arena**: exactly one entry per
//!   node, grouped by owning host and indexed by the host-offset table
//!   `arena_off`. External neighbors have no receiver-side copy at all:
//!   every staged pair carries `(destination slot, old, new)` with the
//!   `old` value tracked by the *sender* (exact, because each external
//!   slot has a single, monotone writer), so delivery feeds the
//!   histograms directly without reading or writing any per-ext state.
//! * `adj` / `rev` — CSR adjacency between a host's locals and its slots
//!   (`u32` offsets: the tables sit on the per-event hot path).
//! * `hist` — the incremental `computeIndex` suffix-count histograms
//!   ([`dkcore::IncrementalIndex`]'s `cnt` arrays), one `degree + 1`
//!   slice per local, in one arena at `adj_off[a] + a`.
//! * `border_local` / `border_slot` — per (host, neighbor host) border
//!   lists with the destination slot of every border node precomputed
//!   (built linearly: a host's ext region *is* the union of everyone
//!   else's border toward it). Flushes under **both** policies stage
//!   through these: a broadcast's applied effect at any receiver is
//!   provably the border ∩ changed subset — pairs about nodes a receiver
//!   does not know are discarded by Algorithm 3's receive — so only the
//!   message/pair *accounting* differs between Algorithm 3 and
//!   Algorithm 5, and no receiver ever resolves a node id.
//!
//! Rounds are fused (see the parent module): each shard makes one pass
//! over its worklist hosts — apply staged batches, run the drop-event
//! cascade, flush — while a host's state stays cache-hot. External-slot
//! drops run their single cascade hop inline (only induced local drops
//! round-trip through the event queue), and sparse flushes gallop
//! through the border lists instead of merging. Message, estimate and
//! round accounting replicates [`HostSim`](crate::HostSim) bit for bit;
//! the cascade's final state is schedule-independent (estimates are
//! monotone and the histogram/`ge` invariant `ge = Σ cnt[core..]` is
//! maintained exactly under any event order), so sharding and batch
//! grouping never change observables.

use std::collections::VecDeque;

use dkcore::one_to_many::{Assignment, DisseminationPolicy, HostId};
use dkcore::INFINITY_EST;
use dkcore_graph::{Graph, NodeId};

use crate::active_set_host::{
    balance_shards, effective_threads, ActiveSetHostConfig, HostStepReport,
};
use crate::RunResult;

/// One shard's staged outgoing batches for a round: a flat arena of
/// `(destination slot, old, new)` triples plus batch windows
/// `(destination host, start, end)` bucketed by destination shard.
#[derive(Debug, Default)]
struct FlatStage {
    pairs: Vec<(u32, u32, u32)>,
    p2p: Vec<Vec<(u32, u32, u32)>>,
}

impl FlatStage {
    fn new(shards: usize) -> Self {
        FlatStage {
            pairs: Vec::new(),
            p2p: (0..shards).map(|_| Vec::new()).collect(),
        }
    }

    fn clear(&mut self) {
        self.pairs.clear();
        for bucket in &mut self.p2p {
            bucket.clear();
        }
    }

    fn is_empty(&self) -> bool {
        self.p2p.iter().all(Vec::is_empty)
    }
}

/// Read-only topology tables shared by all shards.
#[derive(Debug)]
struct Tables {
    /// Host-offset table into the estimates arena: host `h`'s locals are
    /// arena indices `arena_off[h]..arena_off[h + 1]`.
    arena_off: Vec<usize>,
    /// Host `h`'s slot region is `slot_off[h]..slot_off[h + 1]` (locals
    /// first, then external neighbors; both runs sorted by node id).
    slot_off: Vec<usize>,
    /// Node id of every slot (the local prefixes double as the arena →
    /// node map for snapshots).
    slot_node: Vec<u32>,
    /// CSR offsets (arena-indexed) into `adj`; `adj_off[a] + a` is also
    /// the histogram base of arena index `a`.
    adj_off: Vec<u32>,
    /// Arc targets: global slots (within the owner's region).
    adj: Vec<u32>,
    /// CSR offsets (slot-indexed) into `rev`.
    rev_off: Vec<u32>,
    /// Reverse arcs: arena indices of the same-host locals adjacent to a
    /// slot.
    rev: Vec<u32>,
    /// CSR offsets (host-indexed) into `nbr_host` and the border CSR.
    nbr_off: Vec<usize>,
    /// Neighbor hosts (`neighborH`), sorted, per host.
    nbr_host: Vec<u32>,
    /// CSR offsets per `nbr_host` entry into the border arrays.
    border_off: Vec<usize>,
    /// Border nodes as host-relative local indices (sorted per entry).
    border_local: Vec<u32>,
    /// The same border node's address in the destination host: either
    /// its slot, or — when exactly one destination local is adjacent to
    /// it (the common case) — that local's arena index tagged with
    /// [`SINGLE_LOCAL`], letting delivery skip the `rev` indirection.
    border_slot: Vec<u32>,
    /// Shard owning each host.
    shard_of_host: Vec<u32>,
}

impl Tables {
    #[inline]
    fn nlocal(&self, h: usize) -> usize {
        self.arena_off[h + 1] - self.arena_off[h]
    }

    /// Slot of arena index `a`, a local of host `h`.
    #[inline]
    fn slot_of_arena(&self, h: usize, a: usize) -> usize {
        self.slot_off[h] + (a - self.arena_off[h])
    }

    /// Degree of the node at arena index `a`.
    #[inline]
    fn degree(&self, a: usize) -> u32 {
        self.adj_off[a + 1] - self.adj_off[a]
    }

    /// Histogram base of arena index `a` (one `degree + 1` slice per
    /// local, packed in arena order).
    #[inline]
    fn hist_base(&self, a: usize) -> usize {
        self.adj_off[a] as usize + a
    }
}

/// Tag bit in a staged pair's address: the low 31 bits are the arena
/// index of the destination's single adjacent local, not a slot.
const SINGLE_LOCAL: u32 = 1 << 31;

/// The suffix-count walk of `IncrementalIndex::walk_down` over one
/// histogram slice: finds the largest `t < core` with `running(t) ≥ t`.
/// Precondition: `core > 0` and `ge < core`.
#[inline]
fn walk_down(hist: &[u32], base: usize, core: u32, ge: u32) -> (u32, u32) {
    let mut t = core - 1;
    let mut running = ge;
    loop {
        if t == 0 {
            break;
        }
        running += hist[base + t as usize];
        if running >= t {
            break;
        }
        t -= 1;
    }
    (t, running)
}

/// The flat Worklist-mode engine; the public API mirrors the wrapper's.
/// See the [module docs](self).
#[derive(Debug)]
pub(crate) struct FlatEngine {
    t: Tables,
    /// The contiguous estimates arena: each node's current `core`,
    /// grouped by owning host (see [`Tables::arena_off`]).
    est: Vec<u32>,
    /// Histogram arena (see [`Tables::hist_base`]).
    hist: Vec<u32>,
    /// `ge[a]`: neighbors of local `a` with clamped estimate ≥ its core —
    /// `IncrementalIndex`'s `ge_core`.
    ge: Vec<u32>,
    /// Changed-since-flush flag per local (arena-indexed).
    changed: Vec<bool>,
    /// Last value flushed for each local (arena-indexed; `+∞` before the
    /// first flush) — the `old` side of every staged pair, replacing any
    /// receiver-side external-estimate storage.
    last_sent: Vec<u32>,
    /// `⟨S⟩` messages sent per host.
    msgs_sent: Vec<u64>,
    /// `(node, estimate)` pairs sent per host.
    pairs_sent: Vec<u64>,

    policy: DisseminationPolicy,
    shard_bounds: Vec<usize>,
    stage_front: Vec<FlatStage>,
    stage_back: Vec<FlatStage>,
    /// Per-shard, per-local-host inbound batch lists `(cell, start, end)`.
    inboxes: Vec<Vec<Vec<(u32, u32, u32)>>>,
    flush_lists: Vec<Vec<u32>>,
    queued: Vec<bool>,
    /// Per-shard drop-event FIFO (reused, allocation-free once warm).
    works: Vec<VecDeque<(u32, u32, u32)>>,
    /// Per-shard changed-local scratch (host-relative indices).
    scratches: Vec<Vec<u32>>,

    node_count: usize,
    round: u32,
    max_rounds: u32,
    execution_time: u32,
    total_messages: u64,
    started: bool,
}

impl FlatEngine {
    pub(crate) fn new(g: &Graph, config: &ActiveSetHostConfig) -> Self {
        let assignment = Assignment::new(g, config.hosts, &config.assignment);
        let h_count = assignment.host_count();
        let n = g.node_count();

        // Arena layout + node → arena inverse.
        let mut arena_off = Vec::with_capacity(h_count + 1);
        arena_off.push(0usize);
        for h in assignment.hosts() {
            arena_off.push(arena_off.last().unwrap() + assignment.nodes_of(h).len());
        }
        let mut arena_of_node = vec![0u32; n];
        for h in assignment.hosts() {
            for (i, &u) in assignment.nodes_of(h).iter().enumerate() {
                arena_of_node[u.index()] = (arena_off[h.index()] + i) as u32;
            }
        }

        // Slot regions: locals, then sorted/deduped external neighbors.
        let mut slot_off = Vec::with_capacity(h_count + 1);
        slot_off.push(0usize);
        let mut slot_node: Vec<u32> = Vec::new();
        let mut ext_scratch: Vec<u32> = Vec::new();
        for h in assignment.hosts() {
            for &u in assignment.nodes_of(h) {
                slot_node.push(u.0);
            }
            ext_scratch.clear();
            for &u in assignment.nodes_of(h) {
                for &v in g.neighbors(u) {
                    if assignment.host_of(v) != h {
                        ext_scratch.push(v.0);
                    }
                }
            }
            ext_scratch.sort_unstable();
            ext_scratch.dedup();
            slot_node.extend_from_slice(&ext_scratch);
            slot_off.push(slot_node.len());
        }
        let slot_count = slot_node.len();

        // Adjacency (arena → slots) and its reverse (slot → arenas).
        let mut adj_off = Vec::with_capacity(n + 1);
        adj_off.push(0u32);
        let mut adj: Vec<u32> = Vec::with_capacity(g.arc_count());
        for h in 0..h_count {
            let lo = slot_off[h];
            let mid = lo + (arena_off[h + 1] - arena_off[h]);
            let ext = &slot_node[mid..slot_off[h + 1]];
            for &u in assignment.nodes_of(HostId(h as u32)) {
                for &v in g.neighbors(u) {
                    let s = if assignment.host_of(v).index() == h {
                        lo + (arena_of_node[v.index()] as usize - arena_off[h])
                    } else {
                        mid + ext.binary_search(&v.0).expect("ext neighbor present")
                    };
                    adj.push(s as u32);
                }
                adj_off.push(adj.len() as u32);
            }
        }
        let mut rev_off = vec![0u32; slot_count + 1];
        for &s in &adj {
            rev_off[s as usize + 1] += 1;
        }
        for i in 0..slot_count {
            rev_off[i + 1] += rev_off[i];
        }
        let mut rev = vec![0u32; adj.len()];
        let mut cursor = rev_off.clone();
        for a in 0..n {
            for &s in &adj[adj_off[a] as usize..adj_off[a + 1] as usize] {
                rev[cursor[s as usize] as usize] = a as u32;
                cursor[s as usize] += 1;
            }
        }

        // Neighbor hosts per host: the owners of the ext slots, sorted.
        let mut nbr_off = Vec::with_capacity(h_count + 1);
        nbr_off.push(0usize);
        let mut nbr_host: Vec<u32> = Vec::new();
        for h in 0..h_count {
            let mid = slot_off[h] + (arena_off[h + 1] - arena_off[h]);
            let start = nbr_host.len();
            for &e in &slot_node[mid..slot_off[h + 1]] {
                nbr_host.push(assignment.host_of(NodeId(e)).0);
            }
            nbr_host[start..].sort_unstable();
            // Dedup within this host's range only (Vec::dedup would merge
            // across the previous host's boundary).
            let mut w = start;
            for r in start..nbr_host.len() {
                if w == start || nbr_host[w - 1] != nbr_host[r] {
                    nbr_host[w] = nbr_host[r];
                    w += 1;
                }
            }
            nbr_host.truncate(w);
            nbr_off.push(nbr_host.len());
        }

        // Border CSR with destination slots, built linearly: host y's ext
        // region is exactly the union of every other host's border toward
        // y, so one ascending pass per region fills each (x → y) entry in
        // sorted order with the sender-relative local index and the
        // receiver slot. (Neighborhood is symmetric in an undirected
        // graph, so y is always in x's neighbor list.)
        let entry_of = |x: usize, y: u32| -> usize {
            let range = &nbr_host[nbr_off[x]..nbr_off[x + 1]];
            nbr_off[x] + range.binary_search(&y).expect("symmetric neighbor")
        };
        let entries = nbr_host.len();
        let mut border_off = vec![0usize; entries + 1];
        for y in 0..h_count {
            let mid = slot_off[y] + (arena_off[y + 1] - arena_off[y]);
            for &e in &slot_node[mid..slot_off[y + 1]] {
                let x = assignment.host_of(NodeId(e)).index();
                border_off[entry_of(x, y as u32) + 1] += 1;
            }
        }
        for i in 0..entries {
            border_off[i + 1] += border_off[i];
        }
        let mut border_local = vec![0u32; *border_off.last().unwrap()];
        let mut border_slot = vec![0u32; border_local.len()];
        let mut bcursor = border_off.clone();
        for y in 0..h_count {
            let mid = slot_off[y] + (arena_off[y + 1] - arena_off[y]);
            for (r, &e) in slot_node[mid..slot_off[y + 1]].iter().enumerate() {
                let x = assignment.host_of(NodeId(e)).index();
                let c = &mut bcursor[entry_of(x, y as u32)];
                border_local[*c] = arena_of_node[e as usize] - arena_off[x] as u32;
                let s = mid + r;
                border_slot[*c] = if rev_off[s + 1] - rev_off[s] == 1 {
                    SINGLE_LOCAL | rev[rev_off[s] as usize]
                } else {
                    s as u32
                };
                *c += 1;
            }
        }

        // Shards, weighted by arcs + locals (the histogram layout prefix).
        let hist_starts: Vec<usize> = (0..=h_count)
            .map(|h| adj_off[arena_off[h]] as usize + arena_off[h])
            .collect();
        let shards = effective_threads(config.threads, g.arc_count(), h_count);
        let shard_bounds = balance_shards(&hist_starts, shards);
        let mut shard_of_host = vec![0u32; h_count];
        for (s, w) in shard_bounds.windows(2).enumerate() {
            for owner in &mut shard_of_host[w[0]..w[1]] {
                *owner = s as u32;
            }
        }

        let t = Tables {
            arena_off,
            slot_off,
            slot_node,
            adj_off,
            adj,
            rev_off,
            rev,
            nbr_off,
            nbr_host,
            border_off,
            border_local,
            border_slot,
            shard_of_host,
        };

        // Algorithm 3 initialization: locals start at their degree,
        // externals (virtually) at +∞; histograms are built from those
        // values.
        let mut est = vec![0u32; n];
        for (a, e) in est.iter_mut().enumerate() {
            *e = t.degree(a);
        }
        let mut hist = vec![0u32; t.adj.len() + n];
        let mut ge = vec![0u32; n];
        for h in 0..h_count {
            let nlocal = t.nlocal(h);
            let slot_lo = t.slot_off[h];
            // `a` also addresses the degree/histogram tables, so an
            // iterator over `ge` alone would not simplify this loop.
            #[allow(clippy::needless_range_loop)]
            for a in t.arena_off[h]..t.arena_off[h + 1] {
                let cap = t.degree(a);
                let base = t.hist_base(a);
                for &s in &t.adj[t.adj_off[a] as usize..t.adj_off[a + 1] as usize] {
                    // Local neighbor: its degree; external: +∞ (clamped).
                    let v = if (s as usize) < slot_lo + nlocal {
                        let na = t.arena_off[h] + (s as usize - slot_lo);
                        t.degree(na).min(cap)
                    } else {
                        cap
                    };
                    hist[base + v as usize] += 1;
                }
                ge[a] = hist[base + cap as usize];
            }
        }

        let mut this = FlatEngine {
            est,
            hist,
            ge,
            changed: vec![false; n],
            last_sent: vec![INFINITY_EST; n],
            msgs_sent: vec![0; h_count],
            pairs_sent: vec![0; h_count],
            policy: config.protocol.policy,
            stage_front: (0..shards).map(|_| FlatStage::new(shards)).collect(),
            stage_back: (0..shards).map(|_| FlatStage::new(shards)).collect(),
            inboxes: shard_bounds
                .windows(2)
                .map(|w| vec![Vec::new(); w[1] - w[0]])
                .collect(),
            flush_lists: vec![Vec::new(); shards],
            queued: vec![false; h_count],
            works: (0..shards).map(|_| VecDeque::new()).collect(),
            scratches: vec![Vec::new(); shards],
            shard_bounds,
            t,
            node_count: n,
            round: 0,
            max_rounds: config.effective_max_rounds(n),
            execution_time: 0,
            total_messages: 0,
            started: false,
        };
        this.init_improve();
        this
    }

    /// The constructor's `improveEstimate` (the tail of Algorithm 3's
    /// initialization): seed a drop event for every local whose histogram
    /// justifies less than its degree, then cascade — host by host,
    /// through the same shard views the rounds use.
    fn init_improve(&mut self) {
        let mut views = carve(
            &self.t,
            &self.shard_bounds,
            self.policy,
            &mut self.est,
            &mut self.hist,
            &mut self.ge,
            &mut self.changed,
            &mut self.last_sent,
            &mut self.msgs_sent,
            &mut self.pairs_sent,
            &mut self.queued,
            &mut self.flush_lists,
            &mut self.inboxes,
            &mut self.works,
            &mut self.scratches,
        );
        for view in &mut views {
            for h in view.lo..view.hi {
                view.init_host(h);
            }
        }
    }

    pub(crate) fn host_count(&self) -> usize {
        self.msgs_sent.len()
    }

    pub(crate) fn round(&self) -> u32 {
        self.round
    }

    pub(crate) fn execution_time(&self) -> u32 {
        self.execution_time
    }

    pub(crate) fn estimates_sent(&self) -> u64 {
        self.pairs_sent.iter().sum()
    }

    pub(crate) fn overhead_per_node(&self) -> f64 {
        if self.node_count == 0 {
            0.0
        } else {
            self.estimates_sent() as f64 / self.node_count as f64
        }
    }

    pub(crate) fn estimates(&self) -> Vec<u32> {
        let mut out = vec![0u32; self.node_count];
        for h in 0..self.host_count() {
            let slot_lo = self.t.slot_off[h];
            let arena_lo = self.t.arena_off[h];
            for i in 0..self.t.nlocal(h) {
                out[self.t.slot_node[slot_lo + i] as usize] = self.est[arena_lo + i];
            }
        }
        out
    }

    pub(crate) fn is_quiescent(&self) -> bool {
        self.stage_front.iter().all(FlatStage::is_empty) && !self.changed.iter().any(|&c| c)
    }

    #[cfg(test)]
    pub(crate) fn shard_bounds(&self) -> &[usize] {
        &self.shard_bounds
    }

    pub(crate) fn step(&mut self) -> HostStepReport {
        self.round += 1;
        let first = !self.started;
        self.started = true;
        let shards = self.shard_bounds.len() - 1;

        let (messages, active_hosts) = {
            let mut views = carve(
                &self.t,
                &self.shard_bounds,
                self.policy,
                &mut self.est,
                &mut self.hist,
                &mut self.ge,
                &mut self.changed,
                &mut self.last_sent,
                &mut self.msgs_sent,
                &mut self.pairs_sent,
                &mut self.queued,
                &mut self.flush_lists,
                &mut self.inboxes,
                &mut self.works,
                &mut self.scratches,
            );
            if shards == 1 {
                let view = &mut views[0];
                if first {
                    view.initial(&mut self.stage_back[0])
                } else {
                    view.round(&self.stage_front, &mut self.stage_back[0], 0)
                }
            } else {
                let stage_front = &self.stage_front;
                std::thread::scope(|scope| {
                    let handles: Vec<_> = views
                        .iter_mut()
                        .zip(self.stage_back.iter_mut())
                        .enumerate()
                        .map(|(s, (view, back_row))| {
                            scope.spawn(move || {
                                if first {
                                    view.initial(back_row)
                                } else {
                                    view.round(stage_front, back_row, s)
                                }
                            })
                        })
                        .collect();
                    let mut messages = 0u64;
                    let mut active = 0u64;
                    for h in handles {
                        let (m, a) = h.join().expect("shard worker panicked");
                        messages += m;
                        active += a;
                    }
                    (messages, active)
                })
            }
        };
        std::mem::swap(&mut self.stage_front, &mut self.stage_back);

        if messages > 0 {
            self.execution_time += 1;
        }
        self.total_messages += messages;
        HostStepReport {
            round: self.round,
            messages,
            active_hosts,
        }
    }

    pub(crate) fn run(&mut self) -> RunResult {
        loop {
            let report = self.step();
            if report.active_hosts == 0 || self.round >= self.max_rounds {
                break;
            }
        }
        RunResult {
            execution_time: self.execution_time,
            rounds_executed: self.round,
            total_messages: self.total_messages,
            messages_per_sender: self.msgs_sent.clone(),
            final_estimates: self.estimates(),
            converged: self.is_quiescent(),
        }
    }
}

/// Mutable view of one shard's disjoint host range `[lo, hi)`; the
/// per-local / per-host arrays are rebased to the range start, the
/// topology tables stay global and read-only.
struct FlatShard<'a> {
    lo: usize,
    hi: usize,
    arena_base: usize,
    hist_base: usize,
    policy: DisseminationPolicy,
    est: &'a mut [u32],
    hist: &'a mut [u32],
    ge: &'a mut [u32],
    changed: &'a mut [bool],
    last_sent: &'a mut [u32],
    msgs: &'a mut [u64],
    pairs_sent: &'a mut [u64],
    queued: &'a mut [bool],
    list: &'a mut Vec<u32>,
    inbox: &'a mut [Vec<(u32, u32, u32)>],
    work: &'a mut VecDeque<(u32, u32, u32)>,
    scratch: &'a mut Vec<u32>,
    t: &'a Tables,
}

/// Carves the engine state into disjoint mutable shard views.
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
fn carve<'a>(
    t: &'a Tables,
    bounds: &[usize],
    policy: DisseminationPolicy,
    mut est: &'a mut [u32],
    mut hist: &'a mut [u32],
    mut ge: &'a mut [u32],
    mut changed: &'a mut [bool],
    mut last_sent: &'a mut [u32],
    mut msgs: &'a mut [u64],
    mut pairs_sent: &'a mut [u64],
    mut queued: &'a mut [bool],
    flush_lists: &'a mut [Vec<u32>],
    inboxes: &'a mut [Vec<Vec<(u32, u32, u32)>>],
    works: &'a mut [VecDeque<(u32, u32, u32)>],
    scratches: &'a mut [Vec<u32>],
) -> Vec<FlatShard<'a>> {
    let mut views = Vec::with_capacity(bounds.len() - 1);
    let mut lists = flush_lists.iter_mut();
    let mut inbox_rows = inboxes.iter_mut();
    let mut work_rows = works.iter_mut();
    let mut scratch_rows = scratches.iter_mut();
    for w in bounds.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let hosts = hi - lo;
        let arenas = t.arena_off[hi] - t.arena_off[lo];
        let hist_len = t.hist_base(t.arena_off[hi]) - t.hist_base(t.arena_off[lo]);
        let (e, e_rest) = est.split_at_mut(arenas);
        let (hh, hh_rest) = hist.split_at_mut(hist_len);
        let (g_, g_rest) = ge.split_at_mut(arenas);
        let (c, c_rest) = changed.split_at_mut(arenas);
        let (l, l_rest) = last_sent.split_at_mut(arenas);
        let (m, m_rest) = msgs.split_at_mut(hosts);
        let (p, p_rest) = pairs_sent.split_at_mut(hosts);
        let (q, q_rest) = queued.split_at_mut(hosts);
        views.push(FlatShard {
            lo,
            hi,
            arena_base: t.arena_off[lo],
            hist_base: t.hist_base(t.arena_off[lo]),
            policy,
            est: e,
            hist: hh,
            ge: g_,
            changed: c,
            last_sent: l,
            msgs: m,
            pairs_sent: p,
            queued: q,
            list: lists.next().expect("one flush list per shard"),
            inbox: inbox_rows.next().expect("one inbox row per shard"),
            work: work_rows.next().expect("one work queue per shard"),
            scratch: scratch_rows.next().expect("one scratch per shard"),
            t,
        });
        est = e_rest;
        hist = hh_rest;
        ge = g_rest;
        changed = c_rest;
        last_sent = l_rest;
        msgs = m_rest;
        pairs_sent = p_rest;
        queued = q_rest;
    }
    views
}

impl FlatShard<'_> {
    /// Feeds one neighbor-estimate drop `old → new` into local `a`'s
    /// histogram — the inlined `IncrementalIndex::update`. If `a`'s own
    /// estimate drops in response, the event is queued for further hops.
    #[inline]
    fn touch_local(&mut self, h: usize, a: usize, old: u32, new: u32) {
        let cap = self.t.degree(a);
        let o = old.min(cap);
        let nn = new.min(cap);
        if o == nn {
            return;
        }
        let hb = self.t.hist_base(a) - self.hist_base;
        self.hist[hb + o as usize] -= 1;
        self.hist[hb + nn as usize] += 1;
        let ai = a - self.arena_base;
        let core = self.est[ai];
        if core == 0 || o < core || nn >= core {
            return;
        }
        let g = self.ge[ai] - 1;
        if g >= core {
            self.ge[ai] = g;
            return;
        }
        let (tt, running) = walk_down(self.hist, hb, core, g);
        self.est[ai] = tt;
        self.ge[ai] = running;
        self.changed[ai] = true;
        self.work
            .push_back((self.t.slot_of_arena(h, a) as u32, core, tt));
    }

    /// One cascade hop: the estimate of slot `s` (host `h`) dropped
    /// `old → new`; feed the histograms of the adjacent locals.
    #[inline]
    fn hop(&mut self, h: usize, s: usize, old: u32, new: u32) {
        for ri in self.t.rev_off[s] as usize..self.t.rev_off[s + 1] as usize {
            let a = self.t.rev[ri] as usize;
            self.touch_local(h, a, old, new);
        }
    }

    /// Drains the drop-event queue (local-slot events; delivered external
    /// drops hop inline at apply time) to the internal fixpoint —
    /// Algorithm 4's `improveEstimate` as a worklist.
    fn cascade(&mut self, h: usize) {
        while let Some((s, old, new)) = self.work.pop_front() {
            self.hop(h, s as usize, old, new);
        }
    }

    /// Seeds and cascades the constructor's `improveEstimate` for host
    /// `h` (histograms must hold the pristine initial estimates).
    fn init_host(&mut self, h: usize) {
        for a in self.t.arena_off[h]..self.t.arena_off[h + 1] {
            let cap = self.t.degree(a);
            let ai = a - self.arena_base;
            if cap > 0 && self.ge[ai] < cap {
                let hb = self.t.hist_base(a) - self.hist_base;
                let (tt, running) = walk_down(self.hist, hb, cap, self.ge[ai]);
                self.est[ai] = tt;
                self.ge[ai] = running;
                self.changed[ai] = true;
                self.work
                    .push_back((self.t.slot_of_arena(h, a) as u32, cap, tt));
            }
        }
        self.cascade(h);
    }

    /// First-round flush: every host announces its initial estimates
    /// (the end of Algorithm 3's initialization). Returns
    /// `(messages, active hosts)`.
    fn initial(&mut self, back_row: &mut FlatStage) -> (u64, u64) {
        back_row.clear();
        let mut messages = 0u64;
        let mut active = 0u64;
        for h in self.lo..self.hi {
            // All locals are announced: stage the full border lists.
            let arena_lo = self.t.arena_off[h];
            let nlocal = self.t.nlocal(h);
            let d = h - self.lo;
            let mut m = 0u64;
            let has_neighbors = self.t.nbr_off[h + 1] > self.t.nbr_off[h];
            if !(self.policy == DisseminationPolicy::Broadcast && (nlocal == 0 || !has_neighbors)) {
                for e in self.t.nbr_off[h]..self.t.nbr_off[h + 1] {
                    let (b0, b1) = (self.t.border_off[e], self.t.border_off[e + 1]);
                    if b0 == b1 {
                        continue;
                    }
                    let start = back_row.pairs.len() as u32;
                    for b in b0..b1 {
                        let i = self.t.border_local[b] as usize;
                        let ai = arena_lo + i - self.arena_base;
                        back_row.pairs.push((
                            self.t.border_slot[b],
                            self.last_sent[ai],
                            self.est[ai],
                        ));
                    }
                    let end = back_row.pairs.len() as u32;
                    let dest = self.t.nbr_host[e];
                    back_row.p2p[self.t.shard_of_host[dest as usize] as usize]
                        .push((dest, start, end));
                    if self.policy == DisseminationPolicy::PointToPoint {
                        self.pairs_sent[d] += (b1 - b0) as u64;
                        self.msgs[d] += 1;
                        m += 1;
                    }
                }
                if self.policy == DisseminationPolicy::Broadcast {
                    // Algorithm 3: one message carrying every local.
                    self.pairs_sent[d] += nlocal as u64;
                    self.msgs[d] += 1;
                    m = 1;
                }
            }
            // Mark everything announced (+∞ → value for border locals).
            for ai in arena_lo..arena_lo + nlocal {
                self.last_sent[ai - self.arena_base] = self.est[ai - self.arena_base];
                self.changed[ai - self.arena_base] = false;
            }
            messages += m;
            active += u64::from(m > 0);
        }
        (messages, active)
    }

    /// One fused round for this shard: group last round's batches by
    /// destination host, then one pass over the worklist hosts — apply
    /// each host's inbound batches, cascade, and flush while its state is
    /// cache-hot. Returns `(messages, active hosts)`.
    fn round(
        &mut self,
        stage_front: &[FlatStage],
        back_row: &mut FlatStage,
        my_shard: usize,
    ) -> (u64, u64) {
        back_row.clear();

        for (ci, cell) in stage_front.iter().enumerate() {
            for &(dest, start, end) in &cell.p2p[my_shard] {
                let d = dest as usize - self.lo;
                if !self.queued[d] {
                    self.queued[d] = true;
                    self.list.push(dest);
                }
                self.inbox[d].push((ci as u32, start, end));
            }
        }

        let mut messages = 0u64;
        let mut active = 0u64;
        let list = std::mem::take(self.list);
        for &hh in &list {
            let h = hh as usize;
            let d = h - self.lo;
            self.queued[d] = false;
            for bi in 0..self.inbox[d].len() {
                let (ci, start, end) = self.inbox[d][bi];
                let cell = &stage_front[ci as usize];
                for &(addr, old, new) in &cell.pairs[start as usize..end as usize] {
                    if addr & SINGLE_LOCAL != 0 {
                        // Single adjacent local, resolved at build time.
                        self.touch_local(h, (addr & !SINGLE_LOCAL) as usize, old, new);
                    } else {
                        self.hop(h, addr as usize, old, new);
                    }
                }
            }
            self.inbox[d].clear();
            self.cascade(h);
            let m = self.flush_host(h, back_row);
            messages += m;
            // Worklist mode: active iff the host sent something.
            active += u64::from(m > 0);
        }
        drop(list);
        (messages, active)
    }

    /// The periodic block of Algorithms 3/5 for one host: collect its
    /// changed locals, clear the flags, and stage the outgoing messages.
    fn flush_host(&mut self, h: usize, back_row: &mut FlatStage) -> u64 {
        let nlocal = self.t.nlocal(h);
        let arena_lo = self.t.arena_off[h];
        let d = h - self.lo;
        self.scratch.clear();
        for i in 0..nlocal {
            let ai = arena_lo + i - self.arena_base;
            if self.changed[ai] {
                self.changed[ai] = false;
                self.scratch.push(i as u32);
            }
        }
        if self.scratch.is_empty() {
            return 0;
        }
        let mut messages = 0u64;
        for e in self.t.nbr_off[h]..self.t.nbr_off[h + 1] {
            let border = &self.t.border_local[self.t.border_off[e]..self.t.border_off[e + 1]];
            let slots = &self.t.border_slot[self.t.border_off[e]..self.t.border_off[e + 1]];
            let start = back_row.pairs.len() as u32;
            if self.scratch.len() * 16 < border.len() {
                // Sparse flush: gallop — binary-search each changed local
                // in the border list.
                let mut from = 0usize;
                for &i in self.scratch.iter() {
                    match border[from..].binary_search(&i) {
                        Ok(p) => {
                            let bi = from + p;
                            let ai = arena_lo + i as usize - self.arena_base;
                            back_row
                                .pairs
                                .push((slots[bi], self.last_sent[ai], self.est[ai]));
                            from = bi + 1;
                        }
                        Err(p) => from += p,
                    }
                    if from >= border.len() {
                        break;
                    }
                }
            } else {
                // Dense flush: merge the two sorted lists.
                let (mut bi, mut ci) = (0usize, 0usize);
                while bi < border.len() && ci < self.scratch.len() {
                    match border[bi].cmp(&self.scratch[ci]) {
                        std::cmp::Ordering::Less => bi += 1,
                        std::cmp::Ordering::Greater => ci += 1,
                        std::cmp::Ordering::Equal => {
                            let ai = arena_lo + border[bi] as usize - self.arena_base;
                            back_row
                                .pairs
                                .push((slots[bi], self.last_sent[ai], self.est[ai]));
                            bi += 1;
                            ci += 1;
                        }
                    }
                }
            }
            let end = back_row.pairs.len() as u32;
            if end == start {
                continue;
            }
            let dest = self.t.nbr_host[e];
            back_row.p2p[self.t.shard_of_host[dest as usize] as usize].push((dest, start, end));
            if self.policy == DisseminationPolicy::PointToPoint {
                self.pairs_sent[d] += (end - start) as u64;
                self.msgs[d] += 1;
                messages += 1;
            }
        }
        if self.policy == DisseminationPolicy::Broadcast {
            // Algorithm 3: one broadcast message per flush, carrying
            // every changed local — sent even when no neighbor applies
            // anything (the medium hears it regardless).
            self.pairs_sent[d] += self.scratch.len() as u64;
            self.msgs[d] += 1;
            messages = 1;
        }
        // The flushed values are now what every tracking host holds.
        for &i in self.scratch.iter() {
            let ai = arena_lo + i as usize - self.arena_base;
            self.last_sent[ai] = self.est[ai];
        }
        messages
    }
}
