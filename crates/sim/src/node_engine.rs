//! Simulation engine for the one-to-one protocol (Algorithm 1).

use dkcore::one_to_one::{NodeProtocol, OneToOneConfig};
use dkcore::termination::{CentralizedDetector, TerminationDetector};
use dkcore_graph::{Graph, NodeId};
use rand::prelude::*;
use rand::rngs::StdRng;

use crate::{Observer, RunResult, SimMode, StepReport};

/// Configuration of a [`NodeSim`].
///
/// # Example
///
/// ```
/// use dkcore_sim::{NodeSimConfig, SimMode};
///
/// let sync = NodeSimConfig::synchronous();
/// assert_eq!(sync.mode, SimMode::Synchronous);
/// let cycles = NodeSimConfig::random_order(42);
/// assert_eq!(cycles.mode, SimMode::RandomOrder { seed: 42 });
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeSimConfig {
    /// Execution model (see [`SimMode`]).
    pub mode: SimMode,
    /// Protocol configuration (send optimization, §3.1.2).
    pub protocol: OneToOneConfig,
    /// Safety cap on simulated rounds; `0` means automatic
    /// (`2·N + 100`, comfortably above the paper's `N − K + 1` bound).
    pub max_rounds: u32,
}

impl NodeSimConfig {
    /// Lock-step synchronous rounds with default protocol settings.
    pub fn synchronous() -> Self {
        NodeSimConfig {
            mode: SimMode::Synchronous,
            protocol: OneToOneConfig::default(),
            max_rounds: 0,
        }
    }

    /// PeerSim-style random-order cycles with default protocol settings.
    pub fn random_order(seed: u64) -> Self {
        NodeSimConfig {
            mode: SimMode::RandomOrder { seed },
            protocol: OneToOneConfig::default(),
            max_rounds: 0,
        }
    }

    fn effective_max_rounds(&self, n: usize) -> u32 {
        if self.max_rounds > 0 {
            self.max_rounds
        } else {
            2 * n as u32 + 100
        }
    }
}

/// Round-based simulator of the one-to-one protocol over a graph.
///
/// Use [`step`](NodeSim::step) for fine-grained control or
/// [`run`](NodeSim::run)/[`run_with`](NodeSim::run_with) for a full
/// execution. See the [crate docs](crate) for the two execution models.
#[derive(Debug)]
pub struct NodeSim {
    nodes: Vec<NodeProtocol>,
    inboxes: Vec<Vec<(NodeId, u32)>>,
    mode: SimMode,
    rng: Option<StdRng>,
    round: u32,
    max_rounds: u32,
    execution_time: u32,
    total_messages: u64,
    started: bool,
}

impl NodeSim {
    /// Builds a simulator for `g` under `config`.
    pub fn new(g: &Graph, config: NodeSimConfig) -> Self {
        let n = g.node_count();
        let rng = match config.mode {
            SimMode::Synchronous => None,
            SimMode::RandomOrder { seed } => Some(StdRng::seed_from_u64(seed)),
        };
        NodeSim {
            nodes: NodeProtocol::for_graph(g, config.protocol),
            inboxes: vec![Vec::new(); n],
            mode: config.mode,
            rng,
            round: 0,
            max_rounds: config.effective_max_rounds(n),
            execution_time: 0,
            total_messages: 0,
            started: false,
        }
    }

    /// Builds a *warm-started* simulator: node `u` begins from
    /// `initial[u]` (clamped by its degree) instead of its degree. Used to
    /// re-converge after a graph mutation with estimates from
    /// [`dkcore::dynamic::warm_start_estimates`]; every initial value must
    /// upper-bound the node's true coreness.
    ///
    /// # Panics
    ///
    /// Panics if `initial.len() != g.node_count()`.
    pub fn with_estimates(g: &Graph, config: NodeSimConfig, initial: &[u32]) -> Self {
        assert_eq!(
            initial.len(),
            g.node_count(),
            "one initial estimate per node"
        );
        let mut sim = NodeSim::new(g, config);
        sim.nodes = g
            .nodes()
            .map(|u| NodeProtocol::with_initial_estimate(g, u, initial[u.index()], config.protocol))
            .collect();
        sim
    }

    /// Number of simulated nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// 1-based index of the last executed round (0 before the first).
    pub fn round(&self) -> u32 {
        self.round
    }

    /// The paper's execution-time counter so far: rounds in which at least
    /// one message was sent.
    pub fn execution_time(&self) -> u32 {
        self.execution_time
    }

    /// Current estimate of every node, indexed by node id.
    pub fn estimates(&self) -> Vec<u32> {
        self.nodes.iter().map(NodeProtocol::core).collect()
    }

    /// Whether no messages are in flight and no node has unflushed changes.
    pub fn is_quiescent(&self) -> bool {
        self.inboxes.iter().all(Vec::is_empty) && self.nodes.iter().all(|n| !n.is_changed())
    }

    /// Executes one round/cycle; returns what happened.
    pub fn step(&mut self) -> StepReport {
        self.round += 1;
        let n = self.nodes.len();
        let mut active = vec![false; n];
        let mut messages = 0u64;

        let first = !self.started;
        self.started = true;

        // Split-borrow the node and inbox arrays so the allocation-free
        // flush sinks can write straight into the recipients' inboxes
        // (no per-node `recipients` vector is ever materialized).
        let nodes = &mut self.nodes;
        let inboxes = &mut self.inboxes;

        match self.mode {
            SimMode::Synchronous => {
                // Deliver everything sent last round, then flush changes.
                // Flushed estimates go straight into inboxes: they are
                // only read at the start of the next round, so immediate
                // staging preserves the synchronous semantics.
                if first {
                    for i in 0..n {
                        let from = nodes[i].id();
                        let sent = nodes[i]
                            .initial_broadcast_with(|v, core| {
                                inboxes[v.index()].push((from, core));
                            })
                            .is_some();
                        if sent {
                            active[i] = true;
                            messages += nodes[i].degree() as u64;
                        }
                    }
                } else {
                    for i in 0..n {
                        let msgs = std::mem::take(&mut inboxes[i]);
                        for (from, k) in msgs {
                            nodes[i].receive(from, k);
                        }
                    }
                    for i in 0..n {
                        let from = nodes[i].id();
                        let mut sent = 0u64;
                        nodes[i].round_flush_with(|v, core| {
                            inboxes[v.index()].push((from, core));
                            sent += 1;
                        });
                        if sent > 0 {
                            active[i] = true;
                            messages += sent;
                        }
                    }
                }
            }
            SimMode::RandomOrder { .. } => {
                // PeerSim cycle: random node order, immediate visibility.
                let rng = self.rng.as_mut().expect("random mode has rng");
                let mut order: Vec<usize> = (0..n).collect();
                order.shuffle(rng);
                for &i in &order {
                    let from = nodes[i].id();
                    if first {
                        let sent = nodes[i]
                            .initial_broadcast_with(|v, core| {
                                inboxes[v.index()].push((from, core));
                            })
                            .is_some();
                        if sent {
                            active[i] = true;
                            messages += nodes[i].degree() as u64;
                        }
                    }
                    let msgs = std::mem::take(&mut inboxes[i]);
                    for (from, k) in msgs {
                        nodes[i].receive(from, k);
                    }
                    let mut sent = 0u64;
                    nodes[i].round_flush_with(|v, core| {
                        inboxes[v.index()].push((from, core));
                        sent += 1;
                    });
                    if sent > 0 {
                        active[i] = true;
                        messages += sent;
                    }
                }
            }
        }

        if messages > 0 {
            self.execution_time += 1;
        }
        self.total_messages += messages;
        StepReport {
            round: self.round,
            messages,
            active,
        }
    }

    /// Runs to quiescence under the exact [`CentralizedDetector`].
    pub fn run(&mut self) -> RunResult {
        let mut detector = CentralizedDetector::new();
        self.run_with(&mut detector, &mut [])
    }

    /// Runs under an arbitrary termination detector, reporting each round
    /// to the given observers.
    ///
    /// The run ends when the detector fires or the round cap is reached;
    /// `converged` in the result reflects whether true quiescence was
    /// reached.
    pub fn run_with(
        &mut self,
        detector: &mut dyn TerminationDetector,
        observers: &mut [&mut dyn Observer],
    ) -> RunResult {
        loop {
            let report = self.step();
            let estimates = self.estimates();
            for obs in observers.iter_mut() {
                obs.on_round(report.round, &estimates, report.messages);
            }
            let stop = detector.observe_round(report.round, &report.active);
            if stop || self.round >= self.max_rounds {
                break;
            }
        }
        let result = RunResult {
            execution_time: self.execution_time,
            rounds_executed: self.round,
            total_messages: self.total_messages,
            messages_per_sender: self.nodes.iter().map(NodeProtocol::messages_sent).collect(),
            final_estimates: self.estimates(),
            converged: self.is_quiescent(),
        };
        for obs in observers.iter_mut() {
            obs.on_finish(&result);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkcore::seq::batagelj_zaversnik;
    use dkcore::termination::FixedRoundsDetector;
    use dkcore_graph::generators::{complete, gnp, path, star, worst_case};

    #[test]
    fn synchronous_converges_to_bz() {
        for seed in 0..5 {
            let g = gnp(80, 0.06, seed);
            let result = NodeSim::new(&g, NodeSimConfig::synchronous()).run();
            assert!(result.converged);
            assert_eq!(
                result.final_estimates,
                batagelj_zaversnik(&g),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn random_order_converges_to_bz() {
        for seed in 0..5 {
            let g = gnp(80, 0.06, 100 + seed);
            let result = NodeSim::new(&g, NodeSimConfig::random_order(seed)).run();
            assert!(result.converged);
            assert_eq!(
                result.final_estimates,
                batagelj_zaversnik(&g),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn worst_case_takes_exactly_n_minus_1_synchronous_rounds() {
        // §4.2: "we managed to identify a class of graphs ... with execution
        // time equal to N − 1 rounds for N ≥ 5". The paper's count includes
        // the final round in which the last updates are delivered but "have
        // no further effect" (footnote 1): that is `rounds_executed` here;
        // rounds in which messages are actually sent number N − 2.
        for n in [5, 6, 7, 8, 12, 20, 40] {
            let g = worst_case(n);
            let result = NodeSim::new(&g, NodeSimConfig::synchronous()).run();
            assert!(result.converged);
            assert_eq!(result.rounds_executed, n as u32 - 1, "N = {n}");
            assert_eq!(result.execution_time, n as u32 - 2, "N = {n}");
            assert!(result.final_estimates.iter().all(|&c| c == 2));
        }
    }

    #[test]
    fn linear_chain_takes_ceil_n_over_2_rounds() {
        // §4.2: "a linear chain of size N requires ⌈N/2⌉ rounds to
        // converge". The §4 analysis applies "no further optimizations",
        // so the send optimization is disabled here (it suppresses the
        // final, ineffective messages and shaves a round off).
        for n in [4usize, 5, 10, 11, 30, 31] {
            let g = path(n);
            let mut config = NodeSimConfig::synchronous();
            config.protocol.send_optimization = false;
            let result = NodeSim::new(&g, config).run();
            assert_eq!(result.execution_time, n.div_ceil(2) as u32, "N = {n}");
        }
    }

    #[test]
    fn complete_graph_single_active_round() {
        let g = complete(8);
        let result = NodeSim::new(&g, NodeSimConfig::synchronous()).run();
        assert_eq!(result.execution_time, 1);
        assert_eq!(result.final_estimates, vec![7; 8]);
    }

    #[test]
    fn theorem4_bound_holds() {
        // T <= 1 + sum(d(u) - k(u)).
        for seed in 0..5 {
            let g = gnp(60, 0.08, 200 + seed);
            let truth = batagelj_zaversnik(&g);
            let initial_error: u64 = g
                .nodes()
                .map(|u| (g.degree(u) - truth[u.index()]) as u64)
                .sum();
            let result = NodeSim::new(&g, NodeSimConfig::synchronous()).run();
            assert!(
                result.execution_time as u64 <= 1 + initial_error,
                "seed {seed}: T = {} > 1 + {initial_error}",
                result.execution_time
            );
        }
    }

    #[test]
    fn corollary1_bound_holds() {
        // T <= N - K + 1 where K = #nodes of minimal degree.
        for seed in 0..5 {
            let g = gnp(60, 0.08, 300 + seed);
            let k = dkcore_graph::metrics::min_degree_count(&g);
            let result = NodeSim::new(&g, NodeSimConfig::synchronous()).run();
            assert!(
                result.execution_time as usize <= g.node_count() - k + 1,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn corollary2_message_bound_holds() {
        // Update messages (excluding the initial broadcasts) are bounded by
        // sum(d^2) - 2M; checked without the send optimization, as in §4.3.
        for seed in 0..5 {
            let g = gnp(50, 0.1, 400 + seed);
            let mut config = NodeSimConfig::synchronous();
            config.protocol.send_optimization = false;
            let result = NodeSim::new(&g, config).run();
            let d2: u64 = g.nodes().map(|u| (g.degree(u) as u64).pow(2)).sum();
            let bound = d2 - 2 * g.edge_count() as u64;
            let initial: u64 = 2 * g.edge_count() as u64; // one msg per arc
            assert!(
                result.total_messages - initial <= bound,
                "seed {seed}: {} update messages > bound {bound}",
                result.total_messages - initial
            );
        }
    }

    #[test]
    fn estimates_never_below_truth_during_run() {
        // Theorem 2 observed through the engine at every round.
        let g = gnp(50, 0.1, 17);
        let truth = batagelj_zaversnik(&g);
        let mut sim = NodeSim::new(&g, NodeSimConfig::random_order(3));
        loop {
            let report = sim.step();
            for (u, &est) in sim.estimates().iter().enumerate() {
                assert!(est >= truth[u]);
            }
            if report.is_quiet() && sim.is_quiescent() {
                break;
            }
        }
    }

    #[test]
    fn fixed_round_detector_stops_early() {
        let g = path(50); // needs 25 rounds
        let mut sim = NodeSim::new(&g, NodeSimConfig::synchronous());
        let mut det = FixedRoundsDetector::new(5);
        let result = sim.run_with(&mut det, &mut []);
        assert_eq!(result.rounds_executed, 5);
        assert!(!result.converged);
        // Approximate estimates: still all >= truth.
        for &e in &result.final_estimates {
            assert!(e >= 1);
        }
    }

    #[test]
    fn random_order_is_seed_deterministic() {
        let g = gnp(40, 0.1, 9);
        let r1 = NodeSim::new(&g, NodeSimConfig::random_order(5)).run();
        let r2 = NodeSim::new(&g, NodeSimConfig::random_order(5)).run();
        assert_eq!(r1, r2);
    }

    #[test]
    fn different_seeds_can_change_execution_time() {
        // The spread observed in Table 1 (t_min vs t_max) comes from the
        // processing order; with enough seeds the path graph shows it.
        let g = path(60);
        let times: Vec<u32> = (0..10)
            .map(|s| {
                NodeSim::new(&g, NodeSimConfig::random_order(s))
                    .run()
                    .execution_time
            })
            .collect();
        let min = times.iter().min().unwrap();
        let max = times.iter().max().unwrap();
        assert!(
            min < max,
            "expected order-dependent execution times, got {times:?}"
        );
    }

    #[test]
    fn isolated_and_star_graphs() {
        let g = dkcore_graph::Graph::from_edges(3, []).unwrap();
        let result = NodeSim::new(&g, NodeSimConfig::synchronous()).run();
        assert_eq!(result.execution_time, 0);
        assert_eq!(result.final_estimates, vec![0, 0, 0]);

        let g = star(10);
        let result = NodeSim::new(&g, NodeSimConfig::synchronous()).run();
        assert_eq!(result.final_estimates, vec![1; 10]);
    }

    #[test]
    fn warm_start_reconverges_after_mutation() {
        use dkcore::dynamic::{warm_start_estimates, DynamicCore};
        let g = gnp(120, 0.05, 55);
        let truth_before = batagelj_zaversnik(&g);
        // Mutate: insert the first missing edge among low ids.
        let mut dc = DynamicCore::new(&g);
        let mut inserted = None;
        'outer: for a in 0..20u32 {
            for b in (a + 1)..20 {
                if !dc.has_edge(NodeId(a), NodeId(b)) {
                    dc.insert_edge(NodeId(a), NodeId(b)).unwrap();
                    inserted = Some((NodeId(a), NodeId(b)));
                    break 'outer;
                }
            }
        }
        let new_graph = dc.to_graph();
        let est = warm_start_estimates(&truth_before, &new_graph, inserted);
        let mut warm = NodeSim::with_estimates(&new_graph, NodeSimConfig::synchronous(), &est);
        let warm_result = warm.run();
        assert_eq!(warm_result.final_estimates, batagelj_zaversnik(&new_graph));
        // Warm start converges much faster than a cold start.
        let cold = NodeSim::new(&new_graph, NodeSimConfig::synchronous()).run();
        assert!(
            warm_result.total_messages < cold.total_messages,
            "warm {} !< cold {}",
            warm_result.total_messages,
            cold.total_messages
        );
    }

    #[test]
    fn warm_start_with_exact_coreness_is_one_shot() {
        // Warm-starting from the exact coreness: the initial broadcasts
        // confirm the fixpoint and nothing changes.
        let g = gnp(80, 0.08, 3);
        let truth = batagelj_zaversnik(&g);
        let mut sim = NodeSim::with_estimates(&g, NodeSimConfig::synchronous(), &truth);
        let result = sim.run();
        assert_eq!(result.final_estimates, truth);
        assert_eq!(result.execution_time, 1, "only the initial broadcast round");
    }

    #[test]
    fn execution_time_counts_only_active_rounds() {
        let g = path(10);
        let mut sim = NodeSim::new(&g, NodeSimConfig::synchronous());
        let result = sim.run();
        // rounds_executed includes the quiet detection round.
        assert_eq!(result.rounds_executed, result.execution_time + 1);
    }
}
