//! Result types shared by the node and host engines.

/// Outcome of one simulated round/cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepReport {
    /// 1-based round index.
    pub round: u32,
    /// Point-to-point messages sent during the round (each recipient of a
    /// broadcast counts once for the one-to-one engine; each `⟨S⟩` message
    /// counts once for the host engine).
    pub messages: u64,
    /// Which hosts/nodes sent anything this round (the activity vector
    /// consumed by termination detectors).
    pub active: Vec<bool>,
}

impl StepReport {
    /// Number of active participants this round.
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Whether the round was completely silent.
    pub fn is_quiet(&self) -> bool {
        self.messages == 0
    }
}

/// Outcome of a complete simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// The paper's *execution time*: "the total number of rounds during
    /// which at least one node broadcasts its new estimate" — including
    /// the final round whose messages change nothing.
    pub execution_time: u32,
    /// Rounds actually simulated (≥ `execution_time`; includes trailing
    /// quiet rounds the termination detector needed).
    pub rounds_executed: u32,
    /// Total messages sent over the whole run.
    pub total_messages: u64,
    /// Messages sent per node (one-to-one) or per host (one-to-many),
    /// indexed by id.
    pub messages_per_sender: Vec<u64>,
    /// Final coreness estimates per node.
    pub final_estimates: Vec<u32>,
    /// Whether the run reached quiescence (as opposed to hitting the
    /// round cap or an early-stopping detector).
    pub converged: bool,
}

impl RunResult {
    /// Mean messages per sender (the paper's `m_avg` when senders are
    /// nodes).
    pub fn avg_messages_per_sender(&self) -> f64 {
        if self.messages_per_sender.is_empty() {
            0.0
        } else {
            self.messages_per_sender.iter().sum::<u64>() as f64
                / self.messages_per_sender.len() as f64
        }
    }

    /// Maximum messages from any single sender (the paper's `m_max`).
    pub fn max_messages_per_sender(&self) -> u64 {
        self.messages_per_sender.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_report_counts() {
        let s = StepReport {
            round: 3,
            messages: 0,
            active: vec![false, true, true],
        };
        assert_eq!(s.active_count(), 2);
        assert!(s.is_quiet());
    }

    #[test]
    fn run_result_message_statistics() {
        let r = RunResult {
            execution_time: 5,
            rounds_executed: 6,
            total_messages: 10,
            messages_per_sender: vec![1, 3, 6],
            final_estimates: vec![1, 1, 2],
            converged: true,
        };
        assert!((r.avg_messages_per_sender() - 10.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.max_messages_per_sender(), 6);
    }

    #[test]
    fn empty_run_result() {
        let r = RunResult {
            execution_time: 0,
            rounds_executed: 0,
            total_messages: 0,
            messages_per_sender: vec![],
            final_estimates: vec![],
            converged: true,
        };
        assert_eq!(r.avg_messages_per_sender(), 0.0);
        assert_eq!(r.max_messages_per_sender(), 0);
    }
}
