//! Simulation engine for the one-to-many protocol (Algorithms 3–5).

use dkcore::one_to_many::{
    Assignment, AssignmentPolicy, Destination, HostProtocol, OneToManyConfig, Outgoing,
};
use dkcore::termination::{CentralizedDetector, TerminationDetector};
use dkcore_graph::{Graph, NodeId};
use rand::prelude::*;
use rand::rngs::StdRng;

use crate::{Observer, RunResult, SimMode, StepReport};

/// Configuration of a [`HostSim`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostSimConfig {
    /// Execution model (see [`SimMode`]).
    pub mode: SimMode,
    /// Number of hosts `|H|`.
    pub hosts: usize,
    /// Node → host assignment policy (§3.2.2; the paper uses `Modulo`).
    pub assignment: AssignmentPolicy,
    /// Host protocol configuration (dissemination policy + emulation mode).
    pub protocol: OneToManyConfig,
    /// Safety cap on simulated rounds; `0` means automatic (`2·N + 100`).
    pub max_rounds: u32,
}

impl HostSimConfig {
    /// Synchronous rounds, `hosts` hosts, the paper's modulo assignment,
    /// default protocol settings.
    pub fn synchronous(hosts: usize) -> Self {
        HostSimConfig {
            mode: SimMode::Synchronous,
            hosts,
            assignment: AssignmentPolicy::Modulo,
            protocol: OneToManyConfig::default(),
            max_rounds: 0,
        }
    }

    /// PeerSim-style random-order cycles.
    pub fn random_order(hosts: usize, seed: u64) -> Self {
        HostSimConfig {
            mode: SimMode::RandomOrder { seed },
            ..Self::synchronous(hosts)
        }
    }

    fn effective_max_rounds(&self, n: usize) -> u32 {
        if self.max_rounds > 0 {
            self.max_rounds
        } else {
            2 * n as u32 + 100
        }
    }
}

/// Round-based simulator of the one-to-many protocol.
///
/// # Example
///
/// ```
/// use dkcore_sim::{HostSim, HostSimConfig};
/// use dkcore::seq::batagelj_zaversnik;
/// use dkcore_graph::generators::gnp;
///
/// let g = gnp(60, 0.08, 3);
/// let mut sim = HostSim::new(&g, HostSimConfig::synchronous(4));
/// let result = sim.run();
/// assert!(result.converged);
/// assert_eq!(result.final_estimates, batagelj_zaversnik(&g));
/// ```
#[derive(Debug)]
pub struct HostSim {
    hosts: Vec<HostProtocol>,
    /// Per-host queue of received pair-sets.
    inboxes: Vec<Vec<Vec<(NodeId, u32)>>>,
    node_count: usize,
    mode: SimMode,
    rng: Option<StdRng>,
    round: u32,
    max_rounds: u32,
    execution_time: u32,
    total_messages: u64,
    started: bool,
}

impl HostSim {
    /// Builds a simulator for `g` under `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.hosts == 0`.
    pub fn new(g: &Graph, config: HostSimConfig) -> Self {
        let assignment = Assignment::new(g, config.hosts, &config.assignment);
        let hosts = HostProtocol::for_assignment(g, &assignment, config.protocol);
        let rng = match config.mode {
            SimMode::Synchronous => None,
            SimMode::RandomOrder { seed } => Some(StdRng::seed_from_u64(seed)),
        };
        HostSim {
            inboxes: vec![Vec::new(); hosts.len()],
            hosts,
            node_count: g.node_count(),
            mode: config.mode,
            rng,
            round: 0,
            max_rounds: config.effective_max_rounds(g.node_count()),
            execution_time: 0,
            total_messages: 0,
            started: false,
        }
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// 1-based index of the last executed round (0 before the first).
    pub fn round(&self) -> u32 {
        self.round
    }

    /// The execution-time counter: rounds in which ≥ 1 message was sent.
    pub fn execution_time(&self) -> u32 {
        self.execution_time
    }

    /// Current estimates for all nodes, indexed by node id.
    pub fn estimates(&self) -> Vec<u32> {
        let mut est = vec![0u32; self.node_count];
        for h in &self.hosts {
            for (u, e) in h.local_estimates() {
                est[u.index()] = e;
            }
        }
        est
    }

    /// Total `(node, estimate)` pairs sent so far across all hosts — the
    /// numerator of the paper's Figure 5 overhead metric.
    pub fn estimates_sent(&self) -> u64 {
        self.hosts.iter().map(HostProtocol::estimates_sent).sum()
    }

    /// Figure 5's y-axis: estimates sent per node.
    pub fn overhead_per_node(&self) -> f64 {
        if self.node_count == 0 {
            0.0
        } else {
            self.estimates_sent() as f64 / self.node_count as f64
        }
    }

    /// Whether all inboxes are empty and no host has unflushed changes.
    pub fn is_quiescent(&self) -> bool {
        self.inboxes.iter().all(Vec::is_empty)
            && self.hosts.iter().all(|h| !h.has_pending_changes())
    }

    fn deliver(
        inboxes: &mut [Vec<Vec<(NodeId, u32)>>],
        sender: usize,
        outgoing: Vec<Outgoing>,
    ) -> u64 {
        let mut count = 0u64;
        for msg in outgoing {
            count += 1;
            match msg.dest {
                Destination::AllHosts => {
                    // Broadcast medium: one send, everyone else hears it.
                    for (h, inbox) in inboxes.iter_mut().enumerate() {
                        if h != sender {
                            inbox.push(msg.pairs.clone());
                        }
                    }
                }
                Destination::Host(y) => {
                    inboxes[y.index()].push(msg.pairs.clone());
                }
            }
        }
        count
    }

    /// Executes one round/cycle.
    pub fn step(&mut self) -> StepReport {
        self.round += 1;
        let h = self.hosts.len();
        let mut active = vec![false; h];
        let mut messages = 0u64;
        let first = !self.started;
        self.started = true;

        match self.mode {
            SimMode::Synchronous => {
                let mut all_outgoing: Vec<(usize, Vec<Outgoing>)> = Vec::new();
                if first {
                    for (i, host) in self.hosts.iter_mut().enumerate() {
                        let out = host.initial_flush();
                        if !out.is_empty() {
                            all_outgoing.push((i, out));
                        }
                        // PerRound emulation may leave internal propagation
                        // pending right after initialization.
                        if host.has_pending_changes() {
                            active[i] = true;
                        }
                    }
                } else {
                    for i in 0..h {
                        let batches = std::mem::take(&mut self.inboxes[i]);
                        for pairs in batches {
                            self.hosts[i].receive(&pairs);
                        }
                    }
                    for (i, host) in self.hosts.iter_mut().enumerate() {
                        let out = host.round_flush();
                        if !out.is_empty() {
                            all_outgoing.push((i, out));
                        }
                        // A host that generated new estimates this round —
                        // even purely internal ones (PerRound emulation) —
                        // is not quiescent yet (§3.3: quiescence means "no
                        // new estimate is generated during a round").
                        if host.has_pending_changes() {
                            active[i] = true;
                        }
                    }
                }
                for (i, out) in all_outgoing {
                    active[i] = true;
                    messages += Self::deliver(&mut self.inboxes, i, out);
                }
            }
            SimMode::RandomOrder { .. } => {
                let rng = self.rng.as_mut().expect("random mode has rng");
                let mut order: Vec<usize> = (0..h).collect();
                order.shuffle(rng);
                for &i in &order {
                    if first {
                        let out = self.hosts[i].initial_flush();
                        if !out.is_empty() {
                            active[i] = true;
                            messages += Self::deliver(&mut self.inboxes, i, out);
                        }
                    }
                    let batches = std::mem::take(&mut self.inboxes[i]);
                    for pairs in batches {
                        self.hosts[i].receive(&pairs);
                    }
                    let out = self.hosts[i].round_flush();
                    if !out.is_empty() {
                        active[i] = true;
                        messages += Self::deliver(&mut self.inboxes, i, out);
                    }
                    if self.hosts[i].has_pending_changes() {
                        active[i] = true;
                    }
                }
            }
        }

        if messages > 0 {
            self.execution_time += 1;
        }
        self.total_messages += messages;
        StepReport {
            round: self.round,
            messages,
            active,
        }
    }

    /// Runs to quiescence under the exact [`CentralizedDetector`].
    pub fn run(&mut self) -> RunResult {
        let mut detector = CentralizedDetector::new();
        self.run_with(&mut detector, &mut [])
    }

    /// Runs under an arbitrary termination detector with observers.
    pub fn run_with(
        &mut self,
        detector: &mut dyn TerminationDetector,
        observers: &mut [&mut dyn Observer],
    ) -> RunResult {
        loop {
            let report = self.step();
            let estimates = self.estimates();
            for obs in observers.iter_mut() {
                obs.on_round(report.round, &estimates, report.messages);
            }
            let stop = detector.observe_round(report.round, &report.active);
            if stop || self.round >= self.max_rounds {
                break;
            }
        }
        let result = RunResult {
            execution_time: self.execution_time,
            rounds_executed: self.round,
            total_messages: self.total_messages,
            messages_per_sender: self.hosts.iter().map(HostProtocol::messages_sent).collect(),
            final_estimates: self.estimates(),
            converged: self.is_quiescent(),
        };
        for obs in observers.iter_mut() {
            obs.on_finish(&result);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkcore::one_to_many::{DisseminationPolicy, EmulationMode};
    use dkcore::seq::batagelj_zaversnik;
    use dkcore_graph::generators::{barabasi_albert, gnp, path, worst_case};

    #[test]
    fn synchronous_converges_all_policies() {
        let g = gnp(70, 0.07, 5);
        let truth = batagelj_zaversnik(&g);
        for hosts in [1, 2, 8, 70] {
            for policy in [
                DisseminationPolicy::Broadcast,
                DisseminationPolicy::PointToPoint,
            ] {
                let mut config = HostSimConfig::synchronous(hosts);
                config.protocol.policy = policy;
                let result = HostSim::new(&g, config).run();
                assert!(result.converged);
                assert_eq!(result.final_estimates, truth, "hosts {hosts} {policy:?}");
            }
        }
    }

    #[test]
    fn random_order_converges() {
        let g = barabasi_albert(100, 2, 7);
        let truth = batagelj_zaversnik(&g);
        for seed in 0..4 {
            let result = HostSim::new(&g, HostSimConfig::random_order(8, seed)).run();
            assert!(result.converged);
            assert_eq!(result.final_estimates, truth, "seed {seed}");
        }
    }

    #[test]
    fn rounds_comparable_to_one_to_one() {
        // §5.2: "the number of rounds needed to complete the protocol was
        // equivalent to that of the one-to-one version".
        use crate::{NodeSim, NodeSimConfig};
        let g = gnp(80, 0.06, 11);
        let one_to_one = NodeSim::new(&g, NodeSimConfig::synchronous()).run();
        let mut config = HostSimConfig::synchronous(8);
        config.protocol.policy = DisseminationPolicy::PointToPoint;
        let one_to_many = HostSim::new(&g, config).run();
        // Internal emulation can only shave rounds off, never add.
        assert!(
            one_to_many.rounds_executed <= one_to_one.rounds_executed + 1,
            "{} vs {}",
            one_to_many.rounds_executed,
            one_to_one.rounds_executed
        );
    }

    #[test]
    fn broadcast_sends_one_message_per_active_host_per_round() {
        let g = gnp(50, 0.1, 3);
        let mut config = HostSimConfig::synchronous(5);
        config.protocol.policy = DisseminationPolicy::Broadcast;
        let mut sim = HostSim::new(&g, config);
        let first = sim.step();
        // Round 1: every non-empty host broadcasts exactly once.
        assert!(first.messages <= 5);
        assert_eq!(first.messages, first.active_count() as u64);
    }

    #[test]
    fn overhead_broadcast_well_below_p2p_at_many_hosts() {
        // The qualitative content of Figure 5.
        let g = barabasi_albert(200, 3, 9);
        let measure = |policy, hosts| {
            let mut config = HostSimConfig::synchronous(hosts);
            config.protocol.policy = policy;
            let mut sim = HostSim::new(&g, config);
            sim.run();
            sim.overhead_per_node()
        };
        let broadcast = measure(DisseminationPolicy::Broadcast, 64);
        let p2p = measure(DisseminationPolicy::PointToPoint, 64);
        assert!(
            broadcast < p2p,
            "broadcast {broadcast} should be cheaper than p2p {p2p} at 64 hosts"
        );
    }

    #[test]
    fn p2p_overhead_increases_with_host_count() {
        let g = barabasi_albert(200, 3, 13);
        let overhead = |hosts| {
            let mut config = HostSimConfig::synchronous(hosts);
            config.protocol.policy = DisseminationPolicy::PointToPoint;
            let mut sim = HostSim::new(&g, config);
            sim.run();
            sim.overhead_per_node()
        };
        let at2 = overhead(2);
        let at64 = overhead(64);
        assert!(at64 > at2, "{at2} -> {at64}");
    }

    #[test]
    fn worst_case_cascade_with_hosts() {
        let g = worst_case(20);
        let result = HostSim::new(&g, HostSimConfig::synchronous(4)).run();
        assert!(result.final_estimates.iter().all(|&c| c == 2));
    }

    #[test]
    fn per_round_emulation_still_converges_via_engine() {
        let g = path(30);
        let mut config = HostSimConfig::synchronous(3);
        config.assignment = AssignmentPolicy::Block;
        config.protocol.emulation = EmulationMode::PerRound;
        let result = HostSim::new(&g, config).run();
        assert!(result.converged);
        assert_eq!(result.final_estimates, vec![1; 30]);
    }

    #[test]
    fn seed_determinism() {
        let g = gnp(60, 0.08, 21);
        let r1 = HostSim::new(&g, HostSimConfig::random_order(4, 9)).run();
        let r2 = HostSim::new(&g, HostSimConfig::random_order(4, 9)).run();
        assert_eq!(r1, r2);
    }

    #[test]
    fn observers_see_host_runs_too() {
        use crate::ErrorEvolutionObserver;
        let g = gnp(40, 0.12, 2);
        let truth = batagelj_zaversnik(&g);
        let mut obs = ErrorEvolutionObserver::new(truth.clone());
        let mut det = CentralizedDetector::new();
        let mut sim = HostSim::new(&g, HostSimConfig::synchronous(4));
        let result = sim.run_with(&mut det, &mut [&mut obs]);
        assert_eq!(result.final_estimates, truth);
        let avg = obs.avg_series("avg");
        assert_eq!(avg.points().last().unwrap().1, 0.0);
        // Error is non-increasing over rounds in the synchronous engine.
        let ys: Vec<f64> = avg.points().iter().map(|&(_, y)| y).collect();
        for w in ys.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }
}
