//! Multi-repetition experiment running and aggregation.
//!
//! The paper's Table 1 reports, per dataset, the average/minimum/maximum
//! execution time and the average/maximum messages per node over 50
//! repetitions that "differ in the (random) order with which operations
//! performed at different nodes are considered". [`run_node_experiment`]
//! and [`run_host_experiment`] reproduce exactly that loop, deriving one
//! RNG seed per repetition from a base seed.

use dkcore_graph::Graph;
use dkcore_metrics::Summary;

use crate::{
    ActiveSetHostConfig, ActiveSetHostEngine, HostSim, HostSimConfig, NodeSim, NodeSimConfig,
    RunResult, SimMode,
};

/// Engine driving a host experiment (see the crate's *Engine selection*
/// docs): the legacy reference simulator, or the flat active-set fast
/// path, which is bit-identical in synchronous mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HostEngine {
    /// [`HostSim`] — both execution modes, observers, detectors.
    #[default]
    Legacy,
    /// [`ActiveSetHostEngine`] — synchronous mode only; repetition
    /// templates in `RandomOrder` mode fall back to [`HostSim`], which is
    /// the only engine implementing that schedule.
    ActiveSet,
}

/// Aggregated outcome of repeated runs of the same configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentOutcome {
    /// Execution time (rounds with ≥1 message) across repetitions:
    /// `mean()`, `min()`, `max()` give the paper's `t_avg`, `t_min`,
    /// `t_max`.
    pub execution_time: Summary,
    /// Per-run *average messages per sender* (`m_avg` column).
    pub avg_messages: Summary,
    /// Per-run *maximum messages from one sender* (`m_max` column).
    pub max_messages: Summary,
    /// Per-run total messages.
    pub total_messages: Summary,
    /// Per-run overhead numerator (host experiments only): estimates sent.
    pub estimates_sent: Summary,
    /// Whether every repetition converged.
    pub all_converged: bool,
}

impl ExperimentOutcome {
    fn new() -> Self {
        ExperimentOutcome {
            execution_time: Summary::new(),
            avg_messages: Summary::new(),
            max_messages: Summary::new(),
            total_messages: Summary::new(),
            estimates_sent: Summary::new(),
            all_converged: true,
        }
    }

    fn record(&mut self, result: &RunResult) {
        self.execution_time.record(result.execution_time as f64);
        self.avg_messages.record(result.avg_messages_per_sender());
        self.max_messages
            .record(result.max_messages_per_sender() as f64);
        self.total_messages.record(result.total_messages as f64);
        self.all_converged &= result.converged;
    }
}

/// Derives the per-repetition seed from a base seed (SplitMix64 step, so
/// neighboring repetitions get decorrelated streams).
pub fn repetition_seed(base: u64, repetition: u32) -> u64 {
    let mut z = base.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(repetition as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs the one-to-one protocol `repetitions` times in random-order mode
/// (different order per repetition) and aggregates the Table 1 metrics.
///
/// `template.mode` supplies everything except the seed, which is replaced
/// per repetition; in `Synchronous` mode repetitions are identical, so one
/// run is performed.
///
/// # Example
///
/// ```
/// use dkcore_sim::experiment::run_node_experiment;
/// use dkcore_sim::NodeSimConfig;
/// use dkcore_graph::generators::gnp;
///
/// let g = gnp(60, 0.08, 1);
/// let outcome = run_node_experiment(&g, NodeSimConfig::random_order(0), 5, 42);
/// assert_eq!(outcome.execution_time.count(), 5);
/// assert!(outcome.all_converged);
/// assert!(outcome.execution_time.min() <= outcome.execution_time.mean());
/// ```
pub fn run_node_experiment(
    g: &Graph,
    template: NodeSimConfig,
    repetitions: u32,
    base_seed: u64,
) -> ExperimentOutcome {
    let mut outcome = ExperimentOutcome::new();
    let reps = if template.mode == SimMode::Synchronous {
        1
    } else {
        repetitions.max(1)
    };
    for rep in 0..reps {
        let mut config = template;
        if let SimMode::RandomOrder { .. } = config.mode {
            config.mode = SimMode::RandomOrder {
                seed: repetition_seed(base_seed, rep),
            };
        }
        let result = NodeSim::new(g, config).run();
        outcome.record(&result);
    }
    outcome
}

/// Runs the one-to-many protocol `repetitions` times and aggregates the
/// Figure 5 metrics (overhead = estimates sent per node) alongside the
/// Table 1 ones.
pub fn run_host_experiment(
    g: &Graph,
    template: HostSimConfig,
    repetitions: u32,
    base_seed: u64,
) -> ExperimentOutcome {
    run_host_experiment_on(g, template, repetitions, base_seed, HostEngine::Legacy)
}

/// [`run_host_experiment`] with an explicit [`HostEngine`] choice.
///
/// With [`HostEngine::ActiveSet`], synchronous repetitions run on the
/// flat fast path (bit-identical results, multiple of the throughput —
/// see `BENCH_PR2.json`); `RandomOrder` templates always use [`HostSim`],
/// the only engine implementing that schedule.
pub fn run_host_experiment_on(
    g: &Graph,
    template: HostSimConfig,
    repetitions: u32,
    base_seed: u64,
    engine: HostEngine,
) -> ExperimentOutcome {
    let mut outcome = ExperimentOutcome::new();
    let reps = if template.mode == SimMode::Synchronous {
        1
    } else {
        repetitions.max(1)
    };
    for rep in 0..reps {
        let mut config = template.clone();
        if let SimMode::RandomOrder { .. } = config.mode {
            config.mode = SimMode::RandomOrder {
                seed: repetition_seed(base_seed, rep),
            };
        }
        if engine == HostEngine::ActiveSet && config.mode == SimMode::Synchronous {
            let mut fast = ActiveSetHostEngine::new(
                g,
                ActiveSetHostConfig {
                    hosts: config.hosts,
                    assignment: config.assignment,
                    protocol: config.protocol,
                    threads: 0,
                    max_rounds: config.max_rounds,
                },
            );
            let result = fast.run();
            outcome.record(&result);
            outcome.estimates_sent.record(fast.estimates_sent() as f64);
        } else {
            let mut sim = HostSim::new(g, config);
            let result = sim.run();
            outcome.record(&result);
            outcome.estimates_sent.record(sim.estimates_sent() as f64);
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkcore::seq::batagelj_zaversnik;
    use dkcore_graph::generators::{gnp, path};

    #[test]
    fn seeds_are_distinct_and_deterministic() {
        let s: Vec<u64> = (0..10).map(|r| repetition_seed(42, r)).collect();
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), s.len());
        assert_eq!(repetition_seed(42, 3), repetition_seed(42, 3));
        assert_ne!(repetition_seed(42, 3), repetition_seed(43, 3));
    }

    #[test]
    fn node_experiment_aggregates_repetitions() {
        let g = path(40);
        let outcome = run_node_experiment(&g, NodeSimConfig::random_order(0), 8, 7);
        assert_eq!(outcome.execution_time.count(), 8);
        assert!(outcome.all_converged);
        assert!(outcome.execution_time.min() <= outcome.execution_time.max());
        assert!(outcome.avg_messages.mean() > 0.0);
    }

    #[test]
    fn synchronous_template_collapses_to_single_run() {
        let g = gnp(40, 0.1, 3);
        let outcome = run_node_experiment(&g, NodeSimConfig::synchronous(), 20, 7);
        assert_eq!(outcome.execution_time.count(), 1);
    }

    #[test]
    fn host_experiment_tracks_overhead() {
        let g = gnp(60, 0.08, 5);
        let outcome = run_host_experiment(&g, HostSimConfig::random_order(4, 0), 5, 13);
        assert_eq!(outcome.estimates_sent.count(), 5);
        assert!(outcome.estimates_sent.mean() > 0.0);
        assert!(outcome.all_converged);
    }

    #[test]
    fn host_engines_agree_in_synchronous_experiments() {
        let g = gnp(70, 0.08, 8);
        let template = HostSimConfig::synchronous(6);
        let legacy = run_host_experiment_on(&g, template.clone(), 3, 1, HostEngine::Legacy);
        let fast = run_host_experiment_on(&g, template, 3, 1, HostEngine::ActiveSet);
        assert_eq!(legacy, fast);
        // Random-order templates fall back to the legacy engine.
        let template = HostSimConfig::random_order(6, 0);
        let a = run_host_experiment_on(&g, template.clone(), 4, 9, HostEngine::ActiveSet);
        let b = run_host_experiment(&g, template, 4, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn experiment_outcomes_are_reproducible() {
        let g = gnp(50, 0.1, 9);
        let a = run_node_experiment(&g, NodeSimConfig::random_order(0), 4, 99);
        let b = run_node_experiment(&g, NodeSimConfig::random_order(0), 4, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn every_repetition_converges_to_truth() {
        let g = gnp(50, 0.1, 15);
        let truth = batagelj_zaversnik(&g);
        for rep in 0..5 {
            let config = NodeSimConfig::random_order(repetition_seed(1, rep));
            let result = NodeSim::new(&g, config).run();
            assert_eq!(result.final_estimates, truth);
        }
    }
}
