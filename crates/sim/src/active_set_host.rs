//! Flat, active-set, optionally parallel engine for the synchronous
//! one-to-many protocol (Algorithms 3–5) — the host-layer counterpart of
//! [`ActiveSetEngine`](crate::ActiveSetEngine), behind the same semantics
//! as [`HostSim`](crate::HostSim) in [`SimMode`](crate::SimMode)
//! `Synchronous` mode.
//!
//! The legacy [`HostSim`](crate::HostSim) drives every
//! [`HostProtocol`](dkcore::one_to_many::HostProtocol) sequentially
//! through per-host `Vec<Vec<(NodeId, u32)>>` inboxes: each `⟨S⟩` batch is
//! `clone()`d once per recipient (for a broadcast, `|H| − 1` times),
//! every host is visited every round even when quiescent, and the whole
//! estimate vector is rebuilt per round for observers. This engine
//! restructures the round loop around four ideas:
//!
//! 1. **Contiguous estimates arena.** All local estimates live in one
//!    arena indexed by a host-offset table (`offsets[h]..offsets[h + 1]`
//!    is host `h`'s slice), synchronized lazily from the per-host state
//!    machines; snapshotting the system is a sequential copy plus one
//!    scatter through the flattened locals table instead of a per-host
//!    iterator walk.
//! 2. **Shard-staged `⟨S⟩` batches.** Outgoing messages are written once
//!    into a flat per-shard pairs arena via the sink-based flush variants
//!    ([`HostProtocol::round_flush_with`]) — point-to-point batches are
//!    bucketed by destination-host *shard*, broadcast batches are stored
//!    exactly once and every shard reads the same slice at delivery. No
//!    nested inboxes, no pair-vector clones.
//! 3. **Worklists.** Only hosts that received a batch (or report pending
//!    internal changes, which the PerRound ablation produces) are flushed;
//!    quiescent hosts cost zero work per round.
//! 4. **Sharded phases.** Delivery and flush run over disjoint contiguous
//!    host shards on scoped threads with one barrier per phase — the same
//!    rayon-shaped structure as the one-to-one engine. Estimate updates
//!    inside each host reuse the incremental `computeIndex` histograms
//!    ([`dkcore::IncrementalIndex`]) that `HostProtocol`'s worklist
//!    emulation maintains.
//!
//! Synchronous-round semantics are preserved *exactly*: batches flushed in
//! round `r` are delivered in round `r + 1`, per-round delivery is
//! order-independent (estimates are monotone and the internal cascade is
//! confluent), and round/message/per-host accounting matches [`HostSim`]
//! bit for bit — asserted by `tests/active_set_host.rs` across graph
//! families, dissemination policies, emulation modes, assignment policies
//! and thread counts.
//!
//! # Example
//!
//! ```
//! use dkcore_sim::{ActiveSetHostConfig, ActiveSetHostEngine, HostSim, HostSimConfig};
//! use dkcore::seq::batagelj_zaversnik;
//! use dkcore_graph::generators::gnp;
//!
//! let g = gnp(120, 0.05, 7);
//! let fast = ActiveSetHostEngine::new(&g, ActiveSetHostConfig::synchronous(6)).run();
//! assert!(fast.converged);
//! assert_eq!(fast.final_estimates, batagelj_zaversnik(&g));
//! // Identical trace to the legacy synchronous host engine:
//! let legacy = HostSim::new(&g, HostSimConfig::synchronous(6)).run();
//! assert_eq!(fast, legacy);
//! ```

use dkcore::one_to_many::{
    Assignment, AssignmentPolicy, DisseminationPolicy, EmulationMode, HostId, HostProtocol,
    OneToManyConfig, StagedSink,
};
use dkcore_graph::{Graph, NodeId};

use crate::RunResult;

/// Configuration of an [`ActiveSetHostEngine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActiveSetHostConfig {
    /// Number of hosts `|H|`.
    pub hosts: usize,
    /// Node → host assignment policy (§3.2.2; the paper uses `Modulo`).
    pub assignment: AssignmentPolicy,
    /// Host protocol configuration (dissemination policy + emulation mode).
    pub protocol: OneToManyConfig,
    /// Worker threads for the delivery/flush phases; `0` means automatic
    /// (available parallelism, bounded by graph size and host count).
    /// `1` forces the sequential path.
    pub threads: usize,
    /// Safety cap on simulated rounds; `0` means automatic (`2·N + 100`),
    /// matching [`HostSimConfig`](crate::HostSimConfig).
    pub max_rounds: u32,
}

impl ActiveSetHostConfig {
    /// Automatic threading, `hosts` hosts, the paper's modulo assignment,
    /// default protocol settings — the fast-path equivalent of
    /// [`HostSimConfig::synchronous`](crate::HostSimConfig::synchronous).
    pub fn synchronous(hosts: usize) -> Self {
        ActiveSetHostConfig {
            hosts,
            assignment: AssignmentPolicy::Modulo,
            protocol: OneToManyConfig::default(),
            threads: 0,
            max_rounds: 0,
        }
    }

    /// Forces the sequential (single-thread) path.
    pub fn sequential(hosts: usize) -> Self {
        ActiveSetHostConfig {
            threads: 1,
            ..Self::synchronous(hosts)
        }
    }

    pub(crate) fn effective_max_rounds(&self, n: usize) -> u32 {
        if self.max_rounds > 0 {
            self.max_rounds
        } else {
            2 * n as u32 + 100
        }
    }
}

/// Outcome of one [`ActiveSetHostEngine::step`]: like
/// [`StepReport`](crate::StepReport) but with an active-host count instead
/// of the `O(|H|)` per-host activity vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostStepReport {
    /// 1-based round index.
    pub round: u32,
    /// `⟨S⟩` messages sent during the round (a broadcast counts once).
    pub messages: u64,
    /// Hosts that sent a message or hold pending internal changes — the
    /// population a [`CentralizedDetector`](dkcore::termination::CentralizedDetector)
    /// would see as active.
    pub active_hosts: u64,
}

/// One shard's staged outgoing batches for a round. Pairs live in a flat
/// arena; batches are `(host, start, end)` windows into it.
#[derive(Debug, Default)]
pub(crate) struct ShardStage {
    /// Flat pair arena shared by all batches of this shard. Point-to-point
    /// batches hold `(destination slot, estimate)` pairs (slot-translated
    /// at flush time); broadcast batches hold `(node id, estimate)`.
    pub(crate) pairs: Vec<(u32, u32)>,
    /// Point-to-point batches `(destination host, start, end)`, bucketed
    /// by the destination host's shard.
    pub(crate) p2p: Vec<Vec<(u32, u32, u32)>>,
    /// Broadcast batches `(sender host, start, end)`: stored once, read by
    /// every shard, delivered to every host except the sender.
    pub(crate) bcast: Vec<(u32, u32, u32)>,
}

impl ShardStage {
    pub(crate) fn new(shards: usize) -> Self {
        ShardStage {
            pairs: Vec::new(),
            p2p: (0..shards).map(|_| Vec::new()).collect(),
            bcast: Vec::new(),
        }
    }

    pub(crate) fn clear(&mut self) {
        self.pairs.clear();
        for bucket in &mut self.p2p {
            bucket.clear();
        }
        self.bcast.clear();
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.bcast.is_empty() && self.p2p.iter().all(Vec::is_empty)
    }
}

/// [`StagedSink`] writing one host's flush straight into its shard's
/// staging buffers — the zero-clone replacement for `Vec<Outgoing>` plus
/// nested inbox pushes. Point-to-point pairs arrive already translated to
/// destination-host slots; empty p2p messages record no batch.
struct StageSink<'a> {
    stage: &'a mut ShardStage,
    shard_of_host: &'a [u32],
    sender: u32,
}

impl StagedSink for StageSink<'_> {
    fn p2p(&mut self, y: HostId, pairs: &mut dyn Iterator<Item = (u32, u32)>) -> u64 {
        let start = self.stage.pairs.len() as u32;
        self.stage.pairs.extend(pairs);
        let end = self.stage.pairs.len() as u32;
        if end > start {
            let shard = self.shard_of_host[y.index()] as usize;
            self.stage.p2p[shard].push((y.0, start, end));
        }
        (end - start) as u64
    }

    fn broadcast(&mut self, pairs: &mut dyn Iterator<Item = (NodeId, u32)>) {
        let start = self.stage.pairs.len() as u32;
        self.stage.pairs.extend(pairs.map(|(v, k)| (v.0, k)));
        let end = self.stage.pairs.len() as u32;
        self.stage.bcast.push((self.sender, start, end));
    }
}

/// Compatibility engine for the Sweep / PerRound emulation modes: the
/// reference [`HostProtocol`] state machines driven through the staged,
/// worklist-driven, fused round loop (see the module docs). The default
/// Worklist mode runs on the fully flat
/// [`FlatEngine`](crate::active_set_host_flat::FlatEngine) instead.
#[derive(Debug)]
pub(crate) struct CompatEngine {
    /// Per-host protocol state machines (flat slot arrays + incremental
    /// `computeIndex` histograms inside).
    hosts: Vec<HostProtocol>,
    /// Host-offset table: host `h`'s local estimates occupy
    /// `arena[offsets[h]..offsets[h + 1]]`.
    offsets: Vec<usize>,
    /// Node id of each arena slot (the flattened, per-host-sorted locals).
    node_of_slot: Vec<u32>,
    /// Contiguous estimates arena, synchronized lazily per host.
    arena: Vec<u32>,
    /// Arena slice `h` is stale (host state changed since the last sync).
    stale: Vec<bool>,
    /// Shard boundaries (host indices), length `shards + 1`.
    shard_bounds: Vec<usize>,
    /// Shard owning each host.
    shard_of_host: Vec<u32>,
    /// Slot translation tables: `xlat[x][j][pos]` is the slot, in the slot
    /// space of `x`'s `j`-th neighbor host, of `x`'s border node
    /// `border(j)[pos]`. Point-to-point flushes emit through these so
    /// delivery is one array-indexed update per pair; empty under the
    /// broadcast policy.
    xlat: Vec<Vec<Box<[u32]>>>,
    /// Staged outgoing batches of the *previous* round, one row per
    /// source shard — what the current round delivers. Read-only within a
    /// round.
    stage_front: Vec<ShardStage>,
    /// Staging rows being written by the current round's flushes (each
    /// shard owns its row); swapped with `stage_front` after every round.
    /// Double-buffering is what lets delivery and flush fuse into one
    /// cache-hot pass per host without a barrier in between.
    stage_back: Vec<ShardStage>,
    /// Per-shard, per-local-host inbound batch lists `(cell, start, end)`
    /// into `stage_front` pair arenas — the grouping that lets a round
    /// touch each host's state exactly once.
    inboxes: Vec<Vec<Vec<(u32, u32, u32)>>>,
    /// Per-shard worklist: hosts to process this round (delivered to, or
    /// holding pending changes from the PerRound ablation).
    flush_lists: Vec<Vec<u32>>,
    /// Membership flag for the flush worklists, per host.
    queued: Vec<bool>,
    /// PerRound ablation in effect (the only mode with pending changes
    /// after a flush).
    per_round: bool,

    // --- accounting (mirrors HostSim) ---
    node_count: usize,
    round: u32,
    max_rounds: u32,
    execution_time: u32,
    total_messages: u64,
    started: bool,
}

impl CompatEngine {
    /// Builds the engine for `g` under `config`. Setup is `O(N + M)` on
    /// top of the per-host protocol construction; after it, rounds
    /// allocate nothing beyond staging/worklist growth.
    ///
    /// # Panics
    ///
    /// Panics if `config.hosts == 0`.
    pub(crate) fn new(g: &Graph, config: ActiveSetHostConfig) -> Self {
        let assignment = Assignment::new(g, config.hosts, &config.assignment);
        let hosts = HostProtocol::for_assignment(g, &assignment, config.protocol);
        let host_count = hosts.len();

        // Host-offset table + flattened locals + initial arena sync.
        let mut offsets = Vec::with_capacity(host_count + 1);
        offsets.push(0usize);
        let mut node_of_slot = Vec::with_capacity(g.node_count());
        let mut arena = Vec::with_capacity(g.node_count());
        for h in &hosts {
            for (u, e) in h.local_estimates() {
                node_of_slot.push(u.0);
                arena.push(e);
            }
            offsets.push(node_of_slot.len());
        }

        // Shard hosts by protocol work: a host's per-round cost is driven
        // by the arcs of its locals (delivery scans + cascade).
        let mut weight = Vec::with_capacity(host_count + 1);
        weight.push(0usize);
        for h in &hosts {
            let w: usize = h
                .local_nodes()
                .iter()
                .map(|&u| g.degree(u) as usize + 1)
                .sum();
            weight.push(weight.last().unwrap() + w);
        }
        let shards = effective_threads(config.threads, g.arc_count(), host_count);
        let shard_bounds = balance_shards(&weight, shards);
        let mut shard_of_host = vec![0u32; host_count];
        for (s, w) in shard_bounds.windows(2).enumerate() {
            for owner in &mut shard_of_host[w[0]..w[1]] {
                *owner = s as u32;
            }
        }

        // Border slot translation, built once: O(border pairs · log slots).
        let xlat: Vec<Vec<Box<[u32]>>> = if config.protocol.policy
            == DisseminationPolicy::PointToPoint
        {
            hosts
                .iter()
                .map(|x| {
                    x.neighbor_hosts()
                        .iter()
                        .enumerate()
                        .map(|(j, &y)| {
                            let dest = &hosts[y.index()];
                            x.border(j)
                                .iter()
                                .map(|&i| {
                                    dest.slot_of(x.local_nodes()[i as usize])
                                        .expect("border node is in the destination's slot space")
                                })
                                .collect()
                        })
                        .collect()
                })
                .collect()
        } else {
            vec![Vec::new(); host_count]
        };

        CompatEngine {
            offsets,
            node_of_slot,
            arena,
            stale: vec![false; host_count],
            shard_of_host,
            xlat,
            stage_front: (0..shards).map(|_| ShardStage::new(shards)).collect(),
            stage_back: (0..shards).map(|_| ShardStage::new(shards)).collect(),
            inboxes: shard_bounds
                .windows(2)
                .map(|w| vec![Vec::new(); w[1] - w[0]])
                .collect(),
            flush_lists: vec![Vec::new(); shards],
            queued: vec![false; host_count],
            per_round: config.protocol.emulation == EmulationMode::PerRound,
            shard_bounds,
            hosts,
            node_count: g.node_count(),
            round: 0,
            max_rounds: config.effective_max_rounds(g.node_count()),
            execution_time: 0,
            total_messages: 0,
            started: false,
        }
    }

    /// Number of hosts.
    pub(crate) fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// 1-based index of the last executed round (0 before the first).
    pub(crate) fn round(&self) -> u32 {
        self.round
    }

    /// The execution-time counter: rounds in which ≥ 1 message was sent.
    pub(crate) fn execution_time(&self) -> u32 {
        self.execution_time
    }

    /// Total `(node, estimate)` pairs sent so far across all hosts — the
    /// numerator of the paper's Figure 5 overhead metric.
    pub(crate) fn estimates_sent(&self) -> u64 {
        self.hosts.iter().map(HostProtocol::estimates_sent).sum()
    }

    /// Figure 5's y-axis: estimates sent per node.
    pub(crate) fn overhead_per_node(&self) -> f64 {
        if self.node_count == 0 {
            0.0
        } else {
            self.estimates_sent() as f64 / self.node_count as f64
        }
    }

    /// Current estimates for all nodes, indexed by node id.
    ///
    /// Synchronizes the stale arena slices (hosts untouched since the last
    /// snapshot are skipped) and scatters the arena through the flattened
    /// locals table; takes `&mut self` for the lazy sync.
    pub(crate) fn estimates(&mut self) -> Vec<u32> {
        for h in 0..self.hosts.len() {
            if !self.stale[h] {
                continue;
            }
            self.stale[h] = false;
            let slice = &mut self.arena[self.offsets[h]..self.offsets[h + 1]];
            for (slot, (_, e)) in slice.iter_mut().zip(self.hosts[h].local_estimates()) {
                *slot = e;
            }
        }
        let mut est = vec![0u32; self.node_count];
        for (&u, &e) in self.node_of_slot.iter().zip(self.arena.iter()) {
            est[u as usize] = e;
        }
        est
    }

    /// Whether no batches are staged and no host has unflushed changes
    /// (evaluated between rounds, after [`step`](Self::step)).
    pub(crate) fn is_quiescent(&self) -> bool {
        self.stage_front.iter().all(ShardStage::is_empty)
            && self.hosts.iter().all(|h| !h.has_pending_changes())
    }

    /// Executes one synchronous round. Each shard runs a single fused
    /// pass over its worklist hosts — apply all inbound batches staged
    /// last round (read from the front buffer), then flush the host's
    /// changed estimates into the back buffer — so every host's state is
    /// touched exactly once per round, cache-hot. One barrier per round;
    /// the buffers swap afterwards.
    pub(crate) fn step(&mut self) -> HostStepReport {
        self.round += 1;
        let first = !self.started;
        self.started = true;
        let shards = self.shard_bounds.len() - 1;

        let (messages, active_hosts) = if shards == 1 {
            let mut views = carve(
                &self.shard_bounds,
                &mut self.hosts,
                &mut self.queued,
                &mut self.stale,
                &mut self.flush_lists,
                &mut self.inboxes,
            );
            let view = &mut views[0];
            if first {
                view.initial(
                    &mut self.stage_back[0],
                    &self.shard_of_host,
                    &self.xlat,
                    self.per_round,
                )
            } else {
                view.round(
                    &self.stage_front,
                    &mut self.stage_back[0],
                    &self.shard_of_host,
                    &self.xlat,
                    self.per_round,
                    0,
                )
            }
        } else {
            self.parallel_round(first)
        };
        std::mem::swap(&mut self.stage_front, &mut self.stage_back);

        if messages > 0 {
            self.execution_time += 1;
        }
        self.total_messages += messages;
        HostStepReport {
            round: self.round,
            messages,
            active_hosts,
        }
    }

    /// One parallel round: every shard runs its fused deliver-and-flush
    /// pass concurrently, reading the shared front buffer and writing its
    /// own back-buffer row; the scope join is the round barrier.
    fn parallel_round(&mut self, first: bool) -> (u64, u64) {
        let shard_of_host = &self.shard_of_host;
        let xlat = &self.xlat;
        let per_round = self.per_round;
        let stage_front = &self.stage_front;

        let mut views = carve(
            &self.shard_bounds,
            &mut self.hosts,
            &mut self.queued,
            &mut self.stale,
            &mut self.flush_lists,
            &mut self.inboxes,
        );
        std::thread::scope(|scope| {
            let handles: Vec<_> = views
                .iter_mut()
                .zip(self.stage_back.iter_mut())
                .enumerate()
                .map(|(s, (view, back_row))| {
                    scope.spawn(move || {
                        if first {
                            view.initial(back_row, shard_of_host, xlat, per_round)
                        } else {
                            view.round(stage_front, back_row, shard_of_host, xlat, per_round, s)
                        }
                    })
                })
                .collect();
            let mut messages = 0u64;
            let mut active = 0u64;
            for h in handles {
                let (m, a) = h.join().expect("shard worker panicked");
                messages += m;
                active += a;
            }
            (messages, active)
        })
    }

    /// Runs to quiescence, mirroring [`HostSim::run`](crate::HostSim::run)
    /// under the exact `CentralizedDetector`: the run ends after the first
    /// round in which no host is active.
    pub(crate) fn run(&mut self) -> RunResult {
        loop {
            let report = self.step();
            if report.active_hosts == 0 || self.round >= self.max_rounds {
                break;
            }
        }
        RunResult {
            execution_time: self.execution_time,
            rounds_executed: self.round,
            total_messages: self.total_messages,
            messages_per_sender: self.hosts.iter().map(HostProtocol::messages_sent).collect(),
            final_estimates: self.estimates(),
            converged: self.is_quiescent(),
        }
    }
}

/// Mutable view of one shard's disjoint host range `[lo, hi)`.
struct HostShard<'a> {
    lo: usize,
    hosts: &'a mut [HostProtocol],
    queued: &'a mut [bool],
    stale: &'a mut [bool],
    list: &'a mut Vec<u32>,
    /// Per-local-host inbound batch lists `(cell, start, end)`.
    inbox: &'a mut [Vec<(u32, u32, u32)>],
}

/// Carves the engine's per-host state into disjoint mutable shard views
/// (free function so the round can be borrowed per scoped thread).
#[allow(clippy::type_complexity)]
fn carve<'a>(
    bounds: &[usize],
    mut hosts: &'a mut [HostProtocol],
    mut queued: &'a mut [bool],
    mut stale: &'a mut [bool],
    flush_lists: &'a mut [Vec<u32>],
    inboxes: &'a mut [Vec<Vec<(u32, u32, u32)>>],
) -> Vec<HostShard<'a>> {
    let mut views = Vec::with_capacity(bounds.len() - 1);
    let mut lists = flush_lists.iter_mut();
    let mut inbox_rows = inboxes.iter_mut();
    for w in bounds.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let n = hi - lo;
        let (h, h_rest) = hosts.split_at_mut(n);
        let (q, q_rest) = queued.split_at_mut(n);
        let (s, s_rest) = stale.split_at_mut(n);
        views.push(HostShard {
            lo,
            hosts: h,
            queued: q,
            stale: s,
            list: lists.next().expect("one flush list per shard"),
            inbox: inbox_rows.next().expect("one inbox row per shard"),
        });
        hosts = h_rest;
        queued = q_rest;
        stale = s_rest;
    }
    views
}

impl HostShard<'_> {
    /// Queues host `h` (shard-local index `d`) for this round's flush.
    #[inline]
    fn enqueue(&mut self, d: usize) {
        if !self.queued[d] {
            self.queued[d] = true;
            self.list.push((self.lo + d) as u32);
        }
    }

    /// One fused round for this shard: group last round's batches by
    /// destination host, then make a single pass over the worklist hosts
    /// — apply each host's inbound batches and immediately flush it while
    /// its estimate arrays and histograms are cache-hot.
    ///
    /// Point-to-point batches are already slot-translated and apply via
    /// [`HostProtocol::receive_slots`] (one array access per pair);
    /// broadcast batches stay by-name. Within a round, delivery order is
    /// irrelevant (estimates are monotone; the internal cascade is
    /// confluent), so shards proceed independently. Returns
    /// `(messages, active hosts)` — a host counts as active when it sent
    /// a message or (PerRound) still holds pending internal changes, the
    /// same predicate [`crate::HostSim`] feeds its termination detector.
    fn round(
        &mut self,
        stage_front: &[ShardStage],
        back_row: &mut ShardStage,
        shard_of_host: &[u32],
        xlat: &[Vec<Box<[u32]>>],
        per_round: bool,
        my_shard: usize,
    ) -> (u64, u64) {
        // The back row was consumed by every shard last round; reset it
        // for this round's output.
        back_row.clear();

        // Group inbound point-to-point batches by destination host.
        for (ci, cell) in stage_front.iter().enumerate() {
            for &(dest, start, end) in &cell.p2p[my_shard] {
                let d = dest as usize - self.lo;
                self.enqueue(d);
                self.inbox[d].push((ci as u32, start, end));
            }
        }
        // A broadcast medium makes every host a recipient this round.
        let any_bcast = stage_front.iter().any(|c| !c.bcast.is_empty());
        if any_bcast {
            for d in 0..self.hosts.len() {
                self.queued[d] = true;
            }
            self.list.clear();
            self.list
                .extend((self.lo..self.lo + self.hosts.len()).map(|h| h as u32));
        }

        let mut messages = 0u64;
        let mut active = 0u64;
        let list = std::mem::take(self.list);
        for &h in &list {
            let d = h as usize - self.lo;
            self.queued[d] = false;
            self.stale[d] = true;
            // Deliver: this host's slot-addressed batches, then (broadcast
            // medium) every other sender's broadcast.
            for &(ci, start, end) in &self.inbox[d] {
                self.hosts[d]
                    .receive_slots(&stage_front[ci as usize].pairs[start as usize..end as usize]);
            }
            self.inbox[d].clear();
            if any_bcast {
                for cell in stage_front {
                    for &(sender, start, end) in &cell.bcast {
                        if sender == h {
                            continue;
                        }
                        let pairs = &cell.pairs[start as usize..end as usize];
                        self.hosts[d].receive_iter(pairs.iter().map(|&(v, k)| (NodeId(v), k)));
                    }
                }
            }
            // Flush, while everything the flush reads is still hot.
            let mut sink = StageSink {
                stage: back_row,
                shard_of_host,
                sender: h,
            };
            let m = self.hosts[d].round_flush_staged(&xlat[h as usize], &mut sink);
            let mut is_active = m > 0;
            if per_round && self.hosts[d].has_pending_changes() {
                // The trailing emulation step queued more internal work.
                self.enqueue(d);
                is_active = true;
            }
            messages += m;
            active += u64::from(is_active);
        }
        drop(list);
        (messages, active)
    }

    /// First-round flush: every host announces its initial estimates
    /// (Algorithm 3 initialization). Returns `(messages, active hosts)`.
    fn initial(
        &mut self,
        stage_row: &mut ShardStage,
        shard_of_host: &[u32],
        xlat: &[Vec<Box<[u32]>>],
        per_round: bool,
    ) -> (u64, u64) {
        stage_row.clear();
        let mut messages = 0u64;
        let mut active = 0u64;
        for d in 0..self.hosts.len() {
            let mut sink = StageSink {
                stage: stage_row,
                shard_of_host,
                sender: (self.lo + d) as u32,
            };
            let m = self.hosts[d].initial_flush_staged(&xlat[self.lo + d], &mut sink);
            let mut is_active = m > 0;
            // PerRound emulation may leave internal propagation pending
            // right after initialization; such hosts flush next round.
            if per_round && self.hosts[d].has_pending_changes() {
                self.enqueue(d);
                is_active = true;
            }
            messages += m;
            active += u64::from(is_active);
        }
        (messages, active)
    }
}

/// Resolves the worker-thread count: explicit, or available parallelism
/// bounded so each shard keeps at least ~64k arcs of protocol work, never
/// exceeding the host count.
pub(crate) fn effective_threads(configured: usize, arcs: usize, host_count: usize) -> usize {
    let raw = if configured > 0 {
        configured
    } else {
        let by_size = (arcs / 65_536).max(1);
        let available = std::thread::available_parallelism().map_or(1, usize::from);
        available.min(by_size).min(16)
    };
    raw.clamp(1, host_count.max(1))
}

/// Splits hosts into `shards` contiguous ranges of roughly equal weight.
/// `weight` is a prefix-sum table (`weight[h]` = total weight of hosts
/// `< h`). Returns `shards + 1` boundaries from 0 to the host count.
pub(crate) fn balance_shards(weight: &[usize], shards: usize) -> Vec<usize> {
    let n = weight.len() - 1;
    let total = weight[n];
    let mut bounds = Vec::with_capacity(shards + 1);
    bounds.push(0);
    for s in 1..shards {
        let target = total * s / shards;
        let b = weight.partition_point(|&w| w < target).min(n);
        let b = (*bounds.last().unwrap()).max(b.saturating_sub(1)).min(n);
        bounds.push(b);
    }
    bounds.push(n);
    bounds
}

/// Flat active-set simulator of the synchronous one-to-many protocol. See
/// the [module documentation](self).
///
/// Two implementations live behind this type, chosen by the configured
/// [`EmulationMode`]:
///
/// * **Worklist** (the protocol's default) runs on the fully flat engine
///   (`active_set_host_flat`): all hosts' slot spaces concatenated into
///   global arrays, estimates in one contiguous arena indexed by the
///   host-offset table, incremental `computeIndex` histograms in a flat
///   arena, and a fused cache-hot deliver-and-flush pass per host per
///   round.
/// * **Sweep / PerRound** (the paper-literal and ablation modes) run on a
///   compatibility engine that drives the reference
///   [`HostProtocol`](dkcore::one_to_many::HostProtocol) state machines
///   through the same staged, worklist-driven round loop.
///
/// Both are bit-identical to [`HostSim`](crate::HostSim).
#[derive(Debug)]
pub struct ActiveSetHostEngine {
    inner: Inner,
}

#[derive(Debug)]
enum Inner {
    Flat(Box<crate::active_set_host_flat::FlatEngine>),
    Compat(Box<CompatEngine>),
}

impl ActiveSetHostEngine {
    /// Builds the engine for `g` under `config`. Setup is `O(N + M)`;
    /// after it, rounds allocate nothing beyond staging/worklist growth.
    ///
    /// # Panics
    ///
    /// Panics if `config.hosts == 0`.
    pub fn new(g: &Graph, config: ActiveSetHostConfig) -> Self {
        let inner = if config.protocol.emulation == EmulationMode::Worklist {
            Inner::Flat(Box::new(crate::active_set_host_flat::FlatEngine::new(
                g, &config,
            )))
        } else {
            Inner::Compat(Box::new(CompatEngine::new(g, config)))
        };
        ActiveSetHostEngine { inner }
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        match &self.inner {
            Inner::Flat(e) => e.host_count(),
            Inner::Compat(e) => e.host_count(),
        }
    }

    /// 1-based index of the last executed round (0 before the first).
    pub fn round(&self) -> u32 {
        match &self.inner {
            Inner::Flat(e) => e.round(),
            Inner::Compat(e) => e.round(),
        }
    }

    /// The execution-time counter: rounds in which ≥ 1 message was sent.
    pub fn execution_time(&self) -> u32 {
        match &self.inner {
            Inner::Flat(e) => e.execution_time(),
            Inner::Compat(e) => e.execution_time(),
        }
    }

    /// Total `(node, estimate)` pairs sent so far across all hosts — the
    /// numerator of the paper's Figure 5 overhead metric.
    pub fn estimates_sent(&self) -> u64 {
        match &self.inner {
            Inner::Flat(e) => e.estimates_sent(),
            Inner::Compat(e) => e.estimates_sent(),
        }
    }

    /// Figure 5's y-axis: estimates sent per node.
    pub fn overhead_per_node(&self) -> f64 {
        match &self.inner {
            Inner::Flat(e) => e.overhead_per_node(),
            Inner::Compat(e) => e.overhead_per_node(),
        }
    }

    /// Current estimates for all nodes, indexed by node id.
    pub fn estimates(&mut self) -> Vec<u32> {
        match &mut self.inner {
            Inner::Flat(e) => e.estimates(),
            Inner::Compat(e) => e.estimates(),
        }
    }

    /// Whether no batches are staged and no host has unflushed changes
    /// (evaluated between rounds, after [`step`](Self::step)).
    pub fn is_quiescent(&self) -> bool {
        match &self.inner {
            Inner::Flat(e) => e.is_quiescent(),
            Inner::Compat(e) => e.is_quiescent(),
        }
    }

    /// Executes one synchronous round (see the module docs for the fused
    /// round structure).
    pub fn step(&mut self) -> HostStepReport {
        match &mut self.inner {
            Inner::Flat(e) => e.step(),
            Inner::Compat(e) => e.step(),
        }
    }

    /// Runs to quiescence, mirroring [`HostSim::run`](crate::HostSim::run)
    /// under the exact `CentralizedDetector`: the run ends after the first
    /// round in which no host is active.
    pub fn run(&mut self) -> RunResult {
        match &mut self.inner {
            Inner::Flat(e) => e.run(),
            Inner::Compat(e) => e.run(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HostSim, HostSimConfig};
    use dkcore::one_to_many::DisseminationPolicy;
    use dkcore::seq::batagelj_zaversnik;
    use dkcore_graph::generators::{complete, gnp, path, star, worst_case};

    fn legacy(g: &Graph, hosts: usize, policy: DisseminationPolicy) -> RunResult {
        let mut config = HostSimConfig::synchronous(hosts);
        config.protocol.policy = policy;
        HostSim::new(g, config).run()
    }

    fn fast(g: &Graph, hosts: usize, policy: DisseminationPolicy, threads: usize) -> RunResult {
        let mut config = ActiveSetHostConfig::synchronous(hosts);
        config.protocol.policy = policy;
        config.threads = threads;
        ActiveSetHostEngine::new(g, config).run()
    }

    #[test]
    fn identical_to_legacy_on_graph_families() {
        for (name, g) in [
            ("gnp", gnp(150, 0.05, 3)),
            ("star", star(40)),
            ("complete", complete(12)),
            ("worst_case", worst_case(25)),
            ("path", path(60)),
        ] {
            for policy in [
                DisseminationPolicy::Broadcast,
                DisseminationPolicy::PointToPoint,
            ] {
                for hosts in [1, 4, 9] {
                    for threads in [1, 3] {
                        let a = fast(&g, hosts, policy, threads);
                        let b = legacy(&g, hosts, policy);
                        assert_eq!(a, b, "{name}, {policy:?}, hosts={hosts}, threads={threads}");
                        assert_eq!(a.final_estimates, batagelj_zaversnik(&g), "{name}");
                    }
                }
            }
        }
    }

    #[test]
    fn stepwise_state_matches_legacy() {
        // Not just the final result: every intermediate round agrees.
        let g = gnp(80, 0.08, 11);
        let mut config = HostSimConfig::synchronous(5);
        config.protocol.policy = DisseminationPolicy::PointToPoint;
        let mut b = HostSim::new(&g, config);
        let mut fast_config = ActiveSetHostConfig::sequential(5);
        fast_config.protocol.policy = DisseminationPolicy::PointToPoint;
        let mut a = ActiveSetHostEngine::new(&g, fast_config);
        loop {
            let ra = a.step();
            let rb = b.step();
            assert_eq!(ra.messages, rb.messages, "round {}", ra.round);
            assert_eq!(
                ra.active_hosts,
                rb.active_count() as u64,
                "round {}",
                ra.round
            );
            assert_eq!(a.estimates(), b.estimates(), "round {}", ra.round);
            if ra.active_hosts == 0 {
                break;
            }
        }
        assert!(a.is_quiescent() && b.is_quiescent());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let g = gnp(200, 0.05, 9);
        let r1 = fast(&g, 8, DisseminationPolicy::PointToPoint, 1);
        let r2 = fast(&g, 8, DisseminationPolicy::PointToPoint, 3);
        let r3 = fast(&g, 8, DisseminationPolicy::PointToPoint, 8);
        assert_eq!(r1, r2);
        assert_eq!(r1, r3);
    }

    #[test]
    fn per_round_emulation_matches_legacy() {
        let g = path(30);
        let mut legacy_config = HostSimConfig::synchronous(3);
        legacy_config.assignment = AssignmentPolicy::Block;
        legacy_config.protocol.emulation = EmulationMode::PerRound;
        let b = HostSim::new(&g, legacy_config).run();
        let mut config = ActiveSetHostConfig::synchronous(3);
        config.assignment = AssignmentPolicy::Block;
        config.protocol.emulation = EmulationMode::PerRound;
        for threads in [1, 2] {
            config.threads = threads;
            let a = ActiveSetHostEngine::new(&g, config.clone()).run();
            assert_eq!(a, b, "threads={threads}");
            assert!(a.converged);
        }
    }

    #[test]
    fn empty_and_isolated_graphs() {
        let g = Graph::from_edges(0, []).unwrap();
        let r = ActiveSetHostEngine::new(&g, ActiveSetHostConfig::synchronous(3)).run();
        assert!(r.converged);
        assert_eq!(r.total_messages, 0);

        let g = Graph::from_edges(5, []).unwrap();
        let r = ActiveSetHostEngine::new(&g, ActiveSetHostConfig::synchronous(3)).run();
        assert_eq!(r.final_estimates, vec![0; 5]);
        assert_eq!(r.execution_time, 0);
    }

    #[test]
    fn max_rounds_cap_reports_nonconvergence() {
        let g = path(50);
        let mut config = ActiveSetHostConfig::sequential(2);
        config.assignment = AssignmentPolicy::Block;
        config.protocol.emulation = EmulationMode::PerRound;
        config.max_rounds = 2;
        let r = ActiveSetHostEngine::new(&g, config).run();
        assert_eq!(r.rounds_executed, 2);
        assert!(!r.converged);
    }

    #[test]
    fn overhead_accounting_matches_legacy() {
        let g = gnp(100, 0.06, 17);
        let mut legacy_sim = HostSim::new(&g, HostSimConfig::synchronous(8));
        legacy_sim.run();
        let mut engine = ActiveSetHostEngine::new(&g, ActiveSetHostConfig::synchronous(8));
        engine.run();
        assert_eq!(engine.estimates_sent(), legacy_sim.estimates_sent());
        assert!((engine.overhead_per_node() - legacy_sim.overhead_per_node()).abs() < 1e-12);
    }

    #[test]
    fn shard_bounds_cover_all_hosts() {
        let g = gnp(300, 0.03, 1);
        let mut config = ActiveSetHostConfig::synchronous(24);
        config.threads = 5;
        let engine = ActiveSetHostEngine::new(&g, config);
        let Inner::Flat(flat) = &engine.inner else {
            panic!("Worklist mode routes to the flat engine");
        };
        let b = flat.shard_bounds();
        assert_eq!(b.first(), Some(&0));
        assert_eq!(b.last(), Some(&24));
        assert!(b.windows(2).all(|w| w[0] <= w[1]), "monotone bounds: {b:?}");

        // The ablation modes route to the compatibility engine.
        let mut config = ActiveSetHostConfig::synchronous(4);
        config.protocol.emulation = EmulationMode::Sweep;
        let engine = ActiveSetHostEngine::new(&g, config);
        assert!(matches!(engine.inner, Inner::Compat(_)));
    }
}
