//! Event-driven *asynchronous* simulation of the one-to-one protocol.
//!
//! The paper's round model is a convenience: Algorithm 1 itself is
//! asynchronous — it reacts to message arrivals and flushes "every δ time
//! units" on a local clock. This engine drops the round abstraction
//! entirely: every message gets an independent random latency (messages
//! can overtake each other), and every node flushes on its own period
//! with a random phase. The protocol tolerates all of it *by
//! construction*: estimates only decrease and stale (higher) values are
//! ignored on receipt, so reordering and delay cannot violate safety —
//! which the tests verify against the sequential baseline.
//!
//! Time is measured in abstract ticks; a node's flush period is
//! [`AsyncSimConfig::delta`] ticks and message latencies are drawn
//! uniformly from [`AsyncSimConfig::latency`].
//!
//! # Example
//!
//! ```
//! use dkcore_sim::{AsyncSim, AsyncSimConfig};
//! use dkcore::seq::batagelj_zaversnik;
//! use dkcore_graph::generators::gnp;
//!
//! let g = gnp(100, 0.06, 3);
//! // Latencies up to 3x the flush period: heavy reordering.
//! let config = AsyncSimConfig { delta: 10, latency: (1, 30), ..AsyncSimConfig::new(7) };
//! let result = AsyncSim::new(&g, config).run();
//! assert!(result.converged);
//! assert_eq!(result.final_estimates, batagelj_zaversnik(&g));
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dkcore::one_to_one::{NodeProtocol, OneToOneConfig};
use dkcore_graph::{Graph, NodeId};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Configuration of an [`AsyncSim`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsyncSimConfig {
    /// Flush period δ in ticks (the paper's "repeat every δ time units").
    pub delta: u64,
    /// Message latency range `(min, max)` in ticks, inclusive.
    pub latency: (u64, u64),
    /// Protocol configuration.
    pub protocol: OneToOneConfig,
    /// RNG seed (latencies and flush phases).
    pub seed: u64,
    /// Safety cap on processed events; `0` = automatic.
    pub max_events: u64,
    /// Probability that a message is silently dropped in transit.
    ///
    /// The paper's §2 *assumes* reliable channels; this knob probes that
    /// assumption. With loss and no repair, safety still holds (estimates
    /// stay upper bounds — dropping a message can only leave estimates
    /// too high) but liveness fails: the run may quiesce with wrong
    /// values. Pair with [`anti_entropy`](Self::anti_entropy) to restore
    /// convergence.
    pub loss_probability: f64,
    /// Anti-entropy period: every this many ticks, a node re-announces
    /// its current estimate to all neighbors *even if unchanged* — the
    /// standard epidemic repair for lossy channels. `0` disables it.
    pub anti_entropy: u64,
}

impl AsyncSimConfig {
    /// Reasonable defaults: δ = 10 ticks, latency 1–9 ticks (messages
    /// usually arrive within one period), reliable channels, given seed.
    pub fn new(seed: u64) -> Self {
        AsyncSimConfig {
            delta: 10,
            latency: (1, 9),
            protocol: OneToOneConfig::default(),
            seed,
            max_events: 0,
            loss_probability: 0.0,
            anti_entropy: 0,
        }
    }
}

/// Outcome of an asynchronous run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsyncRunResult {
    /// Virtual time (ticks) at which the last estimate change happened.
    pub converged_at: u64,
    /// Virtual time at which the simulation drained (all messages
    /// delivered, no pending changes).
    pub drained_at: u64,
    /// Total point-to-point messages sent.
    pub total_messages: u64,
    /// Messages lost in transit (`loss_probability > 0` runs).
    pub dropped_messages: u64,
    /// Delivery events processed.
    pub deliveries: u64,
    /// Final estimates per node.
    pub final_estimates: Vec<u32>,
    /// Whether the run drained before hitting the event cap.
    pub converged: bool,
}

#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// (time, sequence for determinism, payload)
    Deliver {
        to: NodeId,
        from: NodeId,
        value: u32,
    },
    Flush {
        node: NodeId,
    },
    /// Periodic unconditional re-announcement (anti-entropy repair).
    AntiEntropy {
        node: NodeId,
    },
}

/// Event-driven asynchronous simulator of the one-to-one protocol.
///
/// See the [module docs](self).
#[derive(Debug)]
pub struct AsyncSim {
    nodes: Vec<NodeProtocol>,
    queue: BinaryHeap<Reverse<(u64, u64, Event)>>,
    rng: StdRng,
    config: AsyncSimConfig,
    seq: u64,
    now: u64,
    pending_deliveries: u64,
    total_messages: u64,
    dropped_messages: u64,
    deliveries: u64,
    last_change_at: u64,
    /// Remaining anti-entropy announcements (bounds the repair phase so a
    /// lossless-after-repair run can drain).
    anti_entropy_budget: u64,
}

impl AsyncSim {
    /// Builds the simulator; each node gets a random flush phase in
    /// `[0, δ)` and the initialization broadcasts are scheduled at t = 0.
    pub fn new(g: &Graph, config: AsyncSimConfig) -> Self {
        assert!(config.delta > 0, "flush period must be positive");
        assert!(
            config.latency.0 <= config.latency.1,
            "latency range must be ordered"
        );
        assert!(
            (0.0..=1.0).contains(&config.loss_probability),
            "loss probability must be in [0, 1]"
        );
        let mut this = AsyncSim {
            nodes: NodeProtocol::for_graph(g, config.protocol),
            queue: BinaryHeap::new(),
            rng: StdRng::seed_from_u64(config.seed),
            config,
            seq: 0,
            now: 0,
            pending_deliveries: 0,
            total_messages: 0,
            dropped_messages: 0,
            deliveries: 0,
            last_change_at: 0,
            anti_entropy_budget: 0,
        };
        // Enough repair announcements to drive the residual error to
        // negligible probability: ~50 sweeps per node (a stale cache
        // entry survives unrepaired with probability loss^sweeps).
        this.anti_entropy_budget = (this.nodes.len() as u64).saturating_mul(50).max(64)
            * u64::from(config.anti_entropy > 0);
        // Initial broadcasts at t = 0 (+ latency), then periodic flushes
        // with random phase.
        for i in 0..this.nodes.len() {
            if let Some(b) = this.nodes[i].initial_broadcast() {
                this.schedule_broadcast(b);
            }
            let phase = this.rng.random_range(0..this.config.delta);
            this.push(
                phase,
                Event::Flush {
                    node: NodeId::from_index(i),
                },
            );
            if this.config.anti_entropy > 0 {
                let phase = this.rng.random_range(0..this.config.anti_entropy);
                this.push(
                    phase,
                    Event::AntiEntropy {
                        node: NodeId::from_index(i),
                    },
                );
            }
        }
        this
    }

    fn push(&mut self, at: u64, event: Event) {
        self.seq += 1;
        if matches!(event, Event::Deliver { .. }) {
            self.pending_deliveries += 1;
        }
        self.queue.push(Reverse((at, self.seq, event)));
    }

    fn schedule_broadcast(&mut self, b: dkcore::one_to_one::Broadcast) {
        let (lo, hi) = self.config.latency;
        let now = self.now;
        let loss = self.config.loss_probability;
        for to in b.recipients {
            self.total_messages += 1;
            if loss > 0.0 && self.rng.random_bool(loss) {
                self.dropped_messages += 1;
                continue;
            }
            let latency = self.rng.random_range(lo..=hi);
            self.push(
                now + latency,
                Event::Deliver {
                    to,
                    from: b.from,
                    value: b.core,
                },
            );
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Runs until the system drains: no deliveries in flight and no node
    /// holding an unflushed change.
    pub fn run(mut self) -> AsyncRunResult {
        let cap = if self.config.max_events > 0 {
            self.config.max_events
        } else {
            // Generous: each message produces one delivery; flush events
            // tick every delta. Corollary 2 bounds messages by O(Δ·M).
            1_000_000_u64.max(self.nodes.len() as u64 * 10_000)
        };
        let mut processed = 0u64;
        while let Some(Reverse((at, _, event))) = self.queue.pop() {
            self.now = at;
            processed += 1;
            if processed > cap {
                return self.finish(false);
            }
            match event {
                Event::Deliver { to, from, value } => {
                    self.pending_deliveries -= 1;
                    self.deliveries += 1;
                    if self.nodes[to.index()].receive(from, value) {
                        self.last_change_at = at;
                    }
                }
                Event::Flush { node } => {
                    if let Some(b) = self.nodes[node.index()].round_flush() {
                        self.schedule_broadcast(b);
                    }
                    // Keep flushing only while the system is live;
                    // otherwise the queue drains and the run ends.
                    let live = self.pending_deliveries > 0
                        || self.nodes.iter().any(NodeProtocol::is_changed);
                    if live {
                        let at = self.now + self.config.delta;
                        self.push(at, Event::Flush { node });
                    }
                }
                Event::AntiEntropy { node } => {
                    // Unconditional re-announcement: repairs estimate
                    // caches that lost messages left stale. The protocol
                    // ignores values that do not improve anything, so
                    // this is always safe. Recur while the system might
                    // still be wrong anywhere (conservatively: while any
                    // message was ever dropped and the queue is live or
                    // a bounded number of repair periods remains).
                    let i = node.index();
                    if self.nodes[i].degree() > 0 {
                        let core = self.nodes[i].core();
                        let recipients = self.nodes[i].neighbors().to_vec();
                        self.schedule_broadcast(dkcore::one_to_one::Broadcast {
                            from: node,
                            core,
                            recipients,
                        });
                        self.anti_entropy_budget = self.anti_entropy_budget.saturating_sub(1);
                        if self.anti_entropy_budget > 0 {
                            let at = self.now + self.config.anti_entropy;
                            self.push(at, Event::AntiEntropy { node });
                        }
                    }
                }
            }
        }
        self.finish(true)
    }

    fn finish(self, converged: bool) -> AsyncRunResult {
        AsyncRunResult {
            converged_at: self.last_change_at,
            drained_at: self.now,
            total_messages: self.total_messages,
            dropped_messages: self.dropped_messages,
            deliveries: self.deliveries,
            final_estimates: self.nodes.iter().map(NodeProtocol::core).collect(),
            converged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkcore::seq::batagelj_zaversnik;
    use dkcore_graph::generators::{complete, gnp, path, worst_case};

    #[test]
    fn converges_with_small_latency() {
        for seed in 0..5 {
            let g = gnp(80, 0.07, seed);
            let result = AsyncSim::new(&g, AsyncSimConfig::new(seed)).run();
            assert!(result.converged);
            assert_eq!(
                result.final_estimates,
                batagelj_zaversnik(&g),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn converges_under_heavy_reordering() {
        // Latencies far beyond the flush period: messages overtake each
        // other constantly. Monotonicity makes this harmless.
        for seed in 0..5 {
            let g = gnp(60, 0.08, 100 + seed);
            let config = AsyncSimConfig {
                delta: 5,
                latency: (1, 100),
                ..AsyncSimConfig::new(seed)
            };
            let result = AsyncSim::new(&g, config).run();
            assert!(result.converged);
            assert_eq!(
                result.final_estimates,
                batagelj_zaversnik(&g),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn converges_with_zero_latency_floor() {
        let g = path(30);
        let config = AsyncSimConfig {
            latency: (0, 0),
            ..AsyncSimConfig::new(3)
        };
        let result = AsyncSim::new(&g, config).run();
        assert!(result.converged);
        assert_eq!(result.final_estimates, vec![1; 30]);
    }

    #[test]
    fn worst_case_still_converges_async() {
        let g = worst_case(25);
        let result = AsyncSim::new(&g, AsyncSimConfig::new(9)).run();
        assert!(result.final_estimates.iter().all(|&c| c == 2));
    }

    #[test]
    fn complete_graph_needs_no_changes() {
        let g = complete(10);
        let result = AsyncSim::new(&g, AsyncSimConfig::new(1)).run();
        assert!(result.converged);
        assert_eq!(
            result.converged_at, 0,
            "degree == coreness: nothing changes"
        );
        assert_eq!(result.final_estimates, vec![9; 10]);
        // All 90 initial messages were delivered.
        assert_eq!(result.deliveries, 90);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = gnp(50, 0.1, 4);
        let a = AsyncSim::new(&g, AsyncSimConfig::new(11)).run();
        let b = AsyncSim::new(&g, AsyncSimConfig::new(11)).run();
        assert_eq!(a, b);
    }

    #[test]
    fn latency_slows_convergence_time() {
        let g = path(60);
        let fast = AsyncSim::new(
            &g,
            AsyncSimConfig {
                delta: 10,
                latency: (1, 2),
                ..AsyncSimConfig::new(5)
            },
        )
        .run();
        let slow = AsyncSim::new(
            &g,
            AsyncSimConfig {
                delta: 10,
                latency: (50, 80),
                ..AsyncSimConfig::new(5)
            },
        )
        .run();
        assert!(
            slow.converged_at > fast.converged_at,
            "higher latency should delay convergence: {} vs {}",
            slow.converged_at,
            fast.converged_at
        );
    }

    #[test]
    fn event_cap_reports_non_convergence() {
        let g = gnp(50, 0.1, 8);
        let config = AsyncSimConfig {
            max_events: 10,
            ..AsyncSimConfig::new(2)
        };
        let result = AsyncSim::new(&g, config).run();
        assert!(!result.converged);
    }

    #[test]
    fn isolated_graph_drains_immediately() {
        let g = dkcore_graph::Graph::from_edges(4, []).unwrap();
        let result = AsyncSim::new(&g, AsyncSimConfig::new(0)).run();
        assert!(result.converged);
        assert_eq!(result.total_messages, 0);
        assert_eq!(result.final_estimates, vec![0; 4]);
    }

    #[test]
    fn loss_without_repair_keeps_safety_but_may_stall() {
        // §2's reliability assumption, probed: with 30% loss and no
        // repair, the run drains but estimates can be stuck ABOVE the
        // truth — never below (safety is loss-proof).
        let g = gnp(80, 0.08, 7);
        let truth = batagelj_zaversnik(&g);
        let config = AsyncSimConfig {
            loss_probability: 0.3,
            ..AsyncSimConfig::new(13)
        };
        let result = AsyncSim::new(&g, config).run();
        assert!(result.dropped_messages > 0, "loss must actually occur");
        for (u, (&est, &t)) in result.final_estimates.iter().zip(truth.iter()).enumerate() {
            assert!(est >= t, "safety violated at node {u}: {est} < {t}");
        }
    }

    #[test]
    fn anti_entropy_restores_convergence_under_loss() {
        for seed in 0..3 {
            let g = gnp(60, 0.08, 300 + seed);
            let truth = batagelj_zaversnik(&g);
            let config = AsyncSimConfig {
                loss_probability: 0.25,
                anti_entropy: 20,
                ..AsyncSimConfig::new(seed)
            };
            let result = AsyncSim::new(&g, config).run();
            assert!(result.dropped_messages > 0);
            assert_eq!(
                result.final_estimates, truth,
                "anti-entropy repair should reach the exact decomposition (seed {seed})"
            );
        }
    }

    #[test]
    fn anti_entropy_is_harmless_without_loss() {
        let g = gnp(50, 0.1, 4);
        let truth = batagelj_zaversnik(&g);
        let config = AsyncSimConfig {
            anti_entropy: 15,
            ..AsyncSimConfig::new(6)
        };
        let result = AsyncSim::new(&g, config).run();
        assert!(result.converged);
        assert_eq!(result.final_estimates, truth);
        assert_eq!(result.dropped_messages, 0);
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_loss_probability_panics() {
        let g = path(3);
        let config = AsyncSimConfig {
            loss_probability: 1.5,
            ..AsyncSimConfig::new(0)
        };
        let _ = AsyncSim::new(&g, config);
    }

    #[test]
    #[should_panic(expected = "flush period must be positive")]
    fn zero_delta_panics() {
        let g = path(3);
        let config = AsyncSimConfig {
            delta: 0,
            ..AsyncSimConfig::new(0)
        };
        let _ = AsyncSim::new(&g, config);
    }
}
