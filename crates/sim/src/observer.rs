//! Per-round observation hooks: the instrumentation behind the paper's
//! Table 2 and Figure 4.

use dkcore_metrics::Series;

use crate::RunResult;

/// Receives a callback after every simulated round.
///
/// `estimates` holds the current coreness estimate of every node (indexed
/// by node id); implementations typically compare them against the true
/// decomposition they were constructed with.
pub trait Observer {
    /// Called once per round, after all of the round's sends.
    fn on_round(&mut self, round: u32, estimates: &[u32], messages_this_round: u64);

    /// Called once when the run finishes.
    fn on_finish(&mut self, _result: &RunResult) {}
}

/// Tracks the evolution of the estimation error over rounds — the
/// instrumentation behind the paper's Figure 4.
///
/// Error at a node is `estimate − true coreness` (non-negative by the
/// safety theorem); the observer records the per-round average over all
/// nodes (left plot) and the per-round maximum (right plot).
///
/// # Example
///
/// ```
/// use dkcore_sim::{ErrorEvolutionObserver, NodeSim, NodeSimConfig};
/// use dkcore::seq::batagelj_zaversnik;
/// use dkcore_graph::generators::gnp;
///
/// let g = gnp(50, 0.1, 7);
/// let truth = batagelj_zaversnik(&g);
/// let mut obs = ErrorEvolutionObserver::new(truth);
/// let mut sim = NodeSim::new(&g, NodeSimConfig::random_order(1));
/// let mut det = dkcore::termination::CentralizedDetector::new();
/// sim.run_with(&mut det, &mut [&mut obs]);
/// // Converged: the last recorded average error is 0.
/// let avg = obs.avg_series("avg");
/// assert_eq!(avg.points().last().unwrap().1, 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct ErrorEvolutionObserver {
    truth: Vec<u32>,
    avg_points: Vec<(f64, f64)>,
    max_points: Vec<(f64, f64)>,
}

impl ErrorEvolutionObserver {
    /// Creates the observer from the true coreness values.
    pub fn new(truth: Vec<u32>) -> Self {
        ErrorEvolutionObserver {
            truth,
            avg_points: Vec::new(),
            max_points: Vec::new(),
        }
    }

    /// The average-error curve recorded so far, as a labeled series.
    pub fn avg_series(&self, label: impl Into<String>) -> Series {
        Series::from_points(label, self.avg_points.iter().copied())
    }

    /// The maximum-error curve recorded so far, as a labeled series.
    pub fn max_series(&self, label: impl Into<String>) -> Series {
        Series::from_points(label, self.max_points.iter().copied())
    }

    /// First round at which the *maximum* error dropped to ≤ `threshold`
    /// (the paper: "the maximum error is at most equal to 1 by cycle 22").
    pub fn first_round_max_error_at_most(&self, threshold: f64) -> Option<u32> {
        self.max_points
            .iter()
            .find(|&&(_, y)| y <= threshold)
            .map(|&(x, _)| x as u32)
    }
}

impl Observer for ErrorEvolutionObserver {
    fn on_round(&mut self, round: u32, estimates: &[u32], _messages: u64) {
        debug_assert_eq!(estimates.len(), self.truth.len());
        let n = estimates.len().max(1);
        let mut sum = 0u64;
        let mut max = 0u64;
        for (e, t) in estimates.iter().zip(self.truth.iter()) {
            let err = e.saturating_sub(*t) as u64;
            sum += err;
            max = max.max(err);
        }
        self.avg_points.push((round as f64, sum as f64 / n as f64));
        self.max_points.push((round as f64, max as f64));
    }
}

/// Tracks, per coreness class, the fraction of nodes still holding a wrong
/// estimate at a set of checkpoint rounds — the paper's Table 2 ("the
/// percentage of nodes in the given core that do not know the correct
/// coreness value after t rounds").
#[derive(Debug, Clone)]
pub struct CoreCompletionObserver {
    truth: Vec<u32>,
    checkpoints: Vec<u32>,
    /// `wrong[c][k]` = fraction of the k-shell wrong at checkpoint index c.
    wrong: Vec<Vec<f64>>,
    shell_sizes: Vec<usize>,
}

impl CoreCompletionObserver {
    /// Creates the observer from the true coreness values and the rounds
    /// at which snapshots should be taken (e.g. `[25, 50, …, 300]`).
    pub fn new(truth: Vec<u32>, checkpoints: Vec<u32>) -> Self {
        let kmax = truth.iter().copied().max().unwrap_or(0) as usize;
        let mut shell_sizes = vec![0usize; kmax + 1];
        for &t in &truth {
            shell_sizes[t as usize] += 1;
        }
        CoreCompletionObserver {
            truth,
            checkpoints,
            wrong: Vec::new(),
            shell_sizes,
        }
    }

    /// The checkpoint rounds.
    pub fn checkpoints(&self) -> &[u32] {
        &self.checkpoints
    }

    /// Number of nodes in the k-shell (the `#` column of Table 2).
    pub fn shell_size(&self, k: u32) -> usize {
        self.shell_sizes.get(k as usize).copied().unwrap_or(0)
    }

    /// Fraction (0..=1) of the k-shell still wrong at checkpoint index
    /// `c`, or `None` if that checkpoint was not reached.
    pub fn wrong_fraction(&self, c: usize, k: u32) -> Option<f64> {
        self.wrong
            .get(c)
            .map(|row| row.get(k as usize).copied().unwrap_or(0.0))
    }

    /// Largest coreness value present.
    pub fn max_coreness(&self) -> u32 {
        (self.shell_sizes.len().saturating_sub(1)) as u32
    }
}

impl Observer for CoreCompletionObserver {
    fn on_round(&mut self, round: u32, estimates: &[u32], _messages: u64) {
        // Snapshot only at checkpoints, in order.
        if self.wrong.len() >= self.checkpoints.len() || round != self.checkpoints[self.wrong.len()]
        {
            return;
        }
        let kmax = self.shell_sizes.len();
        let mut wrong_counts = vec![0usize; kmax];
        for (e, t) in estimates.iter().zip(self.truth.iter()) {
            if e != t {
                wrong_counts[*t as usize] += 1;
            }
        }
        let row: Vec<f64> = wrong_counts
            .iter()
            .zip(self.shell_sizes.iter())
            .map(|(&w, &s)| if s == 0 { 0.0 } else { w as f64 / s as f64 })
            .collect();
        self.wrong.push(row);
    }
}

/// Minimal observer recording the per-round message counts; handy for
/// tests and progress reports.
#[derive(Debug, Clone, Default)]
pub struct ProgressObserver {
    messages: Vec<u64>,
    finished: bool,
}

impl ProgressObserver {
    /// Creates the observer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Messages sent in each round, in order.
    pub fn messages_per_round(&self) -> &[u64] {
        &self.messages
    }

    /// Whether `on_finish` has been called.
    pub fn is_finished(&self) -> bool {
        self.finished
    }
}

impl Observer for ProgressObserver {
    fn on_round(&mut self, _round: u32, _estimates: &[u32], messages: u64) {
        self.messages.push(messages);
    }

    fn on_finish(&mut self, _result: &RunResult) {
        self.finished = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_observer_computes_avg_and_max() {
        let mut obs = ErrorEvolutionObserver::new(vec![1, 1, 2]);
        obs.on_round(1, &[3, 1, 2], 5); // errors 2,0,0
        obs.on_round(2, &[1, 1, 2], 1); // all correct
        let avg = obs.avg_series("a");
        assert_eq!(avg.points(), &[(1.0, 2.0 / 3.0), (2.0, 0.0)]);
        let max = obs.max_series("m");
        assert_eq!(max.points(), &[(1.0, 2.0), (2.0, 0.0)]);
        assert_eq!(obs.first_round_max_error_at_most(1.0), Some(2));
        assert_eq!(obs.first_round_max_error_at_most(2.0), Some(1));
    }

    #[test]
    fn completion_observer_snapshots_at_checkpoints() {
        let truth = vec![1, 1, 2, 2];
        let mut obs = CoreCompletionObserver::new(truth, vec![2, 4]);
        assert_eq!(obs.shell_size(1), 2);
        assert_eq!(obs.shell_size(2), 2);
        assert_eq!(obs.max_coreness(), 2);
        obs.on_round(1, &[9, 9, 9, 9], 0); // not a checkpoint: ignored
        obs.on_round(2, &[1, 9, 2, 9], 0); // half of each shell wrong
        obs.on_round(3, &[1, 1, 2, 2], 0); // not a checkpoint
        obs.on_round(4, &[1, 1, 2, 2], 0); // all correct
        assert_eq!(obs.wrong_fraction(0, 1), Some(0.5));
        assert_eq!(obs.wrong_fraction(0, 2), Some(0.5));
        assert_eq!(obs.wrong_fraction(1, 1), Some(0.0));
        assert_eq!(obs.wrong_fraction(2, 1), None); // only two checkpoints
    }

    #[test]
    fn completion_observer_handles_empty_shells() {
        // truth has no coreness-0 or coreness-2 nodes.
        let obs = CoreCompletionObserver::new(vec![1, 1, 3], vec![1]);
        assert_eq!(obs.shell_size(0), 0);
        assert_eq!(obs.shell_size(2), 0);
        assert_eq!(obs.shell_size(3), 1);
    }

    #[test]
    fn progress_observer_records_rounds() {
        let mut obs = ProgressObserver::new();
        obs.on_round(1, &[1], 10);
        obs.on_round(2, &[1], 0);
        assert_eq!(obs.messages_per_round(), &[10, 0]);
        assert!(!obs.is_finished());
    }
}
