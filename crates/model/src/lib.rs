//! `dkcore-model` — a bounded explicit-state model checker for the
//! protocol state machines.
//!
//! The oracle suites elsewhere in this workspace (`churn_oracle`,
//! `sharded_oracle`, `chaos_oracle`) *sample* executions: seeded random
//! schedules, checked against ground truth. This crate checks small
//! instances *exhaustively*: a protocol is refactored into an explicit
//! pure transition function (state × action → state), and the
//! [`Explorer`] enumerates every reachable state under every possible
//! action interleaving, checking invariants on each state and each
//! transition. On a bounded instance this is a proof, not a test: if the
//! exploration completes without a violation, **no** schedule of the
//! modeled actions can break the property at that instance size.
//!
//! # Checked properties and the instances they are proved at
//!
//! The concrete machines live next to the code they model — this crate is
//! a leaf and knows nothing about graphs or coreness. The workspace wires
//! up three model families (see `dkcore::machine` and
//! `dkcore_serve::machine`, and `dkcore model-check` on the CLI):
//!
//! | Property | Machine | Exhaustive at |
//! |----------|---------|---------------|
//! | Every terminal state has estimates ≡ Batagelj–Zaveršnik coreness (paper Theorems 4.1–4.3: termination + correctness) | `NodeNetModel` (one-to-one, §3.1), `HostNetModel` (one-to-many, §3.2) | graphs ≤ 6 nodes, every per-message / per-batch delivery interleaving; hosts ∈ {1, 2, 3} |
//! | Estimates are monotone non-increasing per node (Theorem 2 safety), and never drop below true coreness | same | same |
//! | Published epoch vectors are monotone, and no reachable reader observation mixes shard epochs (no torn stitched reads) | `PublishModel` (serve layer) | shards ∈ {1, 2}, ≤ 4 batches, ≤ 2 readers, kills at every point |
//! | Failover never loses an acknowledged batch: every quiescent healthy state has published exactly the acked log | `PublishModel` | same, replicas ∈ {0, 1, 2} |
//!
//! Larger instances get honest *bounded sweeps*: the paper's Figure-2
//! graph (8 nodes) exceeds the exhaustive node-model budget, so its CI
//! tier explores a 1M-state prefix and asserts no counterexample without
//! claiming a proof ([`Outcome::Capped`], never silently conflated with
//! [`Outcome::Exhausted`]).
//!
//! Beyond these bounded sizes the properties remain *sampled* by the
//! seeded oracle suites (hundreds of nodes, random schedules, fresh-BZ
//! comparison after every batch) — the checker proves the protocol
//! logic, the oracles keep watching the full-scale implementations the
//! machines are pinned to by the differential suites
//! (`machine_conformance` in `crates/core`, `model_conformance` in
//! `crates/serve`).
//!
//! # Exploration strategy
//!
//! Breadth-first by default: BFS visits states in distance order, so the
//! first invariant violation found is reached by a **minimal** action
//! trace — the shortest possible repro. States are deduplicated by full
//! structural equality behind a hash map (the `State: Hash + Eq` bound);
//! a canonical state representation is the machine author's contract —
//! order-independent collections must be kept sorted so that equal
//! states collide.
//!
//! When the BFS frontier outgrows memory budgets, [`Strategy::Dfs`]
//! explores depth-first with an explicit stack and a depth cap: same
//! dedup, much smaller frontier, counterexamples no longer minimal
//! (the report says which strategy produced a trace). Both strategies
//! stop at [`ExploreConfig::max_states`] and report
//! [`Outcome::Capped`] rather than silently claiming exhaustion.
//!
//! Counterexamples are replayable event sequences: every action on the
//! path from the initial state, rendered one per line in the flight
//! recorder's `seq=<n> kind=<name> ...` grammar (see
//! [`Counterexample::render`]), so a violation reads exactly like an
//! `EVENTS` tail from a live service.
//!
//! # Example
//!
//! ```
//! use dkcore_model::{ExploreConfig, Explorer, Machine, Outcome};
//!
//! /// A counter that must never reach 4 — but can, in 2 steps.
//! struct UpTo4;
//! impl Machine for UpTo4 {
//!     type State = u32;
//!     type Action = u32; // add 1 or 2
//!     fn initial(&self) -> u32 { 0 }
//!     fn actions(&self, s: &u32, out: &mut Vec<u32>) {
//!         if *s < 4 { out.extend([1, 2]); }
//!     }
//!     fn step(&self, s: &u32, a: &u32) -> u32 { s + a }
//!     fn invariant(&self, s: &u32) -> Result<(), String> {
//!         if *s == 4 { Err("reached 4".into()) } else { Ok(()) }
//!     }
//!     fn render_action(&self, a: &u32) -> String { format!("add {a}") }
//! }
//!
//! let report = Explorer::new(ExploreConfig::default()).run(&UpTo4);
//! let Outcome::Violation(cx) = &report.outcome else { panic!() };
//! assert_eq!(cx.trace.len(), 2); // BFS: minimal — 2+2, never 1+1+2
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod explore;
mod machine;

pub use explore::{Counterexample, ExploreConfig, Explorer, Outcome, Report, Strategy};
pub use machine::Machine;
