//! The [`Machine`] trait: a protocol as an explicit pure transition
//! function over explorable state.

use std::hash::Hash;

/// A nondeterministic state machine in the shape the [`crate::Explorer`]
/// can exhaust: an initial state, a finite set of enabled actions per
/// state, a **pure** transition function, and the properties to check.
///
/// # Contract
///
/// * `step` must be deterministic and side-effect-free: all
///   nondeterminism lives in *which* enabled action the explorer picks,
///   which is exactly what gets exhausted.
/// * `State`'s `Eq`/`Hash` define state identity for deduplication. Two
///   states that compare equal are treated as the same node of the
///   reachability graph, so the representation must be canonical:
///   order-independent collections (message pools, pending sets) must be
///   kept sorted by the machine, or semantically equal states will be
///   explored twice (sound but wasteful) — and semantically *different*
///   states must never compare equal (that would be unsound).
/// * `actions` returning no actions marks a terminal state; the
///   explorer then runs [`terminal`](Machine::terminal) on it.
pub trait Machine {
    /// Canonical, hashable protocol state.
    type State: Clone + Eq + Hash;
    /// One atomic protocol event (deliver a message, flush a node, kill
    /// a primary, pin a reader, ...).
    type Action: Clone;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// Appends every action enabled in `s` to `out` (which arrives
    /// empty). Deterministic order; an empty result marks `s` terminal.
    fn actions(&self, s: &Self::State, out: &mut Vec<Self::Action>);

    /// The pure transition function: the successor of `s` under `a`.
    /// Only called with actions that `actions(s, ..)` produced.
    fn step(&self, s: &Self::State, a: &Self::Action) -> Self::State;

    /// State invariant, checked on every reachable state (including the
    /// initial one). Return `Err(reason)` to report a violation.
    fn invariant(&self, _s: &Self::State) -> Result<(), String> {
        Ok(())
    }

    /// Transition invariant, checked on every explored edge — the home
    /// of monotonicity properties ("estimates never increase", "epochs
    /// never go backwards") that a single state cannot express.
    fn check_step(
        &self,
        _from: &Self::State,
        _a: &Self::Action,
        _to: &Self::State,
    ) -> Result<(), String> {
        Ok(())
    }

    /// Terminal-state check, run on states with no enabled actions —
    /// the home of convergence properties ("estimates equal the true
    /// coreness", "everything acked is published").
    fn terminal(&self, _s: &Self::State) -> Result<(), String> {
        Ok(())
    }

    /// One-line rendering of an action for counterexample traces.
    fn render_action(&self, a: &Self::Action) -> String;

    /// One-line rendering of a state, appended to counterexample traces
    /// after the violating step. The default elides it.
    fn render_state(&self, _s: &Self::State) -> String {
        String::new()
    }
}
