//! Bounded exhaustive exploration of a [`Machine`]'s reachability graph.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

use crate::Machine;

/// Search order. See the [crate docs](crate) for the trade-off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Breadth-first: counterexample traces are minimal; the frontier
    /// can grow as large as one BFS level. The default.
    #[default]
    Bfs,
    /// Depth-first with an explicit stack: frontier stays `O(depth ×
    /// branching)`, traces are not minimal. The fallback when a BFS
    /// level outgrows memory; [`ExploreConfig::max_depth`] bounds the
    /// recursion.
    Dfs,
}

/// Exploration bounds and strategy.
#[derive(Debug, Clone, Copy)]
pub struct ExploreConfig {
    /// Stop after this many distinct states and report
    /// [`Outcome::Capped`]. A cap is a safety net, not a target: a run
    /// that hits it proves nothing about unexplored states.
    pub max_states: usize,
    /// Maximum trace depth. States at this depth still have their
    /// invariants checked, but their successors are not expanded (and a
    /// cut-off state is not treated as terminal).
    pub max_depth: usize,
    /// Search order.
    pub strategy: Strategy,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_states: 1_000_000,
            max_depth: 10_000,
            strategy: Strategy::Bfs,
        }
    }
}

/// A violation, with the action path that reaches it from the initial
/// state.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// What failed: the `Err` payload of the invariant / step check /
    /// terminal check that fired.
    pub violation: String,
    /// Which check fired: `"invariant"`, `"step"`, or `"terminal"`.
    pub kind: &'static str,
    /// Rendered actions, in execution order, from the initial state to
    /// the violating state.
    pub trace: Vec<String>,
    /// Rendering of the violating state (may be empty — see
    /// [`Machine::render_state`]).
    pub state: String,
    /// Whether the producing strategy guarantees the trace is minimal
    /// (BFS does, DFS does not).
    pub minimal: bool,
}

impl Counterexample {
    /// Renders the trace as a replayable event sequence in the flight
    /// recorder's line grammar (`seq=<n> kind=<k> ...` — the same shape
    /// `dkcore query events` emits), followed by the violation:
    ///
    /// ```text
    /// seq=1 kind=action detail=deliver 0->1 k=1
    /// seq=2 kind=action detail=flush 1
    /// seq=3 kind=violation check=invariant detail=...
    /// ```
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (i, a) in self.trace.iter().enumerate() {
            let _ = writeln!(s, "seq={} kind=action detail={a}", i + 1);
        }
        let _ = writeln!(
            s,
            "seq={} kind=violation check={} detail={}",
            self.trace.len() + 1,
            self.kind,
            self.violation
        );
        if !self.state.is_empty() {
            let _ = writeln!(s, "state: {}", self.state);
        }
        let _ = writeln!(
            s,
            "({} trace)",
            if self.minimal {
                "minimal, breadth-first"
            } else {
                "depth-first, not necessarily minimal"
            }
        );
        s
    }
}

/// How an exploration ended.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Every reachable state (within `max_depth`) was visited and every
    /// check passed. On a full run with no depth cut-offs this is an
    /// exhaustive proof for the modeled instance.
    Exhausted {
        /// Number of states whose successors were *not* expanded
        /// because they sat at `max_depth`. 0 means the reachable
        /// space was truly exhausted.
        depth_cutoffs: usize,
    },
    /// The state cap stopped the search first; no violation found in
    /// the explored prefix, nothing proved beyond it.
    Capped,
    /// A check failed.
    Violation(Counterexample),
}

/// Exploration statistics + outcome.
#[derive(Debug, Clone)]
pub struct Report {
    /// Distinct states visited (after dedup).
    pub states: usize,
    /// Transitions executed.
    pub transitions: usize,
    /// Terminal states seen.
    pub terminals: usize,
    /// Deepest trace reached.
    pub max_depth_seen: usize,
    /// How the run ended.
    pub outcome: Outcome,
}

impl Report {
    /// `true` iff the run proved the instance: exhausted with no
    /// violation and no depth cut-offs.
    pub fn proved(&self) -> bool {
        matches!(self.outcome, Outcome::Exhausted { depth_cutoffs: 0 })
    }

    /// The counterexample, if the run found one.
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match &self.outcome {
            Outcome::Violation(cx) => Some(cx),
            _ => None,
        }
    }

    /// One summary line: `states=… transitions=… terminals=… depth=… result=…`.
    pub fn summary(&self) -> String {
        let result = match &self.outcome {
            Outcome::Exhausted { depth_cutoffs: 0 } => "proved".to_string(),
            Outcome::Exhausted { depth_cutoffs } => {
                format!("exhausted-with-{depth_cutoffs}-depth-cutoffs")
            }
            Outcome::Capped => "capped".to_string(),
            Outcome::Violation(_) => "VIOLATION".to_string(),
        };
        format!(
            "states={} transitions={} terminals={} depth={} result={result}",
            self.states, self.transitions, self.terminals, self.max_depth_seen
        )
    }
}

/// The bounded explorer. Create with a config, [`run`](Explorer::run)
/// against any [`Machine`].
#[derive(Debug, Clone, Default)]
pub struct Explorer {
    config: ExploreConfig,
}

/// Book-keeping per stored state: where it came from, for trace
/// reconstruction.
struct Visited<A> {
    parent: Option<(usize, A)>,
    depth: usize,
}

impl Explorer {
    /// Creates an explorer with the given bounds.
    pub fn new(config: ExploreConfig) -> Self {
        Explorer { config }
    }

    /// Exhaustively explores `m`'s reachable states within the bounds.
    pub fn run<M: Machine>(&self, m: &M) -> Report {
        let mut states: Vec<M::State> = Vec::new();
        let mut meta: Vec<Visited<M::Action>> = Vec::new();
        let mut ids: HashMap<M::State, usize> = HashMap::new();

        let mut report = Report {
            states: 0,
            transitions: 0,
            terminals: 0,
            max_depth_seen: 0,
            outcome: Outcome::Exhausted { depth_cutoffs: 0 },
        };
        let mut depth_cutoffs = 0usize;

        let init = m.initial();
        if let Err(e) = m.invariant(&init) {
            report.outcome = Outcome::Violation(Counterexample {
                violation: e,
                kind: "invariant",
                trace: Vec::new(),
                state: m.render_state(&init),
                minimal: true,
            });
            return report;
        }
        ids.insert(init.clone(), 0);
        states.push(init);
        meta.push(Visited {
            parent: None,
            depth: 0,
        });

        // One worklist serves both strategies: BFS pops the front, DFS
        // pops the back.
        let mut work: VecDeque<usize> = VecDeque::new();
        work.push_back(0);
        let mut scratch: Vec<M::Action> = Vec::new();

        while let Some(id) = match self.config.strategy {
            Strategy::Bfs => work.pop_front(),
            Strategy::Dfs => work.pop_back(),
        } {
            let depth = meta[id].depth;
            report.max_depth_seen = report.max_depth_seen.max(depth);

            scratch.clear();
            m.actions(&states[id], &mut scratch);
            if scratch.is_empty() {
                report.terminals += 1;
                if let Err(e) = m.terminal(&states[id]) {
                    report.states = states.len();
                    report.outcome =
                        Outcome::Violation(self.trace_to(m, &states, &meta, id, e, "terminal"));
                    return report;
                }
                continue;
            }
            if depth >= self.config.max_depth {
                depth_cutoffs += 1;
                continue;
            }

            // Drain into successors; scratch is reused across states.
            let actions = std::mem::take(&mut scratch);
            for a in &actions {
                let next = m.step(&states[id], a);
                report.transitions += 1;
                if let Err(e) = m.check_step(&states[id], a, &next) {
                    let mut cx = self.trace_to(m, &states, &meta, id, e, "step");
                    cx.trace.push(m.render_action(a));
                    cx.state = m.render_state(&next);
                    report.states = states.len();
                    report.outcome = Outcome::Violation(cx);
                    return report;
                }
                if let Err(e) = m.invariant(&next) {
                    let mut cx = self.trace_to(m, &states, &meta, id, e, "invariant");
                    cx.trace.push(m.render_action(a));
                    cx.state = m.render_state(&next);
                    report.states = states.len();
                    report.outcome = Outcome::Violation(cx);
                    return report;
                }
                match ids.entry(next) {
                    Entry::Occupied(_) => {}
                    Entry::Vacant(v) => {
                        let nid = states.len();
                        states.push(v.key().clone());
                        v.insert(nid);
                        meta.push(Visited {
                            parent: Some((id, a.clone())),
                            depth: depth + 1,
                        });
                        work.push_back(nid);
                    }
                }
                if states.len() >= self.config.max_states {
                    report.states = states.len();
                    report.outcome = Outcome::Capped;
                    return report;
                }
            }
            scratch = actions;
        }

        report.states = states.len();
        report.outcome = Outcome::Exhausted { depth_cutoffs };
        report
    }

    /// Reconstructs the action path from the initial state to `id`.
    fn trace_to<M: Machine>(
        &self,
        m: &M,
        states: &[M::State],
        meta: &[Visited<M::Action>],
        id: usize,
        violation: String,
        kind: &'static str,
    ) -> Counterexample {
        let mut actions: Vec<String> = Vec::new();
        let mut cur = id;
        while let Some((parent, a)) = &meta[cur].parent {
            actions.push(m.render_action(a));
            cur = *parent;
        }
        actions.reverse();
        Counterexample {
            violation,
            kind,
            trace: actions,
            state: m.render_state(&states[id]),
            minimal: self.config.strategy == Strategy::Bfs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tokens move from `pending` to `done` in any order; the terminal
    /// state must have them all. `poison` makes one ordering lose a
    /// token, to exercise counterexamples.
    struct Tokens {
        n: u32,
        poison: bool,
    }

    #[derive(Clone, PartialEq, Eq, Hash)]
    struct TState {
        pending: Vec<u32>, // kept sorted: canonical
        done: Vec<u32>,    // kept sorted: canonical
    }

    impl Machine for Tokens {
        type State = TState;
        type Action = u32;

        fn initial(&self) -> TState {
            TState {
                pending: (0..self.n).collect(),
                done: Vec::new(),
            }
        }

        fn actions(&self, s: &TState, out: &mut Vec<u32>) {
            out.extend(s.pending.iter().copied());
        }

        fn step(&self, s: &TState, a: &u32) -> TState {
            let mut next = s.clone();
            next.pending.retain(|t| t != a);
            // The seeded bug: token 1 processed before token 0 is lost.
            if !(self.poison && *a == 1 && s.pending.contains(&0)) {
                next.done.push(*a);
                next.done.sort_unstable();
            }
            next
        }

        fn check_step(&self, from: &TState, _a: &u32, to: &TState) -> Result<(), String> {
            if to.done.len() < from.done.len() {
                return Err("done shrank".into());
            }
            Ok(())
        }

        fn terminal(&self, s: &TState) -> Result<(), String> {
            if s.done.len() == self.n as usize {
                Ok(())
            } else {
                Err(format!("lost {} token(s)", self.n as usize - s.done.len()))
            }
        }

        fn render_action(&self, a: &u32) -> String {
            format!("process token {a}")
        }

        fn render_state(&self, s: &TState) -> String {
            format!("pending={:?} done={:?}", s.pending, s.done)
        }
    }

    #[test]
    fn exhausts_all_interleavings() {
        // n tokens: states = subsets ordered by what's done = 2^n.
        let report = Explorer::default().run(&Tokens {
            n: 4,
            poison: false,
        });
        assert!(report.proved(), "{}", report.summary());
        assert_eq!(report.states, 16);
        assert_eq!(report.terminals, 1);
        // 4·2^3 edges.
        assert_eq!(report.transitions, 32);
        assert_eq!(report.max_depth_seen, 4);
    }

    #[test]
    fn finds_minimal_counterexample() {
        let report = Explorer::default().run(&Tokens { n: 4, poison: true });
        let cx = report.counterexample().expect("must violate");
        assert!(cx.minimal);
        assert_eq!(cx.kind, "terminal");
        // Minimal repro: process 1 (lost), then 0, 2, 3 → 4 actions;
        // no shorter path reaches a bad terminal.
        assert_eq!(cx.trace.len(), 4, "trace: {:?}", cx.trace);
        assert_eq!(cx.trace[0], "process token 1");
        let rendered = cx.render();
        assert!(rendered.contains("seq=1 kind=action detail=process token 1"));
        assert!(rendered.contains("kind=violation check=terminal"));
        assert!(rendered.contains("minimal"));
    }

    #[test]
    fn dfs_finds_the_same_violation_without_minimality_claim() {
        let cfg = ExploreConfig {
            strategy: Strategy::Dfs,
            ..ExploreConfig::default()
        };
        let report = Explorer::new(cfg).run(&Tokens { n: 4, poison: true });
        let cx = report.counterexample().expect("must violate");
        assert!(!cx.minimal);
        assert!(cx.render().contains("depth-first"));
    }

    #[test]
    fn state_cap_reports_capped() {
        let cfg = ExploreConfig {
            max_states: 5,
            ..ExploreConfig::default()
        };
        let report = Explorer::new(cfg).run(&Tokens {
            n: 5,
            poison: false,
        });
        assert!(matches!(report.outcome, Outcome::Capped));
        assert!(!report.proved());
    }

    #[test]
    fn depth_cap_reports_cutoffs() {
        let cfg = ExploreConfig {
            max_depth: 2,
            ..ExploreConfig::default()
        };
        let report = Explorer::new(cfg).run(&Tokens {
            n: 4,
            poison: false,
        });
        match report.outcome {
            Outcome::Exhausted { depth_cutoffs } => assert!(depth_cutoffs > 0),
            ref o => panic!("unexpected outcome {o:?}"),
        }
        assert!(!report.proved());
    }

    #[test]
    fn initial_state_invariant_is_checked() {
        struct BadInit;
        impl Machine for BadInit {
            type State = u32;
            type Action = ();
            fn initial(&self) -> u32 {
                7
            }
            fn actions(&self, _: &u32, _: &mut Vec<()>) {}
            fn step(&self, s: &u32, _: &()) -> u32 {
                *s
            }
            fn invariant(&self, s: &u32) -> Result<(), String> {
                if *s == 7 {
                    Err("born broken".into())
                } else {
                    Ok(())
                }
            }
            fn render_action(&self, _: &()) -> String {
                String::new()
            }
        }
        let report = Explorer::default().run(&BadInit);
        let cx = report.counterexample().expect("must violate");
        assert!(cx.trace.is_empty());
        assert_eq!(cx.kind, "invariant");
    }

    #[test]
    fn step_check_fires_with_the_offending_action_on_the_trace() {
        struct Drop2;
        impl Machine for Drop2 {
            type State = u32;
            type Action = u32;
            fn initial(&self) -> u32 {
                10
            }
            fn actions(&self, s: &u32, out: &mut Vec<u32>) {
                if *s > 0 {
                    out.extend([1, 2]);
                }
            }
            fn step(&self, s: &u32, a: &u32) -> u32 {
                s.saturating_sub(*a)
            }
            fn check_step(&self, from: &u32, _: &u32, to: &u32) -> Result<(), String> {
                if from - to > 1 {
                    Err(format!("dropped by {} (max 1)", from - to))
                } else {
                    Ok(())
                }
            }
            fn render_action(&self, a: &u32) -> String {
                format!("sub {a}")
            }
        }
        let report = Explorer::default().run(&Drop2);
        let cx = report.counterexample().expect("must violate");
        assert_eq!(cx.kind, "step");
        assert_eq!(cx.trace.last().map(String::as_str), Some("sub 2"));
        assert_eq!(cx.trace.len(), 1); // minimal: the very first step
    }
}
