//! The `dkcore` command-line tool. See [`dkcore_cli::USAGE`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    match dkcore_cli::dispatch(&args, &mut out) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
