//! Command implementations for the `dkcore` command-line tool.
//!
//! Four subcommands, mirroring what a downstream user does with the
//! library:
//!
//! ```text
//! dkcore stats     <input>                         graph statistics (Table-1 style)
//! dkcore decompose <input> [--algorithm A]         coreness of every node
//! dkcore simulate  <input> [--hosts H] [...]       run the distributed protocols
//! dkcore stream    <input> [--batch B] [...]       maintain coreness under edge churn
//! dkcore serve     <input> [--port P] [...]        query service over churning graph
//! dkcore query     --port P <command> [...]        query a running service
//! dkcore generate  <analog> --nodes N [...]        emit a synthetic dataset
//! dkcore model-check [--scenario S] [...]          exhaustively check the machines
//! ```
//!
//! `<input>` is either a path to a SNAP-style edge list or `analog:NAME`
//! (optionally `analog:NAME:NODES`) for one of the built-in dataset
//! analogs. All commands are deterministic given `--seed`.
//!
//! The heavy lifting lives in library functions that write to any
//! `io::Write`, so the test suite drives them directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;
use std::io::Write;

use dkcore::one_to_many::DisseminationPolicy;
use dkcore::seq::{batagelj_zaversnik, naive_peeling};
use dkcore::CoreDecomposition;
use dkcore_graph::{io as graph_io, metrics, Graph};
use dkcore_metrics::Table;
use dkcore_pregel::{KCoreProgram, Pregel};
use dkcore_sim::{
    ActiveSetConfig, ActiveSetEngine, ActiveSetHostConfig, ActiveSetHostEngine, HostSim,
    HostSimConfig, NodeSim, NodeSimConfig,
};

/// Error produced by CLI parsing or execution.
#[derive(Debug)]
pub struct CliError(String);

impl CliError {
    fn new(msg: impl Into<String>) -> Self {
        CliError(msg.into())
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Error for CliError {}

impl From<dkcore_graph::GraphError> for CliError {
    fn from(e: dkcore_graph::GraphError) -> Self {
        CliError(e.to_string())
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(e.to_string())
    }
}

/// Usage text shown by `dkcore help` and on argument errors.
pub const USAGE: &str = "\
dkcore — distributed k-core decomposition toolkit

USAGE:
  dkcore stats     <input> [--seed S]
  dkcore decompose <input> [--algorithm bz|naive|protocol|pregel] [--shells] [--seed S]
  dkcore simulate  <input> [--hosts H] [--policy broadcast|p2p] [--mode sync|random]
                            [--engine legacy|active-set] [--threads T]
                            [--reps R] [--seed S]
  dkcore stream    <input> [--batch B] [--steps S]
                            [--workload sliding-window|insert-heavy|adversarial|hotspot|mixed]
                            [--engine batched|per-edge|warm-dist] [--threads T]
                            [--insert-pct P] [--report-json FILE] [--seed S]
  dkcore serve     <input> [--port P] [--batch B] [--steps S] [--shards S]
                            [--replicas R] [--fault-plan SPEC] [--pin-cores]
                            [--workload ...] [--insert-pct P] [--interval-ms MS]
                            [--events-capacity N] [--no-wait] [--seed S]
  dkcore query     --port P <coreness V | members K [offset O] [limit L] |
                             subgraph K | hist | topk N [offset O] |
                             epoch | health [--json] | metrics |
                             events [since S] [limit N] | shutdown>
  dkcore generate  <analog> --nodes N [--seed S] [--out FILE]
  dkcore model-check [--scenario node|host|publish|all] [--max-states N]
                     [--max-depth D]
  dkcore list-analogs
  dkcore help

INPUT:
  a SNAP-style edge-list file, or  analog:NAME[:NODES]  for a built-in
  synthetic dataset (see `dkcore list-analogs`).

STREAM ENGINES:
  batched   repair each batch in one amortized pass (StreamCore; default)
  per-edge  replay every mutation through DynamicCore, one repair per edge
  warm-dist re-converge the distributed protocol per batch, warm-started
            from batch-safe upper bounds (vs a cold start, for comparison)

SERVE:
  runs the epoch-snapshot query service (dkcore-serve): one writer applies
  the churn workload batch by batch, publishing an immutable snapshot per
  epoch; concurrent readers query over a TCP line protocol. `--port 0`
  picks an ephemeral port (printed on startup). Unless --no-wait is given
  the command keeps serving after the churn until a client sends
  `shutdown` (`dkcore query --port P shutdown`). With `--shards S` (S > 1)
  the graph is partitioned over S shard writers that re-converge via
  border-estimate exchange; queries are answered by the stitching front
  end against a consistent vector of per-shard epochs — same protocol,
  same answers. `--replicas R` keeps R standby writers per partition so
  a killed primary fails over by replaying the batch log; `--fault-plan`
  injects deterministic faults into the border exchange for chaos runs,
  e.g. `seed=7,drop=10,delay=5:3,kill=0@4` (drop/dup/delay are percents,
  kill=SHARD@EPOCH[:ROUND], stall=SHARD@EPOCH:ROUNDS). `dkcore query
  --port P health` reports writer/partition liveness, deferred-batch
  lag, and border-exchange round timing/utilization without touching
  the query path. `--pin-cores` best-effort pins the persistent shard
  drain workers to distinct cores (ignored where unsupported).

OBSERVABILITY:
  every serve backend carries one telemetry bundle: a metrics registry
  (publish/repair phase latencies, exchange rounds, pool utilization,
  per-verb wire counters, response-cache hits/misses) and a bounded
  event flight recorder (batch/publish/failover/promotion/degraded/
  revive history). `dkcore query --port P metrics` dumps the registry
  in Prometheus text form; `dkcore query --port P events [since S]
  [limit N]` replays the recorder (cursor on the `last=` header field);
  `query health --json` emits the health line as a JSON object.
  `--events-capacity N` sizes the recorder ring (default 1024); serve
  echoes failover/degradation/revive events to stderr as they happen,
  sourced from the same recorder.

MODEL CHECK:
  exhaustively explores the pure protocol state machines (dkcore-model)
  on small fixed instances, checking the paper's safety properties on
  every reachable interleaving: Theorem-2 lower bounds and monotone
  estimates for the one-to-one and one-to-many protocols, and epoch
  monotonicity / atomic-flip consistency / no-lost-acked-batch for the
  sharded publish+failover pipeline. Exit is nonzero with a minimal
  counterexample trace (flight-recorder format) on any violation;
  instances that exceed --max-states are reported as `capped`, not
  failures. `--scenario` picks one machine family (default: all).
";

/// Resolves an `<input>` argument into a graph.
///
/// # Errors
///
/// Returns [`CliError`] for unknown analogs or unreadable files.
pub fn load_input(input: &str, seed: u64) -> Result<Graph, CliError> {
    if let Some(rest) = input.strip_prefix("analog:") {
        let mut parts = rest.splitn(2, ':');
        let name = parts.next().expect("non-empty split");
        let spec = dkcore_data::by_name(name).ok_or_else(|| {
            CliError::new(format!(
                "unknown analog {name:?}; try `dkcore list-analogs`"
            ))
        })?;
        let graph = match parts.next() {
            Some(nodes) => {
                let n: usize = nodes
                    .parse()
                    .map_err(|_| CliError::new(format!("invalid node count {nodes:?}")))?;
                spec.build_scaled(n, seed)
            }
            None => spec.build_default(seed),
        };
        Ok(graph)
    } else {
        let (g, _) = graph_io::read_edge_list_file(input)?;
        Ok(g)
    }
}

/// `dkcore stats`: Table-1-style statistics for one graph.
///
/// # Errors
///
/// Returns [`CliError`] on input or output failures.
pub fn cmd_stats<W: Write>(input: &str, seed: u64, out: &mut W) -> Result<(), CliError> {
    let g = load_input(input, seed)?;
    let decomp = CoreDecomposition::compute(&g);
    let mut t = Table::new(["metric", "value"]);
    t.row(["nodes |V|", &g.node_count().to_string()]);
    t.row(["edges |E|", &g.edge_count().to_string()]);
    t.row(["max degree", &g.max_degree().to_string()]);
    t.row(["avg degree", &format!("{:.2}", g.avg_degree())]);
    t.row([
        "diameter (approx)",
        &metrics::approx_diameter(&g, 4).to_string(),
    ]);
    t.row([
        "components",
        &metrics::connected_components(&g).0.to_string(),
    ]);
    t.row(["max coreness", &decomp.max_coreness().to_string()]);
    t.row(["avg coreness", &format!("{:.2}", decomp.avg_coreness())]);
    write!(out, "{t}")?;
    Ok(())
}

/// `dkcore decompose`: coreness of every node via the chosen algorithm.
///
/// With `shells = true` prints the shell-size histogram instead of the
/// per-node list.
///
/// # Errors
///
/// Returns [`CliError`] for unknown algorithms and I/O failures.
pub fn cmd_decompose<W: Write>(
    input: &str,
    algorithm: &str,
    shells: bool,
    seed: u64,
    out: &mut W,
) -> Result<(), CliError> {
    let g = load_input(input, seed)?;
    let coreness: Vec<u32> = match algorithm {
        "bz" => batagelj_zaversnik(&g),
        "naive" => naive_peeling(&g),
        "protocol" => {
            NodeSim::new(&g, NodeSimConfig::random_order(seed))
                .run()
                .final_estimates
        }
        "pregel" => Pregel::new(4)
            .run(&g, &KCoreProgram::default())
            .states
            .iter()
            .map(|s| s.core)
            .collect(),
        other => {
            return Err(CliError::new(format!(
                "unknown algorithm {other:?}; expected bz|naive|protocol|pregel"
            )))
        }
    };
    if shells {
        let d = CoreDecomposition::from_coreness(coreness);
        let mut t = Table::new(["k-shell", "nodes"]);
        for (k, &size) in d.shell_sizes().iter().enumerate() {
            if size > 0 {
                t.row([k.to_string(), size.to_string()]);
            }
        }
        write!(out, "{t}")?;
    } else {
        writeln!(out, "# node\tcoreness")?;
        for (u, k) in coreness.iter().enumerate() {
            writeln!(out, "{u}\t{k}")?;
        }
    }
    Ok(())
}

/// `dkcore simulate`: run the distributed protocol and report rounds and
/// message statistics.
///
/// `hosts == 0` selects the one-to-one protocol; otherwise the one-to-many
/// protocol over that many hosts. `engine` picks the simulator: `legacy`
/// (the reference engines, both modes) or `active-set` (the flat parallel
/// fast path — synchronous mode only, bit-identical results). `threads`
/// controls active-set sharding (`0` = automatic).
///
/// # Errors
///
/// Returns [`CliError`] for invalid options and I/O failures.
#[allow(clippy::too_many_arguments)]
pub fn cmd_simulate<W: Write>(
    input: &str,
    hosts: usize,
    policy: &str,
    mode: &str,
    engine: &str,
    threads: usize,
    reps: u32,
    seed: u64,
    out: &mut W,
) -> Result<(), CliError> {
    let g = load_input(input, seed)?;
    let active_set = match engine {
        "legacy" => false,
        "active-set" => true,
        other => {
            return Err(CliError::new(format!(
                "unknown engine {other:?}; expected legacy|active-set"
            )))
        }
    };
    if active_set && mode != "sync" {
        return Err(CliError::new(
            "--engine active-set requires --mode sync (the fast path is synchronous-only)",
        ));
    }
    let truth = batagelj_zaversnik(&g);
    let mut t = Table::new(["rep", "rounds", "exec-time", "messages", "correct"]);
    for rep in 0..reps.max(1) {
        let rep_seed = dkcore_sim::experiment::repetition_seed(seed, rep);
        let (rounds, exec, messages, estimates) = if hosts == 0 {
            let config = match mode {
                "sync" => NodeSimConfig::synchronous(),
                "random" => NodeSimConfig::random_order(rep_seed),
                other => return Err(CliError::new(format!("unknown mode {other:?}"))),
            };
            let r = if active_set {
                let mut fast = ActiveSetConfig::with_protocol(config.protocol);
                fast.threads = threads;
                ActiveSetEngine::new(&g, fast).run()
            } else {
                NodeSim::new(&g, config).run()
            };
            (
                r.rounds_executed,
                r.execution_time,
                r.total_messages,
                r.final_estimates,
            )
        } else {
            let mut config = match mode {
                "sync" => HostSimConfig::synchronous(hosts),
                "random" => HostSimConfig::random_order(hosts, rep_seed),
                other => return Err(CliError::new(format!("unknown mode {other:?}"))),
            };
            config.protocol.policy = match policy {
                "broadcast" => DisseminationPolicy::Broadcast,
                "p2p" => DisseminationPolicy::PointToPoint,
                other => return Err(CliError::new(format!("unknown policy {other:?}"))),
            };
            let r = if active_set {
                ActiveSetHostEngine::new(
                    &g,
                    ActiveSetHostConfig {
                        hosts: config.hosts,
                        assignment: config.assignment,
                        protocol: config.protocol,
                        threads,
                        max_rounds: config.max_rounds,
                    },
                )
                .run()
            } else {
                HostSim::new(&g, config).run()
            };
            (
                r.rounds_executed,
                r.execution_time,
                r.total_messages,
                r.final_estimates,
            )
        };
        let correct = estimates == truth;
        t.row([
            rep.to_string(),
            rounds.to_string(),
            exec.to_string(),
            messages.to_string(),
            correct.to_string(),
        ]);
    }
    write!(out, "{t}")?;
    Ok(())
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Resolves a `--workload` name against a loaded graph.
fn parse_workload(
    name: &str,
    batch: usize,
    node_count: usize,
    insert_pct: u32,
) -> Result<dkcore_data::ChurnWorkload, CliError> {
    use dkcore_data::ChurnWorkload;
    Ok(match name {
        "sliding-window" => ChurnWorkload::SlidingWindow { window: 2 * batch },
        "insert-heavy" => ChurnWorkload::InsertHeavy { remove_every: 8 },
        "adversarial" => ChurnWorkload::Adversarial,
        "hotspot" => ChurnWorkload::Hotspot {
            span: (node_count / 20).max(16),
            remove_every: 8,
        },
        "mixed" => ChurnWorkload::Mixed { insert_pct },
        other => {
            return Err(CliError::new(format!(
                "unknown workload {other:?}; expected \
                 sliding-window|insert-heavy|adversarial|hotspot|mixed"
            )))
        }
    })
}

/// `dkcore stream`: run an edge-churn stream and maintain the coreness
/// decomposition with the chosen engine, verifying every step against the
/// sequential ground truth.
///
/// Engines: `batched` repairs whole batches through
/// [`dkcore::stream::StreamCore`]; `per-edge` replays each mutation
/// through [`dkcore::dynamic::DynamicCore`]; `warm-dist` re-converges the
/// distributed protocol per batch via a warm-started
/// [`ActiveSetEngine`](dkcore_sim::ActiveSetEngine), reporting warm vs
/// cold round counts.
///
/// With `report_json = Some(path)`, a machine-readable summary of the run
/// (per-step rows plus totals, same flat `results` shape as the
/// `BENCH_PR*.json` artifacts) is written to `path` in addition to the
/// table on `out`.
///
/// # Errors
///
/// Returns [`CliError`] for invalid options and I/O failures.
#[allow(clippy::too_many_arguments)]
pub fn cmd_stream<W: Write>(
    input: &str,
    batch: usize,
    steps: usize,
    workload: &str,
    engine: &str,
    threads: usize,
    insert_pct: u32,
    report_json: Option<&str>,
    seed: u64,
    out: &mut W,
) -> Result<(), CliError> {
    use dkcore::dynamic::DynamicCore;
    use dkcore::stream::{warm_start_estimates_batch, StreamCore};
    use dkcore_sim::ActiveSetConfig;
    use std::fmt::Write as _;

    let g = load_input(input, seed)?;
    if g.node_count() < 2 {
        return Err(CliError::new("stream needs a graph with at least 2 nodes"));
    }
    let workload_name = workload;
    let workload = parse_workload(workload, batch, g.node_count(), insert_pct)?;
    let stream = dkcore_data::churn_stream(&g, workload, steps, batch, seed);

    let mut all_correct = true;
    let mut json_rows: Vec<String> = Vec::new();
    let mut total_mutations = 0usize;
    match engine {
        "batched" | "per-edge" => {
            let batched = engine == "batched";
            // --threads T > 1 turns on the region-parallel descent
            // (bit-identical results; see the stream-module docs).
            let mut sc = batched.then(|| StreamCore::new(&g).with_threads(threads));
            let mut dc = (!batched).then(|| DynamicCore::new(&g));
            let mut t = Table::new([
                "step",
                "inserts",
                "removals",
                "candidates",
                "changed",
                "correct",
            ]);
            for (i, b) in stream.iter().enumerate() {
                let (candidates, changed, values, graph) = if let Some(dc) = dc.as_mut() {
                    let mut candidates = 0usize;
                    let mut changed = 0usize;
                    for &(u, v) in b.removals() {
                        let s = dc
                            .remove_edge(u, v)
                            .map_err(|e| CliError::new(e.to_string()))?;
                        candidates += s.candidates;
                        changed += s.changed;
                    }
                    for &(u, v) in b.insertions() {
                        let s = dc
                            .insert_edge(u, v)
                            .map_err(|e| CliError::new(e.to_string()))?;
                        candidates += s.candidates;
                        changed += s.changed;
                    }
                    (candidates, changed, dc.values().to_vec(), dc.to_graph())
                } else {
                    let sc = sc.as_mut().expect("batched engine");
                    let s = sc
                        .apply_batch(b)
                        .map_err(|e| CliError::new(e.to_string()))?;
                    (s.candidates, s.changed, sc.values().to_vec(), sc.to_graph())
                };
                let correct = values == batagelj_zaversnik(&graph);
                all_correct &= correct;
                total_mutations += b.len();
                let mut row = String::new();
                let _ = write!(
                    row,
                    "{{\"graph\": \"step{i}\", \"step\": {i}, \"inserts\": {}, \
                     \"removals\": {}, \"candidates\": {candidates}, \
                     \"changed\": {changed}, \"correct\": {correct}}}",
                    b.insertions().len(),
                    b.removals().len(),
                );
                json_rows.push(row);
                t.row([
                    i.to_string(),
                    b.insertions().len().to_string(),
                    b.removals().len().to_string(),
                    candidates.to_string(),
                    changed.to_string(),
                    correct.to_string(),
                ]);
            }
            write!(out, "{t}")?;
        }
        "warm-dist" => {
            let mut sc = StreamCore::new(&g);
            let mut t = Table::new([
                "step",
                "inserts",
                "removals",
                "warm-rounds",
                "cold-rounds",
                "warm-msgs",
                "correct",
            ]);
            for (i, b) in stream.iter().enumerate() {
                let old = sc.values().to_vec();
                sc.apply_batch(b)
                    .map_err(|e| CliError::new(e.to_string()))?;
                let new_graph = sc.to_graph();
                let est =
                    warm_start_estimates_batch(&old, &new_graph, b.insertions(), b.removals());
                let cfg = ActiveSetConfig {
                    threads,
                    ..Default::default()
                };
                let warm = ActiveSetEngine::with_estimates(&new_graph, cfg, &est).run();
                let cold = ActiveSetEngine::new(&new_graph, cfg).run();
                let correct =
                    warm.final_estimates == sc.values() && cold.final_estimates == sc.values();
                all_correct &= correct;
                total_mutations += b.len();
                let mut row = String::new();
                let _ = write!(
                    row,
                    "{{\"graph\": \"step{i}\", \"step\": {i}, \"inserts\": {}, \
                     \"removals\": {}, \"warm_rounds\": {}, \"cold_rounds\": {}, \
                     \"warm_messages\": {}, \"correct\": {correct}}}",
                    b.insertions().len(),
                    b.removals().len(),
                    warm.rounds_executed,
                    cold.rounds_executed,
                    warm.total_messages,
                );
                json_rows.push(row);
                t.row([
                    i.to_string(),
                    b.insertions().len().to_string(),
                    b.removals().len().to_string(),
                    warm.rounds_executed.to_string(),
                    cold.rounds_executed.to_string(),
                    warm.total_messages.to_string(),
                    correct.to_string(),
                ]);
            }
            write!(out, "{t}")?;
        }
        other => {
            return Err(CliError::new(format!(
                "unknown engine {other:?}; expected batched|per-edge|warm-dist"
            )))
        }
    }
    if let Some(path) = report_json {
        let mut json = String::from("{\n  \"command\": \"stream\",\n");
        let _ = writeln!(json, "  \"input\": \"{}\",", json_escape(input));
        let _ = writeln!(json, "  \"engine\": \"{engine}\",");
        let _ = writeln!(json, "  \"workload\": \"{workload_name}\",");
        let _ = writeln!(json, "  \"batch\": {batch},");
        let _ = writeln!(json, "  \"steps\": {},", json_rows.len());
        let _ = writeln!(json, "  \"seed\": {seed},");
        let _ = writeln!(json, "  \"total_mutations\": {total_mutations},");
        let _ = writeln!(json, "  \"all_correct\": {all_correct},");
        json.push_str("  \"results\": [\n");
        for (i, row) in json_rows.iter().enumerate() {
            json.push_str("    ");
            json.push_str(row);
            json.push_str(if i + 1 < json_rows.len() { ",\n" } else { "\n" });
        }
        json.push_str("  ]\n}\n");
        std::fs::write(path, json)?;
    }
    if !all_correct {
        return Err(CliError::new("stream verification failed (see table)"));
    }
    Ok(())
}

/// `dkcore serve`: run the epoch-snapshot query service over a churning
/// graph (see [`dkcore_serve`]).
///
/// Starts the TCP front end on `127.0.0.1:port` (`0` = ephemeral; the
/// bound port is printed first), then applies `steps` churn batches
/// through the writer — publishing one epoch each, `interval_ms` apart —
/// and reports per-epoch stats plus repair/publish-latency percentiles.
/// With `shards > 1` the graph is partitioned over that many shard
/// writers (`ShardedCoreService`) and queries are answered by the
/// stitching front end; the wire protocol is identical. `replicas`
/// standby writers per partition enable failover, and `fault_plan`
/// (the `--fault-plan` spec; empty = no faults) injects deterministic
/// drop/delay/duplicate/kill/stall faults into the border exchange.
/// With `wait` the service then keeps serving queries until a client
/// sends `SHUTDOWN`; otherwise it exits once the churn is exhausted.
///
/// # Errors
///
/// Returns [`CliError`] for invalid options and I/O failures.
#[allow(clippy::too_many_arguments)]
pub fn cmd_serve<W: Write>(
    input: &str,
    port: u16,
    workload: &str,
    batch: usize,
    steps: usize,
    shards: usize,
    replicas: usize,
    fault_plan: &str,
    pin_cores: bool,
    insert_pct: u32,
    interval_ms: u64,
    events_capacity: usize,
    wait: bool,
    seed: u64,
    out: &mut W,
) -> Result<(), CliError> {
    use dkcore_metrics::{EventKind, Percentiles, Telemetry};
    use dkcore_serve::{wire, CoreService, FaultPlan, ShardedConfig, ShardedCoreService};

    let g = load_input(input, seed)?;
    if g.node_count() < 2 {
        return Err(CliError::new("serve needs a graph with at least 2 nodes"));
    }
    let plan = if fault_plan.is_empty() {
        FaultPlan::none()
    } else {
        FaultPlan::parse(fault_plan).map_err(|e| CliError::new(format!("--fault-plan: {e}")))?
    };
    if shards <= 1 && (replicas > 0 || !plan.is_none() || pin_cores) {
        return Err(CliError::new(
            "--replicas, --fault-plan, and --pin-cores require --shards > 1 \
             (replication, fault injection, and the pinned worker pool live \
             in the sharded backend)",
        ));
    }
    let workload = parse_workload(workload, batch, g.node_count(), insert_pct)?;
    let stream = dkcore_data::churn_stream(&g, workload, steps, batch, seed);

    // One apply/report arm per backend; everything else is shared. Boxed
    // so the enum stays pointer-sized (the services embed large state).
    enum Backend {
        Single(Box<CoreService>),
        Sharded(Box<ShardedCoreService>),
    }
    let tel = Telemetry::new(events_capacity.max(1));
    let mut backend = if shards > 1 {
        let config = ShardedConfig {
            replicas,
            fault_plan: plan,
            pin: pin_cores,
            telemetry: tel.clone(),
            ..ShardedConfig::default()
        };
        Backend::Sharded(Box::new(ShardedCoreService::with_config(
            &g, shards, config,
        )))
    } else {
        Backend::Single(Box::new(CoreService::with_telemetry(&g, tel.clone())))
    };
    let server = match &backend {
        Backend::Single(svc) => wire::serve(svc.handle(), ("127.0.0.1", port))?,
        Backend::Sharded(svc) => wire::serve(svc.handle(), ("127.0.0.1", port))?,
    };
    writeln!(
        out,
        "listening on 127.0.0.1:{} (epoch 0: {} nodes, {} edges{})",
        server.port(),
        g.node_count(),
        g.edge_count(),
        if shards > 1 {
            format!(", {shards} shards")
        } else {
            String::new()
        }
    )?;

    let mut t = Table::new(["epoch", "inserts", "removals", "changed", "publish-us"]);
    let mut repair = Percentiles::new();
    let mut publish = Percentiles::new();
    let mut failovers = 0u32;
    let mut resends = 0u64;
    // Lifecycle events (failover, degradation, revival) are echoed to
    // stderr as they happen, sourced from the flight recorder — the
    // same stream `dkcore query events` replays later.
    let mut event_cursor = 0u64;
    let echo_events = |cursor: &mut u64| {
        for e in tel.events_since(*cursor, usize::MAX) {
            *cursor = e.seq;
            if matches!(
                e.kind,
                EventKind::Failover
                    | EventKind::Promotion
                    | EventKind::Degraded
                    | EventKind::Revive
                    | EventKind::Deferred
            ) {
                eprintln!("dkcore-serve: {}", e.render());
            }
        }
    };
    for b in &stream {
        let (epoch, changed, repair_us, publish_us) = match &mut backend {
            Backend::Single(svc) => {
                let r = svc
                    .apply_batch(b)
                    .map_err(|e| CliError::new(e.to_string()))?;
                (r.epoch, r.stats.changed, r.repair_micros, r.publish_micros)
            }
            Backend::Sharded(svc) => {
                let r = svc
                    .apply_batch(b)
                    .map_err(|e| CliError::new(e.to_string()))?;
                failovers += r.failovers;
                resends += r.resends;
                (r.epoch, r.changed, r.repair_micros, r.publish_micros)
            }
        };
        echo_events(&mut event_cursor);
        repair.record(repair_us);
        publish.record(publish_us);
        t.row([
            epoch.to_string(),
            b.insertions().len().to_string(),
            b.removals().len().to_string(),
            changed.to_string(),
            format!("{publish_us:.0}"),
        ]);
        if interval_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(interval_ms));
        }
    }
    write!(out, "{t}")?;

    // The final published epoch must be the exact decomposition (of the
    // union graph, in the sharded case).
    let (epoch, edges, kmax, verified) = match &backend {
        Backend::Single(svc) => {
            let snap = svc.handle().snapshot();
            let ok = snap.values() == batagelj_zaversnik(snap.graph()).as_slice();
            (snap.epoch(), snap.edge_count(), snap.max_coreness(), ok)
        }
        Backend::Sharded(svc) => {
            let snap = svc.handle().snapshot();
            let ok = snap.values() == batagelj_zaversnik(snap.graph()).as_slice();
            (snap.epoch(), snap.edge_count(), snap.max_coreness(), ok)
        }
    };
    writeln!(
        out,
        "final epoch {epoch} ({edges} edges, kmax {kmax}) verified: {verified}"
    )?;
    writeln!(out, "repair latency (us):  {repair}")?;
    writeln!(out, "publish latency (us): {publish}")?;
    if failovers > 0 || resends > 0 {
        writeln!(
            out,
            "fault recovery: {failovers} failovers, {resends} border resends"
        )?;
    }
    if !verified {
        return Err(CliError::new("served epoch diverged from ground truth"));
    }
    if wait {
        writeln!(
            out,
            "serving until SHUTDOWN (dkcore query --port {} shutdown)",
            server.port()
        )?;
        server.wait();
    }
    Ok(())
}

/// `dkcore query`: one query against a running `dkcore serve` instance
/// on `127.0.0.1:port`.
///
/// `args` is the query in CLI spelling, e.g. `["coreness", "5"]`,
/// `["members", "3"]`, `["subgraph", "2"]`, `["hist"]`, `["topk", "10"]`,
/// `["epoch"]`, `["health"]`, `["metrics"]`, `["events", "since", "4"]`,
/// `["shutdown"]`. Prints the wire response verbatim (multi-line
/// `SUBGRAPH`/`METRICS`/`EVENTS` bodies included). With `json` (the
/// `--json` flag), a `health` response is re-emitted as a JSON object.
///
/// All requests run under a [`RetryPolicy`](dkcore_serve::RetryPolicy):
/// per-operation I/O timeouts so a hung or mid-shutdown server fails the
/// query in bounded time instead of blocking forever, plus a short
/// reconnect-with-backoff loop for transient connection failures.
///
/// # Errors
///
/// Returns [`CliError`] for unknown queries, connection failures and
/// `ERR` responses.
pub fn cmd_query<W: Write>(
    port: u16,
    args: &[&str],
    json: bool,
    out: &mut W,
) -> Result<(), CliError> {
    use dkcore_serve::wire::{RetryPolicy, WireClient};

    let Some((&verb, rest)) = args.split_first() else {
        return Err(CliError::new(
            "query needs a command: coreness V | members K | subgraph K | \
             hist | topk N | epoch | health | metrics | events | shutdown",
        ));
    };
    if json && verb != "health" {
        return Err(CliError::new(
            "query --json is only supported for health (metrics and events \
             have their own line-oriented formats)",
        ));
    }
    // Validate the query — arguments included — before touching the
    // network: every numeric argument is parsed here, so no raw user
    // string (which could embed newlines, i.e. extra protocol commands)
    // ever reaches the wire.
    let num = |name: &str| -> Result<u32, CliError> {
        let token = rest
            .first()
            .copied()
            .ok_or_else(|| CliError::new(format!("query {name} requires an argument")))?;
        token
            .parse()
            .map_err(|_| CliError::new(format!("query {name}: {token:?} is not a number")))
    };
    enum Request {
        Line(String),
        Subgraph(u32),
        Metrics,
        Events { since: u64, limit: Option<u64> },
    }
    // Optional pagination keywords (`offset O` and, for members,
    // `limit L`), validated and canonicalized here for the same
    // no-raw-strings-on-the-wire reason as the numeric arguments.
    let page_args = |tail: &[&str], allow_limit: bool| -> Result<String, CliError> {
        let mut suffix = String::new();
        let mut it = tail.iter();
        while let Some(&kw) = it.next() {
            let canon = if kw.eq_ignore_ascii_case("offset") {
                "OFFSET"
            } else if allow_limit && kw.eq_ignore_ascii_case("limit") {
                "LIMIT"
            } else {
                return Err(CliError::new(format!("query: unexpected argument {kw:?}")));
            };
            let val = it
                .next()
                .ok_or_else(|| CliError::new(format!("query {canon} requires an argument")))?;
            let n: u64 = val
                .parse()
                .map_err(|_| CliError::new(format!("query {canon}: {val:?} is not a number")))?;
            suffix.push_str(&format!(" {canon} {n}"));
        }
        Ok(suffix)
    };
    let tail = rest.get(1..).unwrap_or(&[]);
    let request = match verb {
        "coreness" => Request::Line(format!("CORENESS {}", num("coreness")?)),
        "members" => Request::Line(format!(
            "MEMBERS {}{}",
            num("members")?,
            page_args(tail, true)?
        )),
        "subgraph" => Request::Subgraph(num("subgraph")?),
        "hist" => Request::Line("HIST".into()),
        "topk" => Request::Line(format!("TOPK {}{}", num("topk")?, page_args(tail, false)?)),
        "epoch" => Request::Line("EPOCH".into()),
        "health" => Request::Line("HEALTH".into()),
        "metrics" => {
            if !rest.is_empty() {
                return Err(CliError::new(format!(
                    "query metrics takes no arguments, got {:?}",
                    rest[0]
                )));
            }
            Request::Metrics
        }
        "events" => {
            // `since S` / `limit N`, validated and parsed here like the
            // pagination keywords — no raw strings reach the wire.
            let mut since = 0u64;
            let mut limit: Option<u64> = None;
            let mut it = rest.iter();
            while let Some(&kw) = it.next() {
                if !kw.eq_ignore_ascii_case("since") && !kw.eq_ignore_ascii_case("limit") {
                    return Err(CliError::new(format!("query: unexpected argument {kw:?}")));
                }
                let val = it.next().ok_or_else(|| {
                    CliError::new(format!("query {} requires an argument", kw.to_lowercase()))
                })?;
                let n: u64 = val.parse().map_err(|_| {
                    CliError::new(format!("query {kw}: {val:?} is not a number"))
                })?;
                if kw.eq_ignore_ascii_case("since") {
                    since = n;
                } else {
                    limit = Some(n);
                }
            }
            Request::Events { since, limit }
        }
        "shutdown" => Request::Line("SHUTDOWN".into()),
        other => {
            return Err(CliError::new(format!(
            "unknown query {other:?}; expected coreness|members|subgraph|hist|topk|epoch|health|metrics|events|shutdown"
        )))
        }
    };
    let policy = RetryPolicy::default();
    let lines = match request {
        Request::Line(line) => {
            vec![
                WireClient::request_retrying(("127.0.0.1", port), &line, &policy)
                    .map_err(|e| CliError::new(format!("cannot reach 127.0.0.1:{port}: {e}")))?,
            ]
        }
        Request::Subgraph(k) => {
            // Multi-line responses are not idempotently retryable at the
            // request level (a retry could interleave with a half-read
            // body), so only the connect is policy-governed here.
            let mut client = WireClient::connect_with(("127.0.0.1", port), &policy)
                .map_err(|e| CliError::new(format!("cannot reach 127.0.0.1:{port}: {e}")))?;
            client.request_subgraph(k)?
        }
        Request::Metrics => {
            let mut client = WireClient::connect_with(("127.0.0.1", port), &policy)
                .map_err(|e| CliError::new(format!("cannot reach 127.0.0.1:{port}: {e}")))?;
            client.request_metrics()?
        }
        Request::Events { since, limit } => {
            let mut client = WireClient::connect_with(("127.0.0.1", port), &policy)
                .map_err(|e| CliError::new(format!("cannot reach 127.0.0.1:{port}: {e}")))?;
            client.request_events(since, limit)?
        }
    };
    let failed = lines.first().is_some_and(|l| l.starts_with("ERR"));
    if json && !failed {
        writeln!(out, "{}", health_line_to_json(&lines[0]))?;
    } else {
        for line in &lines {
            writeln!(out, "{line}")?;
        }
    }
    if failed {
        return Err(CliError::new(format!(
            "server rejected the query: {}",
            lines[0]
        )));
    }
    Ok(())
}

/// Converts a `HEALTH` response line (`OK epoch=3 status=healthy` plus
/// optional `down=...` / `exchange=...` fields) into a flat JSON
/// object. Values that parse as unsigned integers are emitted as JSON
/// numbers; everything else is an escaped string.
fn health_line_to_json(line: &str) -> String {
    use std::fmt::Write as _;
    let mut obj = String::from("{");
    for token in line.split_ascii_whitespace() {
        let Some((key, val)) = token.split_once('=') else {
            continue; // the leading "OK"
        };
        if obj.len() > 1 {
            obj.push(',');
        }
        let _ = write!(obj, "\"{}\":", json_escape(key));
        if val.parse::<u64>().is_ok() {
            obj.push_str(val);
        } else {
            let _ = write!(obj, "\"{}\"", json_escape(val));
        }
    }
    obj.push('}');
    obj
}

/// `dkcore generate`: build a dataset analog and write it as an edge list.
///
/// # Errors
///
/// Returns [`CliError`] for unknown analogs and I/O failures.
pub fn cmd_generate<W: Write>(
    analog: &str,
    nodes: usize,
    seed: u64,
    out: &mut W,
) -> Result<(), CliError> {
    let spec = dkcore_data::by_name(analog)
        .ok_or_else(|| CliError::new(format!("unknown analog {analog:?}")))?;
    let g = spec.build_scaled(nodes, seed);
    graph_io::write_edge_list(&g, out)?;
    Ok(())
}

/// `dkcore list-analogs`: the catalog with the paper's reference stats.
///
/// # Errors
///
/// Returns [`CliError`] on output failures.
pub fn cmd_list_analogs<W: Write>(out: &mut W) -> Result<(), CliError> {
    let mut t = Table::new([
        "analog",
        "stands in for",
        "paper |V|",
        "paper k_max",
        "default",
    ]);
    for spec in dkcore_data::catalog() {
        t.row([
            spec.name.to_string(),
            spec.snap_name.to_string(),
            spec.paper.nodes.to_string(),
            spec.paper.max_coreness.to_string(),
            spec.default_nodes.to_string(),
        ]);
    }
    write!(out, "{t}")?;
    Ok(())
}

/// `dkcore model-check`: exhaustive bounded exploration of the protocol
/// state machines on small fixed instances.
///
/// Runs every instance of the selected scenario family through the
/// `dkcore-model` explorer (BFS, so any counterexample is minimal) and
/// prints one summary row per instance. Instances that exhaust their
/// reachable state space within the caps are `proved`; instances that
/// hit `--max-states`/`--max-depth` are `capped` (a bounded sweep, not a
/// proof, and not a failure).
///
/// # Errors
///
/// Returns [`CliError`] — with the minimal counterexample trace in the
/// message — if any instance violates an invariant, a step property, or
/// a terminal condition, and on unknown scenarios or output failures.
pub fn cmd_model_check<W: Write>(
    scenario: &str,
    max_states: usize,
    max_depth: usize,
    out: &mut W,
) -> Result<(), CliError> {
    use dkcore::machine::{HostNetModel, NodeNetModel};
    use dkcore::one_to_many::{Assignment, AssignmentPolicy};
    use dkcore::one_to_one::OneToOneConfig;
    use dkcore_graph::generators::{complete, path, star};
    use dkcore_model::{ExploreConfig, Explorer, Report};
    use dkcore_serve::{PublishModel, PublishScenario};

    if !matches!(scenario, "node" | "host" | "publish" | "all") {
        return Err(CliError::new(format!(
            "--scenario: unknown scenario {scenario:?} (node|host|publish|all)"
        )));
    }
    let explorer = Explorer::new(ExploreConfig {
        max_states,
        max_depth,
        ..ExploreConfig::default()
    });
    let mut rows: Vec<(String, Report)> = Vec::new();

    if scenario == "node" || scenario == "all" {
        let cfg = OneToOneConfig::default();
        for (name, g) in [
            ("triangle", complete(3)),
            ("complete4", complete(4)),
            ("path6", path(6)),
            ("star5", star(5)),
        ] {
            let model = NodeNetModel::new(&g, cfg);
            rows.push((format!("node/{name}"), explorer.run(&model)));
        }
    }
    if scenario == "host" || scenario == "all" {
        for (name, g, hosts, policy) in [
            (
                "path6/h2/p2p",
                path(6),
                2,
                DisseminationPolicy::PointToPoint,
            ),
            ("path6/h2/bcast", path(6), 2, DisseminationPolicy::Broadcast),
            (
                "path6/h3/p2p",
                path(6),
                3,
                DisseminationPolicy::PointToPoint,
            ),
            ("star4/h3/bcast", star(4), 3, DisseminationPolicy::Broadcast),
        ] {
            let assignment = Assignment::new(&g, hosts, &AssignmentPolicy::Modulo);
            let model = HostNetModel::new(&g, &assignment, policy);
            rows.push((format!("host/{name}"), explorer.run(&model)));
        }
    }
    if scenario == "publish" || scenario == "all" {
        for (name, shards, replicas, batches, kills, readers) in [
            ("1shard", 1, 0, 3, 0, 1),
            ("failover", 2, 1, 2, 1, 1),
            ("degraded", 2, 0, 2, 1, 1),
            ("deep-kills", 2, 2, 2, 2, 1),
        ] {
            let model = PublishModel::new(PublishScenario {
                shards,
                replicas,
                batches,
                kills,
                readers,
                ..PublishScenario::default()
            });
            rows.push((format!("publish/{name}"), explorer.run(&model)));
        }
    }

    let mut t = Table::new([
        "instance",
        "states",
        "transitions",
        "terminals",
        "depth",
        "outcome",
    ]);
    let mut violations = Vec::new();
    for (name, report) in &rows {
        let outcome = if report.proved() {
            "proved".to_string()
        } else if let Some(cx) = report.counterexample() {
            violations.push(format!("{name}:\n{}", cx.render()));
            "VIOLATION".to_string()
        } else {
            "capped".to_string()
        };
        t.row([
            name.clone(),
            report.states.to_string(),
            report.transitions.to_string(),
            report.terminals.to_string(),
            report.max_depth_seen.to_string(),
            outcome,
        ]);
    }
    write!(out, "{t}")?;
    if !violations.is_empty() {
        return Err(CliError::new(format!(
            "model check found {} violation(s):\n\n{}",
            violations.len(),
            violations.join("\n\n")
        )));
    }
    Ok(())
}

/// Parses and dispatches a full argument vector (without the binary
/// name); the entry point used by the `dkcore` binary.
///
/// # Errors
///
/// Returns [`CliError`] with a user-facing message on any failure.
pub fn dispatch<W: Write>(args: &[String], out: &mut W) -> Result<(), CliError> {
    let mut positional: Vec<&str> = Vec::new();
    let mut algorithm = "bz".to_string();
    let mut shells = false;
    let mut hosts = 0usize;
    let mut policy = "p2p".to_string();
    let mut mode = "random".to_string();
    let mut engine: Option<String> = None;
    let mut threads = 0usize;
    let mut reps = 1u32;
    let mut seed = 42u64;
    let mut nodes = 0usize;
    let mut batch = 32usize;
    let mut steps = 8usize;
    let mut workload = "sliding-window".to_string();
    let mut out_path: Option<String> = None;
    let mut port = 0u16;
    let mut shards = 1usize;
    let mut replicas = 0usize;
    let mut fault_plan = String::new();
    let mut pin_cores = false;
    let mut insert_pct = 60u32;
    let mut interval_ms = 0u64;
    let mut events_capacity = dkcore_metrics::DEFAULT_EVENTS_CAPACITY;
    let mut json = false;
    let mut wait = true;
    let mut report_json: Option<String> = None;
    let mut scenario = "all".to_string();
    let mut max_states = 1_000_000usize;
    let mut max_depth = 10_000usize;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| -> Result<String, CliError> {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::new(format!("{name} requires a value")))
        };
        match a.as_str() {
            "--algorithm" => algorithm = value("--algorithm")?,
            "--shells" => shells = true,
            "--hosts" => {
                hosts = value("--hosts")?
                    .parse()
                    .map_err(|_| CliError::new("--hosts: expected a number"))?
            }
            "--policy" => policy = value("--policy")?,
            "--mode" => mode = value("--mode")?,
            "--engine" => engine = Some(value("--engine")?),
            "--workload" => workload = value("--workload")?,
            "--batch" => {
                batch = value("--batch")?
                    .parse()
                    .map_err(|_| CliError::new("--batch: expected a number"))?
            }
            "--steps" => {
                steps = value("--steps")?
                    .parse()
                    .map_err(|_| CliError::new("--steps: expected a number"))?
            }
            "--threads" => {
                threads = value("--threads")?
                    .parse()
                    .map_err(|_| CliError::new("--threads: expected a number"))?
            }
            "--reps" => {
                reps = value("--reps")?
                    .parse()
                    .map_err(|_| CliError::new("--reps: expected a number"))?
            }
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|_| CliError::new("--seed: expected a number"))?
            }
            "--nodes" => {
                nodes = value("--nodes")?
                    .parse()
                    .map_err(|_| CliError::new("--nodes: expected a number"))?
            }
            "--out" => out_path = Some(value("--out")?),
            "--port" => {
                port = value("--port")?
                    .parse()
                    .map_err(|_| CliError::new("--port: expected a port number"))?
            }
            "--shards" => {
                shards = value("--shards")?
                    .parse()
                    .map_err(|_| CliError::new("--shards: expected a number"))?;
                if shards == 0 {
                    return Err(CliError::new("--shards: need at least 1 shard"));
                }
            }
            "--replicas" => {
                replicas = value("--replicas")?
                    .parse()
                    .map_err(|_| CliError::new("--replicas: expected a number"))?
            }
            "--fault-plan" => fault_plan = value("--fault-plan")?,
            "--pin-cores" => pin_cores = true,
            "--insert-pct" => {
                insert_pct = value("--insert-pct")?
                    .parse()
                    .map_err(|_| CliError::new("--insert-pct: expected a percentage"))?
            }
            "--interval-ms" => {
                interval_ms = value("--interval-ms")?
                    .parse()
                    .map_err(|_| CliError::new("--interval-ms: expected a number"))?
            }
            "--events-capacity" => {
                events_capacity = value("--events-capacity")?
                    .parse()
                    .map_err(|_| CliError::new("--events-capacity: expected a number"))?
            }
            "--json" => json = true,
            "--no-wait" => wait = false,
            "--scenario" => scenario = value("--scenario")?,
            "--max-states" => {
                max_states = value("--max-states")?
                    .parse()
                    .map_err(|_| CliError::new("--max-states: expected a number"))?
            }
            "--max-depth" => {
                max_depth = value("--max-depth")?
                    .parse()
                    .map_err(|_| CliError::new("--max-depth: expected a number"))?
            }
            "--report-json" => report_json = Some(value("--report-json")?),
            flag if flag.starts_with("--") => {
                return Err(CliError::new(format!("unknown flag {flag}")))
            }
            plain => positional.push(plain),
        }
    }

    let Some((&command, rest)) = positional.split_first() else {
        return Err(CliError::new(USAGE));
    };
    let input = rest.first().copied();
    let need_input = || input.ok_or_else(|| CliError::new(USAGE));

    // Route output to --out when given.
    let mut file_out: Box<dyn Write> = match &out_path {
        Some(p) => Box::new(std::fs::File::create(p)?),
        None => Box::new(Vec::new()), // placeholder, unused
    };
    let use_file = out_path.is_some();
    let mut sink: &mut dyn Write = if use_file { &mut file_out } else { out };

    match command {
        "stats" => cmd_stats(need_input()?, seed, &mut sink),
        "decompose" => cmd_decompose(need_input()?, &algorithm, shells, seed, &mut sink),
        "simulate" => cmd_simulate(
            need_input()?,
            hosts,
            &policy,
            &mode,
            engine.as_deref().unwrap_or("legacy"),
            threads,
            reps,
            seed,
            &mut sink,
        ),
        "stream" => cmd_stream(
            need_input()?,
            batch,
            steps,
            &workload,
            engine.as_deref().unwrap_or("batched"),
            threads,
            insert_pct,
            report_json.as_deref(),
            seed,
            &mut sink,
        ),
        "serve" => cmd_serve(
            need_input()?,
            port,
            &workload,
            batch,
            steps,
            shards,
            replicas,
            &fault_plan,
            pin_cores,
            insert_pct,
            interval_ms,
            events_capacity,
            wait,
            seed,
            &mut sink,
        ),
        "query" => {
            if port == 0 {
                return Err(CliError::new("query requires --port P (the serve port)"));
            }
            cmd_query(port, rest, json, &mut sink)
        }
        "generate" => {
            if nodes == 0 {
                return Err(CliError::new("generate requires --nodes N"));
            }
            cmd_generate(need_input()?, nodes, seed, &mut sink)
        }
        "model-check" => cmd_model_check(&scenario, max_states, max_depth, &mut sink),
        "list-analogs" => cmd_list_analogs(&mut sink),
        "help" | "--help" | "-h" => {
            write!(sink, "{USAGE}")?;
            Ok(())
        }
        other => Err(CliError::new(format!(
            "unknown command {other:?}\n\n{USAGE}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> Result<String, CliError> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        dispatch(&args, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    #[test]
    fn stats_on_analog() {
        let text = run(&["stats", "analog:gnutella-like:500"]).unwrap();
        assert!(text.contains("nodes |V|"));
        assert!(text.contains("500"));
        assert!(text.contains("max coreness"));
    }

    #[test]
    fn decompose_algorithms_agree() {
        let input = "analog:amazon-like:400";
        let bz = run(&["decompose", input, "--algorithm", "bz"]).unwrap();
        let naive = run(&["decompose", input, "--algorithm", "naive"]).unwrap();
        let protocol = run(&["decompose", input, "--algorithm", "protocol"]).unwrap();
        let pregel = run(&["decompose", input, "--algorithm", "pregel"]).unwrap();
        assert_eq!(bz, naive);
        assert_eq!(bz, protocol);
        assert_eq!(bz, pregel);
        assert!(bz.starts_with("# node\tcoreness\n"));
    }

    #[test]
    fn decompose_shells_histogram() {
        let text = run(&["decompose", "analog:condmat-like:400", "--shells"]).unwrap();
        assert!(text.contains("k-shell"));
    }

    #[test]
    fn simulate_one_to_one_and_hosts() {
        let text = run(&["simulate", "analog:gnutella-like:300", "--reps", "2"]).unwrap();
        assert!(
            text.matches("true").count() == 2,
            "both reps correct: {text}"
        );
        let text = run(&[
            "simulate",
            "analog:gnutella-like:300",
            "--hosts",
            "4",
            "--policy",
            "broadcast",
            "--mode",
            "sync",
        ])
        .unwrap();
        assert!(text.contains("true"));
    }

    #[test]
    fn simulate_active_set_engines() {
        // One-to-one and one-to-many fast paths both agree with the
        // ground-truth check (the table prints `true` per repetition) and
        // match the legacy engine's table output exactly.
        for hosts in ["0", "4"] {
            let fast = run(&[
                "simulate",
                "analog:gnutella-like:300",
                "--hosts",
                hosts,
                "--mode",
                "sync",
                "--engine",
                "active-set",
                "--threads",
                "2",
            ])
            .unwrap();
            assert!(fast.contains("true"), "hosts={hosts}: {fast}");
            let legacy = run(&[
                "simulate",
                "analog:gnutella-like:300",
                "--hosts",
                hosts,
                "--mode",
                "sync",
                "--engine",
                "legacy",
            ])
            .unwrap();
            assert_eq!(fast, legacy, "hosts={hosts}");
        }
    }

    #[test]
    fn active_set_engine_rejects_random_mode() {
        let err = run(&[
            "simulate",
            "analog:gnutella-like:100",
            "--mode",
            "random",
            "--engine",
            "active-set",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("--mode sync"), "{err}");
        let err = run(&[
            "simulate",
            "analog:gnutella-like:100",
            "--engine",
            "warp-drive",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("unknown engine"), "{err}");
    }

    #[test]
    fn stream_engines_verify_against_ground_truth() {
        for engine in ["batched", "per-edge"] {
            for workload in ["sliding-window", "insert-heavy", "adversarial"] {
                let text = run(&[
                    "stream",
                    "analog:gnutella-like:300",
                    "--batch",
                    "8",
                    "--steps",
                    "4",
                    "--workload",
                    workload,
                    "--engine",
                    engine,
                ])
                .unwrap();
                assert_eq!(
                    text.matches("true").count(),
                    4,
                    "{engine}/{workload}: every step verified: {text}"
                );
                assert!(text.contains("candidates"));
            }
        }
    }

    #[test]
    fn stream_warm_dist_reports_round_counts() {
        let text = run(&[
            "stream",
            "analog:condmat-like:400",
            "--batch",
            "6",
            "--steps",
            "3",
            "--engine",
            "warm-dist",
        ])
        .unwrap();
        assert!(text.contains("warm-rounds"), "{text}");
        assert!(text.contains("cold-rounds"), "{text}");
        assert_eq!(text.matches("true").count(), 3, "{text}");
    }

    #[test]
    fn stream_mixed_workload_verifies() {
        let text = run(&[
            "stream",
            "analog:gnutella-like:300",
            "--batch",
            "8",
            "--steps",
            "4",
            "--workload",
            "mixed",
            "--insert-pct",
            "70",
        ])
        .unwrap();
        assert_eq!(text.matches("true").count(), 4, "{text}");
    }

    #[test]
    fn stream_report_json_is_machine_readable() {
        let dir = std::env::temp_dir().join("dkcore_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream_report.json");
        let path_str = path.to_str().unwrap().to_string();
        run(&[
            "stream",
            "analog:gnutella-like:300",
            "--batch",
            "6",
            "--steps",
            "3",
            "--workload",
            "mixed",
            "--report-json",
            &path_str,
        ])
        .unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"command\": \"stream\""), "{json}");
        assert!(json.contains("\"engine\": \"batched\""));
        assert!(json.contains("\"workload\": \"mixed\""));
        assert!(json.contains("\"steps\": 3"));
        assert!(json.contains("\"all_correct\": true"));
        assert!(json.contains("\"results\": ["));
        assert_eq!(json.matches("\"step\":").count(), 3);
        // warm-dist rows carry round counts instead.
        run(&[
            "stream",
            "analog:condmat-like:300",
            "--batch",
            "4",
            "--steps",
            "2",
            "--engine",
            "warm-dist",
            "--report-json",
            &path_str,
        ])
        .unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"warm_rounds\":"), "{json}");
        assert!(json.contains("\"cold_rounds\":"));
        std::fs::remove_file(&path).ok();
    }

    /// `Write` sink shared with the thread running `cmd_serve`, so the
    /// test can read the bound port while the server is still running.
    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

    impl SharedBuf {
        fn contents(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).expect("utf8")
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn serve_and_query_end_to_end() {
        let buf = SharedBuf::default();
        let server = {
            let mut sink = buf.clone();
            std::thread::spawn(move || {
                cmd_serve(
                    "analog:gnutella-like:200",
                    0,
                    "mixed",
                    8,
                    3,
                    1,
                    0,
                    "",
                    false,
                    60,
                    0,
                    1024,
                    true, // keep serving until the SHUTDOWN query below
                    42,
                    &mut sink,
                )
            })
        };
        // Wait for the ephemeral port to be announced.
        let port: u16 = {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
            loop {
                let text = buf.contents();
                if let Some(rest) = text.split("listening on 127.0.0.1:").nth(1) {
                    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
                    if !digits.is_empty() {
                        break digits.parse().unwrap();
                    }
                }
                assert!(
                    std::time::Instant::now() < deadline,
                    "serve never announced its port: {text:?}"
                );
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        };
        let port_s = port.to_string();
        // Wait for the churn to finish (3 epochs), then query.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        loop {
            let e = run(&["query", "epoch", "--port", &port_s]).unwrap();
            assert!(e.starts_with("OK epoch="), "{e}");
            if e.contains("epoch=3") {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "stuck at {e}");
        }
        let c = run(&["query", "coreness", "5", "--port", &port_s]).unwrap();
        assert!(c.contains("coreness=") && c.contains("degree="), "{c}");
        let h = run(&["query", "hist", "--port", &port_s]).unwrap();
        assert!(h.contains("hist=0:") || h.contains("hist="), "{h}");
        let t = run(&["query", "topk", "3", "--port", &port_s]).unwrap();
        assert_eq!(t.matches(':').count(), 3, "{t}");
        // Paginated members/topk: pages concatenate to the full answer.
        let full = run(&["query", "members", "1", "--port", &port_s]).unwrap();
        let full_ids = full.trim().split("members=").nth(1).unwrap().to_string();
        let mut paged = Vec::new();
        let mut offset = 0usize;
        loop {
            let page = run(&[
                "query",
                "members",
                "1",
                "offset",
                &offset.to_string(),
                "limit",
                "7",
                "--port",
                &port_s,
            ])
            .unwrap();
            assert!(
                page.contains("total=") && page.contains("offset="),
                "{page}"
            );
            let ids = page.trim().split("members=").nth(1).unwrap().to_string();
            let got = if ids.is_empty() {
                0
            } else {
                ids.split(',').count()
            };
            if got > 0 {
                paged.push(ids);
            }
            offset += got;
            if got < 7 {
                break;
            }
        }
        assert_eq!(paged.join(","), full_ids);
        let t2 = run(&["query", "topk", "2", "offset", "1", "--port", &port_s]).unwrap();
        assert!(t2.contains("offset=1 top="), "{t2}");
        let bad = run(&["query", "members", "1", "sideways", "2", "--port", &port_s]).unwrap_err();
        assert!(bad.to_string().contains("unexpected argument"), "{bad}");
        let s = run(&["query", "subgraph", "2", "--port", &port_s]).unwrap();
        assert!(s.starts_with("OK epoch=3 nodes="), "{s}");
        let hl = run(&["query", "health", "--port", &port_s]).unwrap();
        assert_eq!(hl.trim(), "OK epoch=3 status=healthy", "{hl}");
        // Bad queries surface the server's ERR.
        let err = run(&["query", "coreness", "99999", "--port", &port_s]).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        // Telemetry exposition: the registry dump covers the publish
        // path and the wire counters the queries above just ticked.
        let m = run(&["query", "metrics", "--port", &port_s]).unwrap();
        assert!(m.starts_with("OK epoch=3 lines="), "{m}");
        assert!(m.contains("serve_publish_batches 3"), "{m}");
        assert!(m.contains("serve_wire_requests{verb=\"coreness\"}"), "{m}");
        // Event replay: three publishes leave three batch-applied /
        // epoch-published pairs; SINCE pages with the last= cursor.
        let ev = run(&["query", "events", "--port", &port_s]).unwrap();
        assert!(ev.starts_with("OK epoch=3 count=6 last=6"), "{ev}");
        assert_eq!(ev.matches("kind=batch-applied").count(), 3, "{ev}");
        let tail = run(&[
            "query", "events", "since", "4", "limit", "1", "--port", &port_s,
        ])
        .unwrap();
        assert!(tail.starts_with("OK epoch=3 count=1 last=5"), "{tail}");
        let bad_ev = run(&["query", "events", "sideways", "--port", &port_s]).unwrap_err();
        assert!(
            bad_ev.to_string().contains("unexpected argument"),
            "{bad_ev}"
        );
        // health --json re-emits the same fields as a JSON object.
        let hj = run(&["query", "health", "--json", "--port", &port_s]).unwrap();
        assert_eq!(hj.trim(), "{\"epoch\":3,\"status\":\"healthy\"}", "{hj}");
        let bad_json = run(&["query", "epoch", "--json", "--port", &port_s]).unwrap_err();
        assert!(
            bad_json.to_string().contains("only supported for health"),
            "{bad_json}"
        );
        // Shut the service down and join the serve command.
        let bye = run(&["query", "shutdown", "--port", &port_s]).unwrap();
        assert!(bye.contains("shutting-down"), "{bye}");
        server.join().unwrap().unwrap();
        let text = buf.contents();
        assert!(text.contains("final epoch 3"), "{text}");
        assert!(text.contains("verified: true"), "{text}");
        assert!(text.contains("repair latency (us):"), "{text}");
        assert!(text.contains("publish latency (us):"), "{text}");
        assert!(text.contains("p95="), "{text}");
    }

    #[test]
    fn serve_no_wait_runs_to_completion() {
        let mut out = Vec::new();
        cmd_serve(
            "analog:gnutella-like:150",
            0,
            "sliding-window",
            6,
            2,
            1,
            0,
            "",
            false,
            60,
            0,
            1024,
            false, // exit as soon as the churn is exhausted
            7,
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("final epoch 2"), "{text}");
        assert!(text.contains("verified: true"), "{text}");
        assert!(!text.contains("serving until SHUTDOWN"), "{text}");
    }

    #[test]
    fn serve_sharded_runs_to_completion_and_verifies() {
        // The sharded backend behind the same command: stitched epochs
        // verified against union-graph ground truth for shard counts
        // above 1, same table and summary output.
        for shards in [2usize, 4] {
            let mut out = Vec::new();
            cmd_serve(
                "analog:gnutella-like:200",
                0,
                "mixed",
                8,
                3,
                shards,
                0,
                "",
                false,
                60,
                0,
                1024,
                false,
                11,
                &mut out,
            )
            .unwrap();
            let text = String::from_utf8(out).unwrap();
            assert!(text.contains(&format!("{shards} shards")), "{text}");
            assert!(text.contains("final epoch 3"), "{text}");
            assert!(text.contains("verified: true"), "{text}");
        }
        // --shards 0 is rejected at parse time.
        let args: Vec<String> = ["serve", "analog:gnutella-like:100", "--shards", "0"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let err = dispatch(&args, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("at least 1"), "{err}");
    }

    #[test]
    fn serve_with_replicas_and_fault_plan_recovers_and_verifies() {
        // A scheduled primary kill at epoch 2 with one standby per
        // partition: the run must fail over, finish all epochs, and
        // still verify against ground truth.
        let mut out = Vec::new();
        cmd_serve(
            "analog:gnutella-like:200",
            0,
            "mixed",
            8,
            4,
            2,
            1,
            "seed=3,drop=10,kill=0@2",
            false,
            60,
            0,
            1024,
            false,
            13,
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("final epoch 4"), "{text}");
        assert!(text.contains("verified: true"), "{text}");
        assert!(text.contains("fault recovery: 1 failovers"), "{text}");

        // The fault knobs are sharded-only and validated up front.
        for args in [
            vec!["serve", "analog:gnutella-like:100", "--replicas", "1"],
            vec![
                "serve",
                "analog:gnutella-like:100",
                "--fault-plan",
                "drop=5",
            ],
            vec!["serve", "analog:gnutella-like:100", "--pin-cores"],
        ] {
            let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            let err = dispatch(&args, &mut Vec::new()).unwrap_err();
            assert!(err.to_string().contains("--shards > 1"), "{err}");
        }
        // Malformed plans are rejected with the offending clause.
        let args: Vec<String> = [
            "serve",
            "analog:gnutella-like:100",
            "--shards",
            "2",
            "--fault-plan",
            "drop=999",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let err = dispatch(&args, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("--fault-plan"), "{err}");
    }

    #[test]
    fn query_rejects_bad_usage() {
        assert!(run(&["query", "epoch"])
            .unwrap_err()
            .to_string()
            .contains("--port"));
        assert!(run(&["query", "--port", "1"])
            .unwrap_err()
            .to_string()
            .contains("query needs a command"));
        assert!(run(&["query", "teleport", "--port", "1"])
            .unwrap_err()
            .to_string()
            .contains("unknown query"));
        // Arguments are validated client-side (before any connection), so
        // raw strings — including embedded protocol commands — never
        // reach the wire.
        assert!(run(&["query", "coreness", "abc", "--port", "1"])
            .unwrap_err()
            .to_string()
            .contains("is not a number"));
        assert!(run(&["query", "topk", "5\nSHUTDOWN", "--port", "1"])
            .unwrap_err()
            .to_string()
            .contains("is not a number"));
        // Nothing listens on the discard port: connection errors surface.
        assert!(run(&["query", "epoch", "--port", "9"])
            .unwrap_err()
            .to_string()
            .contains("cannot reach"));
        assert!(
            run(&["serve", "analog:gnutella-like:100", "--workload", "bogus"])
                .unwrap_err()
                .to_string()
                .contains("unknown workload")
        );
    }

    #[test]
    fn stream_rejects_bad_options() {
        assert!(
            run(&["stream", "analog:gnutella-like:100", "--engine", "bogus"])
                .unwrap_err()
                .to_string()
                .contains("unknown engine")
        );
        assert!(
            run(&["stream", "analog:gnutella-like:100", "--workload", "bogus"])
                .unwrap_err()
                .to_string()
                .contains("unknown workload")
        );
        assert!(run(&["stream", "analog:gnutella-like:100", "--batch", "x"]).is_err());
        assert!(run(&["stream"]).is_err());
    }

    #[test]
    fn generate_roundtrips_through_stats() {
        let dir = std::env::temp_dir().join("dkcore_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gen.txt");
        let path_str = path.to_str().unwrap();
        run(&[
            "generate",
            "roadnet-like",
            "--nodes",
            "400",
            "--out",
            path_str,
        ])
        .unwrap();
        let text = run(&["stats", path_str]).unwrap();
        assert!(text.contains("edges |E|"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn model_check_publish_proves() {
        let text = run(&["model-check", "--scenario", "publish"]).unwrap();
        for instance in ["publish/1shard", "publish/failover", "publish/degraded"] {
            assert!(text.contains(instance), "{instance} missing:\n{text}");
        }
        assert!(text.contains("proved"), "{text}");
        assert!(!text.contains("VIOLATION"), "{text}");
    }

    #[test]
    fn model_check_caps_are_reported_not_failed() {
        let text = run(&["model-check", "--scenario", "node", "--max-states", "50"]).unwrap();
        assert!(text.contains("capped"), "{text}");
    }

    #[test]
    fn model_check_rejects_unknown_scenario() {
        assert!(run(&["model-check", "--scenario", "quantum"])
            .unwrap_err()
            .to_string()
            .contains("unknown scenario"));
    }

    #[test]
    fn list_analogs_shows_all_nine() {
        let text = run(&["list-analogs"]).unwrap();
        for spec in dkcore_data::catalog() {
            assert!(text.contains(spec.name), "{} missing", spec.name);
        }
    }

    #[test]
    fn helpful_errors() {
        assert!(run(&[]).is_err());
        assert!(run(&["bogus-cmd"])
            .unwrap_err()
            .to_string()
            .contains("unknown command"));
        assert!(run(&["stats"]).is_err());
        assert!(run(&["stats", "analog:nope:100"])
            .unwrap_err()
            .to_string()
            .contains("unknown analog"));
        assert!(run(&[
            "decompose",
            "analog:gnutella-like:100",
            "--algorithm",
            "magic"
        ])
        .unwrap_err()
        .to_string()
        .contains("unknown algorithm"));
        assert!(run(&["generate", "roadnet-like"])
            .unwrap_err()
            .to_string()
            .contains("--nodes"));
        assert!(run(&["stats", "/no/such/file.txt"]).is_err());
        assert!(run(&["simulate", "analog:gnutella-like:100", "--mode", "warp"]).is_err());
        assert!(run(&["stats", "analog:gnutella-like:100", "--seed"]).is_err());
        assert!(run(&["stats", "analog:gnutella-like:100", "--wat"]).is_err());
    }

    #[test]
    fn help_prints_usage() {
        let text = run(&["help"]).unwrap();
        assert!(text.contains("USAGE"));
    }

    #[test]
    fn seed_changes_analog_output_deterministically() {
        let a1 = run(&["decompose", "analog:gnutella-like:300", "--seed", "1"]).unwrap();
        let a2 = run(&["decompose", "analog:gnutella-like:300", "--seed", "1"]).unwrap();
        let b = run(&["decompose", "analog:gnutella-like:300", "--seed", "2"]).unwrap();
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }
}
