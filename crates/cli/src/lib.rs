//! Command implementations for the `dkcore` command-line tool.
//!
//! Four subcommands, mirroring what a downstream user does with the
//! library:
//!
//! ```text
//! dkcore stats     <input>                         graph statistics (Table-1 style)
//! dkcore decompose <input> [--algorithm A]         coreness of every node
//! dkcore simulate  <input> [--hosts H] [...]       run the distributed protocols
//! dkcore stream    <input> [--batch B] [...]       maintain coreness under edge churn
//! dkcore generate  <analog> --nodes N [...]        emit a synthetic dataset
//! ```
//!
//! `<input>` is either a path to a SNAP-style edge list or `analog:NAME`
//! (optionally `analog:NAME:NODES`) for one of the built-in dataset
//! analogs. All commands are deterministic given `--seed`.
//!
//! The heavy lifting lives in library functions that write to any
//! `io::Write`, so the test suite drives them directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;
use std::io::Write;

use dkcore::one_to_many::DisseminationPolicy;
use dkcore::seq::{batagelj_zaversnik, naive_peeling};
use dkcore::CoreDecomposition;
use dkcore_graph::{io as graph_io, metrics, Graph};
use dkcore_metrics::Table;
use dkcore_pregel::{KCoreProgram, Pregel};
use dkcore_sim::{
    ActiveSetConfig, ActiveSetEngine, ActiveSetHostConfig, ActiveSetHostEngine, HostSim,
    HostSimConfig, NodeSim, NodeSimConfig,
};

/// Error produced by CLI parsing or execution.
#[derive(Debug)]
pub struct CliError(String);

impl CliError {
    fn new(msg: impl Into<String>) -> Self {
        CliError(msg.into())
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Error for CliError {}

impl From<dkcore_graph::GraphError> for CliError {
    fn from(e: dkcore_graph::GraphError) -> Self {
        CliError(e.to_string())
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(e.to_string())
    }
}

/// Usage text shown by `dkcore help` and on argument errors.
pub const USAGE: &str = "\
dkcore — distributed k-core decomposition toolkit

USAGE:
  dkcore stats     <input> [--seed S]
  dkcore decompose <input> [--algorithm bz|naive|protocol|pregel] [--shells] [--seed S]
  dkcore simulate  <input> [--hosts H] [--policy broadcast|p2p] [--mode sync|random]
                            [--engine legacy|active-set] [--threads T]
                            [--reps R] [--seed S]
  dkcore stream    <input> [--batch B] [--steps S]
                            [--workload sliding-window|insert-heavy|adversarial|hotspot]
                            [--engine batched|per-edge|warm-dist] [--threads T] [--seed S]
  dkcore generate  <analog> --nodes N [--seed S] [--out FILE]
  dkcore list-analogs
  dkcore help

INPUT:
  a SNAP-style edge-list file, or  analog:NAME[:NODES]  for a built-in
  synthetic dataset (see `dkcore list-analogs`).

STREAM ENGINES:
  batched   repair each batch in one amortized pass (StreamCore; default)
  per-edge  replay every mutation through DynamicCore, one repair per edge
  warm-dist re-converge the distributed protocol per batch, warm-started
            from batch-safe upper bounds (vs a cold start, for comparison)
";

/// Resolves an `<input>` argument into a graph.
///
/// # Errors
///
/// Returns [`CliError`] for unknown analogs or unreadable files.
pub fn load_input(input: &str, seed: u64) -> Result<Graph, CliError> {
    if let Some(rest) = input.strip_prefix("analog:") {
        let mut parts = rest.splitn(2, ':');
        let name = parts.next().expect("non-empty split");
        let spec = dkcore_data::by_name(name).ok_or_else(|| {
            CliError::new(format!(
                "unknown analog {name:?}; try `dkcore list-analogs`"
            ))
        })?;
        let graph = match parts.next() {
            Some(nodes) => {
                let n: usize = nodes
                    .parse()
                    .map_err(|_| CliError::new(format!("invalid node count {nodes:?}")))?;
                spec.build_scaled(n, seed)
            }
            None => spec.build_default(seed),
        };
        Ok(graph)
    } else {
        let (g, _) = graph_io::read_edge_list_file(input)?;
        Ok(g)
    }
}

/// `dkcore stats`: Table-1-style statistics for one graph.
///
/// # Errors
///
/// Returns [`CliError`] on input or output failures.
pub fn cmd_stats<W: Write>(input: &str, seed: u64, out: &mut W) -> Result<(), CliError> {
    let g = load_input(input, seed)?;
    let decomp = CoreDecomposition::compute(&g);
    let mut t = Table::new(["metric", "value"]);
    t.row(["nodes |V|", &g.node_count().to_string()]);
    t.row(["edges |E|", &g.edge_count().to_string()]);
    t.row(["max degree", &g.max_degree().to_string()]);
    t.row(["avg degree", &format!("{:.2}", g.avg_degree())]);
    t.row([
        "diameter (approx)",
        &metrics::approx_diameter(&g, 4).to_string(),
    ]);
    t.row([
        "components",
        &metrics::connected_components(&g).0.to_string(),
    ]);
    t.row(["max coreness", &decomp.max_coreness().to_string()]);
    t.row(["avg coreness", &format!("{:.2}", decomp.avg_coreness())]);
    write!(out, "{t}")?;
    Ok(())
}

/// `dkcore decompose`: coreness of every node via the chosen algorithm.
///
/// With `shells = true` prints the shell-size histogram instead of the
/// per-node list.
///
/// # Errors
///
/// Returns [`CliError`] for unknown algorithms and I/O failures.
pub fn cmd_decompose<W: Write>(
    input: &str,
    algorithm: &str,
    shells: bool,
    seed: u64,
    out: &mut W,
) -> Result<(), CliError> {
    let g = load_input(input, seed)?;
    let coreness: Vec<u32> = match algorithm {
        "bz" => batagelj_zaversnik(&g),
        "naive" => naive_peeling(&g),
        "protocol" => {
            NodeSim::new(&g, NodeSimConfig::random_order(seed))
                .run()
                .final_estimates
        }
        "pregel" => Pregel::new(4)
            .run(&g, &KCoreProgram::default())
            .states
            .iter()
            .map(|s| s.core)
            .collect(),
        other => {
            return Err(CliError::new(format!(
                "unknown algorithm {other:?}; expected bz|naive|protocol|pregel"
            )))
        }
    };
    if shells {
        let d = CoreDecomposition::from_coreness(coreness);
        let mut t = Table::new(["k-shell", "nodes"]);
        for (k, &size) in d.shell_sizes().iter().enumerate() {
            if size > 0 {
                t.row([k.to_string(), size.to_string()]);
            }
        }
        write!(out, "{t}")?;
    } else {
        writeln!(out, "# node\tcoreness")?;
        for (u, k) in coreness.iter().enumerate() {
            writeln!(out, "{u}\t{k}")?;
        }
    }
    Ok(())
}

/// `dkcore simulate`: run the distributed protocol and report rounds and
/// message statistics.
///
/// `hosts == 0` selects the one-to-one protocol; otherwise the one-to-many
/// protocol over that many hosts. `engine` picks the simulator: `legacy`
/// (the reference engines, both modes) or `active-set` (the flat parallel
/// fast path — synchronous mode only, bit-identical results). `threads`
/// controls active-set sharding (`0` = automatic).
///
/// # Errors
///
/// Returns [`CliError`] for invalid options and I/O failures.
#[allow(clippy::too_many_arguments)]
pub fn cmd_simulate<W: Write>(
    input: &str,
    hosts: usize,
    policy: &str,
    mode: &str,
    engine: &str,
    threads: usize,
    reps: u32,
    seed: u64,
    out: &mut W,
) -> Result<(), CliError> {
    let g = load_input(input, seed)?;
    let active_set = match engine {
        "legacy" => false,
        "active-set" => true,
        other => {
            return Err(CliError::new(format!(
                "unknown engine {other:?}; expected legacy|active-set"
            )))
        }
    };
    if active_set && mode != "sync" {
        return Err(CliError::new(
            "--engine active-set requires --mode sync (the fast path is synchronous-only)",
        ));
    }
    let truth = batagelj_zaversnik(&g);
    let mut t = Table::new(["rep", "rounds", "exec-time", "messages", "correct"]);
    for rep in 0..reps.max(1) {
        let rep_seed = dkcore_sim::experiment::repetition_seed(seed, rep);
        let (rounds, exec, messages, estimates) = if hosts == 0 {
            let config = match mode {
                "sync" => NodeSimConfig::synchronous(),
                "random" => NodeSimConfig::random_order(rep_seed),
                other => return Err(CliError::new(format!("unknown mode {other:?}"))),
            };
            let r = if active_set {
                let mut fast = ActiveSetConfig::with_protocol(config.protocol);
                fast.threads = threads;
                ActiveSetEngine::new(&g, fast).run()
            } else {
                NodeSim::new(&g, config).run()
            };
            (
                r.rounds_executed,
                r.execution_time,
                r.total_messages,
                r.final_estimates,
            )
        } else {
            let mut config = match mode {
                "sync" => HostSimConfig::synchronous(hosts),
                "random" => HostSimConfig::random_order(hosts, rep_seed),
                other => return Err(CliError::new(format!("unknown mode {other:?}"))),
            };
            config.protocol.policy = match policy {
                "broadcast" => DisseminationPolicy::Broadcast,
                "p2p" => DisseminationPolicy::PointToPoint,
                other => return Err(CliError::new(format!("unknown policy {other:?}"))),
            };
            let r = if active_set {
                ActiveSetHostEngine::new(
                    &g,
                    ActiveSetHostConfig {
                        hosts: config.hosts,
                        assignment: config.assignment,
                        protocol: config.protocol,
                        threads,
                        max_rounds: config.max_rounds,
                    },
                )
                .run()
            } else {
                HostSim::new(&g, config).run()
            };
            (
                r.rounds_executed,
                r.execution_time,
                r.total_messages,
                r.final_estimates,
            )
        };
        let correct = estimates == truth;
        t.row([
            rep.to_string(),
            rounds.to_string(),
            exec.to_string(),
            messages.to_string(),
            correct.to_string(),
        ]);
    }
    write!(out, "{t}")?;
    Ok(())
}

/// `dkcore stream`: run an edge-churn stream and maintain the coreness
/// decomposition with the chosen engine, verifying every step against the
/// sequential ground truth.
///
/// Engines: `batched` repairs whole batches through
/// [`dkcore::stream::StreamCore`]; `per-edge` replays each mutation
/// through [`dkcore::dynamic::DynamicCore`]; `warm-dist` re-converges the
/// distributed protocol per batch via a warm-started
/// [`ActiveSetEngine`](dkcore_sim::ActiveSetEngine), reporting warm vs
/// cold round counts.
///
/// # Errors
///
/// Returns [`CliError`] for invalid options and I/O failures.
#[allow(clippy::too_many_arguments)]
pub fn cmd_stream<W: Write>(
    input: &str,
    batch: usize,
    steps: usize,
    workload: &str,
    engine: &str,
    threads: usize,
    seed: u64,
    out: &mut W,
) -> Result<(), CliError> {
    use dkcore::dynamic::DynamicCore;
    use dkcore::stream::{warm_start_estimates_batch, StreamCore};
    use dkcore_data::ChurnWorkload;
    use dkcore_sim::ActiveSetConfig;

    let g = load_input(input, seed)?;
    if g.node_count() < 2 {
        return Err(CliError::new("stream needs a graph with at least 2 nodes"));
    }
    let workload = match workload {
        "sliding-window" => ChurnWorkload::SlidingWindow { window: 2 * batch },
        "insert-heavy" => ChurnWorkload::InsertHeavy { remove_every: 8 },
        "adversarial" => ChurnWorkload::Adversarial,
        "hotspot" => ChurnWorkload::Hotspot {
            span: (g.node_count() / 20).max(16),
            remove_every: 8,
        },
        other => {
            return Err(CliError::new(format!(
                "unknown workload {other:?}; expected \
                 sliding-window|insert-heavy|adversarial|hotspot"
            )))
        }
    };
    let stream = dkcore_data::churn_stream(&g, workload, steps, batch, seed);

    let mut all_correct = true;
    match engine {
        "batched" | "per-edge" => {
            let batched = engine == "batched";
            let mut sc = batched.then(|| StreamCore::new(&g));
            let mut dc = (!batched).then(|| DynamicCore::new(&g));
            let mut t = Table::new([
                "step",
                "inserts",
                "removals",
                "candidates",
                "changed",
                "correct",
            ]);
            for (i, b) in stream.iter().enumerate() {
                let (candidates, changed, values, graph) = if let Some(dc) = dc.as_mut() {
                    let mut candidates = 0usize;
                    let mut changed = 0usize;
                    for &(u, v) in b.removals() {
                        let s = dc
                            .remove_edge(u, v)
                            .map_err(|e| CliError::new(e.to_string()))?;
                        candidates += s.candidates;
                        changed += s.changed;
                    }
                    for &(u, v) in b.insertions() {
                        let s = dc
                            .insert_edge(u, v)
                            .map_err(|e| CliError::new(e.to_string()))?;
                        candidates += s.candidates;
                        changed += s.changed;
                    }
                    (candidates, changed, dc.values().to_vec(), dc.to_graph())
                } else {
                    let sc = sc.as_mut().expect("batched engine");
                    let s = sc
                        .apply_batch(b)
                        .map_err(|e| CliError::new(e.to_string()))?;
                    (s.candidates, s.changed, sc.values().to_vec(), sc.to_graph())
                };
                let correct = values == batagelj_zaversnik(&graph);
                all_correct &= correct;
                t.row([
                    i.to_string(),
                    b.insertions().len().to_string(),
                    b.removals().len().to_string(),
                    candidates.to_string(),
                    changed.to_string(),
                    correct.to_string(),
                ]);
            }
            write!(out, "{t}")?;
        }
        "warm-dist" => {
            let mut sc = StreamCore::new(&g);
            let mut t = Table::new([
                "step",
                "inserts",
                "removals",
                "warm-rounds",
                "cold-rounds",
                "warm-msgs",
                "correct",
            ]);
            for (i, b) in stream.iter().enumerate() {
                let old = sc.values().to_vec();
                sc.apply_batch(b)
                    .map_err(|e| CliError::new(e.to_string()))?;
                let new_graph = sc.to_graph();
                let est = warm_start_estimates_batch(
                    &old,
                    &new_graph,
                    b.insertions(),
                    b.removals().len(),
                );
                let cfg = ActiveSetConfig {
                    threads,
                    ..Default::default()
                };
                let warm = ActiveSetEngine::with_estimates(&new_graph, cfg, &est).run();
                let cold = ActiveSetEngine::new(&new_graph, cfg).run();
                let correct =
                    warm.final_estimates == sc.values() && cold.final_estimates == sc.values();
                all_correct &= correct;
                t.row([
                    i.to_string(),
                    b.insertions().len().to_string(),
                    b.removals().len().to_string(),
                    warm.rounds_executed.to_string(),
                    cold.rounds_executed.to_string(),
                    warm.total_messages.to_string(),
                    correct.to_string(),
                ]);
            }
            write!(out, "{t}")?;
        }
        other => {
            return Err(CliError::new(format!(
                "unknown engine {other:?}; expected batched|per-edge|warm-dist"
            )))
        }
    }
    if !all_correct {
        return Err(CliError::new("stream verification failed (see table)"));
    }
    Ok(())
}

/// `dkcore generate`: build a dataset analog and write it as an edge list.
///
/// # Errors
///
/// Returns [`CliError`] for unknown analogs and I/O failures.
pub fn cmd_generate<W: Write>(
    analog: &str,
    nodes: usize,
    seed: u64,
    out: &mut W,
) -> Result<(), CliError> {
    let spec = dkcore_data::by_name(analog)
        .ok_or_else(|| CliError::new(format!("unknown analog {analog:?}")))?;
    let g = spec.build_scaled(nodes, seed);
    graph_io::write_edge_list(&g, out)?;
    Ok(())
}

/// `dkcore list-analogs`: the catalog with the paper's reference stats.
///
/// # Errors
///
/// Returns [`CliError`] on output failures.
pub fn cmd_list_analogs<W: Write>(out: &mut W) -> Result<(), CliError> {
    let mut t = Table::new([
        "analog",
        "stands in for",
        "paper |V|",
        "paper k_max",
        "default",
    ]);
    for spec in dkcore_data::catalog() {
        t.row([
            spec.name.to_string(),
            spec.snap_name.to_string(),
            spec.paper.nodes.to_string(),
            spec.paper.max_coreness.to_string(),
            spec.default_nodes.to_string(),
        ]);
    }
    write!(out, "{t}")?;
    Ok(())
}

/// Parses and dispatches a full argument vector (without the binary
/// name); the entry point used by the `dkcore` binary.
///
/// # Errors
///
/// Returns [`CliError`] with a user-facing message on any failure.
pub fn dispatch<W: Write>(args: &[String], out: &mut W) -> Result<(), CliError> {
    let mut positional: Vec<&str> = Vec::new();
    let mut algorithm = "bz".to_string();
    let mut shells = false;
    let mut hosts = 0usize;
    let mut policy = "p2p".to_string();
    let mut mode = "random".to_string();
    let mut engine: Option<String> = None;
    let mut threads = 0usize;
    let mut reps = 1u32;
    let mut seed = 42u64;
    let mut nodes = 0usize;
    let mut batch = 32usize;
    let mut steps = 8usize;
    let mut workload = "sliding-window".to_string();
    let mut out_path: Option<String> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| -> Result<String, CliError> {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::new(format!("{name} requires a value")))
        };
        match a.as_str() {
            "--algorithm" => algorithm = value("--algorithm")?,
            "--shells" => shells = true,
            "--hosts" => {
                hosts = value("--hosts")?
                    .parse()
                    .map_err(|_| CliError::new("--hosts: expected a number"))?
            }
            "--policy" => policy = value("--policy")?,
            "--mode" => mode = value("--mode")?,
            "--engine" => engine = Some(value("--engine")?),
            "--workload" => workload = value("--workload")?,
            "--batch" => {
                batch = value("--batch")?
                    .parse()
                    .map_err(|_| CliError::new("--batch: expected a number"))?
            }
            "--steps" => {
                steps = value("--steps")?
                    .parse()
                    .map_err(|_| CliError::new("--steps: expected a number"))?
            }
            "--threads" => {
                threads = value("--threads")?
                    .parse()
                    .map_err(|_| CliError::new("--threads: expected a number"))?
            }
            "--reps" => {
                reps = value("--reps")?
                    .parse()
                    .map_err(|_| CliError::new("--reps: expected a number"))?
            }
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|_| CliError::new("--seed: expected a number"))?
            }
            "--nodes" => {
                nodes = value("--nodes")?
                    .parse()
                    .map_err(|_| CliError::new("--nodes: expected a number"))?
            }
            "--out" => out_path = Some(value("--out")?),
            flag if flag.starts_with("--") => {
                return Err(CliError::new(format!("unknown flag {flag}")))
            }
            plain => positional.push(plain),
        }
    }

    let Some((&command, rest)) = positional.split_first() else {
        return Err(CliError::new(USAGE));
    };
    let input = rest.first().copied();
    let need_input = || input.ok_or_else(|| CliError::new(USAGE));

    // Route output to --out when given.
    let mut file_out: Box<dyn Write> = match &out_path {
        Some(p) => Box::new(std::fs::File::create(p)?),
        None => Box::new(Vec::new()), // placeholder, unused
    };
    let use_file = out_path.is_some();
    let mut sink: &mut dyn Write = if use_file { &mut file_out } else { out };

    match command {
        "stats" => cmd_stats(need_input()?, seed, &mut sink),
        "decompose" => cmd_decompose(need_input()?, &algorithm, shells, seed, &mut sink),
        "simulate" => cmd_simulate(
            need_input()?,
            hosts,
            &policy,
            &mode,
            engine.as_deref().unwrap_or("legacy"),
            threads,
            reps,
            seed,
            &mut sink,
        ),
        "stream" => cmd_stream(
            need_input()?,
            batch,
            steps,
            &workload,
            engine.as_deref().unwrap_or("batched"),
            threads,
            seed,
            &mut sink,
        ),
        "generate" => {
            if nodes == 0 {
                return Err(CliError::new("generate requires --nodes N"));
            }
            cmd_generate(need_input()?, nodes, seed, &mut sink)
        }
        "list-analogs" => cmd_list_analogs(&mut sink),
        "help" | "--help" | "-h" => {
            write!(sink, "{USAGE}")?;
            Ok(())
        }
        other => Err(CliError::new(format!(
            "unknown command {other:?}\n\n{USAGE}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> Result<String, CliError> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        dispatch(&args, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    #[test]
    fn stats_on_analog() {
        let text = run(&["stats", "analog:gnutella-like:500"]).unwrap();
        assert!(text.contains("nodes |V|"));
        assert!(text.contains("500"));
        assert!(text.contains("max coreness"));
    }

    #[test]
    fn decompose_algorithms_agree() {
        let input = "analog:amazon-like:400";
        let bz = run(&["decompose", input, "--algorithm", "bz"]).unwrap();
        let naive = run(&["decompose", input, "--algorithm", "naive"]).unwrap();
        let protocol = run(&["decompose", input, "--algorithm", "protocol"]).unwrap();
        let pregel = run(&["decompose", input, "--algorithm", "pregel"]).unwrap();
        assert_eq!(bz, naive);
        assert_eq!(bz, protocol);
        assert_eq!(bz, pregel);
        assert!(bz.starts_with("# node\tcoreness\n"));
    }

    #[test]
    fn decompose_shells_histogram() {
        let text = run(&["decompose", "analog:condmat-like:400", "--shells"]).unwrap();
        assert!(text.contains("k-shell"));
    }

    #[test]
    fn simulate_one_to_one_and_hosts() {
        let text = run(&["simulate", "analog:gnutella-like:300", "--reps", "2"]).unwrap();
        assert!(
            text.matches("true").count() == 2,
            "both reps correct: {text}"
        );
        let text = run(&[
            "simulate",
            "analog:gnutella-like:300",
            "--hosts",
            "4",
            "--policy",
            "broadcast",
            "--mode",
            "sync",
        ])
        .unwrap();
        assert!(text.contains("true"));
    }

    #[test]
    fn simulate_active_set_engines() {
        // One-to-one and one-to-many fast paths both agree with the
        // ground-truth check (the table prints `true` per repetition) and
        // match the legacy engine's table output exactly.
        for hosts in ["0", "4"] {
            let fast = run(&[
                "simulate",
                "analog:gnutella-like:300",
                "--hosts",
                hosts,
                "--mode",
                "sync",
                "--engine",
                "active-set",
                "--threads",
                "2",
            ])
            .unwrap();
            assert!(fast.contains("true"), "hosts={hosts}: {fast}");
            let legacy = run(&[
                "simulate",
                "analog:gnutella-like:300",
                "--hosts",
                hosts,
                "--mode",
                "sync",
                "--engine",
                "legacy",
            ])
            .unwrap();
            assert_eq!(fast, legacy, "hosts={hosts}");
        }
    }

    #[test]
    fn active_set_engine_rejects_random_mode() {
        let err = run(&[
            "simulate",
            "analog:gnutella-like:100",
            "--mode",
            "random",
            "--engine",
            "active-set",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("--mode sync"), "{err}");
        let err = run(&[
            "simulate",
            "analog:gnutella-like:100",
            "--engine",
            "warp-drive",
        ])
        .unwrap_err();
        assert!(err.to_string().contains("unknown engine"), "{err}");
    }

    #[test]
    fn stream_engines_verify_against_ground_truth() {
        for engine in ["batched", "per-edge"] {
            for workload in ["sliding-window", "insert-heavy", "adversarial"] {
                let text = run(&[
                    "stream",
                    "analog:gnutella-like:300",
                    "--batch",
                    "8",
                    "--steps",
                    "4",
                    "--workload",
                    workload,
                    "--engine",
                    engine,
                ])
                .unwrap();
                assert_eq!(
                    text.matches("true").count(),
                    4,
                    "{engine}/{workload}: every step verified: {text}"
                );
                assert!(text.contains("candidates"));
            }
        }
    }

    #[test]
    fn stream_warm_dist_reports_round_counts() {
        let text = run(&[
            "stream",
            "analog:condmat-like:400",
            "--batch",
            "6",
            "--steps",
            "3",
            "--engine",
            "warm-dist",
        ])
        .unwrap();
        assert!(text.contains("warm-rounds"), "{text}");
        assert!(text.contains("cold-rounds"), "{text}");
        assert_eq!(text.matches("true").count(), 3, "{text}");
    }

    #[test]
    fn stream_rejects_bad_options() {
        assert!(
            run(&["stream", "analog:gnutella-like:100", "--engine", "bogus"])
                .unwrap_err()
                .to_string()
                .contains("unknown engine")
        );
        assert!(
            run(&["stream", "analog:gnutella-like:100", "--workload", "bogus"])
                .unwrap_err()
                .to_string()
                .contains("unknown workload")
        );
        assert!(run(&["stream", "analog:gnutella-like:100", "--batch", "x"]).is_err());
        assert!(run(&["stream"]).is_err());
    }

    #[test]
    fn generate_roundtrips_through_stats() {
        let dir = std::env::temp_dir().join("dkcore_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gen.txt");
        let path_str = path.to_str().unwrap();
        run(&[
            "generate",
            "roadnet-like",
            "--nodes",
            "400",
            "--out",
            path_str,
        ])
        .unwrap();
        let text = run(&["stats", path_str]).unwrap();
        assert!(text.contains("edges |E|"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn list_analogs_shows_all_nine() {
        let text = run(&["list-analogs"]).unwrap();
        for spec in dkcore_data::catalog() {
            assert!(text.contains(spec.name), "{} missing", spec.name);
        }
    }

    #[test]
    fn helpful_errors() {
        assert!(run(&[]).is_err());
        assert!(run(&["bogus-cmd"])
            .unwrap_err()
            .to_string()
            .contains("unknown command"));
        assert!(run(&["stats"]).is_err());
        assert!(run(&["stats", "analog:nope:100"])
            .unwrap_err()
            .to_string()
            .contains("unknown analog"));
        assert!(run(&[
            "decompose",
            "analog:gnutella-like:100",
            "--algorithm",
            "magic"
        ])
        .unwrap_err()
        .to_string()
        .contains("unknown algorithm"));
        assert!(run(&["generate", "roadnet-like"])
            .unwrap_err()
            .to_string()
            .contains("--nodes"));
        assert!(run(&["stats", "/no/such/file.txt"]).is_err());
        assert!(run(&["simulate", "analog:gnutella-like:100", "--mode", "warp"]).is_err());
        assert!(run(&["stats", "analog:gnutella-like:100", "--seed"]).is_err());
        assert!(run(&["stats", "analog:gnutella-like:100", "--wat"]).is_err());
    }

    #[test]
    fn help_prints_usage() {
        let text = run(&["help"]).unwrap();
        assert!(text.contains("USAGE"));
    }

    #[test]
    fn seed_changes_analog_output_deterministically() {
        let a1 = run(&["decompose", "analog:gnutella-like:300", "--seed", "1"]).unwrap();
        let a2 = run(&["decompose", "analog:gnutella-like:300", "--seed", "1"]).unwrap();
        let b = run(&["decompose", "analog:gnutella-like:300", "--seed", "2"]).unwrap();
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }
}
