//! Threaded message-passing runtime for the distributed k-core protocols.
//!
//! Where `dkcore-sim` *simulates* rounds, this crate actually *runs* the
//! protocol on a set of live workers: every host of the paper's §3.2 model
//! becomes an OS thread owning its [`HostProtocol`] state, and estimate
//! messages `⟨S⟩` travel over crossbeam channels (reliable, in-order,
//! no crashes — exactly the system model of the paper's §2).
//!
//! Rounds are paced by a coordinator thread implementing the paper's
//! §3.3 *centralized* termination detection ("master-slaves approach"):
//! each round is a deliver barrier (every worker drains last round's
//! messages) followed by a flush barrier (every worker emits its staged
//! `⟨S⟩` sets), and the system stops after the first fully quiescent
//! round. The two-barrier round makes the live transport exactly
//! lock-step: coreness *and* message statistics are bit-identical to the
//! synchronous `HostSim` reference engine (asserted by the parity test in
//! `worker.rs`). Point-to-point messages travel slot-translated in
//! recycled per-peer buffers (`round_flush_staged`/`receive_slots`), so
//! steady-state rounds allocate nothing; broadcasts ship one shared
//! `Arc` set instead of per-recipient clones.
//!
//! The one-to-one scenario is the special case `hosts == node_count` (the
//! paper, §1: "the former can be seen as a special case of the latter"),
//! so a single runtime serves both deployment models.
//!
//! # Example
//!
//! ```
//! use dkcore_runtime::{Runtime, RuntimeConfig};
//! use dkcore::seq::batagelj_zaversnik;
//! use dkcore_graph::generators::gnp;
//!
//! let g = gnp(60, 0.08, 5);
//! let result = Runtime::new(RuntimeConfig::with_hosts(4)).run(&g);
//! assert!(result.converged);
//! assert_eq!(result.coreness, batagelj_zaversnik(&g));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;
mod worker;

pub use pool::{pin_to_core, PoolStats, WorkerPool};
pub use worker::{Runtime, RuntimeConfig, RuntimeResult};
