//! Coordinator + worker threads.

use std::thread;

use crossbeam::channel::{unbounded, Receiver, Sender};
use dkcore::one_to_many::{
    Assignment, AssignmentPolicy, Destination, HostProtocol, OneToManyConfig, Outgoing,
};
use dkcore_graph::{Graph, NodeId};
use parking_lot::Mutex;

/// Configuration for a [`Runtime`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Number of worker threads (= hosts `|H|`).
    pub hosts: usize,
    /// Node → host assignment policy (§3.2.2).
    pub assignment: AssignmentPolicy,
    /// Host protocol configuration (dissemination policy, emulation mode).
    pub protocol: OneToManyConfig,
    /// Safety cap on rounds; `0` means automatic (`2·N + 100`).
    pub max_rounds: u32,
}

impl RuntimeConfig {
    /// Default configuration with the given number of hosts.
    ///
    /// # Panics
    ///
    /// Panics if `hosts == 0`.
    pub fn with_hosts(hosts: usize) -> Self {
        assert!(hosts > 0, "need at least one host");
        RuntimeConfig {
            hosts,
            assignment: AssignmentPolicy::Modulo,
            protocol: OneToManyConfig::default(),
            max_rounds: 0,
        }
    }
}

/// Outcome of a live run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeResult {
    /// Computed coreness per node (indexed by node id).
    pub coreness: Vec<u32>,
    /// Rounds executed, including the quiescent detection round.
    pub rounds: u32,
    /// Total `⟨S⟩` messages exchanged between hosts.
    pub messages: u64,
    /// Total `(node, estimate)` pairs shipped (Figure 5's overhead
    /// numerator).
    pub estimates_sent: u64,
    /// Whether the system reached quiescence (vs. hitting the round cap).
    pub converged: bool,
}

/// Sending half of a host's estimate-set channel.
type EstimateSender = Sender<Vec<(NodeId, u32)>>;

/// Control messages from the coordinator to workers.
enum Control {
    /// Execute one round; `first` selects the initialization flush.
    Tick { first: bool },
    /// Terminate and report final state.
    Stop,
}

/// A worker's end-of-round report to the coordinator.
struct Report {
    /// Sent messages or produced new estimates this round.
    active: bool,
}

/// A worker's final state, delivered after `Stop`.
struct FinalState {
    estimates: Vec<(NodeId, u32)>,
    messages_sent: u64,
    estimates_sent: u64,
}

/// The live message-passing runtime. See the [crate docs](crate).
#[derive(Debug, Clone)]
pub struct Runtime {
    config: RuntimeConfig,
}

impl Runtime {
    /// Creates a runtime with the given configuration.
    pub fn new(config: RuntimeConfig) -> Self {
        Runtime { config }
    }

    /// Runs the protocol on `g` to completion and returns the computed
    /// decomposition with transport statistics.
    ///
    /// Spawns `config.hosts` worker threads plus a coordinator; all
    /// threads are joined before returning.
    pub fn run(&self, g: &Graph) -> RuntimeResult {
        let h = self.config.hosts;
        let n = g.node_count();
        let max_rounds = if self.config.max_rounds > 0 {
            self.config.max_rounds
        } else {
            2 * n as u32 + 100
        };
        let assignment = Assignment::new(g, h, &self.config.assignment);
        let protocols: Vec<HostProtocol> =
            HostProtocol::for_assignment(g, &assignment, self.config.protocol);

        // Data plane: one channel per host for ⟨S⟩ messages.
        let (data_txs, data_rxs): (Vec<EstimateSender>, Vec<_>) =
            (0..h).map(|_| unbounded()).unzip();
        // Control plane.
        let (ctrl_txs, ctrl_rxs): (Vec<Sender<Control>>, Vec<_>) =
            (0..h).map(|_| unbounded()).unzip();
        let (report_tx, report_rx) = unbounded::<Report>();
        // Final states, collected under a lock (workers finish in any order).
        let finals: Mutex<Vec<Option<FinalState>>> = Mutex::new((0..h).map(|_| None).collect());

        let mut rounds = 0u32;
        let mut total_messages = 0u64;

        thread::scope(|scope| {
            for (i, proto) in protocols.into_iter().enumerate() {
                let peers = data_txs.clone();
                let ctrl = ctrl_rxs[i].clone();
                let data = data_rxs[i].clone();
                let report = report_tx.clone();
                let finals = &finals;
                scope.spawn(move || {
                    worker_loop(i, proto, peers, ctrl, data, report, finals);
                });
            }

            // Coordinator: tick rounds until a fully quiescent one.
            let mut first = true;
            loop {
                rounds += 1;
                for tx in &ctrl_txs {
                    tx.send(Control::Tick { first }).expect("worker alive");
                }
                first = false;
                let mut any_active = false;
                for _ in 0..h {
                    let r = report_rx.recv().expect("worker reports");
                    any_active |= r.active;
                }
                if !any_active || rounds >= max_rounds {
                    break;
                }
            }
            for tx in &ctrl_txs {
                tx.send(Control::Stop).expect("worker alive");
            }
        });

        let mut coreness = vec![0u32; n];
        let mut estimates_sent = 0u64;
        let mut converged = true;
        for state in finals.into_inner() {
            let state = state.expect("every worker reported a final state");
            for (u, e) in state.estimates {
                coreness[u.index()] = e;
            }
            total_messages += state.messages_sent;
            estimates_sent += state.estimates_sent;
        }
        if rounds >= max_rounds {
            converged = false;
        }
        RuntimeResult {
            coreness,
            rounds,
            messages: total_messages,
            estimates_sent,
            converged,
        }
    }
}

/// Body of one worker thread: drain inbox, process, flush, report.
fn worker_loop(
    host: usize,
    mut proto: HostProtocol,
    peers: Vec<Sender<Vec<(NodeId, u32)>>>,
    ctrl: Receiver<Control>,
    data: Receiver<Vec<(NodeId, u32)>>,
    report: Sender<Report>,
    finals: &Mutex<Vec<Option<FinalState>>>,
) {
    loop {
        match ctrl.recv().expect("coordinator alive") {
            Control::Tick { first } => {
                // Drain all estimate sets that arrived since the last tick.
                while let Ok(pairs) = data.try_recv() {
                    proto.receive(&pairs);
                }
                let outgoing: Vec<Outgoing> = if first {
                    proto.initial_flush()
                } else {
                    proto.round_flush()
                };
                let mut sent = false;
                for msg in outgoing {
                    sent = true;
                    match msg.dest {
                        Destination::AllHosts => {
                            for (p, tx) in peers.iter().enumerate() {
                                if p != host {
                                    tx.send(msg.pairs.clone()).expect("peer alive");
                                }
                            }
                        }
                        Destination::Host(y) => {
                            peers[y.index()]
                                .send(msg.pairs.clone())
                                .expect("peer alive");
                        }
                    }
                }
                let active = sent || proto.has_pending_changes();
                report.send(Report { active }).expect("coordinator alive");
            }
            Control::Stop => {
                let state = FinalState {
                    estimates: proto.local_estimates().collect(),
                    messages_sent: proto.messages_sent(),
                    estimates_sent: proto.estimates_sent(),
                };
                finals.lock()[host] = Some(state);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkcore::one_to_many::{DisseminationPolicy, EmulationMode};
    use dkcore::seq::batagelj_zaversnik;
    use dkcore_graph::generators::{barabasi_albert, gnp, path, worst_case};

    #[test]
    fn computes_correct_coreness_p2p() {
        let g = gnp(100, 0.06, 1);
        let truth = batagelj_zaversnik(&g);
        for hosts in [1, 2, 4, 8] {
            let result = Runtime::new(RuntimeConfig::with_hosts(hosts)).run(&g);
            assert!(result.converged);
            assert_eq!(result.coreness, truth, "hosts = {hosts}");
        }
    }

    #[test]
    fn computes_correct_coreness_broadcast() {
        let g = barabasi_albert(120, 3, 3);
        let truth = batagelj_zaversnik(&g);
        let mut config = RuntimeConfig::with_hosts(6);
        config.protocol.policy = DisseminationPolicy::Broadcast;
        let result = Runtime::new(config).run(&g);
        assert!(result.converged);
        assert_eq!(result.coreness, truth);
    }

    #[test]
    fn one_thread_per_node_matches_one_to_one_scenario() {
        let g = gnp(24, 0.2, 9);
        let truth = batagelj_zaversnik(&g);
        let result = Runtime::new(RuntimeConfig::with_hosts(24)).run(&g);
        assert_eq!(result.coreness, truth);
    }

    #[test]
    fn worst_case_graph_through_threads() {
        let g = worst_case(16);
        let result = Runtime::new(RuntimeConfig::with_hosts(4)).run(&g);
        assert!(result.coreness.iter().all(|&c| c == 2));
    }

    #[test]
    fn per_round_emulation_converges_live() {
        let g = path(24);
        let mut config = RuntimeConfig::with_hosts(3);
        config.assignment = AssignmentPolicy::Block;
        config.protocol.emulation = EmulationMode::PerRound;
        let result = Runtime::new(config).run(&g);
        assert!(result.converged);
        assert_eq!(result.coreness, vec![1; 24]);
    }

    #[test]
    fn single_host_needs_no_messages() {
        let g = gnp(50, 0.1, 2);
        let result = Runtime::new(RuntimeConfig::with_hosts(1)).run(&g);
        assert_eq!(result.messages, 0);
        assert_eq!(result.coreness, batagelj_zaversnik(&g));
    }

    #[test]
    fn round_cap_reports_non_convergence() {
        let g = path(60);
        let mut config = RuntimeConfig::with_hosts(4);
        config.max_rounds = 2;
        let result = Runtime::new(config).run(&g);
        assert!(!result.converged);
        assert_eq!(result.rounds, 2);
    }

    #[test]
    fn stats_are_plausible() {
        let g = gnp(80, 0.08, 7);
        let result = Runtime::new(RuntimeConfig::with_hosts(8)).run(&g);
        assert!(result.messages > 0);
        assert!(
            result.estimates_sent >= result.messages,
            "every message carries at least one estimate"
        );
        assert!(result.rounds >= 2);
    }

    #[test]
    #[should_panic(expected = "at least one host")]
    fn zero_hosts_rejected() {
        let _ = RuntimeConfig::with_hosts(0);
    }

    #[test]
    fn confluent_results_despite_threading() {
        // Thread scheduling must not affect the *outcome*: the protocol is
        // confluent (estimates only decrease toward a unique fixpoint).
        // Transport statistics may legitimately vary between runs — a
        // worker may drain a message in the round it was sent or the next
        // one depending on interleaving, exactly the nondeterminism the
        // paper models by varying operation order across experiments.
        let g = barabasi_albert(100, 2, 11);
        let truth = batagelj_zaversnik(&g);
        for _ in 0..5 {
            let result = Runtime::new(RuntimeConfig::with_hosts(7)).run(&g);
            assert_eq!(result.coreness, truth);
            assert!(result.converged);
        }
    }
}
