//! Coordinator + worker threads.
//!
//! The data plane ships estimate sets with the flat staging layout of the
//! PR 2 engines instead of heap-allocated pair vectors per message:
//! point-to-point `⟨S⟩` messages are emitted **slot-translated** through
//! [`HostProtocol::round_flush_staged`] into reusable per-peer buffers
//! (receivers drain them with [`HostProtocol::receive_slots`] — one array
//! write per pair, no node lookups — and recycle the emptied buffer back
//! to the sender), while broadcast sets are shared by `Arc` rather than
//! cloned per recipient. Steady-state rounds allocate nothing on the
//! point-to-point path.

use std::sync::Arc;
use std::thread;

use crossbeam::channel::{unbounded, Receiver, Sender};
use dkcore::one_to_many::{
    Assignment, AssignmentPolicy, DisseminationPolicy, HostId, HostProtocol, OneToManyConfig,
    StagedSink,
};
use dkcore_graph::{Graph, NodeId};
use parking_lot::Mutex;

/// Configuration for a [`Runtime`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Number of worker threads (= hosts `|H|`).
    pub hosts: usize,
    /// Node → host assignment policy (§3.2.2).
    pub assignment: AssignmentPolicy,
    /// Host protocol configuration (dissemination policy, emulation mode).
    pub protocol: OneToManyConfig,
    /// Safety cap on rounds; `0` means automatic (`2·N + 100`).
    pub max_rounds: u32,
    /// Best-effort: pin worker `i` to core `i % available_cores`
    /// (see [`crate::pool::pin_to_core`]). Ignored where unsupported.
    pub pin: bool,
}

impl RuntimeConfig {
    /// Default configuration with the given number of hosts.
    ///
    /// # Panics
    ///
    /// Panics if `hosts == 0`.
    pub fn with_hosts(hosts: usize) -> Self {
        assert!(hosts > 0, "need at least one host");
        RuntimeConfig {
            hosts,
            assignment: AssignmentPolicy::Modulo,
            protocol: OneToManyConfig::default(),
            max_rounds: 0,
            pin: false,
        }
    }
}

/// Outcome of a live run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeResult {
    /// Computed coreness per node (indexed by node id).
    pub coreness: Vec<u32>,
    /// Rounds executed, including the quiescent detection round.
    pub rounds: u32,
    /// Total `⟨S⟩` messages exchanged between hosts.
    pub messages: u64,
    /// Total `(node, estimate)` pairs shipped (Figure 5's overhead
    /// numerator).
    pub estimates_sent: u64,
    /// Whether the system reached quiescence (vs. hitting the round cap).
    pub converged: bool,
}

/// One data-plane message between hosts.
enum Packet {
    /// A point-to-point `⟨S⟩` message, slot-translated into the
    /// recipient's slot space; `from` identifies the sender so the
    /// drained buffer can be recycled back to it.
    Slots {
        /// Sending host (recycling address).
        from: usize,
        /// `(destination slot, estimate)` pairs.
        pairs: Vec<(u32, u32)>,
    },
    /// A broadcast `⟨S⟩` set, shared across all recipients.
    Broadcast(Arc<Vec<(NodeId, u32)>>),
}

/// Sending half of a buffer-recycling channel.
type RecycleSender = Sender<Vec<(u32, u32)>>;

/// Control messages from the coordinator to workers.
///
/// A round is two barriers: `Deliver` (drain everything sent last round)
/// then `Flush` — making the live transport *exactly* lock-step
/// synchronous. With a single combined tick, a fast sender's message
/// could be drained by a slow receiver in the same round, silently
/// compressing convergence and making message counts scheduling-
/// dependent; the split barrier restores the deliver-then-flush round of
/// the synchronous reference engine (`HostSim`), bit-identical counts
/// included.
enum Control {
    /// Drain all `⟨S⟩` messages sent last round, then acknowledge.
    Deliver,
    /// Emit this round's flush; `first` selects the initialization flush.
    Flush { first: bool },
    /// Terminate and report final state.
    Stop,
}

/// A worker's end-of-round report to the coordinator.
struct Report {
    /// Sent messages or produced new estimates this round.
    active: bool,
}

/// A worker's final state, delivered after `Stop`.
struct FinalState {
    estimates: Vec<(NodeId, u32)>,
    messages_sent: u64,
    estimates_sent: u64,
}

/// The live message-passing runtime. See the [crate docs](crate).
#[derive(Debug, Clone)]
pub struct Runtime {
    config: RuntimeConfig,
}

impl Runtime {
    /// Creates a runtime with the given configuration.
    pub fn new(config: RuntimeConfig) -> Self {
        Runtime { config }
    }

    /// Runs the protocol on `g` to completion and returns the computed
    /// decomposition with transport statistics.
    ///
    /// Spawns `config.hosts` worker threads plus a coordinator; all
    /// threads are joined before returning.
    pub fn run(&self, g: &Graph) -> RuntimeResult {
        let h = self.config.hosts;
        let n = g.node_count();
        let max_rounds = if self.config.max_rounds > 0 {
            self.config.max_rounds
        } else {
            2 * n as u32 + 100
        };
        let assignment = Assignment::new(g, h, &self.config.assignment);
        let protocols: Vec<HostProtocol> =
            HostProtocol::for_assignment(g, &assignment, self.config.protocol);

        // Border slot-translation tables (point-to-point only): for host
        // `x` and its `j`-th neighbor host, the slot each border node
        // occupies at the destination — exactly the tables the PR 2
        // active-set host engine precomputes, here feeding the live
        // transport so receivers apply messages with `receive_slots`.
        let xlats: Vec<Vec<Box<[u32]>>> = if self.config.protocol.policy
            == DisseminationPolicy::PointToPoint
        {
            protocols
                .iter()
                .map(|x| {
                    x.neighbor_hosts()
                        .iter()
                        .enumerate()
                        .map(|(j, &y)| {
                            let dest = &protocols[y.index()];
                            x.border(j)
                                .iter()
                                .map(|&i| {
                                    dest.slot_of(x.local_nodes()[i as usize])
                                        .expect("border node is in the destination's slot space")
                                })
                                .collect()
                        })
                        .collect()
                })
                .collect()
        } else {
            vec![Vec::new(); h]
        };

        // Data plane: one packet channel per host, plus one recycling
        // channel per host through which receivers hand drained
        // point-to-point buffers back to their sender.
        let (data_txs, data_rxs): (Vec<Sender<Packet>>, Vec<_>) =
            (0..h).map(|_| unbounded()).unzip();
        let (recycle_txs, recycle_rxs): (Vec<RecycleSender>, Vec<_>) =
            (0..h).map(|_| unbounded()).unzip();
        // Control plane.
        let (ctrl_txs, ctrl_rxs): (Vec<Sender<Control>>, Vec<_>) =
            (0..h).map(|_| unbounded()).unzip();
        let (report_tx, report_rx) = unbounded::<Report>();
        // Final states, collected under a lock (workers finish in any order).
        let finals: Mutex<Vec<Option<FinalState>>> = Mutex::new((0..h).map(|_| None).collect());

        let mut rounds = 0u32;
        let mut total_messages = 0u64;

        let cores = thread::available_parallelism().map_or(1, usize::from);
        let pin = self.config.pin;
        thread::scope(|scope| {
            for (i, (proto, xlat)) in protocols.into_iter().zip(xlats).enumerate() {
                let peers = data_txs.clone();
                let recycle_peers = recycle_txs.clone();
                let recycle = recycle_rxs[i].clone();
                let ctrl = ctrl_rxs[i].clone();
                let data = data_rxs[i].clone();
                let report = report_tx.clone();
                let finals = &finals;
                scope.spawn(move || {
                    if pin {
                        // Advisory; a failed pin changes nothing about
                        // correctness or termination.
                        let _ = crate::pool::pin_to_core(i % cores);
                    }
                    let net = Network {
                        host: i,
                        peers,
                        recycle_peers,
                        recycle,
                        xlat,
                    };
                    worker_loop(proto, net, ctrl, data, report, finals);
                });
            }

            // Coordinator: run deliver/flush rounds until a fully
            // quiescent one. The first round has nothing in flight, so it
            // skips the deliver barrier.
            let mut first = true;
            loop {
                rounds += 1;
                if !first {
                    for tx in &ctrl_txs {
                        tx.send(Control::Deliver).expect("worker alive");
                    }
                    for _ in 0..h {
                        report_rx.recv().expect("worker acks delivery");
                    }
                }
                for tx in &ctrl_txs {
                    tx.send(Control::Flush { first }).expect("worker alive");
                }
                first = false;
                let mut any_active = false;
                for _ in 0..h {
                    let r = report_rx.recv().expect("worker reports");
                    any_active |= r.active;
                }
                if !any_active || rounds >= max_rounds {
                    break;
                }
            }
            for tx in &ctrl_txs {
                tx.send(Control::Stop).expect("worker alive");
            }
        });

        let mut coreness = vec![0u32; n];
        let mut estimates_sent = 0u64;
        let mut converged = true;
        for state in finals.into_inner() {
            let state = state.expect("every worker reported a final state");
            for (u, e) in state.estimates {
                coreness[u.index()] = e;
            }
            total_messages += state.messages_sent;
            estimates_sent += state.estimates_sent;
        }
        if rounds >= max_rounds {
            converged = false;
        }
        RuntimeResult {
            coreness,
            rounds,
            messages: total_messages,
            estimates_sent,
            converged,
        }
    }
}

/// One worker's view of the transport: peer channels, the buffer
/// recycling loop, and its slot-translation tables.
struct Network {
    host: usize,
    peers: Vec<Sender<Packet>>,
    /// Recycling senders, indexed by the host a drained buffer goes back to.
    recycle_peers: Vec<Sender<Vec<(u32, u32)>>>,
    /// This worker's incoming recycled buffers.
    recycle: Receiver<Vec<(u32, u32)>>,
    /// Slot tables for `round_flush_staged` (empty under broadcast).
    xlat: Vec<Box<[u32]>>,
}

/// [`StagedSink`] shipping staged flushes over the channels: p2p messages
/// go out in recycled buffers, broadcasts as one shared `Arc` set.
struct NetSink<'a> {
    host: usize,
    peers: &'a [Sender<Packet>],
    recycle: &'a Receiver<Vec<(u32, u32)>>,
    /// A drained buffer kept local when a flush produced no pairs.
    spare: Option<Vec<(u32, u32)>>,
    sent: bool,
}

impl StagedSink for NetSink<'_> {
    fn p2p(&mut self, y: HostId, pairs: &mut dyn Iterator<Item = (u32, u32)>) -> u64 {
        let mut buf = self
            .spare
            .take()
            .or_else(|| self.recycle.try_recv().ok())
            .unwrap_or_default();
        buf.clear();
        buf.extend(pairs);
        let n = buf.len() as u64;
        if n == 0 {
            self.spare = Some(buf);
            return 0;
        }
        self.sent = true;
        self.peers[y.index()]
            .send(Packet::Slots {
                from: self.host,
                pairs: buf,
            })
            .expect("peer alive");
        n
    }

    fn broadcast(&mut self, pairs: &mut dyn Iterator<Item = (NodeId, u32)>) {
        let set: Arc<Vec<(NodeId, u32)>> = Arc::new(pairs.collect());
        self.sent = true;
        for (p, tx) in self.peers.iter().enumerate() {
            if p != self.host {
                tx.send(Packet::Broadcast(set.clone())).expect("peer alive");
            }
        }
    }
}

/// Body of one worker thread: drain inbox, process, flush, report.
fn worker_loop(
    mut proto: HostProtocol,
    net: Network,
    ctrl: Receiver<Control>,
    data: Receiver<Packet>,
    report: Sender<Report>,
    finals: &Mutex<Vec<Option<FinalState>>>,
) {
    let mut spare: Option<Vec<(u32, u32)>> = None;
    loop {
        match ctrl.recv().expect("coordinator alive") {
            Control::Deliver => {
                // Drain everything flushed last round (all of it has
                // arrived: peers sent before reporting, and the
                // coordinator collected every report before this barrier).
                while let Ok(packet) = data.try_recv() {
                    match packet {
                        Packet::Slots { from, mut pairs } => {
                            proto.receive_slots(&pairs);
                            pairs.clear();
                            // Hand the drained buffer back; the sender may
                            // already be gone during shutdown.
                            let _ = net.recycle_peers[from].send(pairs);
                        }
                        Packet::Broadcast(set) => proto.receive(&set),
                    }
                }
                report
                    .send(Report { active: false })
                    .expect("coordinator alive");
            }
            Control::Flush { first } => {
                let mut sink = NetSink {
                    host: net.host,
                    peers: &net.peers,
                    recycle: &net.recycle,
                    spare: spare.take(),
                    sent: false,
                };
                if first {
                    proto.initial_flush_staged(&net.xlat, &mut sink);
                } else {
                    proto.round_flush_staged(&net.xlat, &mut sink);
                }
                let active = sink.sent || proto.has_pending_changes();
                spare = sink.spare;
                report.send(Report { active }).expect("coordinator alive");
            }
            Control::Stop => {
                let state = FinalState {
                    estimates: proto.local_estimates().collect(),
                    messages_sent: proto.messages_sent(),
                    estimates_sent: proto.estimates_sent(),
                };
                finals.lock()[net.host] = Some(state);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkcore::one_to_many::{DisseminationPolicy, EmulationMode};
    use dkcore::seq::batagelj_zaversnik;
    use dkcore_graph::generators::{barabasi_albert, gnp, path, worst_case};

    #[test]
    fn computes_correct_coreness_p2p() {
        let g = gnp(100, 0.06, 1);
        let truth = batagelj_zaversnik(&g);
        for hosts in [1, 2, 4, 8] {
            let result = Runtime::new(RuntimeConfig::with_hosts(hosts)).run(&g);
            assert!(result.converged);
            assert_eq!(result.coreness, truth, "hosts = {hosts}");
        }
    }

    #[test]
    fn computes_correct_coreness_broadcast() {
        let g = barabasi_albert(120, 3, 3);
        let truth = batagelj_zaversnik(&g);
        let mut config = RuntimeConfig::with_hosts(6);
        config.protocol.policy = DisseminationPolicy::Broadcast;
        let result = Runtime::new(config).run(&g);
        assert!(result.converged);
        assert_eq!(result.coreness, truth);
    }

    #[test]
    fn one_thread_per_node_matches_one_to_one_scenario() {
        let g = gnp(24, 0.2, 9);
        let truth = batagelj_zaversnik(&g);
        let result = Runtime::new(RuntimeConfig::with_hosts(24)).run(&g);
        assert_eq!(result.coreness, truth);
    }

    #[test]
    fn worst_case_graph_through_threads() {
        let g = worst_case(16);
        let result = Runtime::new(RuntimeConfig::with_hosts(4)).run(&g);
        assert!(result.coreness.iter().all(|&c| c == 2));
    }

    #[test]
    fn per_round_emulation_converges_live() {
        let g = path(24);
        let mut config = RuntimeConfig::with_hosts(3);
        config.assignment = AssignmentPolicy::Block;
        config.protocol.emulation = EmulationMode::PerRound;
        let result = Runtime::new(config).run(&g);
        assert!(result.converged);
        assert_eq!(result.coreness, vec![1; 24]);
    }

    #[test]
    fn single_host_needs_no_messages() {
        let g = gnp(50, 0.1, 2);
        let result = Runtime::new(RuntimeConfig::with_hosts(1)).run(&g);
        assert_eq!(result.messages, 0);
        assert_eq!(result.coreness, batagelj_zaversnik(&g));
    }

    #[test]
    fn round_cap_reports_non_convergence() {
        let g = path(60);
        let mut config = RuntimeConfig::with_hosts(4);
        config.max_rounds = 2;
        let result = Runtime::new(config).run(&g);
        assert!(!result.converged);
        assert_eq!(result.rounds, 2);
    }

    #[test]
    fn stats_are_plausible() {
        let g = gnp(80, 0.08, 7);
        let result = Runtime::new(RuntimeConfig::with_hosts(8)).run(&g);
        assert!(result.messages > 0);
        assert!(
            result.estimates_sent >= result.messages,
            "every message carries at least one estimate"
        );
        assert!(result.rounds >= 2);
    }

    #[test]
    #[should_panic(expected = "at least one host")]
    fn zero_hosts_rejected() {
        let _ = RuntimeConfig::with_hosts(0);
    }

    #[test]
    fn message_count_parity_with_host_sim() {
        // The staged transport must be *accounting-identical* to the
        // synchronous reference engine: with the coordinator barrier,
        // every ⟨S⟩ sent in tick r is drained before the tick-(r+1)
        // flush, exactly HostSim's deliver-then-flush round — so message
        // and estimate counts (and the round count) agree bit for bit,
        // buffer recycling notwithstanding.
        use dkcore_sim::{HostSim, HostSimConfig};
        let g = gnp(140, 0.05, 33);
        for policy in [
            DisseminationPolicy::PointToPoint,
            DisseminationPolicy::Broadcast,
        ] {
            for hosts in [3, 8] {
                let mut config = RuntimeConfig::with_hosts(hosts);
                config.protocol.policy = policy;
                let live = Runtime::new(config).run(&g);

                let mut sim_config = HostSimConfig::synchronous(hosts);
                sim_config.protocol.policy = policy;
                let mut sim = HostSim::new(&g, sim_config);
                let reference = sim.run();

                assert_eq!(
                    live.coreness, reference.final_estimates,
                    "{policy:?}/{hosts}"
                );
                assert_eq!(
                    live.messages, reference.total_messages,
                    "{policy:?}/{hosts}: ⟨S⟩ message counts diverged"
                );
                assert_eq!(
                    live.estimates_sent,
                    sim.estimates_sent(),
                    "{policy:?}/{hosts}: estimate-pair counts diverged"
                );
                assert_eq!(
                    live.rounds, reference.rounds_executed,
                    "{policy:?}/{hosts}: round counts diverged"
                );
            }
        }
    }

    #[test]
    fn confluent_results_despite_threading() {
        // Thread scheduling must not affect anything observable: the
        // protocol is confluent (estimates only decrease toward a unique
        // fixpoint), and since the deliver/flush barriers made the
        // transport exactly lock-step, even the message statistics are
        // identical from run to run.
        let g = barabasi_albert(100, 2, 11);
        let truth = batagelj_zaversnik(&g);
        let reference = Runtime::new(RuntimeConfig::with_hosts(7)).run(&g);
        assert_eq!(reference.coreness, truth);
        assert!(reference.converged);
        for _ in 0..4 {
            let result = Runtime::new(RuntimeConfig::with_hosts(7)).run(&g);
            assert_eq!(result, reference, "runs must be bit-identical");
        }
    }
}
