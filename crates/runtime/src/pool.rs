//! Persistent ownership-passing worker pool with best-effort core pinning.
//!
//! This is the barrier primitive of the live runtime's coordinator
//! (`worker.rs`) extracted into a reusable shape: a fixed set of
//! long-lived threads, each paired with a job channel and a reply
//! channel, so a coordinator can run deliver/flush-style lock-step
//! rounds without paying a thread-spawn on every round. Between
//! dispatches the workers park on a blocking channel receive — they
//! consume no CPU while the coordinator is doing sequential work
//! (routing, validation, publishing) or while the pool is idle across
//! batches.
//!
//! # Ownership-passing, not shared state
//!
//! The whole workspace forbids `unsafe`, so the pool cannot lend
//! workers borrowed views of coordinator state the way
//! `std::thread::scope` does. Instead each job *moves* its state into
//! the worker and the reply moves it back — a round trip of ownership
//! per dispatch. For shard-sized state this is two channel sends of a
//! by-value struct (pointers, not deep copies) per round, which is
//! orders of magnitude cheaper than the per-round `thread::spawn` +
//! join it replaces.
//!
//! # Pinning
//!
//! `pin_to_core` pins the *calling* thread to one CPU using only safe
//! code: the thread reads its own kernel tid from
//! `/proc/thread-self/stat` and shells out to `taskset -pc`. Every
//! failure mode (no procfs, no `taskset` binary, kernel refusal,
//! non-Linux target) degrades to "not pinned" — callers get a count of
//! successfully pinned workers and must treat pinning as advisory.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// Cumulative pool activity counters, read via [`WorkerPool::stats`].
///
/// The pool keeps these itself (plain shared atomics bumped in the
/// worker loop) so callers get dispatch/busy/park observability without
/// the runtime crate needing any dependency on a metrics registry —
/// bridging the numbers into one is the caller's job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Jobs completed by workers across the pool's lifetime.
    pub dispatched: u64,
    /// Total wall time workers spent running the job closure, in
    /// nanoseconds.
    pub busy_nanos: u64,
    /// Total wall time workers spent parked waiting for a job, in
    /// nanoseconds.
    pub park_nanos: u64,
}

#[derive(Debug, Default)]
struct StatsCells {
    dispatched: AtomicU64,
    busy_nanos: AtomicU64,
    park_nanos: AtomicU64,
}

/// A fixed-size pool of persistent worker threads.
///
/// Each worker runs `f(worker_index, job) -> reply` in a loop, parking
/// on its job channel between dispatches. Jobs and replies are matched
/// per worker (`dispatch(i, ..)` / `collect(i)`), so a coordinator can
/// fan a round out to any subset of workers and collect the replies in
/// a deterministic order of its choosing.
///
/// The worker closure must not panic; recoverable failures (e.g. a
/// panicking drain over user state) should be caught *inside* `f` and
/// encoded in the reply so the owned state survives. If `f` itself
/// panics the worker thread dies and the next `dispatch`/`collect` for
/// it panics in the coordinator.
#[derive(Debug)]
pub struct WorkerPool<J: Send + 'static, R: Send + 'static> {
    jobs: Vec<Sender<J>>,
    replies: Vec<Receiver<R>>,
    handles: Vec<thread::JoinHandle<()>>,
    pinned: usize,
    stats: Arc<StatsCells>,
}

impl<J: Send + 'static, R: Send + 'static> WorkerPool<J, R> {
    /// Spawn `workers` persistent threads running `f`.
    ///
    /// With `pin` set, worker `i` attempts to pin itself to core
    /// `i % available_cores` before its first job; the number of
    /// successful pins is reported by [`WorkerPool::pinned`]. Pinning
    /// is strictly best-effort — an unpinnable environment yields a
    /// fully functional, merely unpinned pool.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new<F>(workers: usize, pin: bool, f: F) -> Self
    where
        F: Fn(usize, J) -> R + Send + Clone + 'static,
    {
        assert!(workers > 0, "need at least one worker");
        let cores = thread::available_parallelism().map_or(1, usize::from);
        let (ready_tx, ready_rx) = channel::<bool>();
        let stats = Arc::new(StatsCells::default());
        let mut jobs = Vec::with_capacity(workers);
        let mut replies = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let (job_tx, job_rx) = channel::<J>();
            let (reply_tx, reply_rx) = channel::<R>();
            let ready = ready_tx.clone();
            let work = f.clone();
            let cells = stats.clone();
            let handle = thread::Builder::new()
                .name(format!("dkcore-pool-{i}"))
                .spawn(move || {
                    let pinned = pin && pin_to_core(i % cores);
                    // The pool counts pins before returning from `new`;
                    // a dead coordinator just means nobody is counting.
                    let _ = ready.send(pinned);
                    loop {
                        let parked = Instant::now();
                        let Ok(job) = job_rx.recv() else { break };
                        cells
                            .park_nanos
                            .fetch_add(parked.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        let busy = Instant::now();
                        let reply = work(i, job);
                        cells
                            .busy_nanos
                            .fetch_add(busy.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        cells.dispatched.fetch_add(1, Ordering::Relaxed);
                        if reply_tx.send(reply).is_err() {
                            break;
                        }
                    }
                })
                .expect("spawn pool worker");
            jobs.push(job_tx);
            replies.push(reply_rx);
            handles.push(handle);
        }
        let pinned = (0..workers)
            .map(|_| usize::from(ready_rx.recv().unwrap_or(false)))
            .sum();
        WorkerPool {
            jobs,
            replies,
            handles,
            pinned,
            stats,
        }
    }

    /// Number of workers in the pool.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the pool has no workers (never true: `new` requires at
    /// least one).
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Number of workers that successfully pinned themselves to a core.
    pub fn pinned(&self) -> usize {
        self.pinned
    }

    /// Cumulative dispatch/busy/park counters across all workers
    /// (coherent to within in-flight jobs — workers bump them with
    /// relaxed atomics as they go).
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            dispatched: self.stats.dispatched.load(Ordering::Relaxed),
            busy_nanos: self.stats.busy_nanos.load(Ordering::Relaxed),
            park_nanos: self.stats.park_nanos.load(Ordering::Relaxed),
        }
    }

    /// Hand a job to worker `i`. Returns immediately; pair with
    /// [`WorkerPool::collect`].
    pub fn dispatch(&self, i: usize, job: J) {
        self.jobs[i].send(job).expect("pool worker alive");
    }

    /// Block until worker `i` finishes its oldest outstanding job and
    /// take the reply.
    pub fn collect(&self, i: usize) -> R {
        self.replies[i].recv().expect("pool worker alive")
    }
}

impl<J: Send + 'static, R: Send + 'static> Drop for WorkerPool<J, R> {
    fn drop(&mut self) {
        // Closing the job channels ends each worker's receive loop.
        self.jobs.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Pin the calling thread to `core`, best-effort. Returns whether the
/// pin took effect.
///
/// Safe-code implementation: reads the thread's own tid from
/// `/proc/thread-self/stat` and applies the mask with `taskset -pc`.
/// Returns `false` on any failure and on non-Linux targets.
#[cfg(target_os = "linux")]
pub fn pin_to_core(core: usize) -> bool {
    let Ok(stat) = std::fs::read_to_string("/proc/thread-self/stat") else {
        return false;
    };
    let Some(tid) = stat.split_whitespace().next() else {
        return false;
    };
    std::process::Command::new("taskset")
        .args(["-pc", &core.to_string(), tid])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .map(|s| s.success())
        .unwrap_or(false)
}

/// Pin the calling thread to `core`, best-effort. Always `false` off
/// Linux — there is no portable safe-code affinity interface.
#[cfg(not(target_os = "linux"))]
pub fn pin_to_core(_core: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_round_trips_jobs_in_worker_order() {
        let pool: WorkerPool<u64, u64> = WorkerPool::new(4, false, |i, job| job * 10 + i as u64);
        for round in 0..3u64 {
            for i in 0..4 {
                pool.dispatch(i, round);
            }
            for i in 0..4 {
                assert_eq!(pool.collect(i), round * 10 + i as u64);
            }
        }
    }

    #[test]
    fn pool_moves_owned_state_through_workers() {
        // The ownership-passing contract: a job value moves in, is
        // mutated by the worker, and moves back intact.
        let pool: WorkerPool<Vec<u32>, Vec<u32>> =
            WorkerPool::new(2, false, |i, mut v: Vec<u32>| {
                v.push(i as u32);
                v
            });
        pool.dispatch(0, vec![7]);
        pool.dispatch(1, vec![9]);
        assert_eq!(pool.collect(0), vec![7, 0]);
        assert_eq!(pool.collect(1), vec![9, 1]);
    }

    #[test]
    fn stats_count_dispatches_and_accumulate_time() {
        let pool: WorkerPool<u64, u64> = WorkerPool::new(2, false, |_, job| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            job
        });
        assert_eq!(pool.stats(), PoolStats::default());
        for i in 0..2 {
            pool.dispatch(i, i as u64);
        }
        for i in 0..2 {
            pool.collect(i);
        }
        let s = pool.stats();
        assert_eq!(s.dispatched, 2);
        assert!(s.busy_nanos >= 2 * 2_000_000, "two 2ms jobs: {s:?}");
        assert!(s.park_nanos > 0, "workers parked before the first job");
    }

    #[test]
    fn pinning_is_best_effort() {
        // Must not fail anywhere: pinning either works or silently
        // degrades, and the pool still computes.
        let pool: WorkerPool<u32, u32> = WorkerPool::new(2, true, |_, j| j + 1);
        assert!(pool.pinned() <= pool.len());
        pool.dispatch(0, 1);
        assert_eq!(pool.collect(0), 2);
    }
}
