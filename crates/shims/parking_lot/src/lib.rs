//! Offline stand-in for `parking_lot`: a non-poisoning [`Mutex`] wrapping
//! `std::sync::Mutex`.

#![forbid(unsafe_code)]

/// A mutual-exclusion lock whose `lock` never returns a poison error,
/// mirroring `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }
}
