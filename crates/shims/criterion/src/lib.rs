//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion 0.5 API the workspace's benches
//! use: [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], [`BenchmarkId`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Timing model: each benchmark is auto-calibrated so one sample takes at
//! least ~2 ms, then `sample_size` samples are collected; the median,
//! minimum and mean per-iteration times are printed in a criterion-like
//! line format. Set `BENCH_QUICK=1` to cap sampling for smoke runs (CI).

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut id = name.into();
        let _ = write!(id, "/{parameter}");
        BenchmarkId { id }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs closures under measurement; handed to benchmark bodies.
pub struct Bencher {
    sample_size: usize,
    /// Collected per-iteration times (one entry per sample), in seconds.
    samples: Vec<f64>,
}

impl Bencher {
    /// Measures `f`, auto-batching iterations so each sample is long
    /// enough to time reliably.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let quick = quick_mode();
        // Calibrate batch size: grow until one batch takes >= 2 ms.
        let mut batch = 1u64;
        let target = Duration::from_millis(2);
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= target || batch >= 1 << 24 {
                break;
            }
            batch *= 2;
        }
        let samples = if quick {
            self.sample_size.clamp(1, 3)
        } else {
            self.sample_size
        };
        self.samples.clear();
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed.as_secs_f64() / batch as f64);
        }
    }
}

fn quick_mode() -> bool {
    std::env::var_os("BENCH_QUICK").is_some_and(|v| v != "0")
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn report(name: &str, samples: &mut [f64]) {
    if samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{name:<48} time: [min {} median {} mean {}]",
        format_time(min),
        format_time(median),
        format_time(mean)
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        let full = format!("{}/{}", self.name, id);
        report(&full, &mut b.samples);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b, input);
        let full = format!("{}/{}", self.name, id);
        report(&full, &mut b.samples);
        self
    }

    /// Ends the group (printing is already done per-benchmark).
    pub fn finish(&mut self) {}
}

/// The benchmark manager handed to `criterion_group!` functions.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: if quick_mode() { 3 } else { 20 },
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.default_sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        report(&id.to_string(), &mut b.samples);
        self
    }
}

/// Re-export so `use criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Declares a group function running each benchmark function in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $f(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes `--bench` (and possibly filters); this
            // harness runs everything and ignores the arguments.
            $( $group(); )+
        }
    };
}
