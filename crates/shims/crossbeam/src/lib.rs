//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` with
//! cloneable ends, built on a `Mutex<VecDeque>` + `Condvar`. Sufficient
//! for the workspace's coordinator/worker runtime; not a performance
//! match for the real crate.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<Inner<T>>,
        ready: Condvar,
    }

    struct Inner<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message currently queued.
        Empty,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    /// The sending half of an unbounded channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel. Cloneable (messages go
    /// to whichever clone receives first).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Inner {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    fn lock<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, Inner<T>> {
        shared
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only if every receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = lock(&self.shared);
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            inner.items.push_back(value);
            drop(inner);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            lock(&self.shared).senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = lock(&self.shared);
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; fails once the channel is empty
        /// and every sender was dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = lock(&self.shared);
            loop {
                if let Some(v) = inner.items.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self
                    .shared
                    .ready
                    .wait(inner)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = lock(&self.shared);
            match inner.items.pop_front() {
                Some(v) => Ok(v),
                None if inner.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            lock(&self.shared).receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            lock(&self.shared).receivers -= 1;
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_detection() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));

            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            for _ in 0..100 {
                got.push(rx.recv().unwrap());
            }
            handle.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
