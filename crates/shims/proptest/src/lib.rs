//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]`), range /
//! tuple / [`collection::vec`] strategies, [`any`], `prop_map` /
//! `prop_flat_map`, and the `prop_assert*` macros.
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics
//! with its case index, and the generator is deterministic (fixed base
//! seed), so failures reproduce exactly on re-run.

#![forbid(unsafe_code)]

use rand::prelude::*;

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The deterministic per-case generator handed to strategies.
pub struct TestRng(pub(crate) StdRng);

impl TestRng {
    fn for_case(case: u32) -> Self {
        // Golden-ratio stride decorrelates consecutive cases.
        TestRng(StdRng::seed_from_u64(
            0x5EED_0000_0000_0000_u64
                .wrapping_add(case as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds each generated value into `f` to pick a dependent strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.0.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            // The macro reuses the type parameter idents ($name: A, B,
            // ...) as binding names, which are upper-case by convention.
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Strategy producing a full-domain arbitrary value, mirroring
/// `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.0.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.0.next_u32()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.0.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.0.next_u64() & 1 == 1
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// Size specification for [`vec`], mirroring `proptest::collection::SizeRange`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values from `element`, with a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng
                .0
                .random_range(self.size.lo..self.size.hi_exclusive.max(self.size.lo + 1));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner plumbing used by the [`proptest!`] expansion.
pub mod test_runner {
    use super::{ProptestConfig, TestRng};

    /// Runs `body` once per case with a deterministic per-case generator.
    pub fn run<F: FnMut(&mut TestRng)>(config: &ProptestConfig, mut body: F) {
        for case in 0..config.cases {
            let mut rng = TestRng::for_case(case);
            body(&mut rng);
        }
    }
}

/// Asserts a condition inside a property (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run(&__config, |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                $body
            });
        }
    )*};
}

/// Re-exports matching `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 0usize..=4, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((-1.0..1.0).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn tuples_and_vecs(pair in (0u32..5, 0u32..5), v in collection::vec(0u32..10, 2..6)) {
            prop_assert!(pair.0 < 5 && pair.1 < 5);
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 10));
        }
    }

    proptest! {
        #[test]
        fn combinators_compose(
            n in (1usize..10).prop_flat_map(|n| {
                collection::vec(0..n as u32, 1..4).prop_map(move |v| (n, v))
            }),
            seed in any::<u64>(),
        ) {
            let (bound, v) = n;
            prop_assert!(v.iter().all(|&e| (e as usize) < bound));
            let _ = seed;
        }
    }

    #[test]
    fn determinism() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        super::test_runner::run(&ProptestConfig::with_cases(8), |rng| {
            a.push((0u32..1000).generate(rng));
        });
        super::test_runner::run(&ProptestConfig::with_cases(8), |rng| {
            b.push((0u32..1000).generate(rng));
        });
        assert_eq!(a, b);
    }
}
