//! Offline stand-in for the `rand` crate (0.9-style API).
//!
//! Implements the subset of the `rand` API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::random_range`] / [`Rng::random_bool`], and
//! [`prelude::SliceRandom::shuffle`]. Deterministic per seed, but the
//! stream differs from the real `StdRng` (see `crates/shims/README.md`).

#![forbid(unsafe_code)]

/// Core random-number-generator interface: a source of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types usable as the argument of [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(word: u64) -> f64 {
    // 53 high bits give a uniform dyadic rational in [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, bound)` by widening multiply (Lemire's method,
/// without the rejection step — bias is < 2^-32 for the bounds used here).
fn bounded(rng: &mut dyn RngCore, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                // Wrapping two's-complement arithmetic keeps signed ranges
                // (negative bounds, spans beyond the signed max) correct.
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(bounded(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain: every word is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++ seeded via
    /// SplitMix64 (the initialization recommended by its authors).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice extension methods, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = bounded(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}

/// Re-exports matching `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SampleRange, SeedableRng, SliceRandom};
}

pub use prelude::*;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = rngs::StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.random_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(5usize..=5);
            assert_eq!(y, 5);
            let s = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&s));
            let _full: u64 = rng.random_range(0u64..=u64::MAX);
            let f: f64 = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_is_roughly_fair() {
        let mut rng = rngs::StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4_500..5_500).contains(&hits), "hits = {hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }
}
