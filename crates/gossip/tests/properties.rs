//! Property-based tests for the gossip aggregation substrate.

use dkcore_gossip::{Aggregate, AvgAggregate, CountAggregate, GossipNetwork, MaxAggregate};
use proptest::prelude::*;

proptest! {
    /// Max gossip converges to the exact maximum for arbitrary values and
    /// sizes, within a generous O(log N) round budget.
    #[test]
    fn max_converges_to_true_maximum(
        values in proptest::collection::vec(-1e6f64..1e6, 1..200),
        seed in any::<u64>(),
    ) {
        let expected = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut net = GossipNetwork::new(values.into_iter().map(MaxAggregate::new), seed);
        let budget = 20 * (net.len().max(2) as f64).log2().ceil() as usize + 20;
        net.run_until_converged(0.0, budget).expect("max gossip converges");
        for a in net.agents() {
            prop_assert_eq!(a.value(), expected);
        }
    }

    /// Averaging gossip preserves the global mean at every round (mass
    /// conservation) and shrinks the spread monotonically in expectation.
    #[test]
    fn avg_preserves_mass_every_round(
        values in proptest::collection::vec(-1e3f64..1e3, 2..100),
        seed in any::<u64>(),
    ) {
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let mut net = GossipNetwork::new(values.into_iter().map(AvgAggregate::new), seed);
        for _ in 0..30 {
            net.round();
            let now: f64 =
                net.agents().iter().map(|a| a.value()).sum::<f64>() / net.len() as f64;
            prop_assert!((now - mean).abs() < 1e-6, "mass not conserved: {now} vs {mean}");
        }
    }

    /// Count aggregation estimates the network size within 5 % once
    /// converged tightly.
    #[test]
    fn count_estimates_size(n in 2usize..150, seed in any::<u64>()) {
        let mut net =
            GossipNetwork::new((0..n).map(|i| CountAggregate::new(i == 0)), seed);
        net.run_until_converged(1e-12, 50 * n).expect("count gossip converges");
        for a in net.agents() {
            let est = a.estimated_size();
            let relative_error = (est - n as f64).abs() / n as f64;
            prop_assert!(relative_error < 0.05,
                "size estimate {est} too far from {n}");
        }
    }

    /// The merge operations are commutative: merging a into b and b into a
    /// yields the same value.
    #[test]
    fn merges_are_commutative(a in -1e6f64..1e6, b in -1e6f64..1e6) {
        let (mut ma, mb) = (MaxAggregate::new(a), MaxAggregate::new(b));
        let (ma0, mut mb2) = (MaxAggregate::new(a), MaxAggregate::new(b));
        ma.merge(&mb);
        mb2.merge(&ma0);
        prop_assert_eq!(ma.value(), mb2.value());

        let (mut aa, ab) = (AvgAggregate::new(a), AvgAggregate::new(b));
        let (aa0, mut ab2) = (AvgAggregate::new(a), AvgAggregate::new(b));
        aa.merge(&ab);
        ab2.merge(&aa0);
        prop_assert_eq!(aa.value(), ab2.value());
    }
}
