//! Round-based push–pull gossip execution over a set of agents.

use std::error::Error;
use std::fmt;

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::Aggregate;

/// Error returned when gossip fails to converge within a round budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GossipError {
    rounds: usize,
}

impl GossipError {
    /// The number of rounds that were executed before giving up.
    pub fn rounds(&self) -> usize {
        self.rounds
    }
}

impl fmt::Display for GossipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gossip did not converge within {} rounds", self.rounds)
    }
}

impl Error for GossipError {}

/// A fully-connected gossip overlay executing synchronous push–pull rounds.
///
/// In each round every agent contacts one uniformly random peer and the two
/// merge states symmetrically (push–pull). This is the cycle-based model of
/// Jelasity et al. and matches the round structure of the k-core protocols,
/// letting the termination detector piggyback one gossip round per protocol
/// round.
///
/// # Example
///
/// ```
/// use dkcore_gossip::{AvgAggregate, Aggregate, GossipNetwork};
///
/// let mut net = GossipNetwork::new(
///     [1.0, 3.0, 5.0, 7.0].into_iter().map(AvgAggregate::new),
///     7,
/// );
/// net.run_until_converged(1e-6, 200)?;
/// for agent in net.agents() {
///     assert!((agent.value() - 4.0).abs() < 1e-3);
/// }
/// # Ok::<(), dkcore_gossip::GossipError>(())
/// ```
#[derive(Debug)]
pub struct GossipNetwork<A: Aggregate> {
    agents: Vec<A>,
    rng: StdRng,
    rounds_run: usize,
}

impl<A: Aggregate> GossipNetwork<A> {
    /// Creates a network from per-agent initial states and an RNG seed.
    pub fn new<I: IntoIterator<Item = A>>(agents: I, seed: u64) -> Self {
        GossipNetwork {
            agents: agents.into_iter().collect(),
            rng: StdRng::seed_from_u64(seed),
            rounds_run: 0,
        }
    }

    /// Number of agents in the overlay.
    pub fn len(&self) -> usize {
        self.agents.len()
    }

    /// Whether the overlay has no agents.
    pub fn is_empty(&self) -> bool {
        self.agents.is_empty()
    }

    /// Read access to all agent states.
    pub fn agents(&self) -> &[A] {
        &self.agents
    }

    /// Mutable access to one agent's state (e.g. to
    /// [`raise`](crate::MaxAggregate::raise) a max value when new local
    /// information appears).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn agent_mut(&mut self, i: usize) -> &mut A {
        &mut self.agents[i]
    }

    /// Total number of gossip rounds executed so far.
    pub fn rounds_run(&self) -> usize {
        self.rounds_run
    }

    /// Executes one synchronous push–pull round: every agent (in random
    /// order) exchanges state with one uniformly random peer.
    pub fn round(&mut self) {
        let n = self.agents.len();
        if n < 2 {
            self.rounds_run += 1;
            return;
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut self.rng);
        for i in order {
            let mut j = self.rng.random_range(0..n - 1);
            if j >= i {
                j += 1;
            }
            // Symmetric push-pull on pre-exchange states.
            let a_before = self.agents[i].clone();
            let b_before = self.agents[j].clone();
            self.agents[i].merge(&b_before);
            self.agents[j].merge(&a_before);
        }
        self.rounds_run += 1;
    }

    /// Spread (max − min) of the current agent values.
    pub fn spread(&self) -> f64 {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for a in &self.agents {
            min = min.min(a.value());
            max = max.max(a.value());
        }
        if self.agents.is_empty() {
            0.0
        } else {
            max - min
        }
    }

    /// Runs rounds until all agent values agree within `epsilon`, or fails
    /// after `max_rounds`.
    ///
    /// Returns the number of rounds executed by this call.
    ///
    /// # Errors
    ///
    /// Returns [`GossipError`] if the spread is still above `epsilon` after
    /// `max_rounds` rounds.
    pub fn run_until_converged(
        &mut self,
        epsilon: f64,
        max_rounds: usize,
    ) -> Result<usize, GossipError> {
        for r in 0..max_rounds {
            if self.spread() <= epsilon {
                return Ok(r);
            }
            self.round();
        }
        if self.spread() <= epsilon {
            Ok(max_rounds)
        } else {
            Err(GossipError { rounds: max_rounds })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AvgAggregate, CountAggregate, MaxAggregate};

    #[test]
    fn max_converges_logarithmically() {
        let n = 256;
        let mut net = GossipNetwork::new((0..n).map(|i| MaxAggregate::new(i as f64)), 1);
        let rounds = net.run_until_converged(0.0, 64).unwrap();
        assert!(
            rounds <= 2 * (n as f64).log2().ceil() as usize,
            "max gossip took {rounds} rounds for n={n}"
        );
        assert!(net.agents().iter().all(|a| a.value() == (n - 1) as f64));
    }

    #[test]
    fn avg_preserves_global_mean() {
        let values = [2.0, 4.0, 6.0, 8.0, 10.0, 0.0, 12.0, 14.0];
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let mut net = GossipNetwork::new(values.into_iter().map(AvgAggregate::new), 3);
        net.run_until_converged(1e-9, 500).unwrap();
        for a in net.agents() {
            assert!((a.value() - mean).abs() < 1e-6);
        }
    }

    #[test]
    fn count_estimates_network_size() {
        let n = 128;
        let mut net = GossipNetwork::new((0..n).map(|i| CountAggregate::new(i == 0)), 9);
        net.run_until_converged(1e-12, 300).unwrap();
        for a in net.agents() {
            assert!(
                (a.estimated_size() - n as f64).abs() < 0.5,
                "size estimate {}",
                a.estimated_size()
            );
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mk = || {
            let mut net = GossipNetwork::new((0..32).map(|i| AvgAggregate::new(i as f64)), 11);
            net.round();
            net.round();
            net.agents().iter().map(|a| a.value()).collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn single_and_empty_networks_are_trivially_converged() {
        let mut single = GossipNetwork::new([MaxAggregate::new(5.0)], 0);
        assert_eq!(single.run_until_converged(0.0, 10).unwrap(), 0);
        assert_eq!(single.len(), 1);
        let mut empty = GossipNetwork::<MaxAggregate>::new([], 0);
        assert_eq!(empty.run_until_converged(0.0, 10).unwrap(), 0);
        assert!(empty.is_empty());
        empty.round(); // must not panic
    }

    #[test]
    fn raise_propagates_new_max() {
        let mut net = GossipNetwork::new((0..16).map(|_| MaxAggregate::new(0.0)), 2);
        net.run_until_converged(0.0, 50).unwrap();
        net.agent_mut(3).raise(42.0);
        net.run_until_converged(0.0, 50).unwrap();
        assert!(net.agents().iter().all(|a| a.value() == 42.0));
    }

    #[test]
    fn convergence_failure_is_reported() {
        // Two agents that can never agree within 0 rounds of budget.
        let mut net = GossipNetwork::new([AvgAggregate::new(0.0), AvgAggregate::new(1.0)], 4);
        let err = net.run_until_converged(1e-12, 0).unwrap_err();
        assert_eq!(err.rounds(), 0);
        assert!(err.to_string().contains("did not converge"));
    }

    #[test]
    fn rounds_run_accumulates() {
        let mut net = GossipNetwork::new((0..8).map(|i| MaxAggregate::new(i as f64)), 5);
        net.round();
        net.round();
        assert_eq!(net.rounds_run(), 2);
    }
}
