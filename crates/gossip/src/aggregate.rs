//! Aggregate functions exchangeable by push–pull gossip.

/// A value that two gossiping agents can merge symmetrically.
///
/// The contract follows Jelasity et al. (TOCS 2005): an exchange between
/// agents holding `a` and `b` leaves **both** with `merge(a, b)`, which must
/// be commutative and idempotent-in-the-limit so the network converges to a
/// fixed point encoding the global aggregate.
pub trait Aggregate: Clone {
    /// Combines `self` with a peer's state; both sides of an exchange call
    /// this with the other's pre-exchange state.
    fn merge(&mut self, other: &Self);

    /// Current scalar estimate held by this agent.
    fn value(&self) -> f64;
}

/// Epidemic maximum: both agents keep the larger value.
///
/// Converges to the exact global maximum; used by the decentralized
/// termination detector to agree on "the last round in which any of the
/// hosts has generated a new estimate" (paper §3.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaxAggregate(f64);

impl MaxAggregate {
    /// Creates an agent state with local value `v`.
    pub fn new(v: f64) -> Self {
        MaxAggregate(v)
    }

    /// Raises the local value to at least `v` (e.g. when the host becomes
    /// active again in a later round).
    pub fn raise(&mut self, v: f64) {
        if v > self.0 {
            self.0 = v;
        }
    }
}

impl Aggregate for MaxAggregate {
    fn merge(&mut self, other: &Self) {
        if other.0 > self.0 {
            self.0 = other.0;
        }
    }

    fn value(&self) -> f64 {
        self.0
    }
}

/// Push–pull averaging: each exchange replaces both values with their mean.
///
/// The global average is invariant under exchanges and the variance decays
/// exponentially (by ≈ `1/(2√e)` per round), giving `O(log N)` convergence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvgAggregate(f64);

impl AvgAggregate {
    /// Creates an agent state with local value `v`.
    pub fn new(v: f64) -> Self {
        AvgAggregate(v)
    }
}

impl Aggregate for AvgAggregate {
    fn merge(&mut self, other: &Self) {
        self.0 = (self.0 + other.0) / 2.0;
    }

    fn value(&self) -> f64 {
        self.0
    }
}

/// Network size estimation: exactly one agent starts at 1.0, all others at
/// 0.0; the running average converges to `1/N`, so
/// [`estimated_size`](CountAggregate::estimated_size) converges to `N`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CountAggregate(AvgAggregate);

impl CountAggregate {
    /// Creates the agent state; pass `leader = true` for exactly one agent.
    pub fn new(leader: bool) -> Self {
        CountAggregate(AvgAggregate::new(if leader { 1.0 } else { 0.0 }))
    }

    /// Current network-size estimate (`1 / average`); `f64::INFINITY`
    /// before any mass has reached this agent.
    pub fn estimated_size(&self) -> f64 {
        if self.0.value() <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.0.value()
        }
    }
}

impl Aggregate for CountAggregate {
    fn merge(&mut self, other: &Self) {
        self.0.merge(&other.0);
    }

    fn value(&self) -> f64 {
        self.0.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_merge_keeps_larger() {
        let mut a = MaxAggregate::new(3.0);
        let b = MaxAggregate::new(7.0);
        a.merge(&b);
        assert_eq!(a.value(), 7.0);
        let mut c = MaxAggregate::new(9.0);
        c.merge(&b);
        assert_eq!(c.value(), 9.0);
    }

    #[test]
    fn max_raise_is_monotone() {
        let mut a = MaxAggregate::new(5.0);
        a.raise(2.0);
        assert_eq!(a.value(), 5.0);
        a.raise(8.0);
        assert_eq!(a.value(), 8.0);
    }

    #[test]
    fn avg_merge_is_mean_and_mass_preserving() {
        let mut a = AvgAggregate::new(10.0);
        let mut b = AvgAggregate::new(4.0);
        let before = a.value() + b.value();
        let a0 = a;
        a.merge(&b);
        b.merge(&a0);
        assert_eq!(a.value(), 7.0);
        assert_eq!(b.value(), 7.0);
        assert_eq!(a.value() + b.value(), before);
    }

    #[test]
    fn count_estimates_inverse_average() {
        let leader = CountAggregate::new(true);
        let other = CountAggregate::new(false);
        assert_eq!(leader.estimated_size(), 1.0);
        assert_eq!(other.estimated_size(), f64::INFINITY);
        let mut merged = other;
        merged.merge(&leader);
        assert_eq!(merged.estimated_size(), 2.0);
    }
}
