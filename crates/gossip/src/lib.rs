//! Epidemic (push–pull gossip) aggregation substrate.
//!
//! The paper's §3.3 proposes decentralized termination detection for the
//! distributed k-core protocol via "epidemic protocols for aggregation
//! \[Jelasity, Montresor, Babaoglu — ACM TOCS 2005\]", which "enable the
//! decentralized computation of global properties in `O(log |H|)` rounds".
//! This crate implements that substrate: anti-entropy push–pull gossip over
//! a set of agents, with the three aggregate functions the termination
//! detector and the paper's motivating scenarios need:
//!
//! * [`MaxAggregate`] — epidemic maximum (used to agree on the last round
//!   in which any host produced a new estimate);
//! * [`AvgAggregate`] — push–pull averaging (each exchange replaces both
//!   values with their mean — the core primitive of Jelasity et al.);
//! * [`CountAggregate`] — network size estimation: one agent starts at 1,
//!   the rest at 0, and the average converges to `1/N`.
//!
//! # Example
//!
//! ```
//! use dkcore_gossip::{Aggregate, GossipNetwork, MaxAggregate};
//!
//! // 64 agents each know a local value; gossip the maximum.
//! let mut net = GossipNetwork::new(
//!     (0..64).map(|i| MaxAggregate::new(i as f64)),
//!     42,
//! );
//! let rounds = net.run_until_converged(1e-9, 100).expect("converges");
//! // O(log N) rounds: every agent now knows the global max.
//! assert!(rounds < 20);
//! assert!(net.agents().iter().all(|a| a.value() == 63.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregate;
mod network;

pub use aggregate::{Aggregate, AvgAggregate, CountAggregate, MaxAggregate};
pub use network::{GossipError, GossipNetwork};
