//! Ablation of the §3.2.2 node→host assignment policy (experiment E9).
//!
//! The paper adopts `u mod |H|` and notes that better heuristics are hard
//! in general. This binary quantifies what a locality-aware assignment
//! buys: edges kept internal to a host cost no messages thanks to the
//! internal emulation of Algorithm 4.
//!
//! Run: `cargo run -p dkcore-bench --release --bin ablation_assignment`

use dkcore::one_to_many::{AssignmentPolicy, DisseminationPolicy};
use dkcore_bench::{f2, HarnessArgs};
use dkcore_metrics::Table;
use dkcore_sim::experiment::run_host_experiment;
use dkcore_sim::HostSimConfig;

fn main() {
    let mut args = HarnessArgs::from_env();
    if args.scale.is_none() {
        args.scale = Some(15_000);
    }
    if args.datasets.is_empty() {
        args.datasets = [
            "astroph-like",
            "amazon-like",
            "roadnet-like",
            "gnutella-like",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    let hosts = 16;
    let policies: [(&str, AssignmentPolicy); 4] = [
        ("modulo", AssignmentPolicy::Modulo),
        ("block", AssignmentPolicy::Block),
        ("random", AssignmentPolicy::Random { seed: 7 }),
        ("bfs-blocks", AssignmentPolicy::BfsBlocks),
    ];

    let mut table = Table::new([
        "name",
        "assignment",
        "overhead/node",
        "messages",
        "rounds(avg)",
    ]);

    for spec in args.selected_datasets() {
        eprintln!("[ablation_assignment] {} ...", spec.name);
        let g = args.build(&spec);
        let n = g.node_count() as f64;
        for (name, policy) in &policies {
            let mut template = HostSimConfig::random_order(hosts, 0);
            template.assignment = policy.clone();
            template.protocol.policy = DisseminationPolicy::PointToPoint;
            let outcome = run_host_experiment(&g, template, args.reps.min(5), args.seed);
            table.row([
                spec.name.to_string(),
                name.to_string(),
                f2(outcome.estimates_sent.mean() / n),
                f2(outcome.total_messages.mean()),
                f2(outcome.execution_time.mean()),
            ]);
        }
    }

    if args.csv {
        print!("{}", table.to_csv());
    } else {
        println!("== §3.2.2 assignment-policy ablation ({hosts} hosts, point-to-point) ==");
        print!("{table}");
        println!();
        println!(
            "locality-preserving assignments (bfs-blocks; block on grid-like ids) cut \
             cross-host edges, so fewer estimates leave their host — the effect the \
             paper anticipates when discussing assignment heuristics."
        );
    }
}
