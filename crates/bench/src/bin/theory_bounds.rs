//! Checks the paper's §4 theory empirically (experiment E6 of DESIGN.md):
//!
//! * the Figure 3 worst-case family completes in exactly `N − 1` rounds
//!   (counting, as the paper does, the final no-effect round) while its
//!   diameter stays 3;
//! * a linear chain needs `⌈N/2⌉` rounds;
//! * Theorem 4 (`T ≤ 1 + Σ (d(u) − k(u))`), Corollary 1
//!   (`T ≤ N − K + 1`) and Corollary 2 (`messages ≤ Σ d² − 2M`) hold on
//!   random graphs.
//!
//! Run: `cargo run -p dkcore-bench --release --bin theory_bounds`

use dkcore::seq::batagelj_zaversnik;
use dkcore_bench::HarnessArgs;
use dkcore_graph::generators::{gnp, path, worst_case};
use dkcore_graph::metrics::{exact_diameter, min_degree_count};
use dkcore_metrics::Table;
use dkcore_sim::{NodeSim, NodeSimConfig};

fn no_opt_sync() -> NodeSimConfig {
    // §4 analyses assume "no further optimizations are applied".
    let mut config = NodeSimConfig::synchronous();
    config.protocol.send_optimization = false;
    config
}

fn main() {
    let args = HarnessArgs::from_env();

    println!("== Worst-case family (Figure 3): rounds = N - 1, diameter = 3 ==");
    let mut t = Table::new(["N", "rounds", "N-1", "diameter"]);
    for n in [5usize, 8, 12, 16, 24, 32, 48, 64] {
        let g = worst_case(n);
        let result = NodeSim::new(&g, no_opt_sync()).run();
        assert_eq!(result.rounds_executed as usize, n - 1, "worst case N={n}");
        t.row([
            n.to_string(),
            result.rounds_executed.to_string(),
            (n - 1).to_string(),
            exact_diameter(&g).to_string(),
        ]);
    }
    print!("{t}");
    println!();

    println!("== Linear chain: send-rounds = ceil(N/2) ==");
    let mut t = Table::new(["N", "send-rounds", "ceil(N/2)"]);
    for n in [4usize, 7, 10, 25, 50, 101] {
        let g = path(n);
        let result = NodeSim::new(&g, no_opt_sync()).run();
        assert_eq!(result.execution_time as usize, n.div_ceil(2), "chain N={n}");
        t.row([
            n.to_string(),
            result.execution_time.to_string(),
            n.div_ceil(2).to_string(),
        ]);
    }
    print!("{t}");
    println!();

    println!("== Theorem 4 / Corollary 1 / Corollary 2 on random graphs ==");
    let mut t = Table::new([
        "seed",
        "N",
        "M",
        "T",
        "thm4_bound",
        "cor1_bound",
        "updates",
        "cor2_bound",
    ]);
    for seed in 0..args.reps.min(10) as u64 {
        let g = gnp(300, 0.02, args.seed ^ seed);
        let truth = batagelj_zaversnik(&g);
        let initial_error: u64 = g
            .nodes()
            .map(|u| (g.degree(u) - truth[u.index()]) as u64)
            .sum();
        let k = min_degree_count(&g);
        let result = NodeSim::new(&g, no_opt_sync()).run();
        let t_exec = result.execution_time as u64;
        let thm4 = 1 + initial_error;
        let cor1 = (g.node_count() - k + 1) as u64;
        let d2: u64 = g.nodes().map(|u| (g.degree(u) as u64).pow(2)).sum();
        let cor2 = d2 - 2 * g.edge_count() as u64;
        let updates = result.total_messages - 2 * g.edge_count() as u64;
        assert!(t_exec <= thm4, "Theorem 4 violated");
        assert!(t_exec <= cor1, "Corollary 1 violated");
        assert!(updates <= cor2, "Corollary 2 violated");
        t.row([
            seed.to_string(),
            g.node_count().to_string(),
            g.edge_count().to_string(),
            t_exec.to_string(),
            thm4.to_string(),
            cor1.to_string(),
            updates.to_string(),
            cor2.to_string(),
        ]);
    }
    print!("{t}");
    println!();
    println!(
        "all §4 bounds hold (assertions passed); note how loose the worst-case \
              bounds are on random graphs, matching the paper's observation that \
              \"the bound is far from being tight\" on real graphs."
    );
}
