//! Ablation of the §3.1.2 send optimization (experiment E5): message
//! counts with and without suppressing updates that cannot change the
//! recipient's estimate.
//!
//! Paper claim: "this optimization has shown to be able to reduce the
//! number of exchanged messages by approximately 50%".
//!
//! Run: `cargo run -p dkcore-bench --release --bin ablation_optimization`

use dkcore_bench::{f2, HarnessArgs};
use dkcore_metrics::Table;
use dkcore_sim::experiment::run_node_experiment;
use dkcore_sim::NodeSimConfig;

fn main() {
    let mut args = HarnessArgs::from_env();
    if args.scale.is_none() {
        args.scale = Some(20_000);
    }
    let mut table = Table::new([
        "name",
        "m_avg(opt)",
        "m_avg(plain)",
        "saved",
        "t_avg(opt)",
        "t_avg(plain)",
    ]);
    let mut total_with = 0.0;
    let mut total_without = 0.0;

    for spec in args.selected_datasets() {
        eprintln!("[ablation_optimization] {} ...", spec.name);
        let g = args.build(&spec);

        let mut with_opt = NodeSimConfig::random_order(0);
        with_opt.protocol.send_optimization = true;
        let mut without_opt = NodeSimConfig::random_order(0);
        without_opt.protocol.send_optimization = false;

        let a = run_node_experiment(&g, with_opt, args.reps.min(5), args.seed);
        let b = run_node_experiment(&g, without_opt, args.reps.min(5), args.seed);
        let saved = 1.0 - a.total_messages.mean() / b.total_messages.mean();
        total_with += a.total_messages.mean();
        total_without += b.total_messages.mean();

        table.row([
            spec.name.to_string(),
            f2(a.avg_messages.mean()),
            f2(b.avg_messages.mean()),
            format!("{:.1}%", saved * 100.0),
            f2(a.execution_time.mean()),
            f2(b.execution_time.mean()),
        ]);
    }

    if args.csv {
        print!("{}", table.to_csv());
    } else {
        println!("== §3.1.2 send-optimization ablation ==");
        print!("{table}");
        println!();
        println!(
            "overall message reduction: {:.1}% (paper: \"approximately 50%\")",
            (1.0 - total_with / total_without) * 100.0
        );
    }
}
