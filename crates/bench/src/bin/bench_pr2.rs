//! PR 2 acceptance benchmark: legacy synchronous host engine ([`HostSim`])
//! vs the flat [`ActiveSetHostEngine`](dkcore_sim::ActiveSetHostEngine),
//! with correctness cross-checks, emitting machine-readable
//! `BENCH_PR2.json`.
//!
//! The headline metric is **round throughput**: engine construction is
//! timed and reported separately (`*_build_ms`) so the speedup ratios
//! compare the cost of actually simulating rounds — the part that is
//! paid once per run in experiments and repeatedly in parameter sweeps.
//!
//! Usage: `bench_pr2 [output.json]` (default `BENCH_PR2.json`). Set
//! `BENCH_QUICK=1` for a fast smoke run (smaller graphs, fewer repetitions)
//! — the mode CI uses.

use std::fmt::Write as _;
use std::time::Instant;

use dkcore::one_to_many::DisseminationPolicy;
use dkcore::seq::batagelj_zaversnik;
use dkcore_graph::generators::{barabasi_albert, gnp, worst_case};
use dkcore_graph::Graph;
use dkcore_sim::{ActiveSetHostConfig, ActiveSetHostEngine, HostSim, HostSimConfig, RunResult};

struct Row {
    graph: String,
    nodes: usize,
    edges: usize,
    hosts: usize,
    legacy_build_ms: f64,
    fast_build_ms: f64,
    legacy_ms: f64,
    fast_ms: f64,
    identical: bool,
}

/// Best-of-`reps` timing of construction and run, separately.
fn time_engine<B, R, E>(reps: usize, mut build: B, mut run: R) -> (f64, f64, RunResult)
where
    B: FnMut() -> E,
    R: FnMut(&mut E) -> RunResult,
{
    let mut best_build = f64::INFINITY;
    let mut best_run = f64::INFINITY;
    let mut result = None;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let mut engine = build();
        best_build = best_build.min(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        result = Some(run(&mut engine));
        best_run = best_run.min(t.elapsed().as_secs_f64() * 1e3);
    }
    (best_build, best_run, result.expect("reps >= 1"))
}

fn measure(graph: &str, g: &Graph, hosts: usize, policy: DisseminationPolicy, reps: usize) -> Row {
    let truth = batagelj_zaversnik(g);
    let legacy_config = {
        let mut c = HostSimConfig::synchronous(hosts);
        c.protocol.policy = policy;
        c
    };
    let fast_config = {
        let mut c = ActiveSetHostConfig::synchronous(hosts);
        c.protocol.policy = policy;
        c
    };
    let (legacy_build_ms, legacy_ms, legacy) =
        time_engine(reps, || HostSim::new(g, legacy_config.clone()), |e| e.run());
    let (fast_build_ms, fast_ms, fast) = time_engine(
        reps,
        || ActiveSetHostEngine::new(g, fast_config.clone()),
        |e| e.run(),
    );
    let identical = legacy.final_estimates == truth && fast == legacy;
    println!(
        "{graph:<28} legacy {legacy_ms:>9.2} ms | active-set host {fast_ms:>9.2} ms \
         ({:>5.2}x) | build {legacy_build_ms:>7.1} -> {fast_build_ms:>7.1} ms | identical: {identical}",
        legacy_ms / fast_ms,
    );
    Row {
        graph: graph.to_string(),
        nodes: g.node_count(),
        edges: g.edge_count(),
        hosts,
        legacy_build_ms,
        fast_build_ms,
        legacy_ms,
        fast_ms,
        identical,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR2.json".into());
    let quick = std::env::var_os("BENCH_QUICK").is_some_and(|v| v != "0");
    let (scale, wc_scale, reps) = if quick {
        (10_000usize, 3_000usize, 3usize)
    } else {
        (100_000, 25_000, 3)
    };

    println!("building graphs (scale {scale})...");
    let gnp16 = gnp(scale, 16.0 / scale as f64, 42);
    let gnp4 = gnp(scale, 4.0 / scale as f64, 43);
    let ba8 = barabasi_albert(scale, 8, 44);
    let wc = worst_case(wc_scale);
    let p2p = DisseminationPolicy::PointToPoint;
    let bcast = DisseminationPolicy::Broadcast;
    let rows = [
        measure(&format!("gnp_avg16_h64_p2p/{scale}"), &gnp16, 64, p2p, reps),
        measure(&format!("gnp_avg4_h64_p2p/{scale}"), &gnp4, 64, p2p, reps),
        measure(&format!("ba_m8_h256_p2p/{scale}"), &ba8, 256, p2p, reps),
        measure(
            &format!("gnp_avg16_h64_bcast/{scale}"),
            &gnp16,
            64,
            bcast,
            reps,
        ),
        measure(&format!("ba_m8_h64_bcast/{scale}"), &ba8, 64, bcast, reps),
        measure(
            &format!("worst_case_h64_p2p/{wc_scale}"),
            &wc,
            64,
            p2p,
            reps,
        ),
    ];

    let mut json = String::from("{\n  \"bench\": \"BENCH_PR2\",\n");
    let _ = writeln!(json, "  \"quick_mode\": {quick},");
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let _ = writeln!(json, "  \"cores\": {cores},");
    json.push_str("  \"metric\": \"round throughput (run time, construction separate)\",\n");
    json.push_str("  \"engines\": [\"legacy_host_sync\", \"active_set_host\"],\n");
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"graph\": \"{}\", \"nodes\": {}, \"edges\": {}, \"hosts\": {}, \
             \"legacy_host_ms\": {:.3}, \"active_set_host_ms\": {:.3}, \
             \"legacy_build_ms\": {:.3}, \"active_set_build_ms\": {:.3}, \
             \"speedup\": {:.3}, \"identical_output\": {}}}",
            r.graph,
            r.nodes,
            r.edges,
            r.hosts,
            r.legacy_ms,
            r.fast_ms,
            r.legacy_build_ms,
            r.fast_build_ms,
            r.legacy_ms / r.fast_ms,
            r.identical,
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_PR2.json");
    println!("wrote {out_path}");

    assert!(
        rows.iter().all(|r| r.identical),
        "engines disagree — see table above"
    );
}
