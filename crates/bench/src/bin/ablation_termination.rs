//! Ablation of the §3.3 termination-detection strategies (experiment E8):
//! how many extra rounds each detector costs beyond true convergence, and
//! what an early fixed-round stop gives up in accuracy.
//!
//! Run: `cargo run -p dkcore-bench --release --bin ablation_termination`

use dkcore::seq::batagelj_zaversnik;
use dkcore::termination::{CentralizedDetector, FixedRoundsDetector, GossipDetector};
use dkcore_bench::{f2, HarnessArgs};
use dkcore_metrics::Table;
use dkcore_sim::{NodeSim, NodeSimConfig};

fn main() {
    let mut args = HarnessArgs::from_env();
    if args.scale.is_none() {
        args.scale = Some(10_000);
    }
    let mut table = Table::new([
        "name",
        "detector",
        "rounds",
        "extra",
        "wrong nodes",
        "avg err",
    ]);

    for spec in args.selected_datasets() {
        eprintln!("[ablation_termination] {} ...", spec.name);
        let g = args.build(&spec);
        let truth = batagelj_zaversnik(&g);
        let n = g.node_count();

        // Baseline: exact centralized detection.
        let mut sim = NodeSim::new(&g, NodeSimConfig::random_order(args.seed));
        let mut centralized = CentralizedDetector::new();
        let exact = sim.run_with(&mut centralized, &mut []);
        let exact_rounds = exact.rounds_executed;
        let report = |name: &str, result: &dkcore_sim::RunResult, table: &mut Table| {
            let wrong = result
                .final_estimates
                .iter()
                .zip(truth.iter())
                .filter(|(e, t)| e != t)
                .count();
            let err: u64 = result
                .final_estimates
                .iter()
                .zip(truth.iter())
                .map(|(e, t)| (e - t) as u64)
                .sum();
            table.row([
                spec.name.to_string(),
                name.to_string(),
                result.rounds_executed.to_string(),
                format!("{:+}", result.rounds_executed as i64 - exact_rounds as i64),
                wrong.to_string(),
                f2(err as f64 / n as f64),
            ]);
        };
        report("centralized", &exact, &mut table);

        // Decentralized gossip detection (pays patience + spread rounds).
        let patience = GossipDetector::recommended_patience(n);
        let mut gossip = GossipDetector::new(n, patience, args.seed);
        let mut sim = NodeSim::new(&g, NodeSimConfig::random_order(args.seed));
        let gossip_result = sim.run_with(&mut gossip, &mut []);
        report("gossip", &gossip_result, &mut table);

        // Fixed-round budgets: cheap but approximate.
        for budget in [10u32, 20, 30] {
            let mut fixed = FixedRoundsDetector::new(budget);
            let mut sim = NodeSim::new(&g, NodeSimConfig::random_order(args.seed));
            let result = sim.run_with(&mut fixed, &mut []);
            report(&format!("fixed-{budget}"), &result, &mut table);
        }
    }

    if args.csv {
        print!("{}", table.to_csv());
    } else {
        println!("== §3.3 termination-detection ablation ==");
        print!("{table}");
        println!();
        println!(
            "centralized is exact; gossip adds its patience window (O(log H) + slack) \
             of silent rounds; fixed budgets trade rounds for residual error, which \
             the paper notes is already tiny after a few tens of rounds."
        );
    }
}
