//! PR 5 acceptance benchmark: **incremental (copy-on-write) epoch
//! publishing** vs the PR 4 full-rebuild publish path, plus the sharded
//! multi-writer service, emitting machine-readable `BENCH_PR5.json`.
//!
//! Publish-path rows: a `CoreService` sustains mixed churn (batch 32 on
//! the 100k-node overlay, per the acceptance criterion) and every epoch
//! is published twice-over for timing — once through the production
//! incremental [`CoreSnapshot::advance`] path (structural chunk sharing,
//! `O(|touched| + N/C)`), and once through the PR 4-equivalent full
//! rebuild (a fresh [`CoreSnapshot::capture`] **plus** the eager graph
//! materialization the old snapshot performed, `O(N + M)`).
//! `speedup_publish` is the headline gated ratio; the binary asserts the
//! acceptance floor (≥5× full mode, ≥2× quick) and that publish cost
//! tracks `|touched|`, not `N + M`.
//!
//! Sharded rows: `ShardedCoreService` at shard counts {1, 2, 4} drives
//! the same workload; every row asserts the stitched epochs equal fresh
//! Batagelj–Zaveršnik on the union graph (`identical_output`), and
//! reports border-exchange rounds/messages and publish latency. These
//! rows carry no gated speedups — cross-shard costs are machine- and
//! partition-dependent.
//!
//! Usage: `bench_pr5 [output.json]` (default `BENCH_PR5.json`). Set
//! `BENCH_QUICK=1` for the fast smoke configuration CI uses.

use std::fmt::Write as _;
use std::time::Instant;

use dkcore::seq::batagelj_zaversnik;
use dkcore::stream::EdgeBatch;
use dkcore_data::{churn_stream, ChurnWorkload};
use dkcore_graph::generators::gnp;
use dkcore_metrics::Percentiles;
use dkcore_serve::{CoreService, CoreSnapshot, ShardedCoreService};

/// The inverse of each batch, so apply→undo cycles stay valid forever.
fn undo_batches(stream: &[EdgeBatch]) -> Vec<EdgeBatch> {
    stream
        .iter()
        .map(|b| {
            let mut u = EdgeBatch::new();
            for &(x, y) in b.insertions() {
                u.remove(x, y);
            }
            for &(x, y) in b.removals() {
                u.insert(x, y);
            }
            u
        })
        .collect()
}

struct PublishRow {
    graph: String,
    nodes: usize,
    batch: usize,
    epochs: u64,
    touched_mean: f64,
    incr: Percentiles,
    full: Percentiles,
    speedup: f64,
    identical: bool,
}

/// Drives `epochs` churn epochs through a `CoreService`, timing the
/// production incremental publish and a PR 4-equivalent full rebuild of
/// the same epoch.
fn measure_publish(scale: usize, batch: usize, epochs: u64, seed: u64) -> PublishRow {
    let g = gnp(scale, 12.0 / scale as f64, seed);
    let stream = churn_stream(
        &g,
        ChurnWorkload::Mixed { insert_pct: 55 },
        8,
        batch,
        seed ^ 7,
    );
    let undos: Vec<_> = undo_batches(&stream).into_iter().rev().collect();
    let mut svc = CoreService::new(&g);

    let mut incr = Percentiles::new();
    let mut full = Percentiles::new();
    let mut touched = 0u64;
    let mut done = 0u64;
    'outer: loop {
        for b in stream.iter().chain(undos.iter()) {
            if done == epochs {
                break 'outer;
            }
            // Production path: apply + incremental advance (timed inside
            // the service).
            let report = svc.apply_batch(b).expect("stream batches are valid");
            incr.record(report.publish_micros);
            touched += report.stats.candidates as u64;

            // PR 4-equivalent full rebuild of the very same epoch: a
            // fresh capture plus the eager graph materialization the old
            // snapshot performed on every publish.
            let t = Instant::now();
            let rebuilt = CoreSnapshot::capture(report.epoch, svc.stream());
            std::hint::black_box(rebuilt.graph().edge_count());
            full.record(t.elapsed().as_secs_f64() * 1e6);
            done += 1;
        }
    }

    let snap = svc.handle().snapshot();
    let identical = snap.values() == batagelj_zaversnik(snap.graph()).as_slice();
    let speedup = full.p50() / incr.p50();
    println!(
        "publish gnp12/{scale} batch {batch}: incremental p50 {:>8.1}us p99 {:>8.1}us | \
         full-rebuild p50 {:>9.1}us | {speedup:>6.2}x | mean touched {:>7.1} | identical: {identical}",
        incr.p50(),
        incr.p99(),
        full.p50(),
        touched as f64 / done as f64,
    );
    PublishRow {
        graph: format!("publish_mixed_gnp12/{scale}/batch{batch}"),
        nodes: scale,
        batch,
        epochs: done,
        touched_mean: touched as f64 / done as f64,
        incr,
        full,
        speedup,
        identical,
    }
}

struct ShardRow {
    graph: String,
    nodes: usize,
    shards: usize,
    epochs: u64,
    rounds: u64,
    messages: u64,
    repair: Percentiles,
    publish: Percentiles,
    identical: bool,
}

/// Drives the sharded service at one shard count and pins every epoch's
/// stitched state to union-graph ground truth.
fn measure_sharded(scale: usize, shards: usize, batch: usize, steps: usize, seed: u64) -> ShardRow {
    let g = gnp(scale, 10.0 / scale as f64, seed);
    let stream = churn_stream(
        &g,
        ChurnWorkload::Mixed { insert_pct: 55 },
        steps,
        batch,
        seed ^ 3,
    );
    let mut svc = ShardedCoreService::new(&g, shards);
    let handle = svc.handle();
    let mut repair = Percentiles::new();
    let mut publish = Percentiles::new();
    let mut rounds = 0u64;
    let mut messages = 0u64;
    let mut identical = true;
    for b in &stream {
        let r = svc.apply_batch(b).expect("stream batches are valid");
        repair.record(r.repair_micros);
        publish.record(r.publish_micros);
        rounds += u64::from(r.rounds);
        messages += r.messages;
        let snap = handle.snapshot();
        identical &= snap.values() == batagelj_zaversnik(snap.graph()).as_slice();
    }
    println!(
        "sharded gnp10/{scale} x{shards}: {rounds:>4} rounds, {messages:>7} messages | \
         repair p50 {:>8.1}us | publish p50 {:>7.1}us | identical: {identical}",
        repair.p50(),
        publish.p50(),
    );
    ShardRow {
        graph: format!("sharded_mixed_gnp10/{scale}/shards{shards}"),
        nodes: scale,
        shards,
        epochs: stream.len() as u64,
        rounds,
        messages,
        repair,
        publish,
        identical,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR5.json".into());
    let quick = std::env::var_os("BENCH_QUICK").is_some_and(|v| v != "0");
    let (scale, epochs, shard_scale, shard_steps) = if quick {
        (10_000usize, 40u64, 2_000usize, 8usize)
    } else {
        (100_000, 60, 5_000, 12)
    };
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    println!("publish-path comparison (scale {scale}, {cores} cores)...");

    let publish_row = measure_publish(scale, 32, epochs, 42);
    let shard_rows: Vec<ShardRow> = [1usize, 2, 4]
        .iter()
        .map(|&s| measure_sharded(shard_scale, s, 32, shard_steps, 77))
        .collect();

    let mut json = String::from("{\n  \"bench\": \"BENCH_PR5\",\n");
    let _ = writeln!(json, "  \"quick_mode\": {quick},");
    let _ = writeln!(json, "  \"cores\": {cores},");
    json.push_str(
        "  \"metric\": \"incremental (copy-on-write) epoch publish vs PR4 full rebuild; \
         sharded multi-writer stitched epochs vs union-graph ground truth\",\n",
    );
    json.push_str(
        "  \"engines\": [\"core_service_incremental_publish\", \"sharded_core_service\"],\n",
    );
    json.push_str("  \"results\": [\n");
    {
        let r = &publish_row;
        let _ = writeln!(
            json,
            "    {{\"graph\": \"{}\", \"nodes\": {}, \"batch\": {}, \"epochs\": {}, \
             \"touched_mean\": {:.1}, \
             \"publish_incr_p50_us\": {:.1}, \"publish_incr_p99_us\": {:.1}, \
             \"publish_full_p50_us\": {:.1}, \"publish_full_p99_us\": {:.1}, \
             \"speedup_publish\": {:.3}, \"identical_output\": {}}},",
            r.graph,
            r.nodes,
            r.batch,
            r.epochs,
            r.touched_mean,
            r.incr.p50(),
            r.incr.p99(),
            r.full.p50(),
            r.full.p99(),
            r.speedup,
            r.identical,
        );
    }
    for (i, r) in shard_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"graph\": \"{}\", \"nodes\": {}, \"shards\": {}, \"epochs\": {}, \
             \"rounds\": {}, \"messages\": {}, \
             \"repair_p50_us\": {:.1}, \"repair_p99_us\": {:.1}, \
             \"publish_p50_us\": {:.1}, \"identical_output\": {}}}",
            r.graph,
            r.nodes,
            r.shards,
            r.epochs,
            r.rounds,
            r.messages,
            r.repair.p50(),
            r.repair.p99(),
            r.publish.p50(),
            r.identical,
        );
        json.push_str(if i + 1 < shard_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_PR5.json");
    println!("wrote {out_path}");

    // Acceptance floors.
    assert!(publish_row.identical, "service diverged from ground truth");
    assert!(
        shard_rows.iter().all(|r| r.identical),
        "a stitched epoch diverged from union-graph ground truth"
    );
    let target = if quick { 2.0 } else { 5.0 };
    assert!(
        publish_row.speedup >= target,
        "incremental publish {:.2}x below the {target}x acceptance floor",
        publish_row.speedup
    );
    // Publish cost must track the touched set, not N + M: the mean
    // incremental publish must stay far below the full rebuild even at
    // the tail (p99 vs the *full* path's p50).
    assert!(
        publish_row.incr.p99() < publish_row.full.p50(),
        "incremental publish tail ({:.1}us) reached full-rebuild territory ({:.1}us)",
        publish_row.incr.p99(),
        publish_row.full.p50()
    );
}
