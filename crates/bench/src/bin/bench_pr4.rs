//! PR 4 acceptance benchmark: closed-loop load generation against the
//! epoch-snapshot query service (`dkcore-serve`), emitting
//! machine-readable `BENCH_PR4.json`.
//!
//! One writer thread sustains batched mixed churn through
//! [`CoreService::apply_batch`](dkcore_serve::CoreService) while `R`
//! closed-loop reader threads hammer the in-process
//! [`ServiceHandle`](dkcore_serve::ServiceHandle) with a mixed query
//! set (point coreness lookups dominated, periodic histogram / top-k /
//! k-core-size scans). For each reader count the row reports aggregate
//! query throughput, the writer's sustained publish rate, and the
//! repair/publish latency tails (p50/p95/p99 via
//! [`dkcore_metrics::Percentiles`]).
//!
//! Metrics and portability:
//!
//! * `speedup_readers_R` = throughput at `R` readers / throughput at 1
//!   reader. On a machine with ≥ R spare cores this shows read
//!   scalability (the acceptance target is ≥ 3× at 8 readers); on
//!   fewer cores it shows *contention overhead* instead — the epoch
//!   cell must not collapse under oversubscription (floor 0.5×). The
//!   binary asserts the target matching the machine (`cores` is
//!   recorded in the JSON) so the committed baseline stays honest.
//! * Latency percentiles are reported, not gated (absolute times are
//!   machine-dependent).
//! * After the load stops, the final snapshot is verified against a
//!   fresh Batagelj–Zaveršnik pass — the writer's full churn history
//!   must land on the exact decomposition.
//!
//! Usage: `bench_pr4 [output.json]` (default `BENCH_PR4.json`). Set
//! `BENCH_QUICK=1` for the fast smoke configuration CI uses.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use dkcore::seq::batagelj_zaversnik;
use dkcore_data::{churn_stream, ChurnWorkload};
use dkcore_graph::generators::gnp;
use dkcore_metrics::Percentiles;
use dkcore_serve::{CoreService, ServiceHandle};
use rand::prelude::*;

/// One measured window at a fixed reader count.
struct LoadRow {
    readers: usize,
    elapsed_ms: f64,
    queries: u64,
    qps: f64,
    epochs: u64,
    publishes_per_sec: f64,
    repair: Percentiles,
    publish: Percentiles,
}

/// Runs one closed-loop window: `readers` reader threads + the writer
/// churning through `stream` (cycled) for `window_ms`.
fn run_window(
    svc: &mut CoreService,
    stream: &[dkcore::stream::EdgeBatch],
    readers: usize,
    window_ms: u64,
    point_lookups_per_snapshot: usize,
) -> LoadRow {
    let stop = Arc::new(AtomicBool::new(false));
    let total_queries = Arc::new(AtomicU64::new(0));
    let n = svc.stream().node_count() as u32;

    let reader_threads: Vec<_> = (0..readers)
        .map(|r| {
            let handle: ServiceHandle = svc.handle();
            let stop = stop.clone();
            let total = total_queries.clone();
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(0x9E1D + r as u64);
                let mut local = 0u64;
                let mut iter = 0u64;
                while !stop.load(Ordering::Acquire) {
                    // Pin one epoch, answer a burst against it — the
                    // read-mostly pattern the service is built for.
                    let snap = handle.snapshot();
                    for _ in 0..point_lookups_per_snapshot {
                        let v = rng.random_range(0..n);
                        let c = snap.coreness(dkcore_graph::NodeId(v)).expect("in range");
                        std::hint::black_box(c);
                        local += 1;
                    }
                    // Periodic heavier queries keep the mix honest.
                    if iter.is_multiple_of(16) {
                        std::hint::black_box(snap.histogram().len());
                        std::hint::black_box(snap.kcore_size(2));
                        local += 2;
                    }
                    if iter.is_multiple_of(64) {
                        std::hint::black_box(snap.top_k(8).len());
                        local += 1;
                    }
                    iter += 1;
                }
                total.fetch_add(local, Ordering::AcqRel);
            })
        })
        .collect();

    // Writer: cycle the pre-generated valid stream — a full forward
    // pass, then the inverse batches in reverse order (which retraces
    // the states backwards), so the graph returns to its initial state
    // and the cycle stays valid forever.
    let undos: Vec<_> = undo_batches(stream).into_iter().rev().collect();
    let mut repair = Percentiles::new();
    let mut publish = Percentiles::new();
    let mut epochs = 0u64;
    let t0 = Instant::now();
    let window = std::time::Duration::from_millis(window_ms);
    'outer: loop {
        for b in stream.iter().chain(undos.iter()) {
            if t0.elapsed() >= window && epochs.is_multiple_of(2 * stream.len() as u64) {
                break 'outer; // stop only at cycle boundaries (clean state)
            }
            let report = svc.apply_batch(b).expect("stream batches are valid");
            repair.record(report.repair_micros);
            publish.record(report.publish_micros);
            epochs += 1;
        }
    }
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
    stop.store(true, Ordering::Release);
    for t in reader_threads {
        t.join().expect("reader thread");
    }

    let queries = total_queries.load(Ordering::Acquire);
    LoadRow {
        readers,
        elapsed_ms,
        queries,
        qps: queries as f64 / (elapsed_ms / 1e3),
        epochs,
        publishes_per_sec: epochs as f64 / (elapsed_ms / 1e3),
        repair,
        publish,
    }
}

/// The inverse of each batch (insertions⇄removals), so apply→undo pairs
/// leave the graph unchanged and the stream can cycle forever.
fn undo_batches(stream: &[dkcore::stream::EdgeBatch]) -> Vec<dkcore::stream::EdgeBatch> {
    stream
        .iter()
        .map(|b| {
            let mut u = dkcore::stream::EdgeBatch::new();
            for &(x, y) in b.insertions() {
                u.remove(x, y);
            }
            for &(x, y) in b.removals() {
                u.insert(x, y);
            }
            u
        })
        .collect()
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR4.json".into());
    let quick = std::env::var_os("BENCH_QUICK").is_some_and(|v| v != "0");
    let (scale, batch, window_ms, lookups) = if quick {
        (10_000usize, 64usize, 250u64, 64usize)
    } else {
        (100_000, 128, 1_000, 64)
    };
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    println!("building service (scale {scale}, {cores} cores)...");

    let g = gnp(scale, 12.0 / scale as f64, 42);
    // A valid mixed stream to cycle: generated once, applied as
    // apply/undo pairs so it stays valid forever.
    let stream = churn_stream(&g, ChurnWorkload::Mixed { insert_pct: 55 }, 8, batch, 7);
    let mut svc = CoreService::new(&g);

    let reader_counts = [1usize, 2, 4, 8];
    let mut rows = Vec::new();
    for &r in &reader_counts {
        let row = run_window(&mut svc, &stream, r, window_ms, lookups);
        println!(
            "readers {:>2}: {:>12.0} queries/s | {:>6.1} publishes/s | \
             publish p50 {:>7.0}us p99 {:>7.0}us | repair p99 {:>7.0}us",
            row.readers,
            row.qps,
            row.publishes_per_sec,
            row.publish.p50(),
            row.publish.p99(),
            row.repair.p99(),
        );
        rows.push(row);
    }

    // Correctness: the final published epoch is the exact decomposition.
    let snap = svc.handle().snapshot();
    let truth = batagelj_zaversnik(snap.graph());
    let identical = snap.values() == truth.as_slice();
    println!(
        "final epoch {} identical to ground truth: {identical}",
        snap.epoch()
    );

    let base_qps = rows[0].qps;
    let mut json = String::from("{\n  \"bench\": \"BENCH_PR4\",\n");
    let _ = writeln!(json, "  \"quick_mode\": {quick},");
    let _ = writeln!(json, "  \"cores\": {cores},");
    json.push_str(
        "  \"metric\": \"closed-loop query throughput vs reader threads over the \
         epoch-snapshot service under sustained mixed churn; publish/repair latency tails\",\n",
    );
    json.push_str("  \"engines\": [\"core_service_epoch_snapshots\"],\n");
    json.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"graph\": \"serve_mixed_gnp12/{scale}/readers{}\", \"nodes\": {scale}, \
             \"readers\": {}, \"elapsed_ms\": {:.1}, \"queries\": {}, \"qps\": {:.0}, \
             \"epochs\": {}, \"publishes_per_sec\": {:.2}, \
             \"repair_p50_us\": {:.1}, \"repair_p95_us\": {:.1}, \"repair_p99_us\": {:.1}, \
             \"publish_p50_us\": {:.1}, \"publish_p95_us\": {:.1}, \"publish_p99_us\": {:.1}, \
             \"speedup_readers\": {:.3}, \"identical_output\": {identical}}}",
            row.readers,
            row.readers,
            row.elapsed_ms,
            row.queries,
            row.qps,
            row.epochs,
            row.publishes_per_sec,
            row.repair.p50(),
            row.repair.p95(),
            row.repair.p99(),
            row.publish.p50(),
            row.publish.p95(),
            row.publish.p99(),
            row.qps / base_qps,
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_PR4.json");
    println!("wrote {out_path}");

    assert!(identical, "service diverged from ground truth");
    assert!(
        rows.iter().all(|r| r.epochs > 0),
        "writer must sustain churn in every window"
    );
    // Scaling assertions matched to the machine. The acceptance target
    // (≥3× aggregate read throughput at 8 readers vs 1, ≥2× quick) needs
    // 8 reader cores plus the writer's; on smaller machines the
    // measurable property is that the epoch cell does not *collapse*
    // under oversubscription — aggregate throughput must hold up even
    // with 8 readers and the writer contending for the cores.
    let eight = rows.last().expect("8-reader row");
    let ratio = eight.qps / base_qps;
    if cores > 8 {
        let target = if quick { 2.0 } else { 3.0 };
        assert!(
            ratio >= target,
            "8 readers: {ratio:.2}x below the {target}x scaling target ({cores} cores)"
        );
    } else {
        assert!(
            ratio >= 0.5,
            "8 readers: {ratio:.2}x — reader throughput collapsed under contention \
             ({cores} cores)"
        );
    }
}
