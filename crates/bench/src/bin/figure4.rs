//! Regenerates the paper's **Figure 4**: evolution of the estimation error
//! over rounds — average error over all nodes (left plot) and maximum
//! error over all nodes (right plot), aggregated across repetitions.
//!
//! Output is gnuplot-ready TSV series per dataset, plus a summary table
//! answering the paper's headline observation ("in all our experimental
//! data sets, the maximum error is at most equal to 1 by cycle 22").
//!
//! Run: `cargo run -p dkcore-bench --release --bin figure4`

use dkcore::seq::batagelj_zaversnik;
use dkcore::termination::CentralizedDetector;
use dkcore_bench::{f2, HarnessArgs};
use dkcore_metrics::{Series, Table};
use dkcore_sim::experiment::repetition_seed;
use dkcore_sim::{ErrorEvolutionObserver, NodeSim, NodeSimConfig};

fn main() {
    let args = HarnessArgs::from_env();
    let mut summary = Table::new([
        "name",
        "rounds(avg)",
        "avg_err@5",
        "avg_err@10",
        "max_err<=1 by",
    ]);

    for spec in args.selected_datasets() {
        eprintln!("[figure4] building {} ...", spec.name);
        let g = args.build(&spec);
        let truth = batagelj_zaversnik(&g);

        let mut avg_runs: Vec<Series> = Vec::new();
        let mut max_runs: Vec<Series> = Vec::new();
        let mut rounds_sum = 0u64;
        for rep in 0..args.reps {
            let seed = repetition_seed(args.seed, rep);
            let mut obs = ErrorEvolutionObserver::new(truth.clone());
            let mut det = CentralizedDetector::new();
            let mut sim = NodeSim::new(&g, NodeSimConfig::random_order(seed));
            let result = sim.run_with(&mut det, &mut [&mut obs]);
            rounds_sum += result.rounds_executed as u64;
            avg_runs.push(obs.avg_series(format!("{}-rep{rep}", spec.name)));
            max_runs.push(obs.max_series(format!("{}-rep{rep}", spec.name)));
        }
        // Converged runs have error 0 from then on: pad with 0.
        let avg = Series::mean_across(format!("{} avg error", spec.name), &avg_runs, 0.0);
        let max = Series::max_across(format!("{} max error", spec.name), &max_runs, 0.0);

        println!("{}", avg.to_tsv());
        println!("{}", max.to_tsv());

        let err_at = |s: &Series, round: f64| {
            s.points()
                .iter()
                .find(|&&(x, _)| x >= round)
                .map_or(0.0, |&(_, y)| y)
        };
        summary.row([
            spec.name.to_string(),
            f2(rounds_sum as f64 / args.reps as f64),
            f2(err_at(&avg, 5.0)),
            f2(err_at(&avg, 10.0)),
            max.first_x_below(1.0)
                .map_or("never".into(), |x| format!("{x:.0}")),
        ]);
    }

    println!("== Figure 4 summary ==");
    print!("{summary}");
    println!();
    println!(
        "paper: error drops by orders of magnitude within the first rounds; the \
         maximum error is <= 1 by cycle 22 on every dataset (web-BerkStan's deep \
         1-core pages keep its avg error nonzero the longest)."
    );
}
