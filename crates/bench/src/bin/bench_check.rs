//! CI performance-regression gate: compares freshly generated
//! `BENCH_PR*.quick.json` documents against the committed baselines and
//! fails (exit code 1) when any engine speedup ratio degraded by more
//! than the threshold.
//!
//! Usage:
//!
//! ```text
//! bench_check [--threshold FRACTION] <baseline.json> <fresh.json> [...more pairs]
//! ```
//!
//! The threshold defaults to 0.2 (a 20% ratio drop) and can also be set
//! via the `BENCH_REGRESSION_THRESHOLD` environment variable; the flag
//! wins. Absolute times are never compared — only the machine-portable
//! legacy-vs-fast speedup ratios (see `dkcore_bench::regression`).
//!
//! Machine-scaling ratios (`speedup_readers*`) are special-cased: they
//! gate only when the baseline document records a core count comparable
//! to the fresh run's (every bench binary writes `"cores"`); otherwise
//! they are downgraded to soft warnings — a reader-scaling baseline from
//! a 1-core container is an oversubscription floor, not a target, on a
//! 16-core runner.

use std::process::ExitCode;

use dkcore_bench::regression::{compare_docs, parse_document, render_table};

fn main() -> ExitCode {
    let mut threshold: f64 = std::env::var("BENCH_REGRESSION_THRESHOLD")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.2);
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threshold" => {
                let v = args.next().expect("--threshold requires a value");
                threshold = v.parse().expect("--threshold: fraction like 0.2");
            }
            other => paths.push(other.to_string()),
        }
    }
    if paths.is_empty() || !paths.len().is_multiple_of(2) {
        eprintln!(
            "usage: bench_check [--threshold FRACTION] <baseline.json> <fresh.json> [...pairs]"
        );
        return ExitCode::FAILURE;
    }
    assert!(
        (0.0..1.0).contains(&threshold),
        "threshold must be a fraction in [0, 1), got {threshold}"
    );

    let mut regressions = 0usize;
    for pair in paths.chunks(2) {
        let (baseline_path, fresh_path) = (&pair[0], &pair[1]);
        let read = |p: &String| {
            std::fs::read_to_string(p).unwrap_or_else(|e| panic!("cannot read {p}: {e}"))
        };
        let baseline =
            parse_document(&read(baseline_path)).unwrap_or_else(|e| panic!("{baseline_path}: {e}"));
        let fresh =
            parse_document(&read(fresh_path)).unwrap_or_else(|e| panic!("{fresh_path}: {e}"));
        let comparisons = compare_docs(&baseline, baseline_path, &fresh, threshold)
            .unwrap_or_else(|e| panic!("{baseline_path} vs {fresh_path}: {e}"));
        let describe = |c: Option<f64>| c.map_or("?".to_string(), |v| format!("{v:.0}"));
        print!(
            "{}",
            render_table(
                &format!(
                    "{baseline_path} (cores {}) vs {fresh_path} (cores {})",
                    describe(baseline.cores),
                    describe(fresh.cores)
                ),
                &comparisons,
                threshold
            )
        );
        regressions += comparisons.iter().filter(|c| c.regressed).count();
    }

    if regressions > 0 {
        eprintln!(
            "bench_check: {regressions} speedup ratio(s) degraded by more than {:.0}%",
            threshold * 100.0
        );
        ExitCode::FAILURE
    } else {
        println!("bench_check: all speedup ratios within threshold");
        ExitCode::SUCCESS
    }
}
