//! Regenerates the paper's **Figure 5**: one-to-many communication
//! overhead (estimates sent per node) as a function of the number of
//! hosts, with a broadcast medium (left plot) and with point-to-point
//! transport (right plot).
//!
//! Expected shape (paper §5.2): with broadcast the overhead stays tiny
//! (< 3 estimates per node) at every host count; with point-to-point it
//! grows with the host count and approaches one-to-one message levels.
//!
//! Run: `cargo run -p dkcore-bench --release --bin figure5`

use dkcore::one_to_many::DisseminationPolicy;
use dkcore_bench::{f2, HarnessArgs};
use dkcore_metrics::{Series, Table};
use dkcore_sim::experiment::run_host_experiment;
use dkcore_sim::HostSimConfig;

fn main() {
    let mut args = HarnessArgs::from_env();
    // Figure 5 plots a subset of the datasets; default to the paper's five
    // (minus road/wiki, as in the original figure) unless overridden.
    if args.datasets.is_empty() {
        args.datasets = [
            "astroph-like",
            "gnutella-like",
            "slashdot-like",
            "amazon-like",
            "berkstan-like",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    // Smaller default scale: figure 5 sweeps 9 host counts x 2 policies.
    if args.scale.is_none() {
        args.scale = Some(20_000);
    }
    let host_counts = [2usize, 4, 8, 16, 32, 64, 128, 256, 512];

    let mut table = Table::new(["name", "policy", "hosts", "overhead/node", "rounds(avg)"]);

    for spec in args.selected_datasets() {
        eprintln!("[figure5] building {} ...", spec.name);
        let g = args.build(&spec);
        let n = g.node_count() as f64;
        for policy in [
            DisseminationPolicy::Broadcast,
            DisseminationPolicy::PointToPoint,
        ] {
            let mut series = Series::new(format!("{} {policy:?}", spec.name));
            for &hosts in &host_counts {
                let mut template = HostSimConfig::random_order(hosts, 0);
                template.protocol.policy = policy;
                let outcome = run_host_experiment(&g, template, args.reps.min(5), args.seed);
                assert!(outcome.all_converged, "{} did not converge", spec.name);
                let overhead = outcome.estimates_sent.mean() / n;
                series.push(hosts as f64, overhead);
                table.row([
                    spec.name.to_string(),
                    format!("{policy:?}"),
                    hosts.to_string(),
                    f2(overhead),
                    f2(outcome.execution_time.mean()),
                ]);
                eprintln!(
                    "[figure5] {} {policy:?} hosts={hosts}: overhead {:.2}",
                    spec.name, overhead
                );
            }
            println!("{}", series.to_tsv());
        }
    }

    if args.csv {
        print!("{}", table.to_csv());
    } else {
        println!("== Figure 5 (overhead per node vs hosts) ==");
        print!("{table}");
        println!();
        println!(
            "paper: broadcast overhead stays below ~3 estimates/node at all host \
             counts; point-to-point overhead grows with hosts toward one-to-one \
             levels (m_avg of Table 1)."
        );
    }
}
