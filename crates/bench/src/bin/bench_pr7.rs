//! PR 7 acceptance benchmark: **O(answer) bulk queries** off the
//! incrementally-maintained shell index, emitting machine-readable
//! `BENCH_PR7.json`.
//!
//! Two measurements:
//!
//! 1. **Query cost vs N at fixed answer size** — a "spine + clique"
//!    family: an N-node path (coreness 1 everywhere) carrying one
//!    A-node clique (coreness A−1). `MEMBERS 2` / `TOPK` answers are
//!    exactly the clique at every scale, so the *answer* stays fixed
//!    while N grows 10×+. Each scale row times the indexed paths
//!    (shell-index merge / rank walk / memoized subgraph) against the
//!    PR 6 scan paths (`kcore_members_scan` / `top_k_scan` /
//!    `kcore_subgraph_scan`) on snapshots of the same epoch.
//!    `speedup_members` / `speedup_topk` are the gated ratios
//!    `scan_per_query / indexed_per_query`; the binary asserts the
//!    acceptance floors (≥10× on the largest full-mode row, ≥3× quick)
//!    and that the indexed per-query cost is flat in N (largest-scale
//!    cost within 5× of the smallest, while N grows 10×).
//! 2. **Index-maintenance overhead on the publish path** — the same
//!    churn stream advanced through two snapshot chains off one
//!    `StreamCore`: with the shell index (PR 7 publish path) and
//!    without (`capture_unindexed`, the PR 6 baseline).
//!    `speedup_index_publish` is `unindexed_p50 / indexed_p50`; the
//!    binary asserts overhead <10% full (<35% quick, noise-dominated).
//!
//! Every row pins results to ground truth: indexed and scan answers are
//! compared element-wise, and final coreness equals fresh
//! Batagelj–Zaveršnik (`identical_output`).
//!
//! Usage: `bench_pr7 [output.json]` (default `BENCH_PR7.json`). Set
//! `BENCH_QUICK=1` for the fast smoke configuration CI uses.

use std::fmt::Write as _;
use std::time::Instant;

use dkcore::seq::batagelj_zaversnik;
use dkcore::stream::StreamCore;
use dkcore_data::{churn_stream, ChurnWorkload};
use dkcore_graph::generators::gnp;
use dkcore_graph::Graph;
use dkcore_metrics::Percentiles;
use dkcore_serve::{kcore_members_scan, kcore_subgraph_scan, top_k_scan, CoreSnapshot};

/// N-node path spine with an A-node clique on nodes `0..a`: the k-core
/// for k ≥ 2 is exactly the clique at every N, so the answer size is
/// fixed while the scan paths still pay O(N).
fn spine_with_clique(n: usize, a: usize) -> Graph {
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n - 1 + a * (a - 1) / 2);
    for u in 0..n as u32 - 1 {
        edges.push((u, u + 1));
    }
    for i in 0..a as u32 {
        for j in i + 1..a as u32 {
            if j != i + 1 {
                edges.push((i, j)); // (i, i+1) is already a spine edge
            }
        }
    }
    Graph::from_edges(n, edges).expect("spine+clique edges are valid")
}

/// Per-query microseconds of `reps` runs of `f`.
fn per_query_us(reps: usize, mut f: impl FnMut() -> usize) -> (f64, f64) {
    let t = Instant::now();
    let mut sink = 0usize;
    for _ in 0..reps {
        sink = sink.wrapping_add(std::hint::black_box(f()));
    }
    std::hint::black_box(sink);
    let total_ms = t.elapsed().as_secs_f64() * 1e3;
    (total_ms * 1e3 / reps as f64, total_ms)
}

struct QueryRow {
    graph: String,
    nodes: usize,
    answer: usize,
    members_indexed_us: f64,
    members_scan_us: f64,
    scan_members_ms: f64,
    topk_indexed_us: f64,
    topk_scan_us: f64,
    scan_topk_ms: f64,
    subgraph_cold_us: f64,
    subgraph_memo_us: f64,
    subgraph_scan_us: f64,
    speedup_members: f64,
    speedup_topk: f64,
    identical: bool,
}

fn measure_queries(n: usize, a: usize, reps_indexed: usize, reps_scan: usize) -> QueryRow {
    let g = spine_with_clique(n, a);
    let core = StreamCore::new(&g);
    let indexed = CoreSnapshot::capture(0, &core);
    let unindexed = CoreSnapshot::capture_unindexed(0, &core);

    // MEMBERS 2 = the clique, at every N.
    let (members_indexed_us, _) = per_query_us(reps_indexed, || {
        indexed.kcore_members_page(2, 0, usize::MAX).count()
    });
    let (members_scan_us, scan_members_ms) =
        per_query_us(reps_scan, || kcore_members_scan(&unindexed, 2).count());

    // TOPK a/2: the top half of the clique, rank-walked vs
    // histogram-threshold scan.
    let topn = a / 2;
    let (topk_indexed_us, _) = per_query_us(reps_indexed, || indexed.top_page(0, topn).count());
    let (topk_scan_us, scan_topk_ms) =
        per_query_us(reps_scan, || top_k_scan(&unindexed, topn).len());

    // SUBGRAPH 2: one cold build from the member list (O(answer)), the
    // memoized re-read, and the PR 6 dense-remap scan — single shots,
    // reported but not gated (the memo makes repeats trivially fast).
    let t = Instant::now();
    let cold = indexed.kcore_subgraph_cached(2);
    let subgraph_cold_us = t.elapsed().as_secs_f64() * 1e6;
    let t = Instant::now();
    let memo = indexed.kcore_subgraph_cached(2);
    let subgraph_memo_us = t.elapsed().as_secs_f64() * 1e6;
    let t = Instant::now();
    let scan_sub = kcore_subgraph_scan(&unindexed, 2);
    let subgraph_scan_us = t.elapsed().as_secs_f64() * 1e6;

    // Ground truth: indexed answers equal scan answers equal fresh BZ.
    let identical = indexed.kcore_members(2)
        == kcore_members_scan(&unindexed, 2).collect::<Vec<_>>()
        && indexed.top_k(topn) == top_k_scan(&unindexed, topn)
        && cold.1 == scan_sub.1
        && memo.0.edge_count() == scan_sub.0.edge_count()
        && indexed.values() == batagelj_zaversnik(indexed.graph()).as_slice();

    let speedup_members = members_scan_us / members_indexed_us;
    let speedup_topk = topk_scan_us / topk_indexed_us;
    println!(
        "queries spine/{n} answer={a}: members {members_indexed_us:>8.2}us vs scan \
         {members_scan_us:>9.2}us ({speedup_members:>7.1}x) | topk {topk_indexed_us:>8.2}us vs \
         {topk_scan_us:>9.2}us ({speedup_topk:>7.1}x) | subgraph cold {subgraph_cold_us:.0}us / \
         memo {subgraph_memo_us:.1}us / scan {subgraph_scan_us:.0}us | identical: {identical}"
    );
    QueryRow {
        graph: format!("oanswer_spine/{n}/clique{a}"),
        nodes: n,
        answer: a,
        members_indexed_us,
        members_scan_us,
        scan_members_ms,
        topk_indexed_us,
        topk_scan_us,
        scan_topk_ms,
        subgraph_cold_us,
        subgraph_memo_us,
        subgraph_scan_us,
        speedup_members,
        speedup_topk,
        identical,
    }
}

struct PublishRow {
    graph: String,
    nodes: usize,
    epochs: usize,
    indexed_p50_us: f64,
    indexed_p99_us: f64,
    unindexed_p50_us: f64,
    publish_indexed_ms: f64,
    publish_scan_ms: f64,
    speedup: f64,
    identical: bool,
}

fn measure_publish_overhead(scale: usize, steps: usize, seed: u64) -> PublishRow {
    let g = gnp(scale, 12.0 / scale as f64, seed);
    let stream = churn_stream(
        &g,
        ChurnWorkload::Mixed { insert_pct: 55 },
        steps,
        32,
        seed ^ 9,
    );
    let mut core = StreamCore::new(&g);
    let mut with_index = CoreSnapshot::capture(0, &core);
    let mut without = CoreSnapshot::capture_unindexed(0, &core);
    let mut t_ix = Percentiles::new();
    let mut t_un = Percentiles::new();
    let mut total_ix = 0.0f64;
    let mut total_un = 0.0f64;
    for (i, b) in stream.iter().enumerate() {
        core.apply_batch(b).expect("stream batches are valid");
        let epoch = (i + 1) as u64;
        let t = Instant::now();
        without = without.advance(epoch, &core, b);
        let us = t.elapsed().as_secs_f64() * 1e6;
        t_un.record(us);
        total_un += us;
        let t = Instant::now();
        with_index = with_index.advance(epoch, &core, b);
        let us = t.elapsed().as_secs_f64() * 1e6;
        t_ix.record(us);
        total_ix += us;
    }
    let identical = with_index.values() == without.values()
        && with_index.values() == batagelj_zaversnik(with_index.graph()).as_slice()
        && with_index.kcore_members(2) == without.kcore_members(2);
    let speedup = t_un.p50() / t_ix.p50();
    println!(
        "publish gnp12/{scale}: unindexed p50 {:>8.1}us | indexed p50 {:>8.1}us | ratio \
         {speedup:.3} | identical: {identical}",
        t_un.p50(),
        t_ix.p50(),
    );
    PublishRow {
        graph: format!("index_publish_gnp12/{scale}"),
        nodes: scale,
        epochs: stream.len(),
        indexed_p50_us: t_ix.p50(),
        indexed_p99_us: t_ix.p99(),
        unindexed_p50_us: t_un.p50(),
        publish_indexed_ms: total_ix / 1e3,
        publish_scan_ms: total_un / 1e3,
        speedup,
        identical,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR7.json".into());
    let quick = std::env::var_os("BENCH_QUICK").is_some_and(|v| v != "0");
    let (scales, answer, reps_indexed, reps_scan, pub_scale, pub_steps) = if quick {
        (
            vec![20_000usize, 200_000],
            256usize,
            2_000usize,
            60usize,
            4_000usize,
            24usize,
        )
    } else {
        (
            vec![100_000, 300_000, 1_000_000],
            512,
            5_000,
            50,
            20_000,
            24,
        )
    };
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    println!("O(answer) bulk queries vs scan paths ({cores} cores)...");

    let rows: Vec<QueryRow> = scales
        .iter()
        .map(|&n| measure_queries(n, answer, reps_indexed, reps_scan))
        .collect();
    let publish = measure_publish_overhead(pub_scale, pub_steps, 42);

    let mut json = String::from("{\n  \"bench\": \"BENCH_PR7\",\n");
    let _ = writeln!(json, "  \"quick_mode\": {quick},");
    let _ = writeln!(json, "  \"cores\": {cores},");
    json.push_str(
        "  \"metric\": \"bulk-query latency at fixed answer size vs N (indexed vs scan), \
         shell-index maintenance overhead on the publish path\",\n",
    );
    json.push_str("  \"engines\": [\"shell_index_snapshot\"],\n");
    json.push_str("  \"results\": [\n");
    for r in &rows {
        let _ = writeln!(
            json,
            "    {{\"graph\": \"{}\", \"nodes\": {}, \"answer\": {}, \
             \"members_indexed_us\": {:.3}, \"members_scan_us\": {:.3}, \
             \"scan_members_ms\": {:.1}, \"topk_indexed_us\": {:.3}, \
             \"topk_scan_us\": {:.3}, \"scan_topk_ms\": {:.1}, \
             \"subgraph_cold_us\": {:.1}, \"subgraph_memo_us\": {:.2}, \
             \"subgraph_scan_us\": {:.1}, \"speedup_members\": {:.3}, \
             \"speedup_topk\": {:.3}, \"identical_output\": {}}},",
            r.graph,
            r.nodes,
            r.answer,
            r.members_indexed_us,
            r.members_scan_us,
            r.scan_members_ms,
            r.topk_indexed_us,
            r.topk_scan_us,
            r.scan_topk_ms,
            r.subgraph_cold_us,
            r.subgraph_memo_us,
            r.subgraph_scan_us,
            r.speedup_members,
            r.speedup_topk,
            r.identical,
        );
    }
    let _ = writeln!(
        json,
        "    {{\"graph\": \"{}\", \"nodes\": {}, \"epochs\": {}, \
         \"advance_indexed_p50_us\": {:.1}, \"advance_indexed_p99_us\": {:.1}, \
         \"advance_unindexed_p50_us\": {:.1}, \"publish_indexed_ms\": {:.1}, \
         \"publish_scan_ms\": {:.1}, \"speedup_index_publish\": {:.3}, \
         \"identical_output\": {}}}",
        publish.graph,
        publish.nodes,
        publish.epochs,
        publish.indexed_p50_us,
        publish.indexed_p99_us,
        publish.unindexed_p50_us,
        publish.publish_indexed_ms,
        publish.publish_scan_ms,
        publish.speedup,
        publish.identical,
    );
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_PR7.json");
    println!("wrote {out_path}");

    // Acceptance floors.
    assert!(
        rows.iter().all(|r| r.identical) && publish.identical,
        "an indexed answer diverged from the scan path or BZ ground truth"
    );
    let largest = rows.last().expect("at least one scale");
    let floor = if quick { 3.0 } else { 10.0 };
    assert!(
        largest.speedup_members >= floor && largest.speedup_topk >= floor,
        "O(answer) floor on the {}-node row: members {:.1}x, topk {:.1}x (need >={floor}x \
         over the scan path)",
        largest.nodes,
        largest.speedup_members,
        largest.speedup_topk
    );
    // Flat in N: per-query indexed cost must not track the 10x+ growth
    // in N across the scale sweep (5x covers allocator/cache noise).
    let smallest = rows.first().expect("at least one scale");
    let growth = largest.members_indexed_us / smallest.members_indexed_us;
    assert!(
        growth <= 5.0,
        "indexed members cost grew {growth:.1}x from {} to {} nodes (answer fixed at {}): \
         not O(answer)",
        smallest.nodes,
        largest.nodes,
        largest.answer
    );
    let overhead_ceiling = if quick { 1.35 } else { 1.10 };
    assert!(
        publish.speedup >= 1.0 / overhead_ceiling,
        "index maintenance costs {:.1}% on the publish path (ceiling {:.0}%)",
        (1.0 / publish.speedup - 1.0) * 100.0,
        (overhead_ceiling - 1.0) * 100.0
    );
}
