//! PR 9 acceptance benchmark: **telemetry instrumentation overhead**,
//! emitting machine-readable `BENCH_PR9.json`.
//!
//! The unified telemetry layer (metrics registry + event flight
//! recorder) instruments the publish path (`CoreService::apply_batch`
//! phase histograms and events) and the sharded exchange path
//! (`ShardedCoreService` round/resend counters and lifecycle events).
//! Its acceptance contract is that a fully instrumented writer stays
//! within **2%** of an uninstrumented one — telemetry must be
//! effectively free on the hot path.
//!
//! Each row drives the identical churn stream through the same backend
//! twice: once with [`Telemetry::disabled`] (instrumentation gated off,
//! one branch per record site) and once with an enabled bundle
//! (histograms recorded, events written). `speedup_telemetry_off` is
//! the per-batch apply-wall p50 ratio `disabled_p50 / enabled_p50` —
//! ~1.0 by design; the ≥0.98 floor (≤2% overhead) is hard only in full
//! mode on a multi-core machine, where the sub-millisecond quick-mode
//! rounds stop being noise-dominated. Every row asserts bit-identical
//! coreness between the two runs and against fresh Batagelj–Zaveršnik
//! (`identical_output`) — telemetry observes, it never steers.
//!
//! The enabled runs also record how much telemetry they produced
//! (`events_recorded`, `metric_series`) so a regression to "cheap
//! because it stopped measuring" is visible in the committed JSON.
//!
//! Usage: `bench_pr9 [output.json]` (default `BENCH_PR9.json`). Set
//! `BENCH_QUICK=1` for the fast smoke configuration CI uses.

use std::fmt::Write as _;
use std::time::Instant;

use dkcore::seq::batagelj_zaversnik;
use dkcore::stream::EdgeBatch;
use dkcore_data::{churn_stream, ChurnWorkload};
use dkcore_graph::generators::gnp;
use dkcore_graph::Graph;
use dkcore_metrics::{Percentiles, Telemetry};
use dkcore_serve::{CoreService, ShardedConfig, ShardedCoreService};

/// Per-batch apply-wall percentiles for one run of `stream` through a
/// single-writer service carrying `tel`, plus the final coreness
/// (asserted against fresh BZ).
fn drive_single(g: &Graph, stream: &[EdgeBatch], tel: Telemetry) -> (Percentiles, Vec<u32>) {
    let mut svc = CoreService::with_telemetry(g, tel);
    let mut wall = Percentiles::new();
    for b in stream {
        let t = Instant::now();
        svc.apply_batch(b).expect("stream batches are valid");
        wall.record(t.elapsed().as_secs_f64() * 1e6);
    }
    let snap = svc.handle().snapshot();
    assert_eq!(
        snap.values(),
        batagelj_zaversnik(snap.graph()).as_slice(),
        "single-writer coreness diverged from fresh BZ"
    );
    (wall, snap.values().to_vec())
}

/// Same measurement through the sharded service.
fn drive_sharded(
    g: &Graph,
    stream: &[EdgeBatch],
    shards: usize,
    tel: Telemetry,
) -> (Percentiles, Vec<u32>) {
    let config = ShardedConfig {
        telemetry: tel,
        ..ShardedConfig::default()
    };
    let mut svc = ShardedCoreService::with_config(g, shards, config);
    let mut wall = Percentiles::new();
    for b in stream {
        let t = Instant::now();
        svc.apply_batch(b).expect("stream batches are valid");
        wall.record(t.elapsed().as_secs_f64() * 1e6);
    }
    let snap = svc.handle().snapshot();
    assert_eq!(
        snap.values(),
        batagelj_zaversnik(snap.graph()).as_slice(),
        "sharded coreness diverged from fresh BZ"
    );
    (wall, snap.values().to_vec())
}

struct Row {
    graph: String,
    nodes: usize,
    shards: usize, // 0 = single-writer
    epochs: usize,
    disabled: Percentiles,
    enabled: Percentiles,
    speedup: f64,
    overhead_pct: f64,
    events_recorded: u64,
    metric_series: usize,
}

fn measure(scale: usize, shards: usize, steps: usize, seed: u64) -> Row {
    let g = gnp(scale, 12.0 / scale as f64, seed);
    let stream = churn_stream(
        &g,
        ChurnWorkload::Mixed { insert_pct: 55 },
        steps,
        48,
        seed ^ 7,
    );
    // Interleaved best-of-3 (off, on, off, on, ...): a 2% floor is
    // well inside single-run scheduler jitter, and alternating the
    // variants keeps a load spike from landing entirely on one side.
    let drive = |tel: Telemetry| {
        if shards == 0 {
            drive_single(&g, &stream, tel)
        } else {
            drive_sharded(&g, &stream, shards, tel)
        }
    };
    let tel = Telemetry::new(4096);
    let (mut disabled, core_off) = drive(Telemetry::disabled());
    let (mut enabled, core_on) = drive(tel.clone());
    let events_recorded = tel.recorder().last_seq();
    let metric_series = tel.registry().snapshot().len();
    for _ in 0..2 {
        let (d2, _) = drive(Telemetry::disabled());
        let (e2, _) = drive(Telemetry::new(4096));
        if d2.p50() < disabled.p50() {
            disabled = d2;
        }
        if e2.p50() < enabled.p50() {
            enabled = e2;
        }
    }
    assert_eq!(core_off, core_on, "telemetry must not perturb results");
    assert!(events_recorded > 0, "enabled run recorded no events");
    assert!(metric_series > 0, "enabled run registered no metrics");
    let speedup = disabled.p50() / enabled.p50();
    let overhead_pct = (enabled.p50() / disabled.p50() - 1.0) * 100.0;
    let label = if shards == 0 {
        "publish".to_string()
    } else {
        format!("exchange x{shards}")
    };
    println!(
        "{label} gnp12/{scale}: off p50 {:>8.1}us | on p50 {:>8.1}us | ratio {speedup:.3} \
         | overhead {overhead_pct:+.2}% | {events_recorded} events, {metric_series} series",
        disabled.p50(),
        enabled.p50(),
    );
    Row {
        graph: if shards == 0 {
            format!("telemetry_publish_gnp12/{scale}")
        } else {
            format!("telemetry_exchange_gnp12/{scale}/shards{shards}")
        },
        nodes: scale,
        shards,
        epochs: stream.len(),
        disabled,
        enabled,
        speedup,
        overhead_pct,
        events_recorded,
        metric_series,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR9.json".into());
    let quick = std::env::var_os("BENCH_QUICK").is_some_and(|v| v != "0");
    let (scale, steps) = if quick {
        (4_000usize, 12usize)
    } else {
        (20_000, 32)
    };
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    println!("telemetry instrumentation overhead ({cores} cores)...");

    let rows = vec![
        measure(scale, 0, steps, 42),
        measure(scale, 2, steps, 43),
        measure(scale, 4, steps, 44),
    ];

    let mut json = String::from("{\n  \"bench\": \"BENCH_PR9\",\n");
    let _ = writeln!(json, "  \"quick_mode\": {quick},");
    let _ = writeln!(json, "  \"cores\": {cores},");
    json.push_str(
        "  \"metric\": \"per-batch apply wall time: telemetry disabled vs enabled on the \
         publish and sharded exchange paths\",\n",
    );
    json.push_str("  \"engines\": [\"core_service_telemetry\", \"sharded_service_telemetry\"],\n");
    json.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"graph\": \"{}\", \"nodes\": {}, \"shards\": {}, \"epochs\": {}, \
             \"apply_disabled_p50_us\": {:.1}, \"apply_disabled_p99_us\": {:.1}, \
             \"apply_enabled_p50_us\": {:.1}, \"apply_enabled_p99_us\": {:.1}, \
             \"overhead_pct\": {:.2}, \"events_recorded\": {}, \"metric_series\": {}, \
             \"speedup_telemetry_off\": {:.3}, \"identical_output\": true}}{}",
            row.graph,
            row.nodes,
            row.shards,
            row.epochs,
            row.disabled.p50(),
            row.disabled.p99(),
            row.enabled.p50(),
            row.enabled.p99(),
            row.overhead_pct,
            row.events_recorded,
            row.metric_series,
            row.speedup,
            if i + 1 == rows.len() { "" } else { "," },
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_PR9.json");
    println!("wrote {out_path}");

    // Acceptance floor: ≤2% overhead with telemetry enabled, hard only
    // in full mode on a real multi-core machine — quick mode's
    // sub-millisecond batches make a 2% band pure timer noise, and a
    // loaded 1–2 core box adds scheduler jitter of the same order.
    let hard = !quick && cores > 2;
    for row in &rows {
        if row.overhead_pct <= 2.0 {
            continue;
        }
        let msg = format!(
            "{}: telemetry overhead {:+.2}% above the 2% floor",
            row.graph, row.overhead_pct
        );
        assert!(!hard, "{msg}");
        println!("warning: {msg} (soft: quick={quick}, {cores} core(s))");
    }
}
