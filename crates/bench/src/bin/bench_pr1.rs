//! PR 1 acceptance benchmark: legacy synchronous engine vs the flat
//! [`ActiveSetEngine`](dkcore_sim::ActiveSetEngine), with correctness
//! cross-checks, emitting machine-readable `BENCH_PR1.json`.
//!
//! Usage: `bench_pr1 [output.json]` (default `BENCH_PR1.json`). Set
//! `BENCH_QUICK=1` for a fast smoke run (smaller graphs, fewer repetitions)
//! — the mode CI uses.

use std::fmt::Write as _;
use std::time::Instant;

use dkcore::seq::batagelj_zaversnik;
use dkcore_graph::generators::{barabasi_albert, gnp, worst_case};
use dkcore_graph::Graph;
use dkcore_sim::{ActiveSetConfig, ActiveSetEngine, NodeSim, NodeSimConfig, RunResult};

struct Row {
    graph: &'static str,
    nodes: usize,
    edges: usize,
    legacy_ms: f64,
    seq_ms: f64,
    par_ms: f64,
    identical: bool,
}

fn time_best_of<F: FnMut() -> RunResult>(reps: usize, mut f: F) -> (f64, RunResult) {
    let mut best = f64::INFINITY;
    let mut result = f();
    for _ in 0..reps {
        let start = Instant::now();
        result = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    (best, result)
}

fn measure(graph: &'static str, g: &Graph, reps: usize) -> Row {
    let truth = batagelj_zaversnik(g);
    let (legacy_ms, legacy) =
        time_best_of(reps, || NodeSim::new(g, NodeSimConfig::synchronous()).run());
    let (seq_ms, seq) = time_best_of(reps, || {
        ActiveSetEngine::new(g, ActiveSetConfig::sequential()).run()
    });
    let (par_ms, par) = time_best_of(reps, || {
        ActiveSetEngine::new(g, ActiveSetConfig::default()).run()
    });
    let identical = legacy.final_estimates == truth && seq == legacy && par == legacy;
    println!(
        "{graph:<22} legacy {legacy_ms:>9.2} ms | active-set seq {seq_ms:>9.2} ms ({:>5.2}x) \
         | par {par_ms:>9.2} ms ({:>5.2}x) | identical: {identical}",
        legacy_ms / seq_ms,
        legacy_ms / par_ms,
    );
    Row {
        graph,
        nodes: g.node_count(),
        edges: g.edge_count(),
        legacy_ms,
        seq_ms,
        par_ms,
        identical,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR1.json".into());
    let quick = std::env::var_os("BENCH_QUICK").is_some_and(|v| v != "0");
    let (scale, reps) = if quick {
        (10_000usize, 3usize)
    } else {
        (100_000, 3)
    };

    println!("building graphs (scale {scale})...");
    let rows = [
        measure("gnp_avg16", &gnp(scale, 16.0 / scale as f64, 42), reps),
        measure("gnp_avg4", &gnp(scale, 4.0 / scale as f64, 43), reps),
        measure("barabasi_albert_m8", &barabasi_albert(scale, 8, 44), reps),
        measure(
            "worst_case",
            &worst_case(if quick { 1_000 } else { 3_000 }),
            reps,
        ),
    ];

    let mut json = String::from("{\n  \"bench\": \"BENCH_PR1\",\n");
    let _ = writeln!(json, "  \"quick_mode\": {quick},");
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let _ = writeln!(json, "  \"cores\": {cores},");
    json.push_str("  \"engines\": [\"legacy_sync\", \"active_set_seq\", \"active_set_par\"],\n");
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"graph\": \"{}\", \"nodes\": {}, \"edges\": {}, \
             \"legacy_sync_ms\": {:.3}, \"active_set_seq_ms\": {:.3}, \
             \"active_set_par_ms\": {:.3}, \"speedup_seq\": {:.3}, \
             \"speedup_par\": {:.3}, \"identical_output\": {}}}",
            r.graph,
            r.nodes,
            r.edges,
            r.legacy_ms,
            r.seq_ms,
            r.par_ms,
            r.legacy_ms / r.seq_ms,
            r.legacy_ms / r.par_ms,
            r.identical,
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_PR1.json");
    println!("wrote {out_path}");

    assert!(
        rows.iter().all(|r| r.identical),
        "engines disagree — see table above"
    );
}
