//! PR 6 acceptance benchmark: **fault-tolerance overhead and recovery**
//! for the sharded serve stack, emitting machine-readable
//! `BENCH_PR6.json`.
//!
//! Three measurements:
//!
//! 1. **Zero-fault overhead** — the same churn stream driven through the
//!    plain sharded service (no replicas, no fault plan; the PR 5
//!    baseline path) and through the fault-tolerant configuration (two
//!    standbys per partition, fault session armed at 0% fault rates).
//!    `speedup_zero_fault` is the gated ratio `baseline_p50 / ft_p50`;
//!    the binary asserts the acceptance floor (≥0.95 full mode, i.e.
//!    <5% overhead; ≥0.85 quick, where batches are noise-dominated).
//! 2. **Failover recovery** — a scheduled primary kill mid-stream with a
//!    deliberately lagging standby: recovery must complete within the
//!    killing batch itself (`recovery_batches` = 1), replaying the log
//!    suffix; then replica exhaustion downs the partition, four batches
//!    defer, and one `revive_shard` call drains the whole backlog.
//! 3. **Degraded-mode reads** — snapshot + point-query throughput with
//!    all partitions live vs with one partition down (readers answer
//!    from the last consistent stitched epoch).
//!    `speedup_degraded_reads` is `degraded_qps / healthy_qps`.
//!
//! Every row pins stitched results to fresh Batagelj–Zaveršnik on the
//! union graph (`identical_output`).
//!
//! Usage: `bench_pr6 [output.json]` (default `BENCH_PR6.json`). Set
//! `BENCH_QUICK=1` for the fast smoke configuration CI uses.

use std::fmt::Write as _;
use std::time::Instant;

use dkcore::seq::batagelj_zaversnik;
use dkcore_data::{churn_stream, ChurnWorkload};
use dkcore_graph::generators::gnp;
use dkcore_graph::NodeId;
use dkcore_metrics::Percentiles;
use dkcore_serve::{FaultPlan, ShardedConfig, ShardedCoreService};

/// Wall-time percentiles (µs per batch) of one full run of `stream`
/// through a service configured by `config`, plus the ground-truth check.
fn drive(
    g: &dkcore_graph::Graph,
    stream: &[dkcore::stream::EdgeBatch],
    shards: usize,
    config: ShardedConfig,
) -> (Percentiles, bool) {
    let mut svc = ShardedCoreService::with_config(g, shards, config);
    let mut wall = Percentiles::new();
    for b in stream {
        let t = Instant::now();
        svc.apply_batch(b).expect("stream batches are valid");
        wall.record(t.elapsed().as_secs_f64() * 1e6);
    }
    let snap = svc.handle().snapshot();
    let identical = snap.values() == batagelj_zaversnik(snap.graph()).as_slice();
    (wall, identical)
}

struct ZeroFaultRow {
    graph: String,
    nodes: usize,
    shards: usize,
    epochs: usize,
    base: Percentiles,
    ft: Percentiles,
    speedup: f64,
    identical: bool,
}

fn measure_zero_fault(scale: usize, shards: usize, steps: usize, seed: u64) -> ZeroFaultRow {
    let g = gnp(scale, 12.0 / scale as f64, seed);
    let stream = churn_stream(
        &g,
        ChurnWorkload::Mixed { insert_pct: 55 },
        steps,
        32,
        seed ^ 7,
    );
    let (base, ok_base) = drive(&g, &stream, shards, ShardedConfig::default());
    let ft_config = ShardedConfig {
        replicas: 2,
        fault_plan: FaultPlan::parse("seed=1").expect("0%-fault plan parses"),
        ..ShardedConfig::default()
    };
    let (ft, ok_ft) = drive(&g, &stream, shards, ft_config);
    let speedup = base.p50() / ft.p50();
    println!(
        "zero-fault gnp12/{scale} x{shards}: baseline p50 {:>8.1}us | replicated p50 {:>8.1}us \
         | ratio {speedup:.3} | identical: {}",
        base.p50(),
        ft.p50(),
        ok_base && ok_ft,
    );
    ZeroFaultRow {
        graph: format!("zero_fault_gnp12/{scale}/shards{shards}"),
        nodes: scale,
        shards,
        epochs: stream.len(),
        base,
        ft,
        speedup,
        identical: ok_base && ok_ft,
    }
}

struct FailoverRow {
    graph: String,
    nodes: usize,
    kill_epoch: u64,
    recovery_batches: u64,
    replayed: u64,
    failover_us: f64,
    steady: Percentiles,
    revive_deferred: u64,
    revive_us: f64,
    identical: bool,
}

fn measure_failover(scale: usize, steps: usize, seed: u64) -> FailoverRow {
    let g = gnp(scale, 12.0 / scale as f64, seed);
    let stream = churn_stream(
        &g,
        ChurnWorkload::Mixed { insert_pct: 55 },
        steps,
        32,
        seed ^ 3,
    );
    let kill_epoch = steps as u64 / 2;
    let config = ShardedConfig {
        replicas: 1,
        replica_lag: 4, // standby trails, so promotion must replay a suffix
        fault_plan: FaultPlan::parse(&format!("seed=2,kill=0@{kill_epoch}"))
            .expect("kill plan parses"),
        ..ShardedConfig::default()
    };
    let mut svc = ShardedCoreService::with_config(&g, 4, config);
    let mut steady = Percentiles::new();
    let mut failover_us = 0.0;
    let mut replayed = 0u64;
    let mut recovery_batches = 0u64;
    for b in &stream {
        let before = svc.epoch();
        let t = Instant::now();
        let r = svc.apply_batch(b).expect("stream batches are valid");
        let wall = t.elapsed().as_secs_f64() * 1e6;
        if r.failovers > 0 {
            failover_us = wall;
            replayed = r.replayed;
            // Recovery is bounded by the killing batch itself: the epoch
            // still advances, so takeover cost one batch, not several.
            recovery_batches = r.epoch - before;
        } else {
            steady.record(wall);
        }
    }
    assert_eq!(recovery_batches, 1, "takeover must finish within its batch");

    // Replica exhausted: the next kill downs the partition. Four batches
    // defer, then one revive drains them all from the published snapshot.
    assert!(!svc.kill_primary(0), "standby already consumed");
    let revive_stream = churn_stream(
        &g,
        ChurnWorkload::Mixed { insert_pct: 55 },
        4,
        32,
        seed ^ 11,
    );
    for b in &revive_stream {
        let r = svc.apply_batch(b).expect("deferred batches still validate");
        assert!(r.deferred);
    }
    let deferred = svc.backlog() as u64;
    let t = Instant::now();
    let drained = svc.revive_shard(0);
    let revive_us = t.elapsed().as_secs_f64() * 1e6;
    assert_eq!(drained, deferred, "one revive drains the whole backlog");

    let snap = svc.handle().snapshot();
    let identical = snap.values() == batagelj_zaversnik(snap.graph()).as_slice();
    println!(
        "failover gnp12/{scale} x4: kill@{kill_epoch} recovered in {recovery_batches} batch \
         ({replayed} replayed, {failover_us:.1}us vs steady p50 {:.1}us) | revive drained \
         {drained} in {revive_us:.1}us | identical: {identical}",
        steady.p50(),
    );
    FailoverRow {
        graph: format!("failover_gnp12/{scale}/shards4"),
        nodes: scale,
        kill_epoch,
        recovery_batches,
        replayed,
        failover_us,
        steady,
        revive_deferred: deferred,
        revive_us,
        identical,
    }
}

struct ReadsRow {
    graph: String,
    nodes: usize,
    queries: usize,
    healthy_qps: f64,
    degraded_qps: f64,
    speedup: f64,
    identical: bool,
}

fn measure_degraded_reads(scale: usize, queries: usize, seed: u64) -> ReadsRow {
    let g = gnp(scale, 12.0 / scale as f64, seed);
    let stream = churn_stream(&g, ChurnWorkload::Mixed { insert_pct: 55 }, 6, 32, seed ^ 5);
    let mut svc = ShardedCoreService::with_config(&g, 2, ShardedConfig::default());
    for b in &stream[..4] {
        svc.apply_batch(b).expect("stream batches are valid");
    }
    let handle = svc.handle();
    let n = g.node_count() as u32;
    let qps = |label: &str| {
        let t = Instant::now();
        for i in 0..queries {
            let snap = handle.snapshot();
            std::hint::black_box(snap.coreness(NodeId(i as u32 % n)));
        }
        let rate = queries as f64 / t.elapsed().as_secs_f64();
        println!("reads gnp12/{scale} x2 [{label}]: {rate:>12.0} qps");
        rate
    };
    let healthy_qps = qps("healthy");
    assert!(!svc.kill_primary(0), "no standby: partition downs");
    for b in &stream[4..] {
        assert!(svc.apply_batch(b).expect("validates").deferred);
    }
    let degraded_qps = qps("degraded");
    let snap = handle.snapshot();
    let identical = snap.values() == batagelj_zaversnik(snap.graph()).as_slice();
    ReadsRow {
        graph: format!("degraded_reads_gnp12/{scale}/shards2"),
        nodes: scale,
        queries,
        healthy_qps,
        degraded_qps,
        speedup: degraded_qps / healthy_qps,
        identical,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR6.json".into());
    let quick = std::env::var_os("BENCH_QUICK").is_some_and(|v| v != "0");
    let (zf_scale, zf_steps, fo_scale, fo_steps, rd_scale, rd_queries) = if quick {
        (
            6_000usize,
            12usize,
            4_000usize,
            8usize,
            4_000usize,
            40_000usize,
        )
    } else {
        (40_000, 24, 20_000, 16, 20_000, 200_000)
    };
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    println!("fault-tolerance overhead and recovery ({cores} cores)...");

    let zf = measure_zero_fault(zf_scale, 4, zf_steps, 42);
    let fo = measure_failover(fo_scale, fo_steps, 77);
    let rd = measure_degraded_reads(rd_scale, rd_queries, 99);

    let mut json = String::from("{\n  \"bench\": \"BENCH_PR6\",\n");
    let _ = writeln!(json, "  \"quick_mode\": {quick},");
    let _ = writeln!(json, "  \"cores\": {cores},");
    json.push_str(
        "  \"metric\": \"fault-tolerance overhead at 0% faults, failover recovery bounds, \
         degraded-mode read throughput\",\n",
    );
    json.push_str("  \"engines\": [\"sharded_core_service_replicated\"],\n");
    json.push_str("  \"results\": [\n");
    let _ = writeln!(
        json,
        "    {{\"graph\": \"{}\", \"nodes\": {}, \"shards\": {}, \"epochs\": {}, \
         \"apply_base_p50_us\": {:.1}, \"apply_base_p99_us\": {:.1}, \
         \"apply_ft_p50_us\": {:.1}, \"apply_ft_p99_us\": {:.1}, \
         \"speedup_zero_fault\": {:.3}, \"identical_output\": {}}},",
        zf.graph,
        zf.nodes,
        zf.shards,
        zf.epochs,
        zf.base.p50(),
        zf.base.p99(),
        zf.ft.p50(),
        zf.ft.p99(),
        zf.speedup,
        zf.identical,
    );
    let _ = writeln!(
        json,
        "    {{\"graph\": \"{}\", \"nodes\": {}, \"kill_epoch\": {}, \
         \"recovery_batches\": {}, \"replayed_batches\": {}, \
         \"failover_apply_us\": {:.1}, \"steady_apply_p50_us\": {:.1}, \
         \"revive_deferred_batches\": {}, \"revive_us\": {:.1}, \
         \"identical_output\": {}}},",
        fo.graph,
        fo.nodes,
        fo.kill_epoch,
        fo.recovery_batches,
        fo.replayed,
        fo.failover_us,
        fo.steady.p50(),
        fo.revive_deferred,
        fo.revive_us,
        fo.identical,
    );
    let _ = writeln!(
        json,
        "    {{\"graph\": \"{}\", \"nodes\": {}, \"queries\": {}, \
         \"healthy_qps\": {:.0}, \"degraded_qps\": {:.0}, \
         \"speedup_degraded_reads\": {:.3}, \"identical_output\": {}}}",
        rd.graph, rd.nodes, rd.queries, rd.healthy_qps, rd.degraded_qps, rd.speedup, rd.identical,
    );
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_PR6.json");
    println!("wrote {out_path}");

    // Acceptance floors.
    assert!(
        zf.identical && fo.identical && rd.identical,
        "a stitched epoch diverged from union-graph ground truth"
    );
    let floor = if quick { 0.85 } else { 0.95 };
    assert!(
        zf.speedup >= floor,
        "zero-fault replication overhead: ratio {:.3} below the {floor} acceptance floor \
         (>{:.0}% overhead)",
        zf.speedup,
        (1.0 / floor - 1.0) * 100.0
    );
    assert!(
        rd.speedup >= 0.5,
        "degraded-mode reads collapsed: {:.3}x of healthy throughput",
        rd.speedup
    );
}
