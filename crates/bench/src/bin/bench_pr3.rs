//! PR 3 acceptance benchmark: **batched** streaming repair
//! ([`StreamCore::apply_batch`](dkcore::stream::StreamCore)) vs the
//! equivalent **sequential per-edge** repair loop
//! ([`DynamicCore`](dkcore::dynamic::DynamicCore)) over edge-churn
//! streams, plus warm-started vs cold distributed re-convergence, with
//! correctness cross-checks, emitting machine-readable `BENCH_PR3.json`.
//!
//! Each row replays the *same* churn stream (from
//! [`dkcore_data::churn_stream`]) through both maintenance engines and
//! reports whole-stream wall-clock; `speedup_batch` is the headline
//! batch-amortization ratio the CI gate tracks. Rows flagged for the
//! distributed path additionally re-converge every batch through the
//! `ActiveSetEngine`, warm-started from
//! [`warm_start_estimates_batch`](dkcore::stream::warm_start_estimates_batch),
//! against a cold start on the same graph; the round counts are exactly
//! deterministic, so `speedup_warm_rounds` is a machine-independent gate
//! metric.
//!
//! Usage: `bench_pr3 [output.json]` (default `BENCH_PR3.json`). Set
//! `BENCH_QUICK=1` for the fast smoke configuration CI uses.

use std::fmt::Write as _;
use std::time::Instant;

use dkcore::dynamic::DynamicCore;
use dkcore::seq::batagelj_zaversnik;
use dkcore::stream::{warm_start_estimates_batch, EdgeBatch, StreamCore};
use dkcore_data::{churn_stream, tiered_blocks, ChurnWorkload};
use dkcore_graph::generators::{barabasi_albert, gnp, worst_case};
use dkcore_graph::Graph;
use dkcore_sim::{ActiveSetConfig, ActiveSetEngine};

struct Row {
    graph: String,
    nodes: usize,
    edges: usize,
    batch: usize,
    batches: usize,
    mutations: usize,
    per_edge_ms: f64,
    batched_ms: f64,
    identical: bool,
}

/// A rounds-only row: the warm-vs-cold distributed re-convergence
/// comparison. Round counts are exactly deterministic (same graph, same
/// stream ⇒ same rounds on any machine), so this row carries no
/// wall-clock fields and always gates.
struct WarmRow {
    graph: String,
    nodes: usize,
    batch: usize,
    batches: usize,
    warm_rounds: u64,
    cold_rounds: u64,
    warm_messages: u64,
    cold_messages: u64,
}

/// Best-of-`reps` whole-stream replay time for a maintenance engine.
fn time_stream<E>(reps: usize, mut build: E, stream: &[EdgeBatch]) -> (f64, Vec<u32>)
where
    E: FnMut() -> Box<dyn FnMut(&EdgeBatch) -> Vec<u32>>,
{
    let mut best = f64::INFINITY;
    let mut finals = Vec::new();
    for _ in 0..reps.max(1) {
        let mut apply = build();
        let t = Instant::now();
        let mut last = Vec::new();
        for b in stream {
            last = apply(b);
        }
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        finals = last;
    }
    (best, finals)
}

fn measure(
    graph: &str,
    g: &Graph,
    workload: ChurnWorkload,
    batches: usize,
    batch: usize,
    seed: u64,
    reps: usize,
) -> Row {
    let stream = churn_stream(g, workload, batches, batch, seed);
    let mutations: usize = stream.iter().map(EdgeBatch::len).sum();

    // Batched: one StreamCore repair per batch.
    let (batched_ms, batched_final) = time_stream(
        reps,
        || {
            let mut sc = StreamCore::new(g);
            Box::new(move |b: &EdgeBatch| {
                sc.apply_batch(b).expect("stream batches are valid");
                sc.values().to_vec()
            })
        },
        &stream,
    );

    // Per-edge: the equivalent sequential repair loop.
    let (per_edge_ms, per_edge_final) = time_stream(
        reps,
        || {
            let mut dc = DynamicCore::new(g);
            Box::new(move |b: &EdgeBatch| {
                for &(u, v) in b.removals() {
                    dc.remove_edge(u, v).expect("removal valid");
                }
                for &(u, v) in b.insertions() {
                    dc.insert_edge(u, v).expect("insertion valid");
                }
                dc.values().to_vec()
            })
        },
        &stream,
    );

    // Ground truth on the final graph.
    let mut replay = StreamCore::new(g);
    for b in &stream {
        replay.apply_batch(b).expect("valid");
    }
    let truth = batagelj_zaversnik(&replay.to_graph());
    let identical = batched_final == truth && per_edge_final == truth;

    let speedup = per_edge_ms / batched_ms;
    println!(
        "{graph:<30} per-edge {per_edge_ms:>9.2} ms | batched {batched_ms:>8.2} ms \
         ({speedup:>6.2}x) | {mutations:>5} mutations | identical: {identical}"
    );

    Row {
        graph: graph.to_string(),
        nodes: g.node_count(),
        edges: g.edge_count(),
        batch,
        batches,
        mutations,
        per_edge_ms,
        batched_ms,
        identical,
    }
}

/// Per-batch distributed re-convergence: warm-started vs cold
/// `ActiveSetEngine` runs over the same churn stream, accumulating the
/// deterministic round and message counts.
fn measure_warm(
    graph: &str,
    g: &Graph,
    workload: ChurnWorkload,
    batches: usize,
    batch: usize,
    seed: u64,
) -> WarmRow {
    let stream = churn_stream(g, workload, batches, batch, seed);
    let mut sc = StreamCore::new(g);
    let cfg = ActiveSetConfig::default();
    let mut row = WarmRow {
        graph: graph.to_string(),
        nodes: g.node_count(),
        batch,
        batches,
        warm_rounds: 0,
        cold_rounds: 0,
        warm_messages: 0,
        cold_messages: 0,
    };
    for b in &stream {
        let old = sc.values().to_vec();
        sc.apply_batch(b).expect("stream batches are valid");
        let new_graph = sc.to_graph();
        let est = warm_start_estimates_batch(&old, &new_graph, b.insertions(), b.removals());
        let warm = ActiveSetEngine::with_estimates(&new_graph, cfg, &est).run();
        let cold = ActiveSetEngine::new(&new_graph, cfg).run();
        assert_eq!(warm.final_estimates, sc.values(), "warm re-convergence");
        assert_eq!(cold.final_estimates, sc.values(), "cold re-convergence");
        row.warm_rounds += u64::from(warm.rounds_executed);
        row.cold_rounds += u64::from(cold.rounds_executed);
        row.warm_messages += warm.total_messages;
        row.cold_messages += cold.total_messages;
    }
    println!(
        "{graph:<30} rounds warm {:>4} vs cold {:>4} ({:>5.2}x) | messages warm {} vs cold {}",
        row.warm_rounds,
        row.cold_rounds,
        row.cold_rounds as f64 / row.warm_rounds as f64,
        row.warm_messages,
        row.cold_messages,
    );
    row
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR3.json".into());
    let quick = std::env::var_os("BENCH_QUICK").is_some_and(|v| v != "0");
    let (scale, wc_scale, batch, batches, reps) = if quick {
        (10_000usize, 3_000usize, 128usize, 6usize, 4usize)
    } else {
        (100_000, 25_000, 512, 12, 2)
    };

    println!("building graphs (scale {scale})...");
    let gnp16 = gnp(scale, 16.0 / scale as f64, 42);
    let gnp4 = gnp(scale, 4.0 / scale as f64, 43);
    let ba8 = barabasi_albert(scale, 8, 44);
    let tiered = tiered_blocks(scale / 1_000, 1_000, 4, 45);
    let wc = worst_case(wc_scale);

    let sliding = ChurnWorkload::SlidingWindow { window: 4 * batch };
    let heavy = ChurnWorkload::InsertHeavy { remove_every: 8 };
    let rows = [
        measure(
            &format!("sliding_gnp16/{scale}"),
            &gnp16,
            sliding,
            batches,
            batch,
            1,
            reps,
        ),
        measure(
            &format!("sliding_gnp4/{scale}"),
            &gnp4,
            sliding,
            batches,
            batch,
            2,
            reps,
        ),
        measure(
            &format!("insert_heavy_ba8/{scale}"),
            &ba8,
            heavy,
            batches,
            batch,
            3,
            reps,
        ),
        measure(
            &format!("adversarial_worst_case/{wc_scale}"),
            &wc,
            ChurnWorkload::Adversarial,
            batches,
            batch / 4,
            4,
            reps + 1, // small absolute times: extra rep for stability
        ),
    ];
    // The warm-start showcase: hotspot churn confined to the sparse first
    // block of a coreness-heterogeneous overlay. The merged candidate
    // windows (≤ batch − 1) stay below the coreness gap between tiers, so
    // regions never leak out of the flaky block and the warm-started
    // protocol re-converges in a fraction of the cold rounds while the
    // stable dense tiers never reactivate.
    let warm_rows = [measure_warm(
        &format!("warm_tiered_hotspot/{scale}"),
        &tiered,
        ChurnWorkload::Hotspot {
            span: 1_000,
            remove_every: 0,
        },
        10,
        4,
        5,
    )];

    let mut json = String::from("{\n  \"bench\": \"BENCH_PR3\",\n");
    let _ = writeln!(json, "  \"quick_mode\": {quick},");
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let _ = writeln!(json, "  \"cores\": {cores},");
    json.push_str(
        "  \"metric\": \"whole-stream repair time; deterministic distributed round counts\",\n",
    );
    json.push_str(
        "  \"engines\": [\"per_edge_dynamic\", \"batched_stream\", \"warm_active_set\"],\n",
    );
    json.push_str("  \"results\": [\n");
    for r in rows.iter() {
        let _ = writeln!(
            json,
            "    {{\"graph\": \"{}\", \"nodes\": {}, \"edges\": {}, \"batch\": {}, \
             \"batches\": {}, \"mutations\": {}, \"per_edge_ms\": {:.3}, \
             \"batched_ms\": {:.3}, \"speedup_batch\": {:.3}, \"identical_output\": {}}},",
            r.graph,
            r.nodes,
            r.edges,
            r.batch,
            r.batches,
            r.mutations,
            r.per_edge_ms,
            r.batched_ms,
            r.per_edge_ms / r.batched_ms,
            r.identical,
        );
    }
    for (i, w) in warm_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"graph\": \"{}\", \"nodes\": {}, \"batch\": {}, \"batches\": {}, \
             \"warm_rounds\": {}, \"cold_rounds\": {}, \"warm_messages\": {}, \
             \"cold_messages\": {}, \"speedup_warm_rounds\": {:.3}, \
             \"speedup_warm_messages\": {:.3}, \"identical_output\": true}}",
            w.graph,
            w.nodes,
            w.batch,
            w.batches,
            w.warm_rounds,
            w.cold_rounds,
            w.warm_messages,
            w.cold_messages,
            w.cold_rounds as f64 / w.warm_rounds as f64,
            w.cold_messages as f64 / w.warm_messages as f64,
        );
        json.push_str(if i + 1 < warm_rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_PR3.json");
    println!("wrote {out_path}");

    assert!(
        rows.iter().all(|r| r.identical),
        "engines disagree — see table above"
    );
    // Warm starts must save both rounds and messages — deterministic
    // counts, so asserted in quick mode too.
    for w in &warm_rows {
        assert!(
            w.warm_rounds < w.cold_rounds,
            "{}: warm start should save rounds",
            w.graph
        );
        assert!(
            w.warm_messages < w.cold_messages,
            "{}: warm start should save messages",
            w.graph
        );
    }
    // Absolute speedup floors on the bulk-churn rows, so even the quick
    // CI smoke run fails deterministically on a catastrophic regression
    // (the bench_check ratio gate guards finer drift on top). Full-mode
    // margins observed at commit time: 20–56×; quick-mode: 8–15×.
    let floor = if quick { 3.0 } else { 5.0 };
    for r in &rows {
        if r.nodes >= 10_000 && r.batch >= 64 {
            assert!(
                r.per_edge_ms / r.batched_ms >= floor,
                "{}: batch speedup below the {floor}x floor",
                r.graph
            );
        }
    }
}
