//! PR 8 acceptance benchmark: **persistent pooled border exchange and
//! region-parallel descent**, emitting machine-readable
//! `BENCH_PR8.json`.
//!
//! Two measurements:
//!
//! 1. **Exchange-round throughput** — the same churn stream driven
//!    through the sharded service with [`ExchangeMode::Spawn`]
//!    (spawn-per-round scoped threads, the PR 5–7 behavior) and with
//!    [`ExchangeMode::Pooled`] (persistent parked workers), at shard
//!    counts {2, 4, 8}. `speedup_pooled_exchange` is the gated ratio
//!    `spawn_p50 / pooled_p50` of per-batch apply wall time; the binary
//!    asserts the ≥1.3× acceptance floor at ≥4 shards on multi-core
//!    machines and downgrades it to a soft warning on 1–2 cores, where
//!    both strategies oversubscribe the same way and the pool can only
//!    save thread spawn/join cost. The pooled rows also report the
//!    pool's own health counters (round p50, worker utilization).
//! 2. **Region-descent scaling** — the same precomputed batch sequence
//!    (a removal-heavy phase deleting every other edge in large chunks,
//!    then an insertion phase adding them all back) applied through a
//!    sequential `StreamCore` and one with `with_threads(threads)`.
//!    `speedup_descent_removal` / `speedup_descent_insert` are the
//!    per-phase p50 ratios; soft-floored the same way.
//!
//! Every row additionally asserts bit-identical coreness between the
//! compared engines and against fresh Batagelj–Zaveršnik
//! (`identical_output`) — the pool and the parallel descent are
//! execution strategies, never algorithm changes.
//!
//! Usage: `bench_pr8 [output.json]` (default `BENCH_PR8.json`). Set
//! `BENCH_QUICK=1` for the fast smoke configuration CI uses.

use std::fmt::Write as _;
use std::time::Instant;

use dkcore::seq::batagelj_zaversnik;
use dkcore::stream::{EdgeBatch, StreamCore};
use dkcore_data::{churn_stream, ChurnWorkload};
use dkcore_graph::generators::gnp;
use dkcore_graph::Graph;
use dkcore_metrics::Percentiles;
use dkcore_serve::{ExchangeHealth, ExchangeMode, ShardedConfig, ShardedCoreService};

/// Per-batch apply-wall percentiles of one full run of `stream`,
/// plus total exchange rounds, final coreness, and the pool's health
/// counters (when the pooled strategy ran).
fn drive_sharded(
    g: &Graph,
    stream: &[EdgeBatch],
    shards: usize,
    exchange: ExchangeMode,
) -> (Percentiles, u64, Vec<u32>, Option<ExchangeHealth>) {
    let config = ShardedConfig {
        exchange,
        ..ShardedConfig::default()
    };
    let mut svc = ShardedCoreService::with_config(g, shards, config);
    let mut wall = Percentiles::new();
    let mut rounds = 0u64;
    for b in stream {
        let t = Instant::now();
        let r = svc.apply_batch(b).expect("stream batches are valid");
        wall.record(t.elapsed().as_secs_f64() * 1e6);
        rounds += u64::from(r.rounds);
    }
    let handle = svc.handle();
    let snap = handle.snapshot();
    assert_eq!(
        snap.values(),
        batagelj_zaversnik(snap.graph()).as_slice(),
        "sharded coreness diverged from fresh BZ"
    );
    (
        wall,
        rounds,
        snap.values().to_vec(),
        handle.health().exchange,
    )
}

struct ExchangeRow {
    graph: String,
    nodes: usize,
    shards: usize,
    epochs: usize,
    rounds: u64,
    spawn: Percentiles,
    pooled: Percentiles,
    speedup: f64,
    pool_round_p50_us: u64,
    pool_busy_pct: u32,
}

fn measure_exchange(scale: usize, shards: usize, steps: usize, seed: u64) -> ExchangeRow {
    let g = gnp(scale, 12.0 / scale as f64, seed);
    let stream = churn_stream(
        &g,
        ChurnWorkload::Mixed { insert_pct: 55 },
        steps,
        32,
        seed ^ 7,
    );
    let (spawn, rounds_spawn, core_spawn, _) =
        drive_sharded(&g, &stream, shards, ExchangeMode::Spawn);
    let (pooled, rounds_pooled, core_pooled, health) =
        drive_sharded(&g, &stream, shards, ExchangeMode::Pooled);
    assert_eq!(core_spawn, core_pooled, "pooled vs spawn coreness");
    assert_eq!(rounds_spawn, rounds_pooled, "pooled vs spawn rounds");
    let health = health.expect("pooled run records exchange health");
    let speedup = spawn.p50() / pooled.p50();
    println!(
        "exchange gnp12/{scale} x{shards}: spawn p50 {:>8.1}us | pooled p50 {:>8.1}us \
         | ratio {speedup:.3} | {} rounds | pool round p50 {}us, util {}%",
        spawn.p50(),
        pooled.p50(),
        rounds_pooled,
        health.round_p50_us,
        health.worker_busy_pct,
    );
    ExchangeRow {
        graph: format!("exchange_gnp12/{scale}/shards{shards}"),
        nodes: scale,
        shards,
        epochs: stream.len(),
        rounds: rounds_pooled,
        spawn,
        pooled,
        speedup,
        pool_round_p50_us: health.round_p50_us,
        pool_busy_pct: health.worker_busy_pct,
    }
}

/// Removal-heavy phase batches (every other edge, `chunk` at a time)
/// and the mirror insertion batches that put them all back.
fn descent_batches(g: &Graph, chunk: usize) -> (Vec<EdgeBatch>, Vec<EdgeBatch>) {
    let doomed: Vec<_> = g.edges().step_by(2).collect();
    let mut removals = Vec::new();
    let mut inserts = Vec::new();
    for edges in doomed.chunks(chunk) {
        let mut rm = EdgeBatch::new();
        let mut ins = EdgeBatch::new();
        for &(u, v) in edges {
            rm.remove(u, v);
            ins.insert(u, v);
        }
        removals.push(rm);
        inserts.push(ins);
    }
    (removals, inserts)
}

struct DescentRow {
    graph: String,
    nodes: usize,
    threads: usize,
    batches: usize,
    seq_removal: Percentiles,
    par_removal: Percentiles,
    seq_insert: Percentiles,
    par_insert: Percentiles,
    speedup_removal: f64,
    speedup_insert: f64,
}

fn measure_descent(scale: usize, chunk: usize, threads: usize, seed: u64) -> DescentRow {
    let g = gnp(scale, 8.0 / scale as f64, seed);
    let (removals, inserts) = descent_batches(&g, chunk);
    let mut seq = StreamCore::new(&g);
    let mut par = StreamCore::new(&g).with_threads(threads);
    let mut phase = |batches: &[EdgeBatch]| {
        let (mut seq_wall, mut par_wall) = (Percentiles::new(), Percentiles::new());
        for b in batches {
            let t = Instant::now();
            seq.apply_batch(b).expect("precomputed batches are valid");
            seq_wall.record(t.elapsed().as_secs_f64() * 1e6);
            let t = Instant::now();
            par.apply_batch(b).expect("precomputed batches are valid");
            par_wall.record(t.elapsed().as_secs_f64() * 1e6);
            assert_eq!(seq.values(), par.values(), "descent coreness diverged");
        }
        (seq_wall, par_wall)
    };
    let (seq_removal, par_removal) = phase(&removals);
    let (seq_insert, par_insert) = phase(&inserts);
    assert_eq!(
        par.values(),
        batagelj_zaversnik(&par.to_graph()).as_slice(),
        "threaded StreamCore diverged from fresh BZ"
    );
    let speedup_removal = seq_removal.p50() / par_removal.p50();
    let speedup_insert = seq_insert.p50() / par_insert.p50();
    println!(
        "descent gnp8/{scale} t{threads}: removal seq p50 {:>8.1}us, par p50 {:>8.1}us, \
         ratio {speedup_removal:.3} | insert seq p50 {:>8.1}us, par p50 {:>8.1}us, \
         ratio {speedup_insert:.3}",
        seq_removal.p50(),
        par_removal.p50(),
        seq_insert.p50(),
        par_insert.p50(),
    );
    DescentRow {
        graph: format!("descent_gnp8/{scale}/threads{threads}"),
        nodes: scale,
        threads,
        batches: removals.len() + inserts.len(),
        seq_removal,
        par_removal,
        seq_insert,
        par_insert,
        speedup_removal,
        speedup_insert,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR8.json".into());
    let quick = std::env::var_os("BENCH_QUICK").is_some_and(|v| v != "0");
    let (ex_scale, ex_steps, de_scale, de_chunk) = if quick {
        (4_000usize, 10usize, 6_000usize, 512usize)
    } else {
        (20_000, 20, 30_000, 1_024)
    };
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    println!("pooled exchange and region-parallel descent ({cores} cores)...");

    let exchange: Vec<_> = [2usize, 4, 8]
        .iter()
        .map(|&s| measure_exchange(ex_scale, s, ex_steps, 42 + s as u64))
        .collect();
    let descent = measure_descent(de_scale, de_chunk, 4, 77);

    let mut json = String::from("{\n  \"bench\": \"BENCH_PR8\",\n");
    let _ = writeln!(json, "  \"quick_mode\": {quick},");
    let _ = writeln!(json, "  \"cores\": {cores},");
    json.push_str(
        "  \"metric\": \"per-batch apply wall time: pooled vs spawn-per-round border \
         exchange, region-parallel vs sequential descent\",\n",
    );
    json.push_str(
        "  \"engines\": [\"sharded_pooled_exchange\", \"stream_core_region_parallel\"],\n",
    );
    json.push_str("  \"results\": [\n");
    for row in &exchange {
        let _ = writeln!(
            json,
            "    {{\"graph\": \"{}\", \"nodes\": {}, \"shards\": {}, \"epochs\": {}, \
             \"exchange_rounds\": {}, \"apply_spawn_p50_us\": {:.1}, \
             \"apply_spawn_p99_us\": {:.1}, \"apply_pooled_p50_us\": {:.1}, \
             \"apply_pooled_p99_us\": {:.1}, \"pool_round_p50_us\": {}, \
             \"pool_worker_busy_pct\": {}, \"speedup_pooled_exchange\": {:.3}, \
             \"identical_output\": true}},",
            row.graph,
            row.nodes,
            row.shards,
            row.epochs,
            row.rounds,
            row.spawn.p50(),
            row.spawn.p99(),
            row.pooled.p50(),
            row.pooled.p99(),
            row.pool_round_p50_us,
            row.pool_busy_pct,
            row.speedup,
        );
    }
    let _ = writeln!(
        json,
        "    {{\"graph\": \"{}\", \"nodes\": {}, \"threads\": {}, \"batches\": {}, \
         \"removal_seq_p50_us\": {:.1}, \"removal_par_p50_us\": {:.1}, \
         \"insert_seq_p50_us\": {:.1}, \"insert_par_p50_us\": {:.1}, \
         \"speedup_descent_removal\": {:.3}, \"speedup_descent_insert\": {:.3}, \
         \"identical_output\": true}}",
        descent.graph,
        descent.nodes,
        descent.threads,
        descent.batches,
        descent.seq_removal.p50(),
        descent.par_removal.p50(),
        descent.seq_insert.p50(),
        descent.par_insert.p50(),
        descent.speedup_removal,
        descent.speedup_insert,
    );
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_PR8.json");
    println!("wrote {out_path}");

    // Acceptance floor: pooled exchange ≥1.3× spawn at ≥4 shards, hard
    // only in full mode on a real multi-core machine. On a 1–2 core box
    // the workers of both strategies serialize onto the same cores and
    // the pool can only save spawn/join overhead; in quick mode the
    // sub-ms rounds are noise-dominated. Both degrade the floor to a
    // soft warning (the committed 1-core baselines are oversubscription
    // floors, not targets — the regression gate's machine-scaling rule
    // handles the cross-machine comparison).
    let hard = !quick && cores > 2;
    for row in exchange.iter().filter(|r| r.shards >= 4) {
        if row.speedup >= 1.3 {
            continue;
        }
        let msg = format!(
            "pooled exchange at {} shards: {:.3}x below the 1.3x floor",
            row.shards, row.speedup
        );
        assert!(!hard, "{msg}");
        println!("warning: {msg} (soft: quick={quick}, {cores} core(s))");
    }
    for (label, speedup) in [
        ("removal", descent.speedup_removal),
        ("insert", descent.speedup_insert),
    ] {
        if speedup < 1.0 {
            let msg = format!("region-parallel {label} descent: {speedup:.3}x below sequential");
            assert!(!hard, "{msg}");
            println!("warning: {msg} (soft: quick={quick}, {cores} core(s))");
        }
    }
}
