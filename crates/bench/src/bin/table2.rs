//! Regenerates the paper's **Table 2**: which cores are still wrong at
//! round checkpoints on the slow-converging web graph (web-BerkStan in the
//! paper; the `berkstan-like` analog here).
//!
//! The paper's key observations, which this binary lets you verify:
//! the mid/high cores (their 55-core) start very wrong but complete well
//! before the 1-core, whose "deep pages very far away from the highest
//! cores" drag convergence out for hundreds of rounds.
//!
//! Run: `cargo run -p dkcore-bench --release --bin table2`

use dkcore::seq::batagelj_zaversnik;
use dkcore::termination::CentralizedDetector;
use dkcore_bench::{pct, HarnessArgs};
use dkcore_metrics::Table;
use dkcore_sim::{CoreCompletionObserver, NodeSim, NodeSimConfig};

fn main() {
    let args = HarnessArgs::from_env();
    let spec = dkcore_data::by_name("berkstan-like").expect("catalog entry");
    eprintln!("[table2] building {} ...", spec.name);
    let g = match args.scale {
        Some(n) => spec.build_scaled(n, args.seed),
        None => spec.build_default(args.seed),
    };
    let truth = batagelj_zaversnik(&g);

    // The paper's checkpoints are t = 25, 50, …, 300 on a 306-round run;
    // our analog is roughly half that depth, so finer early checkpoints
    // are added to resolve the dense-core settling phase.
    let mut checkpoints: Vec<u32> = vec![5, 10, 15, 20];
    checkpoints.extend((1..=12).map(|i| i * 25));
    let mut observer = CoreCompletionObserver::new(truth.clone(), checkpoints.clone());
    let mut detector = CentralizedDetector::new();
    let mut sim = NodeSim::new(&g, NodeSimConfig::random_order(args.seed));
    eprintln!(
        "[table2] running one-to-one on {} nodes ...",
        g.node_count()
    );
    let result = sim.run_with(&mut detector, &mut [&mut observer]);

    let mut headers: Vec<String> = vec!["k".into(), "#".into()];
    headers.extend(checkpoints.iter().map(|c| c.to_string()));
    let mut table = Table::new(headers);

    for k in 0..=observer.max_coreness() {
        let size = observer.shell_size(k);
        if size == 0 {
            continue;
        }
        // Only report cores that were ever wrong at a checkpoint (the
        // paper: "All other coreness are correctly computed at round 25").
        let ever_wrong =
            (0..checkpoints.len()).any(|c| observer.wrong_fraction(c, k).unwrap_or(0.0) > 0.0);
        if !ever_wrong {
            continue;
        }
        let mut row: Vec<String> = vec![k.to_string(), size.to_string()];
        for c in 0..checkpoints.len() {
            row.push(pct(observer.wrong_fraction(c, k).unwrap_or(0.0)));
        }
        table.row(row);
    }

    if args.csv {
        print!("{}", table.to_csv());
    } else {
        println!(
            "== Table 2 (berkstan-like analog, {} nodes, converged after {} rounds) ==",
            g.node_count(),
            result.rounds_executed
        );
        println!("cells: % of the k-shell still wrong at round t (empty = 0%)");
        print!("{table}");
        println!();
        println!(
            "paper (web-BerkStan): the 55-core was >50% wrong at t=25 but finished by \
             t=225; the 1-core finished last, after t=300."
        );
    }
}
