//! Regenerates the paper's **Table 1**: per-dataset graph statistics and
//! one-to-one protocol performance (execution time and messages per node)
//! over repeated random-order runs.
//!
//! Run: `cargo run -p dkcore-bench --release --bin table1 [-- --reps 50]`

use dkcore::CoreDecomposition;
use dkcore_bench::{f2, HarnessArgs};
use dkcore_graph::metrics::approx_diameter;
use dkcore_metrics::Table;
use dkcore_sim::experiment::run_node_experiment;
use dkcore_sim::NodeSimConfig;

fn main() {
    let args = HarnessArgs::from_env();
    let mut table = Table::new([
        "name", "|V|", "|E|", "diam", "d_max", "k_max", "k_avg", "t_avg", "t_min", "t_max",
        "m_avg", "m_max",
    ]);
    let mut reference = Table::new([
        "name", "|V|", "|E|", "diam", "d_max", "k_max", "k_avg", "t_avg", "t_min", "t_max",
        "m_avg", "m_max",
    ]);

    for spec in args.selected_datasets() {
        eprintln!("[table1] building {} ...", spec.name);
        let g = args.build(&spec);
        let decomp = CoreDecomposition::compute(&g);
        eprintln!(
            "[table1] running {} x{} reps on {} nodes ...",
            spec.name,
            args.reps,
            g.node_count()
        );
        let outcome = run_node_experiment(&g, NodeSimConfig::random_order(0), args.reps, args.seed);
        assert!(outcome.all_converged, "{} failed to converge", spec.name);

        table.row([
            spec.name.to_string(),
            g.node_count().to_string(),
            g.edge_count().to_string(),
            approx_diameter(&g, 4).to_string(),
            g.max_degree().to_string(),
            decomp.max_coreness().to_string(),
            f2(decomp.avg_coreness()),
            f2(outcome.execution_time.mean()),
            f2(outcome.execution_time.min()),
            f2(outcome.execution_time.max()),
            f2(outcome.avg_messages.mean()),
            f2(outcome.max_messages.mean()),
        ]);
        let p = spec.paper;
        reference.row([
            p_name(&spec),
            p.nodes.to_string(),
            p.edges.to_string(),
            p.diameter.to_string(),
            p.max_degree.to_string(),
            p.max_coreness.to_string(),
            f2(p.avg_coreness),
            f2(p.t_avg),
            p.t_min.to_string(),
            p.t_max.to_string(),
            f2(p.m_avg),
            f2(p.m_max),
        ]);
    }

    if args.csv {
        print!("{}", table.to_csv());
    } else {
        println!("== Table 1 (measured, analogs at harness scale) ==");
        print!("{table}");
        println!();
        println!("== Table 1 (paper, original SNAP graphs) ==");
        print!("{reference}");
    }
}

fn p_name(spec: &dkcore_data::DatasetSpec) -> String {
    spec.snap_name.to_string()
}
