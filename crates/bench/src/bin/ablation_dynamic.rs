//! Ablation of coreness maintenance under churn (experiment E10, an
//! extension beyond the paper): after each edge mutation, compare
//!
//! * **incremental repair** (`DynamicCore`): sequential candidate-region
//!   traversal — working-set size;
//! * **warm-started protocol**: the distributed protocol re-run from safe
//!   per-node estimates — rounds and messages to re-converge;
//! * **cold-started protocol**: the paper's from-scratch run.
//!
//! The live-system scenario of the paper's §1 (a P2P overlay inspecting
//! itself) implies churn; this measures how much cheaper staying
//! converged is than recomputing.
//!
//! Run: `cargo run -p dkcore-bench --release --bin ablation_dynamic`

use dkcore::dynamic::{warm_start_estimates, DynamicCore};
use dkcore::seq::batagelj_zaversnik;
use dkcore_bench::{f2, HarnessArgs};
use dkcore_graph::NodeId;
use dkcore_metrics::{Summary, Table};
use dkcore_sim::{NodeSim, NodeSimConfig};
use rand::prelude::*;
use rand::rngs::StdRng;

fn main() {
    let mut args = HarnessArgs::from_env();
    if args.scale.is_none() {
        args.scale = Some(10_000);
    }
    if args.datasets.is_empty() {
        args.datasets = [
            "astroph-like",
            "gnutella-like",
            "amazon-like",
            "wikitalk-like",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    let mutations = 30u32;
    let mut table = Table::new([
        "name",
        "repair nodes(avg)",
        "warm msgs(avg)",
        "warm rounds(avg)",
        "cold msgs(avg)",
        "cold rounds(avg)",
        "msg saving",
    ]);

    for spec in args.selected_datasets() {
        eprintln!("[ablation_dynamic] {} ...", spec.name);
        let g = args.build(&spec);
        let n = g.node_count() as u32;
        let mut dc = DynamicCore::new(&g);
        let mut rng = StdRng::seed_from_u64(args.seed);

        let mut repair = Summary::new();
        let mut warm_msgs = Summary::new();
        let mut warm_rounds = Summary::new();
        let mut cold_msgs = Summary::new();
        let mut cold_rounds = Summary::new();

        let mut done = 0;
        while done < mutations {
            let a = NodeId(rng.random_range(0..n));
            let b = NodeId(rng.random_range(0..n));
            if a == b {
                continue;
            }
            let old_core = dc.values().to_vec();
            let inserted = if dc.has_edge(a, b) {
                let stats = dc.remove_edge(a, b).expect("edge present");
                repair.record(stats.candidates as f64);
                None
            } else {
                let stats = dc.insert_edge(a, b).expect("edge absent");
                repair.record(stats.candidates as f64);
                Some((a, b))
            };
            done += 1;

            let new_graph = dc.to_graph();
            let est = warm_start_estimates(&old_core, &new_graph, inserted);
            let mut warm =
                NodeSim::with_estimates(&new_graph, NodeSimConfig::random_order(done as u64), &est);
            let warm_result = warm.run();
            assert_eq!(
                warm_result.final_estimates,
                batagelj_zaversnik(&new_graph),
                "{}: warm start diverged",
                spec.name
            );
            warm_msgs.record(warm_result.total_messages as f64);
            warm_rounds.record(warm_result.rounds_executed as f64);

            let cold = NodeSim::new(&new_graph, NodeSimConfig::random_order(done as u64)).run();
            cold_msgs.record(cold.total_messages as f64);
            cold_rounds.record(cold.rounds_executed as f64);
        }

        table.row([
            spec.name.to_string(),
            f2(repair.mean()),
            f2(warm_msgs.mean()),
            f2(warm_rounds.mean()),
            f2(cold_msgs.mean()),
            f2(cold_rounds.mean()),
            format!("{:.1}x", cold_msgs.mean() / warm_msgs.mean().max(1.0)),
        ]);
    }

    if args.csv {
        print!("{}", table.to_csv());
    } else {
        println!("== dynamic maintenance ablation ({mutations} random mutations per dataset) ==");
        print!("{table}");
        println!();
        println!(
            "incremental repair touches a tiny candidate region; the warm-started \
             distributed protocol re-converges with a fraction of a cold start's \
             messages (the initial confirmation broadcast dominates its cost)."
        );
    }
}
