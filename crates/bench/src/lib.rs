//! Shared plumbing for the benchmark binaries that regenerate the paper's
//! tables and figures.
//!
//! Each binary maps to one experiment of `DESIGN.md` §4:
//!
//! | binary | artifact |
//! |--------|----------|
//! | `table1` | Table 1 — dataset statistics + one-to-one rounds/messages |
//! | `table2` | Table 2 — per-core stragglers on the web graph analog |
//! | `figure4` | Figure 4 — average & maximum error vs. round |
//! | `figure5` | Figure 5 — one-to-many overhead vs. host count |
//! | `theory_bounds` | §4 bounds: worst case, chain, Theorems 4/5, Cor. 1/2 |
//! | `ablation_optimization` | §3.1.2 message-suppression optimization |
//! | `ablation_termination` | §3.3 termination detector comparison |
//! | `ablation_assignment` | §3.2.2 assignment-policy comparison |
//!
//! All binaries accept `--scale <nodes>` (override analog size), `--reps
//! <n>` (repetitions), `--seed <s>`, and `--datasets a,b,c` (filter by
//! analog or SNAP name); run with `--release` for sensible wall-clock
//! times.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod regression;

use dkcore_data::DatasetSpec;
use dkcore_graph::Graph;

/// Common command-line options for the bench binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessArgs {
    /// Override for the analog node count (`--scale`); `None` keeps each
    /// dataset's default.
    pub scale: Option<usize>,
    /// Number of repetitions (`--reps`); the paper used 50.
    pub reps: u32,
    /// Base RNG seed (`--seed`).
    pub seed: u64,
    /// Dataset filter (`--datasets`, comma-separated names); empty = all.
    pub datasets: Vec<String>,
    /// Emit CSV instead of aligned text (`--csv`).
    pub csv: bool,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            scale: None,
            reps: 10,
            seed: 42,
            datasets: Vec::new(),
            csv: false,
        }
    }
}

impl HarnessArgs {
    /// Parses `std::env::args`-style arguments (skipping the binary name).
    ///
    /// Unknown flags cause a panic with a usage message — these are
    /// internal experiment drivers, not user-facing CLIs.
    ///
    /// # Example
    ///
    /// ```
    /// use dkcore_bench::HarnessArgs;
    ///
    /// let args = HarnessArgs::parse(
    ///     ["--scale", "5000", "--reps", "3", "--datasets", "astroph-like"]
    ///         .iter()
    ///         .map(|s| s.to_string()),
    /// );
    /// assert_eq!(args.scale, Some(5000));
    /// assert_eq!(args.reps, 3);
    /// assert_eq!(args.datasets, vec!["astroph-like".to_string()]);
    /// ```
    pub fn parse<I: Iterator<Item = String>>(mut args: I) -> Self {
        let mut out = HarnessArgs::default();
        while let Some(flag) = args.next() {
            let mut value = |name: &str| {
                args.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match flag.as_str() {
                "--scale" => out.scale = Some(value("--scale").parse().expect("--scale: number")),
                "--reps" => out.reps = value("--reps").parse().expect("--reps: number"),
                "--seed" => out.seed = value("--seed").parse().expect("--seed: number"),
                "--datasets" => {
                    out.datasets = value("--datasets")
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .collect();
                }
                "--csv" => out.csv = true,
                other => panic!(
                    "unknown flag {other}; known: --scale N --reps N --seed N --datasets a,b --csv"
                ),
            }
        }
        out
    }

    /// Parses the real process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// The catalog filtered by `--datasets` (all nine when unfiltered).
    pub fn selected_datasets(&self) -> Vec<DatasetSpec> {
        dkcore_data::catalog()
            .into_iter()
            .filter(|s| {
                self.datasets.is_empty()
                    || self.datasets.iter().any(|d| {
                        s.name.eq_ignore_ascii_case(d) || s.snap_name.eq_ignore_ascii_case(d)
                    })
            })
            .collect()
    }

    /// Builds one dataset at the requested scale.
    pub fn build(&self, spec: &DatasetSpec) -> Graph {
        match self.scale {
            Some(n) => spec.build_scaled(n, self.seed),
            None => spec.build_default(self.seed),
        }
    }
}

/// Formats a float with two decimals (the paper's table style).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a percentage like the paper's Table 2 (`14.12%`, empty for 0).
pub fn pct(frac: f64) -> String {
    if frac <= 0.0 {
        String::new()
    } else {
        format!("{:.2}%", frac * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let args = HarnessArgs::parse(std::iter::empty());
        assert_eq!(args, HarnessArgs::default());
        assert_eq!(args.selected_datasets().len(), 9);
    }

    #[test]
    fn full_flag_set() {
        let args = HarnessArgs::parse(
            [
                "--scale",
                "1000",
                "--reps",
                "2",
                "--seed",
                "7",
                "--csv",
                "--datasets",
                "CA-AstroPh,roadnet-like",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert_eq!(args.scale, Some(1000));
        assert_eq!(args.reps, 2);
        assert_eq!(args.seed, 7);
        assert!(args.csv);
        assert_eq!(args.selected_datasets().len(), 2);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        let _ = HarnessArgs::parse(["--bogus".to_string()].into_iter());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(19.546), "19.55");
        assert_eq!(pct(0.1412), "14.12%");
        assert_eq!(pct(0.0), "");
    }

    #[test]
    fn build_respects_scale() {
        let args = HarnessArgs::parse(["--scale", "1500"].iter().map(|s| s.to_string()));
        let spec = dkcore_data::by_name("gnutella-like").unwrap();
        assert_eq!(args.build(&spec).node_count(), 1500);
    }
}
