//! Performance-regression gating over the `BENCH_PR*.json` artifacts.
//!
//! The engine-comparison binaries (`bench_pr1`, `bench_pr2`) emit one JSON
//! document each with a `results` array of per-graph rows containing
//! `speedup_*` ratios (new engine vs legacy). Absolute wall-clock numbers
//! are not portable across machines, but the *ratios* are: a fast engine
//! that is 4× the legacy engine on one box is close to 4× on another. The
//! CI `bench-smoke` job therefore regenerates the quick-mode JSONs and
//! runs [`compare`] against the committed baselines via the `bench_check`
//! binary, failing the build when any speedup ratio degrades by more than
//! a configurable threshold (default 20%).
//!
//! The parser below is a deliberately tiny extractor for exactly the flat
//! shape our own binaries emit (`"results": [{"key": value, ...}, ...]`,
//! no nested objects inside rows) — the workspace builds offline, so no
//! JSON dependency is available.

use std::collections::BTreeMap;

/// One row of a benchmark document: the graph label plus every numeric
/// field (including the `speedup_*` ratios the gate compares).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// The row's `graph` label (unique within one document).
    pub graph: String,
    /// Numeric fields by key, in key order.
    pub numbers: BTreeMap<String, f64>,
}

/// Minimum wall-clock (ms) any timed field of a row must reach, in both
/// documents, for its ratios to gate the build: sub-millisecond
/// measurements are noise-dominated across machines, so their rows are
/// reported but never fail the check.
pub const MIN_GATED_MS: f64 = 1.0;

/// Metrics whose value depends on how many cores the machine has (the
/// reader-scaling ratios of `bench_pr4`, the pooled-exchange and
/// region-descent ratios of `bench_pr8`: on a 1-core container they
/// measure oversubscription overhead, on a 16-core box real
/// scalability). These gate only when the baseline and the fresh run
/// were measured on comparable machines — see [`cores_differ_materially`].
pub const SCALING_METRIC_PREFIXES: &[&str] =
    &["speedup_readers", "speedup_pooled", "speedup_descent"];

/// Core-count ratio beyond which two machines stop being comparable for
/// [scaling metrics](SCALING_METRIC_PREFIXES).
pub const CORES_MATERIAL_RATIO: f64 = 1.5;

/// A parsed benchmark document: the `results` rows plus the recorded
/// machine core count (every bench binary writes a top-level `"cores"`
/// field; older committed baselines may lack it).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDoc {
    /// Top-level `"cores"` field, when present.
    pub cores: Option<f64>,
    /// The `results` rows.
    pub rows: Vec<BenchRow>,
}

/// Whether two recorded core counts differ enough that machine-scaling
/// ratios measured on them are not comparable. Unknown core counts (an
/// old baseline without the field) are treated as not comparable — a
/// scaling ratio should never fail the build on unverifiable grounds.
pub fn cores_differ_materially(a: Option<f64>, b: Option<f64>) -> bool {
    match (a, b) {
        (Some(a), Some(b)) if a > 0.0 && b > 0.0 => a.max(b) / a.min(b) >= CORES_MATERIAL_RATIO,
        _ => true,
    }
}

/// Outcome of one baseline-vs-fresh ratio comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Row label (`graph`).
    pub graph: String,
    /// The compared metric (a `speedup_*` key).
    pub metric: String,
    /// Baseline ratio.
    pub baseline: f64,
    /// Freshly measured ratio.
    pub fresh: f64,
    /// `fresh / baseline - 1`, negative when the fresh run is slower.
    pub delta: f64,
    /// Whether the degradation exceeds the threshold.
    pub regressed: bool,
    /// The row contains a timing below [`MIN_GATED_MS`]: too fast to
    /// measure reliably, so it can never regress the build.
    pub too_fast: bool,
    /// `Some(note)` when the metric is machine-scaling
    /// ([`SCALING_METRIC_PREFIXES`]) and the baseline was recorded on a
    /// materially different core count: reported as a soft warning,
    /// never gated. The note names the offending baseline document and
    /// both core counts so the table is actionable without re-opening
    /// the JSON files.
    pub machine_mismatch: Option<String>,
}

/// Extracts the `results` rows from a benchmark JSON document.
///
/// # Errors
///
/// Returns a message when the document has no parsable `results` array or
/// a row lacks a `graph` label.
pub fn parse_results(json: &str) -> Result<Vec<BenchRow>, String> {
    Ok(parse_document(json)?.rows)
}

/// Parses a whole benchmark document: document-level metadata (the
/// recorded `"cores"`) plus the `results` rows.
///
/// # Errors
///
/// Returns a message when the document has no parsable `results` array
/// or a row lacks a `graph` label.
pub fn parse_document(json: &str) -> Result<BenchDoc, String> {
    let start = json
        .find("\"results\"")
        .ok_or_else(|| "no \"results\" key in document".to_string())?;
    // Document-level numeric fields live before the results array.
    let cores = parse_meta_number(&json[..start], "cores");
    let body = &json[start..];
    let open = body
        .find('[')
        .ok_or_else(|| "no array after \"results\"".to_string())?;
    let close = body
        .find(']')
        .ok_or_else(|| "unterminated results array".to_string())?;
    let array = &body[open + 1..close];
    let mut rows = Vec::new();
    let mut rest = array;
    while let Some(obj_start) = rest.find('{') {
        let obj_end = rest[obj_start..]
            .find('}')
            .ok_or_else(|| "unterminated result object".to_string())?
            + obj_start;
        rows.push(parse_row(&rest[obj_start + 1..obj_end])?);
        rest = &rest[obj_end + 1..];
    }
    if rows.is_empty() {
        return Err("empty results array".to_string());
    }
    Ok(BenchDoc { cores, rows })
}

/// Extracts one document-level numeric field (`"key": 123`) from the
/// text before the results array.
fn parse_meta_number(head: &str, key: &str) -> Option<f64> {
    let quoted = format!("\"{key}\"");
    let at = head.find(&quoted)?;
    let after = &head[at + quoted.len()..];
    let value = after[after.find(':')? + 1..].trim_start();
    let end = value.find([',', '}', '\n']).unwrap_or(value.len());
    value[..end].trim().parse().ok()
}

/// Parses one flat `"key": value, ...` row body.
fn parse_row(body: &str) -> Result<BenchRow, String> {
    let mut graph = None;
    let mut numbers = BTreeMap::new();
    let mut rest = body;
    while let Some(q0) = rest.find('"') {
        let after_key = &rest[q0 + 1..];
        let q1 = after_key
            .find('"')
            .ok_or_else(|| "unterminated key".to_string())?;
        let key = &after_key[..q1];
        let after = &after_key[q1 + 1..];
        let colon = after
            .find(':')
            .ok_or_else(|| format!("no value for key {key:?}"))?;
        let value = after[colon + 1..].trim_start();
        if let Some(v) = value.strip_prefix('"') {
            let end = v
                .find('"')
                .ok_or_else(|| "unterminated string value".to_string())?;
            if key == "graph" {
                graph = Some(v[..end].to_string());
            }
            rest = &v[end + 1..];
        } else {
            let end = value
                .find([',', '}'])
                .unwrap_or(value.len())
                .min(value.len());
            let token = value[..end].trim();
            if let Ok(num) = token.parse::<f64>() {
                numbers.insert(key.to_string(), num);
            }
            // Booleans and anything else are ignored: the gate compares
            // ratios only.
            rest = &value[end..];
        }
    }
    Ok(BenchRow {
        graph: graph.ok_or_else(|| "row without a graph label".to_string())?,
        numbers,
    })
}

/// Compares every `speedup_*` ratio present in both documents, flagging
/// rows where the fresh ratio fell more than `threshold` (fractional,
/// e.g. `0.2` = 20%) below the baseline.
///
/// # Errors
///
/// Returns a message when the documents share no comparable ratios — a
/// silent pass on disjoint files would defeat the gate.
pub fn compare(
    baseline: &[BenchRow],
    fresh: &[BenchRow],
    threshold: f64,
) -> Result<Vec<Comparison>, String> {
    let mut out = Vec::new();
    for base_row in baseline {
        let Some(fresh_row) = fresh.iter().find(|r| r.graph == base_row.graph) else {
            return Err(format!(
                "graph {:?} present in baseline but missing from fresh results",
                base_row.graph
            ));
        };
        // A row whose fastest engine runs under MIN_GATED_MS (on either
        // machine) has noise-dominated ratios.
        let too_fast = [base_row, fresh_row].iter().any(|row| {
            row.numbers
                .iter()
                .any(|(k, &v)| k.ends_with("_ms") && !k.contains("build") && v < MIN_GATED_MS)
        });
        for (metric, &base_value) in &base_row.numbers {
            if !metric.starts_with("speedup") {
                continue;
            }
            let Some(&fresh_value) = fresh_row.numbers.get(metric) else {
                return Err(format!(
                    "metric {metric:?} of graph {:?} missing from fresh results",
                    base_row.graph
                ));
            };
            let delta = if base_value > 0.0 {
                fresh_value / base_value - 1.0
            } else {
                0.0
            };
            out.push(Comparison {
                graph: base_row.graph.clone(),
                metric: metric.clone(),
                baseline: base_value,
                fresh: fresh_value,
                delta,
                regressed: !too_fast && delta < -threshold,
                too_fast,
                machine_mismatch: None,
            });
        }
    }
    if out.is_empty() {
        return Err("no speedup ratios to compare".to_string());
    }
    Ok(out)
}

/// [`compare`], plus the machine-scaling rule: metrics named with the
/// [`SCALING_METRIC_PREFIXES`] gate only when the two documents were
/// recorded on comparable core counts ([`cores_differ_materially`]);
/// otherwise they are downgraded to soft warnings naming
/// `baseline_name` and both core counts. This keeps a
/// 1-core-container baseline (an oversubscription floor, as the PR 4
/// ROADMAP note records) from failing runs on real multi-core machines
/// — and vice versa.
///
/// # Errors
///
/// Propagates [`compare`]'s errors.
pub fn compare_docs(
    baseline: &BenchDoc,
    baseline_name: &str,
    fresh: &BenchDoc,
    threshold: f64,
) -> Result<Vec<Comparison>, String> {
    let mut out = compare(&baseline.rows, &fresh.rows, threshold)?;
    if cores_differ_materially(baseline.cores, fresh.cores) {
        let describe =
            |c: Option<f64>| c.map_or_else(|| "unrecorded".to_string(), |v| format!("{v:.0}"));
        let note = format!(
            "baseline {baseline_name} has cores {}, this machine has cores {}",
            describe(baseline.cores),
            describe(fresh.cores)
        );
        for c in &mut out {
            if SCALING_METRIC_PREFIXES
                .iter()
                .any(|p| c.metric.starts_with(p))
            {
                c.machine_mismatch = Some(note.clone());
                c.regressed = false;
            }
        }
    }
    Ok(out)
}

/// Renders the per-benchmark comparison table printed by `bench_check`.
pub fn render_table(label: &str, comparisons: &[Comparison], threshold: f64) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{label}: speedup ratios, fail below -{:.0}%",
        threshold * 100.0
    );
    let _ = writeln!(
        s,
        "  {:<28} {:<14} {:>9} {:>9} {:>8}  status",
        "graph", "metric", "baseline", "fresh", "delta"
    );
    for c in comparisons {
        let status = if c.regressed {
            "REGRESSED".to_string()
        } else if let Some(note) = &c.machine_mismatch {
            format!("warn (core counts differ: {note}; scaling not gated)")
        } else if c.too_fast {
            "ok (sub-ms, not gated)".to_string()
        } else {
            "ok".to_string()
        };
        let _ = writeln!(
            s,
            "  {:<28} {:<14} {:>8.2}x {:>8.2}x {:>+7.1}%  {status}",
            c.graph,
            c.metric,
            c.baseline,
            c.fresh,
            c.delta * 100.0,
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
  "bench": "BENCH_TEST",
  "quick_mode": true,
  "engines": ["legacy", "fast"],
  "results": [
    {"graph": "gnp_16", "nodes": 1000, "legacy_ms": 10.0, "speedup_seq": 4.000, "speedup_par": 6.500, "identical_output": true},
    {"graph": "worst_case", "nodes": 500, "legacy_ms": 8.0, "speedup_seq": 100.125, "speedup_par": 90.0, "identical_output": true}
  ]
}
"#;

    #[test]
    fn parses_rows_and_numbers() {
        let rows = parse_results(DOC).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].graph, "gnp_16");
        assert_eq!(rows[0].numbers["speedup_par"], 6.5);
        assert_eq!(rows[1].numbers["speedup_seq"], 100.125);
        // Booleans are not numbers.
        assert!(!rows[0].numbers.contains_key("identical_output"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_results("{}").is_err());
        assert!(parse_results("{\"results\": []}").is_err());
        assert!(parse_results("no json at all").is_err());
    }

    #[test]
    fn compare_passes_within_threshold() {
        let base = parse_results(DOC).unwrap();
        let mut fresh = base.clone();
        // 10% slower everywhere: within the default 20% budget.
        for row in &mut fresh {
            for v in row.numbers.values_mut() {
                *v *= 0.9;
            }
        }
        let cmp = compare(&base, &fresh, 0.2).unwrap();
        assert_eq!(cmp.len(), 4);
        assert!(cmp.iter().all(|c| !c.regressed));
    }

    #[test]
    fn compare_flags_regressions() {
        let base = parse_results(DOC).unwrap();
        let mut fresh = base.clone();
        *fresh[1].numbers.get_mut("speedup_seq").unwrap() = 50.0; // -50%
        let cmp = compare(&base, &fresh, 0.2).unwrap();
        let bad: Vec<_> = cmp.iter().filter(|c| c.regressed).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].graph, "worst_case");
        assert_eq!(bad[0].metric, "speedup_seq");
        assert!(bad[0].delta < -0.2);
    }

    #[test]
    fn compare_faster_is_never_a_regression() {
        let base = parse_results(DOC).unwrap();
        let mut fresh = base.clone();
        for row in &mut fresh {
            for v in row.numbers.values_mut() {
                *v *= 3.0;
            }
        }
        let cmp = compare(&base, &fresh, 0.2).unwrap();
        assert!(cmp.iter().all(|c| !c.regressed && c.delta > 0.0));
    }

    #[test]
    fn compare_rejects_disjoint_documents() {
        let base = parse_results(DOC).unwrap();
        let fresh = vec![BenchRow {
            graph: "other".into(),
            numbers: BTreeMap::new(),
        }];
        assert!(compare(&base, &fresh, 0.2).is_err());
        // Same graphs but no speedup metrics at all: also an error.
        let stripped: Vec<BenchRow> = base
            .iter()
            .map(|r| BenchRow {
                graph: r.graph.clone(),
                numbers: BTreeMap::new(),
            })
            .collect();
        assert!(compare(&stripped, &stripped, 0.2).is_err());
    }

    #[test]
    fn sub_millisecond_rows_never_gate() {
        let doc = DOC.replace(
            "\"legacy_ms\": 8.0",
            "\"legacy_ms\": 8.0, \"fast_ms\": 0.08",
        );
        let base = parse_results(&doc).unwrap();
        let mut fresh = base.clone();
        // A 60% ratio drop on the sub-millisecond row: reported, not gated.
        *fresh[1].numbers.get_mut("speedup_seq").unwrap() = 40.0;
        let cmp = compare(&base, &fresh, 0.2).unwrap();
        assert!(cmp.iter().all(|c| !c.regressed));
        assert!(cmp.iter().any(|c| c.too_fast));
        // The well-measured row still gates.
        let mut fresh = base.clone();
        *fresh[0].numbers.get_mut("speedup_par").unwrap() = 1.0;
        let cmp = compare(&base, &fresh, 0.2).unwrap();
        assert!(cmp.iter().any(|c| c.regressed));
    }

    const SCALING_DOC: &str = r#"{
  "bench": "BENCH_SCALE",
  "quick_mode": true,
  "cores": 1,
  "engines": ["svc"],
  "results": [
    {"graph": "serve/readers1", "elapsed_ms": 900.0, "qps": 100.0, "speedup_readers": 1.000},
    {"graph": "serve/readers8", "elapsed_ms": 900.0, "qps": 170.0, "speedup_readers": 1.700, "speedup_publish": 6.0}
  ]
}
"#;

    #[test]
    fn parse_document_reads_cores() {
        let doc = parse_document(SCALING_DOC).unwrap();
        assert_eq!(doc.cores, Some(1.0));
        assert_eq!(doc.rows.len(), 2);
        // A document without the field parses with cores = None.
        let old = parse_document(DOC).unwrap();
        assert_eq!(old.cores, None);
        assert_eq!(old.rows.len(), 2);
        // A "cores" key inside a *row* is not document metadata.
        let row_only = DOC.replace("\"nodes\": 1000", "\"cores\": 64, \"nodes\": 1000");
        assert_eq!(parse_document(&row_only).unwrap().cores, None);
    }

    #[test]
    fn core_material_difference_rule() {
        assert!(!cores_differ_materially(Some(8.0), Some(8.0)));
        assert!(!cores_differ_materially(Some(8.0), Some(6.0)));
        assert!(cores_differ_materially(Some(1.0), Some(8.0)));
        assert!(cores_differ_materially(Some(1.0), Some(2.0)));
        // Unknown on either side: never comparable, never gated.
        assert!(cores_differ_materially(None, Some(8.0)));
        assert!(cores_differ_materially(Some(8.0), None));
        assert!(cores_differ_materially(None, None));
    }

    #[test]
    fn scaling_metrics_soft_warn_across_core_counts() {
        // Baseline from a 1-core container, fresh run on an 8-core box
        // whose reader-scaling ratio *dropped* hard: the scaling metric
        // must warn instead of failing, while ordinary speedups on the
        // same rows still gate.
        let base = parse_document(SCALING_DOC).unwrap();
        let fresh_json = SCALING_DOC.replace("\"cores\": 1", "\"cores\": 8");
        let mut fresh = parse_document(&fresh_json).unwrap();
        *fresh.rows[1].numbers.get_mut("speedup_readers").unwrap() = 0.6; // -65%
        *fresh.rows[1].numbers.get_mut("speedup_publish").unwrap() = 2.0; // -67%
        let cmp = compare_docs(&base, "BENCH_SCALE.quick.json", &fresh, 0.2).unwrap();
        let readers = cmp
            .iter()
            .find(|c| c.graph == "serve/readers8" && c.metric == "speedup_readers")
            .unwrap();
        assert!(readers.machine_mismatch.is_some());
        assert!(
            !readers.regressed,
            "scaling row must not gate across machines"
        );
        let publish = cmp.iter().find(|c| c.metric == "speedup_publish").unwrap();
        assert!(
            publish.machine_mismatch.is_none(),
            "ordinary ratios still gate"
        );
        assert!(publish.regressed);
        // The rendered warning names the offending baseline document and
        // both core counts, so the table is actionable on its own.
        let table = render_table("BENCH_SCALE", &cmp, 0.2);
        assert!(table.contains("core counts differ"), "{table}");
        assert!(
            table.contains("baseline BENCH_SCALE.quick.json has cores 1, this machine has cores 8"),
            "{table}"
        );
    }

    #[test]
    fn mismatch_note_spells_out_an_unrecorded_baseline() {
        // An old baseline without the "cores" field: the warning must say
        // so rather than imply a numeric mismatch.
        let base = parse_document(DOC).unwrap();
        let fresh_rows = parse_document(DOC).unwrap().rows;
        let mut fresh = BenchDoc {
            cores: Some(8.0),
            rows: fresh_rows,
        };
        fresh.rows[0]
            .numbers
            .insert("speedup_readers".to_string(), 1.0);
        let mut base = base;
        base.rows[0]
            .numbers
            .insert("speedup_readers".to_string(), 2.0);
        let cmp = compare_docs(&base, "old_baseline.json", &fresh, 0.2).unwrap();
        let readers = cmp.iter().find(|c| c.metric == "speedup_readers").unwrap();
        let note = readers.machine_mismatch.as_deref().unwrap();
        assert!(
            note.contains("old_baseline.json has cores unrecorded"),
            "{note}"
        );
        assert!(note.contains("this machine has cores 8"), "{note}");
    }

    #[test]
    fn scaling_metrics_still_gate_on_comparable_machines() {
        let base = parse_document(SCALING_DOC).unwrap();
        let mut fresh = parse_document(SCALING_DOC).unwrap();
        *fresh.rows[1].numbers.get_mut("speedup_readers").unwrap() = 0.6;
        let cmp = compare_docs(&base, "BENCH_SCALE.quick.json", &fresh, 0.2).unwrap();
        let readers = cmp
            .iter()
            .find(|c| c.metric == "speedup_readers" && c.graph == "serve/readers8")
            .unwrap();
        assert!(readers.machine_mismatch.is_none());
        assert!(readers.regressed, "same core count: the ratio gates");
    }

    #[test]
    fn table_renders_all_rows() {
        let base = parse_results(DOC).unwrap();
        let cmp = compare(&base, &base, 0.2).unwrap();
        let table = render_table("BENCH_TEST", &cmp, 0.2);
        assert!(table.contains("gnp_16"));
        assert!(table.contains("worst_case"));
        assert!(table.contains("ok"));
        assert!(!table.contains("REGRESSED"));
    }
}
