//! Benchmarks of the one-to-many internal emulation (Algorithm 4): the
//! worklist implementation versus the paper's literal sweep loop, and the
//! end-to-end effect of emulation mode on a full host-simulation run.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dkcore::one_to_many::{AssignmentPolicy, EmulationMode};
use dkcore_graph::generators::planted_partition;
use dkcore_sim::{HostSim, HostSimConfig};

fn bench_emulation_modes(c: &mut Criterion) {
    // Community graph + block assignment = heavy intra-host cascades,
    // exactly what improveEstimate exists for.
    let g = planted_partition(4_000, 40, 0.25, 0.0005, 3);
    let mut group = c.benchmark_group("one_to_many_full_run");
    group.sample_size(10);
    for (name, emulation) in [
        ("worklist", EmulationMode::Worklist),
        ("sweep", EmulationMode::Sweep),
        ("per_round", EmulationMode::PerRound),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| {
                let mut config = HostSimConfig::synchronous(8);
                config.assignment = AssignmentPolicy::Block;
                config.protocol.emulation = emulation;
                HostSim::new(black_box(g), config).run()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_emulation_modes);
criterion_main!(benches);
