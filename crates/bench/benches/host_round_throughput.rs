//! Benchmarks of the one-to-many (host) engines: the legacy sequential
//! [`HostSim`] versus the flat [`ActiveSetHostEngine`] fast path — the
//! PR 2 acceptance comparison, also emitted as `BENCH_PR2.json` by the
//! `bench_pr2` binary — across host counts and both dissemination
//! policies.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dkcore::one_to_many::DisseminationPolicy;
use dkcore_graph::generators::{barabasi_albert, gnp};
use dkcore_sim::{ActiveSetHostConfig, ActiveSetHostEngine, HostSim, HostSimConfig};

fn bench_host_engines(c: &mut Criterion) {
    let quick = std::env::var_os("BENCH_QUICK").is_some_and(|v| v != "0");
    let scale = if quick { 10_000 } else { 100_000 };
    let mut group = c.benchmark_group("host_engine_comparison");
    group.sample_size(10);
    let workloads: Vec<(String, dkcore_graph::Graph)> = vec![
        (
            format!("gnp_avg16/{scale}"),
            gnp(scale, 16.0 / scale as f64, 42),
        ),
        (format!("ba_m8/{scale}"), barabasi_albert(scale, 8, 44)),
    ];
    for (name, g) in &workloads {
        for hosts in [64usize, 256] {
            for (policy_name, policy) in [
                ("p2p", DisseminationPolicy::PointToPoint),
                ("bcast", DisseminationPolicy::Broadcast),
            ] {
                let id = format!("{name}/h{hosts}/{policy_name}");
                group.bench_with_input(BenchmarkId::new("legacy", &id), g, |b, g| {
                    b.iter(|| {
                        let mut config = HostSimConfig::synchronous(hosts);
                        config.protocol.policy = policy;
                        HostSim::new(black_box(g), config).run()
                    })
                });
                group.bench_with_input(BenchmarkId::new("active_set_host_seq", &id), g, |b, g| {
                    b.iter(|| {
                        let mut config = ActiveSetHostConfig::sequential(hosts);
                        config.protocol.policy = policy;
                        ActiveSetHostEngine::new(black_box(g), config).run()
                    })
                });
                group.bench_with_input(BenchmarkId::new("active_set_host_par", &id), g, |b, g| {
                    b.iter(|| {
                        let mut config = ActiveSetHostConfig::synchronous(hosts);
                        config.protocol.policy = policy;
                        ActiveSetHostEngine::new(black_box(g), config).run()
                    })
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_host_engines);
criterion_main!(benches);
