//! Benchmarks of the sequential baselines: the Batagelj–Zaveršnik O(m)
//! algorithm versus naive peeling, across graph families.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dkcore::seq::{batagelj_zaversnik, naive_peeling};
use dkcore_graph::generators::{barabasi_albert, gnp};

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequential");
    group.sample_size(20);
    for n in [1_000usize, 10_000] {
        let random = gnp(n, 8.0 / n as f64, 42);
        let scale_free = barabasi_albert(n, 4, 42);
        group.bench_with_input(BenchmarkId::new("bz/gnp", n), &random, |b, g| {
            b.iter(|| batagelj_zaversnik(black_box(g)))
        });
        group.bench_with_input(BenchmarkId::new("naive/gnp", n), &random, |b, g| {
            b.iter(|| naive_peeling(black_box(g)))
        });
        group.bench_with_input(BenchmarkId::new("bz/ba", n), &scale_free, |b, g| {
            b.iter(|| batagelj_zaversnik(black_box(g)))
        });
        group.bench_with_input(BenchmarkId::new("naive/ba", n), &scale_free, |b, g| {
            b.iter(|| naive_peeling(black_box(g)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
