//! Benchmarks of the epidemic aggregation substrate: cost of gossip rounds
//! and of full max-aggregation convergence at several overlay sizes.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dkcore_gossip::{GossipNetwork, MaxAggregate};

fn bench_gossip(c: &mut Criterion) {
    let mut group = c.benchmark_group("gossip_max_convergence");
    for n in [64usize, 512, 4_096] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut net =
                    GossipNetwork::new((0..n).map(|i| MaxAggregate::new(i as f64)), black_box(42));
                net.run_until_converged(0.0, 10 * n).expect("converges")
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("gossip_single_round");
    for n in [512usize, 4_096] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut net = GossipNetwork::new((0..n).map(|i| MaxAggregate::new(i as f64)), 7);
            b.iter(|| {
                net.round();
                black_box(net.spread())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gossip);
criterion_main!(benches);
