//! Benchmarks of the simulation engines: full one-to-one runs under both
//! execution models, and the distributed protocol versus the sequential
//! baseline (the "price of distribution" in pure compute terms).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dkcore::seq::batagelj_zaversnik;
use dkcore_graph::generators::{barabasi_albert, gnp};
use dkcore_sim::{NodeSim, NodeSimConfig};

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("node_sim_full_run");
    group.sample_size(10);
    for n in [1_000usize, 5_000] {
        let g = gnp(n, 8.0 / n as f64, 7);
        group.bench_with_input(BenchmarkId::new("synchronous", n), &g, |b, g| {
            b.iter(|| NodeSim::new(black_box(g), NodeSimConfig::synchronous()).run())
        });
        group.bench_with_input(BenchmarkId::new("random_order", n), &g, |b, g| {
            b.iter(|| NodeSim::new(black_box(g), NodeSimConfig::random_order(3)).run())
        });
        group.bench_with_input(BenchmarkId::new("sequential_bz", n), &g, |b, g| {
            b.iter(|| batagelj_zaversnik(black_box(g)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("node_sim_scale_free");
    group.sample_size(10);
    let g = barabasi_albert(5_000, 4, 11);
    group.bench_function("random_order/ba5000", |b| {
        b.iter(|| NodeSim::new(black_box(&g), NodeSimConfig::random_order(5)).run())
    });
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
