//! Benchmarks of the simulation engines: full one-to-one runs under both
//! execution models, the legacy synchronous engine versus the flat
//! [`ActiveSetEngine`] fast path (the PR 1 acceptance comparison, also
//! emitted as `BENCH_PR1.json` by the `bench_pr1` binary), and the
//! distributed protocol versus the sequential baseline (the "price of
//! distribution" in pure compute terms).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dkcore::seq::batagelj_zaversnik;
use dkcore_graph::generators::{barabasi_albert, gnp, worst_case};
use dkcore_sim::{ActiveSetConfig, ActiveSetEngine, NodeSim, NodeSimConfig};

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("node_sim_full_run");
    group.sample_size(10);
    for n in [1_000usize, 5_000] {
        let g = gnp(n, 8.0 / n as f64, 7);
        group.bench_with_input(BenchmarkId::new("synchronous", n), &g, |b, g| {
            b.iter(|| NodeSim::new(black_box(g), NodeSimConfig::synchronous()).run())
        });
        group.bench_with_input(BenchmarkId::new("random_order", n), &g, |b, g| {
            b.iter(|| NodeSim::new(black_box(g), NodeSimConfig::random_order(3)).run())
        });
        group.bench_with_input(BenchmarkId::new("sequential_bz", n), &g, |b, g| {
            b.iter(|| batagelj_zaversnik(black_box(g)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("node_sim_scale_free");
    group.sample_size(10);
    let g = barabasi_albert(5_000, 4, 11);
    group.bench_function("random_order/ba5000", |b| {
        b.iter(|| NodeSim::new(black_box(&g), NodeSimConfig::random_order(5)).run())
    });
    group.finish();
}

/// Old vs new synchronous engine on the PR 1 acceptance workloads:
/// `gnp` up to 100k nodes, a power-law graph, and the paper's §4.2
/// worst-case cascade family, where the active set shines.
fn bench_active_set(c: &mut Criterion) {
    let quick = std::env::var_os("BENCH_QUICK").is_some_and(|v| v != "0");
    let scale = if quick { 10_000 } else { 100_000 };
    let mut group = c.benchmark_group("sync_engine_comparison");
    group.sample_size(10);
    let workloads: Vec<(String, dkcore_graph::Graph)> = vec![
        (
            format!("gnp_avg16/{scale}"),
            gnp(scale, 16.0 / scale as f64, 42),
        ),
        (format!("ba_m8/{scale}"), barabasi_albert(scale, 8, 44)),
        ("worst_case/3000".into(), worst_case(3_000)),
    ];
    for (name, g) in &workloads {
        group.bench_with_input(BenchmarkId::new("legacy", name), g, |b, g| {
            b.iter(|| NodeSim::new(black_box(g), NodeSimConfig::synchronous()).run())
        });
        group.bench_with_input(BenchmarkId::new("active_set", name), g, |b, g| {
            b.iter(|| ActiveSetEngine::new(black_box(g), ActiveSetConfig::default()).run())
        });
        group.bench_with_input(BenchmarkId::new("active_set_seq", name), g, |b, g| {
            b.iter(|| ActiveSetEngine::new(black_box(g), ActiveSetConfig::sequential()).run())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines, bench_active_set);
criterion_main!(benches);
