//! Microbenchmark of `computeIndex` (Algorithm 2), the inner loop of both
//! protocols: cost as a function of the node degree.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dkcore::compute_index;

fn bench_compute_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("compute_index");
    for degree in [4usize, 16, 64, 256, 1024, 4096] {
        // Estimates spanning the interesting range, with some infinities.
        let ests: Vec<u32> = (0..degree)
            .map(|i| if i % 7 == 0 { u32::MAX } else { (i % 32) as u32 })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(degree), &ests, |b, ests| {
            b.iter(|| compute_index(black_box(ests.iter().copied()), black_box(degree as u32)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compute_index);
criterion_main!(benches);
