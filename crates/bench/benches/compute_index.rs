//! Microbenchmark of `computeIndex` (Algorithm 2), the inner loop of both
//! protocols: the from-scratch (now allocation-free) rescan as a function
//! of node degree, versus the O(1)-amortized [`IncrementalIndex`] fast
//! path that the protocols actually run per message.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dkcore::{compute_index, IncrementalIndex};

fn bench_compute_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("compute_index");
    for degree in [4usize, 16, 64, 256, 1024, 4096] {
        // Estimates spanning the interesting range, with some infinities.
        let ests: Vec<u32> = (0..degree)
            .map(|i| {
                if i % 7 == 0 {
                    u32::MAX
                } else {
                    (i % 32) as u32
                }
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(degree), &ests, |b, ests| {
            b.iter(|| compute_index(black_box(ests.iter().copied()), black_box(degree as u32)))
        });
    }
    group.finish();

    // The old-vs-new per-message comparison: one received estimate used
    // to cost a full `compute_index` rescan; the incremental index pays
    // one bucket move. Each iteration replays a full monotone descent so
    // the amortized walk cost is included.
    let mut group = c.benchmark_group("per_message_update");
    for degree in [16u32, 256, 4096] {
        let descent: Vec<(u32, u32)> = (0..degree)
            .map(|i| (i % degree, degree.saturating_sub(i / 2 + 1)))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("rescan", degree),
            &descent,
            |b, descent| {
                b.iter(|| {
                    let mut est = vec![u32::MAX; degree as usize];
                    let mut core = degree;
                    for &(slot, val) in descent {
                        if val < est[slot as usize] {
                            est[slot as usize] = val;
                            core = core.min(compute_index(est.iter().copied(), core));
                        }
                    }
                    black_box(core)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("incremental", degree),
            &descent,
            |b, descent| {
                b.iter(|| {
                    let mut est = vec![u32::MAX; degree as usize];
                    let mut idx = IncrementalIndex::new(degree);
                    for &(slot, val) in descent {
                        if val < est[slot as usize] {
                            idx.update(est[slot as usize], val);
                            est[slot as usize] = val;
                        }
                    }
                    black_box(idx.core())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_compute_index);
criterion_main!(benches);
