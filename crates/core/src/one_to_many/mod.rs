//! The *one host, multiple nodes* protocol (§3.2 of the paper,
//! Algorithms 3–5).
//!
//! A host `x` is responsible for a set of nodes `V(x)` (the
//! [`Assignment`]); it stores estimates for `V(x) ∪ neighborV(x)` and runs
//! the one-to-one logic on behalf of its nodes. The crucial optimization is
//! *internal emulation* (Algorithm 4, `improveEstimate`): whenever new
//! estimates arrive, the host cascades their consequences among its own
//! nodes until quiescence **before** sending anything, so intra-host
//! propagation costs zero messages.
//!
//! Two dissemination policies exist (§3.2.1), selected per flush via
//! [`DisseminationPolicy`]:
//!
//! * **Broadcast** (Algorithm 3): one message per round carrying every
//!   changed estimate, heard by all hosts;
//! * **Point-to-point** (Algorithm 5): one message per neighbor host `y`
//!   carrying only the estimates of nodes that have a neighbor in `V(y)`.
//!
//! Note: Algorithm 5 as printed selects *all* border nodes every round; we
//! additionally require `changed[u]`, exactly as Algorithm 3 does —
//! without that condition the protocol would re-send unchanged estimates
//! forever and never quiesce. (The reset of `changed` at the end of the
//! printed Algorithm 5 makes the intent clear.)
//!
//! # Example
//!
//! ```
//! use dkcore::one_to_many::{Assignment, AssignmentPolicy, HostId, HostProtocol,
//!     OneToManyConfig};
//! use dkcore_graph::{generators::path, NodeId};
//!
//! let g = path(6);
//! // Two hosts, nodes assigned mod 2 (§3.2.2's policy).
//! let assignment = Assignment::new(&g, 2, &AssignmentPolicy::Modulo);
//! assert_eq!(assignment.host_of(NodeId(3)), HostId(1));
//!
//! let host0 = HostProtocol::new(&g, &assignment, HostId(0), OneToManyConfig::default());
//! assert_eq!(host0.local_nodes(), &[NodeId(0), NodeId(2), NodeId(4)]);
//! ```

mod assignment;
mod host;

pub(crate) use host::intersect_sorted;

pub use assignment::{Assignment, AssignmentPolicy, HostId};
pub use host::{
    Destination, EmulationMode, HostProtocol, OneToManyConfig, Outgoing, OutgoingSink, StagedSink,
};

/// Dissemination policy for estimate updates (§3.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DisseminationPolicy {
    /// Algorithm 3: one message per round with all changed estimates,
    /// delivered to every host (a broadcast medium is available).
    Broadcast,
    /// Algorithm 5: per-destination messages containing only the changed
    /// estimates of nodes bordering that destination host.
    #[default]
    PointToPoint,
}
