//! Node → host assignment (§3.2.2 of the paper).

use std::collections::VecDeque;
use std::fmt;

use dkcore_graph::{Graph, NodeId};

/// Identifier of a host in the distributed system (`H` in the paper's §2).
///
/// Hosts are dense integers `0..|H|`, mirroring [`NodeId`] for nodes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct HostId(pub u32);

impl HostId {
    /// Returns the identifier as a `usize`, for indexing per-host arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HostId({})", self.0)
    }
}

/// Strategy for distributing nodes over hosts.
///
/// The paper (§3.2.2) notes that "it is difficult to identify efficient
/// heuristics to perform the assignment in the general case" and adopts
/// `u mod |H|`; the alternatives here exist for the ablation experiment E9
/// (see `DESIGN.md`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum AssignmentPolicy {
    /// The paper's policy: node `u` goes to host `u mod |H|`.
    #[default]
    Modulo,
    /// Contiguous blocks of `⌈N/|H|⌉` consecutive node ids per host.
    Block,
    /// Uniformly random balanced assignment (round-robin over a shuffled
    /// node order).
    Random {
        /// RNG seed for the shuffle.
        seed: u64,
    },
    /// Locality-preserving: nodes in BFS discovery order, cut into
    /// contiguous blocks — neighbors tend to land on the same host, which
    /// maximizes the benefit of internal emulation.
    BfsBlocks,
}

/// An immutable node → host map together with its inverse.
///
/// # Example
///
/// ```
/// use dkcore::one_to_many::{Assignment, AssignmentPolicy, HostId};
/// use dkcore_graph::{generators::path, NodeId};
///
/// let a = Assignment::new(&path(5), 2, &AssignmentPolicy::Modulo);
/// assert_eq!(a.host_count(), 2);
/// assert_eq!(a.host_of(NodeId(4)), HostId(0));
/// assert_eq!(a.nodes_of(HostId(1)), &[NodeId(1), NodeId(3)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    host_of: Vec<HostId>,
    nodes_of: Vec<Vec<NodeId>>,
}

impl Assignment {
    /// Assigns the nodes of `g` to `host_count` hosts under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `host_count == 0`.
    pub fn new(g: &Graph, host_count: usize, policy: &AssignmentPolicy) -> Self {
        assert!(host_count > 0, "need at least one host");
        let n = g.node_count();
        let mut host_of = vec![HostId(0); n];
        match policy {
            AssignmentPolicy::Modulo => {
                for (u, h) in host_of.iter_mut().enumerate() {
                    *h = HostId((u % host_count) as u32);
                }
            }
            AssignmentPolicy::Block => {
                let chunk = n.div_ceil(host_count).max(1);
                for (u, h) in host_of.iter_mut().enumerate() {
                    *h = HostId((u / chunk) as u32);
                }
            }
            AssignmentPolicy::Random { seed } => {
                use rand::prelude::*;
                let mut order: Vec<usize> = (0..n).collect();
                let mut rng = rand::rngs::StdRng::seed_from_u64(*seed);
                order.shuffle(&mut rng);
                for (rank, &u) in order.iter().enumerate() {
                    host_of[u] = HostId((rank % host_count) as u32);
                }
            }
            AssignmentPolicy::BfsBlocks => {
                let chunk = n.div_ceil(host_count).max(1);
                let mut rank = 0usize;
                let mut seen = vec![false; n];
                let mut queue = VecDeque::new();
                for start in 0..n {
                    if seen[start] {
                        continue;
                    }
                    seen[start] = true;
                    queue.push_back(NodeId(start as u32));
                    while let Some(u) = queue.pop_front() {
                        host_of[u.index()] = HostId((rank / chunk) as u32);
                        rank += 1;
                        for &v in g.neighbors(u) {
                            if !seen[v.index()] {
                                seen[v.index()] = true;
                                queue.push_back(v);
                            }
                        }
                    }
                }
            }
        }
        let mut nodes_of = vec![Vec::new(); host_count];
        for u in 0..n {
            nodes_of[host_of[u].index()].push(NodeId(u as u32));
        }
        Assignment { host_of, nodes_of }
    }

    /// Number of hosts `|H|`.
    pub fn host_count(&self) -> usize {
        self.nodes_of.len()
    }

    /// Number of nodes assigned in total.
    pub fn node_count(&self) -> usize {
        self.host_of.len()
    }

    /// The host responsible for node `u` (`h(u)` in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn host_of(&self, u: NodeId) -> HostId {
        self.host_of[u.index()]
    }

    /// The nodes a host is responsible for (`V(x)` in the paper), sorted
    /// by id.
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    pub fn nodes_of(&self, h: HostId) -> &[NodeId] {
        &self.nodes_of[h.index()]
    }

    /// Iterator over all host identifiers.
    pub fn hosts(&self) -> impl ExactSizeIterator<Item = HostId> + use<> {
        (0..self.nodes_of.len() as u32).map(HostId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkcore_graph::generators::{gnp, grid, path};

    fn check_partition(a: &Assignment, n: usize) {
        // Every node appears on exactly one host.
        let mut seen = vec![false; n];
        for h in a.hosts() {
            for &u in a.nodes_of(h) {
                assert!(!seen[u.index()], "node {u} assigned twice");
                seen[u.index()] = true;
                assert_eq!(a.host_of(u), h);
            }
        }
        assert!(seen.into_iter().all(|s| s), "some node unassigned");
    }

    #[test]
    fn modulo_matches_paper_formula() {
        let g = path(10);
        let a = Assignment::new(&g, 3, &AssignmentPolicy::Modulo);
        for u in 0..10u32 {
            assert_eq!(a.host_of(NodeId(u)), HostId(u % 3));
        }
        check_partition(&a, 10);
    }

    #[test]
    fn block_is_contiguous() {
        let g = path(10);
        let a = Assignment::new(&g, 3, &AssignmentPolicy::Block);
        assert_eq!(
            a.nodes_of(HostId(0)),
            &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
        assert_eq!(a.nodes_of(HostId(2)), &[NodeId(8), NodeId(9)]);
        check_partition(&a, 10);
    }

    #[test]
    fn random_is_balanced_and_deterministic() {
        let g = gnp(100, 0.05, 1);
        let a = Assignment::new(&g, 7, &AssignmentPolicy::Random { seed: 5 });
        let b = Assignment::new(&g, 7, &AssignmentPolicy::Random { seed: 5 });
        assert_eq!(a, b);
        check_partition(&a, 100);
        for h in a.hosts() {
            let size = a.nodes_of(h).len();
            assert!((14..=15).contains(&size), "unbalanced host size {size}");
        }
    }

    #[test]
    fn bfs_blocks_cover_all_nodes_even_disconnected() {
        let g = dkcore_graph::Graph::from_edges(7, [(0, 1), (1, 2), (4, 5)]).unwrap();
        let a = Assignment::new(&g, 3, &AssignmentPolicy::BfsBlocks);
        check_partition(&a, 7);
    }

    #[test]
    fn bfs_blocks_preserve_locality_on_grids() {
        // On a grid, BFS blocks should cut far fewer edges than modulo.
        let g = grid(12, 12);
        let cut = |a: &Assignment| {
            g.edges()
                .filter(|&(u, v)| a.host_of(u) != a.host_of(v))
                .count()
        };
        let bfs = Assignment::new(&g, 4, &AssignmentPolicy::BfsBlocks);
        let modulo = Assignment::new(&g, 4, &AssignmentPolicy::Modulo);
        assert!(
            cut(&bfs) < cut(&modulo) / 2,
            "bfs cut {} should be far below modulo cut {}",
            cut(&bfs),
            cut(&modulo)
        );
    }

    #[test]
    fn single_host_owns_everything() {
        let g = path(5);
        let a = Assignment::new(&g, 1, &AssignmentPolicy::Modulo);
        assert_eq!(a.nodes_of(HostId(0)).len(), 5);
        check_partition(&a, 5);
    }

    #[test]
    fn more_hosts_than_nodes_leaves_empty_hosts() {
        let g = path(3);
        let a = Assignment::new(&g, 5, &AssignmentPolicy::Modulo);
        check_partition(&a, 3);
        assert!(a.nodes_of(HostId(4)).is_empty());
        assert_eq!(a.host_count(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one host")]
    fn zero_hosts_panics() {
        let _ = Assignment::new(&path(3), 0, &AssignmentPolicy::Modulo);
    }
}
