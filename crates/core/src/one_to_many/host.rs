//! Per-host state machine of Algorithms 3–5.

use std::collections::VecDeque;

use dkcore_graph::{Graph, NodeId};

use super::{Assignment, DisseminationPolicy, HostId};
use crate::{compute_index, IncrementalIndex, INFINITY_EST};

/// How the internal emulation of Algorithm 4 (`improveEstimate`) is
/// executed. All modes converge to the same estimates; they differ in how
/// much work happens per message and how many rounds the system needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EmulationMode {
    /// Worklist-driven cascade to fixpoint: only nodes whose inputs changed
    /// are recomputed. Semantically identical to [`Sweep`](Self::Sweep)
    /// with better complexity; the default.
    #[default]
    Worklist,
    /// The paper's literal Algorithm 4: repeated full sweeps over `V(x)`
    /// until no estimate changes.
    Sweep,
    /// Ablation: **no** intra-round cascade. Each receive triggers a single
    /// recomputation pass, and internal consequences propagate one step per
    /// round (as if local nodes messaged each other through the round
    /// loop). Quantifies the value of internal emulation (experiment E8/E9
    /// companion; see `DESIGN.md`).
    PerRound,
}

/// Configuration for the one-to-many host protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OneToManyConfig {
    /// Dissemination policy used by flushes (§3.2.1).
    pub policy: DisseminationPolicy,
    /// Internal-emulation strategy (Algorithm 4).
    pub emulation: EmulationMode,
}

/// Addressee of an outgoing host message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Destination {
    /// Every host hears the message (broadcast medium, Algorithm 3).
    AllHosts,
    /// A single host (point-to-point, Algorithm 5).
    Host(HostId),
}

/// An outgoing estimate-update message `⟨S⟩`: a set of `(node, estimate)`
/// pairs addressed to [`Destination`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outgoing {
    /// Where the message is headed.
    pub dest: Destination,
    /// The changed estimates being announced.
    pub pairs: Vec<(NodeId, u32)>,
}

/// Receiver of the outgoing `⟨S⟩` messages of a flush, without
/// materializing a per-destination pair vector per message.
///
/// Engines that stage batches into flat per-shard buffers (the
/// `ActiveSetHostEngine` in `dkcore-sim`) implement this to have
/// [`HostProtocol::initial_flush_with`] / [`HostProtocol::round_flush_with`]
/// write pairs straight into their staging arenas — no `Vec<Outgoing>`
/// allocation and no pair-vector clones on the delivery side.
pub trait OutgoingSink {
    /// Consumes one outgoing message. `pairs` is guaranteed non-empty and
    /// **must be fully drained** — the host's `estimates_sent` accounting
    /// assumes every pair offered is taken.
    fn message(&mut self, dest: Destination, pairs: &mut dyn Iterator<Item = (NodeId, u32)>);
}

/// Receiver of the engine-facing *staged* flush variants
/// ([`HostProtocol::initial_flush_staged`] /
/// [`HostProtocol::round_flush_staged`]).
///
/// Point-to-point messages are emitted **slot-translated**: each pair is
/// `(slot in the destination host's slot space, estimate)`, mapped through
/// the engine's precomputed border translation tables, so delivery becomes
/// a direct array-indexed update ([`HostProtocol::receive_slots`]) with no
/// per-pair node lookup. Broadcast messages stay `(node, estimate)` — on a
/// broadcast medium the recipients are not known at flush time.
pub trait StagedSink {
    /// Consumes one point-to-point message to host `y`. Must drain the
    /// iterator; returns the number of pairs taken (the iterator may turn
    /// out empty — no message is accounted then).
    fn p2p(&mut self, y: HostId, pairs: &mut dyn Iterator<Item = (u32, u32)>) -> u64;

    /// Consumes one broadcast message. `pairs` is guaranteed non-empty
    /// and must be fully drained.
    fn broadcast(&mut self, pairs: &mut dyn Iterator<Item = (NodeId, u32)>);
}

/// [`OutgoingSink`] collecting messages into a `Vec<Outgoing>` — the
/// compatibility path behind [`HostProtocol::initial_flush`] and
/// [`HostProtocol::round_flush`].
#[derive(Debug, Default)]
struct VecSink {
    out: Vec<Outgoing>,
}

impl OutgoingSink for VecSink {
    fn message(&mut self, dest: Destination, pairs: &mut dyn Iterator<Item = (NodeId, u32)>) {
        self.out.push(Outgoing {
            dest,
            pairs: pairs.collect(),
        });
    }
}

/// Per-host state machine of Algorithm 3 (with Algorithm 4's
/// `improveEstimate` and Algorithm 5's point-to-point variant).
///
/// The host stores estimates for `V(x) ∪ neighborV(x)` in a single array
/// (the paper: "we store all their estimates in `est[]` instead of having a
/// separate array `core[]`"), keeps a `changed` flag per local node, and
/// exposes the same receive/flush lifecycle as the one-to-one
/// [`NodeProtocol`](crate::one_to_one::NodeProtocol).
///
/// # Example
///
/// ```
/// use dkcore::one_to_many::{Assignment, AssignmentPolicy, HostId, HostProtocol,
///     OneToManyConfig};
/// use dkcore_graph::{generators::complete, NodeId};
///
/// let g = complete(4);
/// let a = Assignment::new(&g, 2, &AssignmentPolicy::Modulo);
/// let mut host = HostProtocol::new(&g, &a, HostId(0), OneToManyConfig::default());
/// // Estimates start at the local degrees (3 in K4).
/// assert_eq!(host.estimate_of(NodeId(0)), Some(3));
/// let initial = host.initial_flush();
/// assert!(!initial.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct HostProtocol {
    host: HostId,
    config: OneToManyConfig,
    /// `V(x)`, sorted by node id. Slot `i` of `est`/`changed` is `locals[i]`.
    locals: Vec<NodeId>,
    /// External neighbors (`neighborV(x) \ V(x)`), sorted. Slot
    /// `locals.len() + j` of `est` is `ext[j]`.
    ext: Vec<NodeId>,
    /// Estimates for `V(x) ∪ neighborV(x)`.
    est: Vec<u32>,
    /// Changed-since-last-flush flags, parallel to `locals`.
    changed: Vec<bool>,
    /// Adjacency of local nodes in slot space.
    adj: Vec<Box<[u32]>>,
    /// Reverse adjacency: for each slot, the local indices adjacent to it.
    rev: Vec<Box<[u32]>>,
    /// Neighbor hosts (`neighborH(x)`), sorted.
    neighbor_hosts: Vec<HostId>,
    /// For each neighbor host (parallel to `neighbor_hosts`): sorted local
    /// indices having at least one neighbor owned by that host.
    border: Vec<Box<[u32]>>,
    /// Slots whose estimate dropped since the last emulation pass
    /// (only used by [`EmulationMode::PerRound`]).
    dirty: Vec<u32>,
    /// Per-local incremental `computeIndex` state, parallel to `locals`
    /// (only maintained by [`EmulationMode::Worklist`], the default).
    idx: Vec<IncrementalIndex>,
    /// Reusable drop-event queue `(slot, old, new)` driving the worklist
    /// cascade; FIFO so that successive drops of one slot are applied in
    /// chronological order. Kept across calls so the hot loop never
    /// allocates once warm.
    work: VecDeque<(u32, u32, u32)>,
    /// Reusable changed-local scratch list for flushes, so the hot
    /// sink-based flush path allocates nothing once warm.
    scratch_changed: Vec<u32>,
    /// Total `(node, estimate)` pairs sent — the paper's Figure 5
    /// "overhead (estimates sent)" numerator.
    estimates_sent: u64,
    /// Total `⟨S⟩` messages sent.
    messages_sent: u64,
}

impl HostProtocol {
    /// Builds the state for `host` from the graph and assignment, running
    /// the initialization of Algorithm 3 (`est[u] ← d(u)` for locals, `+∞`
    /// for external neighbors, then `improveEstimate`).
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range for `assignment`.
    pub fn new(g: &Graph, assignment: &Assignment, host: HostId, config: OneToManyConfig) -> Self {
        let locals: Vec<NodeId> = assignment.nodes_of(host).to_vec();
        debug_assert!(locals.windows(2).all(|w| w[0] < w[1]));

        // Collect external neighbors and neighbor hosts.
        let mut ext: Vec<NodeId> = Vec::new();
        let mut neighbor_hosts: Vec<HostId> = Vec::new();
        for &u in &locals {
            for &v in g.neighbors(u) {
                let h = assignment.host_of(v);
                if h != host {
                    ext.push(v);
                    neighbor_hosts.push(h);
                }
            }
        }
        ext.sort_unstable();
        ext.dedup();
        neighbor_hosts.sort_unstable();
        neighbor_hosts.dedup();

        let slot_of = |v: NodeId| -> u32 {
            match locals.binary_search(&v) {
                Ok(i) => i as u32,
                Err(_) => {
                    let j = ext
                        .binary_search(&v)
                        .expect("neighbor must be local or ext");
                    (locals.len() + j) as u32
                }
            }
        };

        // Adjacency in slot space + reverse adjacency.
        let slot_count = locals.len() + ext.len();
        let mut adj: Vec<Box<[u32]>> = Vec::with_capacity(locals.len());
        let mut rev: Vec<Vec<u32>> = vec![Vec::new(); slot_count];
        for (i, &u) in locals.iter().enumerate() {
            let slots: Vec<u32> = g.neighbors(u).iter().map(|&v| slot_of(v)).collect();
            for &s in &slots {
                rev[s as usize].push(i as u32);
            }
            adj.push(slots.into_boxed_slice());
        }

        // Border lists per neighbor host.
        let mut border: Vec<Vec<u32>> = vec![Vec::new(); neighbor_hosts.len()];
        for (i, &u) in locals.iter().enumerate() {
            let mut hosts_of_u: Vec<HostId> = g
                .neighbors(u)
                .iter()
                .map(|&v| assignment.host_of(v))
                .filter(|&h| h != host)
                .collect();
            hosts_of_u.sort_unstable();
            hosts_of_u.dedup();
            for h in hosts_of_u {
                let j = neighbor_hosts
                    .binary_search(&h)
                    .expect("known neighbor host");
                border[j].push(i as u32);
            }
        }

        // Estimates: locals start at their degree, externals at +∞.
        let mut est = vec![INFINITY_EST; slot_count];
        for (i, &u) in locals.iter().enumerate() {
            est[i] = g.degree(u);
        }

        let mut this = HostProtocol {
            host,
            config,
            changed: vec![false; locals.len()],
            locals,
            ext,
            est,
            adj,
            rev: rev.into_iter().map(Vec::into_boxed_slice).collect(),
            neighbor_hosts,
            border: border.into_iter().map(Vec::into_boxed_slice).collect(),
            dirty: Vec::new(),
            idx: Vec::new(),
            work: VecDeque::new(),
            scratch_changed: Vec::new(),
            estimates_sent: 0,
            messages_sent: 0,
        };
        // Algorithm 3 initialization ends with improveEstimate(est): local
        // degrees already constrain each other before anything is sent.
        if this.config.emulation == EmulationMode::Worklist {
            this.init_indexes();
        } else {
            let all: Vec<u32> = (0..this.locals.len() as u32).collect();
            this.emulate(&all);
        }
        this
    }

    /// Builds the protocol state of every host in the assignment.
    pub fn for_assignment(
        g: &Graph,
        assignment: &Assignment,
        config: OneToManyConfig,
    ) -> Vec<HostProtocol> {
        assignment
            .hosts()
            .map(|h| HostProtocol::new(g, assignment, h, config))
            .collect()
    }

    /// This host's identifier.
    pub fn id(&self) -> HostId {
        self.host
    }

    /// The nodes this host is responsible for (`V(x)`), sorted.
    pub fn local_nodes(&self) -> &[NodeId] {
        &self.locals
    }

    /// The hosts owning at least one neighbor of a local node
    /// (`neighborH(x)`), sorted.
    pub fn neighbor_hosts(&self) -> &[HostId] {
        &self.neighbor_hosts
    }

    /// The current estimate this host holds for `v`, local or external;
    /// `None` if `v` is unknown here.
    pub fn estimate_of(&self, v: NodeId) -> Option<u32> {
        self.slot(v).map(|s| self.est[s as usize])
    }

    /// The sorted local indices (into [`local_nodes`](Self::local_nodes))
    /// of the nodes bordering neighbor host `j` — i.e. having at least one
    /// neighbor owned by `neighbor_hosts()[j]`. Engines use this together
    /// with [`slot_of`](Self::slot_of) to precompute the slot translation
    /// tables consumed by [`round_flush_staged`](Self::round_flush_staged).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range for [`neighbor_hosts`](Self::neighbor_hosts).
    pub fn border(&self, j: usize) -> &[u32] {
        &self.border[j]
    }

    /// The slot of `v` in this host's slot space (`V(x) ∪ neighborV(x)`,
    /// locals first), or `None` if `v` is unknown here — the address used
    /// by [`receive_slots`](Self::receive_slots).
    pub fn slot_of(&self, v: NodeId) -> Option<u32> {
        self.slot(v)
    }

    /// Iterator over `(node, current estimate)` for the local nodes.
    pub fn local_estimates(&self) -> impl Iterator<Item = (NodeId, u32)> + '_ {
        self.locals
            .iter()
            .enumerate()
            .map(|(i, &u)| (u, self.est[i]))
    }

    /// Whether any local estimate changed since the last flush.
    pub fn has_pending_changes(&self) -> bool {
        self.changed.iter().any(|&c| c)
    }

    /// Total `(node, estimate)` pairs sent so far — the numerator of the
    /// paper's Figure 5 overhead metric ("the average number of times a
    /// node generates a new estimate that has to be sent to another host").
    pub fn estimates_sent(&self) -> u64 {
        self.estimates_sent
    }

    /// Total `⟨S⟩` messages sent so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    fn slot(&self, v: NodeId) -> Option<u32> {
        match self.locals.binary_search(&v) {
            Ok(i) => Some(i as u32),
            Err(_) => self
                .ext
                .binary_search(&v)
                .ok()
                .map(|j| (self.locals.len() + j) as u32),
        }
    }

    /// Builds the per-local [`IncrementalIndex`] state and runs the
    /// initialization `improveEstimate` as a drop-event cascade — the
    /// worklist-mode fast path of Algorithm 4.
    fn init_indexes(&mut self) {
        let nlocal = self.locals.len();
        let mut idx = Vec::with_capacity(nlocal);
        for i in 0..nlocal {
            let cap = self.est[i];
            idx.push(IncrementalIndex::from_estimates(
                self.adj[i].iter().map(|&s| self.est[s as usize]),
                cap,
            ));
        }
        self.idx = idx;
        // The indexes were built from the pristine initial estimates, so
        // first collect every local whose own estimate is immediately
        // improvable, then let the cascade propagate the drops.
        for i in 0..nlocal {
            let new = self.idx[i].core();
            if new < self.est[i] {
                let old = self.est[i];
                self.est[i] = new;
                self.changed[i] = true;
                self.work.push_back((i as u32, old, new));
            }
        }
        self.cascade();
    }

    /// Drains the drop-event stack to the internal fixpoint: each event
    /// `(slot, old, new)` feeds the incremental indexes of the local
    /// nodes adjacent to `slot`; locals whose value drops emit follow-up
    /// events. Amortized O(1) per event, allocation-free after warmup —
    /// the worklist-mode replacement for repeated `computeIndex` rescans.
    fn cascade(&mut self) {
        while let Some((s, old, new)) = self.work.pop_front() {
            for t in 0..self.rev[s as usize].len() {
                let l = self.rev[s as usize][t] as usize;
                if self.idx[l].update(old, new) {
                    let old_l = self.est[l];
                    let new_l = self.idx[l].core();
                    self.est[l] = new_l;
                    self.changed[l] = true;
                    self.work.push_back((l as u32, old_l, new_l));
                }
            }
        }
    }

    /// Recomputes local node `i`'s estimate; returns `true` if it dropped.
    fn recompute(&mut self, i: u32) -> bool {
        let cur = self.est[i as usize];
        let t = compute_index(
            self.adj[i as usize].iter().map(|&s| self.est[s as usize]),
            cur,
        );
        if t < cur {
            self.est[i as usize] = t;
            self.changed[i as usize] = true;
            true
        } else {
            false
        }
    }

    /// Algorithm 4 for the recompute-based ablation modes, seeded by the
    /// slots whose estimates just dropped. [`EmulationMode::Worklist`]
    /// never reaches here — it runs the incremental-index cascade
    /// ([`Self::init_indexes`] / [`Self::cascade`]) instead.
    fn emulate(&mut self, dropped_slots: &[u32]) {
        match self.config.emulation {
            EmulationMode::Worklist => {
                unreachable!("Worklist mode is routed to init_indexes/cascade")
            }
            EmulationMode::Sweep => {
                // The paper's literal loop: full passes until quiescence.
                let mut again = true;
                while again {
                    again = false;
                    for l in 0..self.locals.len() as u32 {
                        if self.recompute(l) {
                            again = true;
                        }
                    }
                }
            }
            EmulationMode::PerRound => {
                // One propagation step only: recompute the locals adjacent
                // to the dropped slots, once. Remember newly dropped local
                // slots so the *next* round can continue the cascade.
                let mut affected: Vec<u32> = Vec::new();
                for &s in dropped_slots {
                    affected.extend_from_slice(&self.rev[s as usize]);
                }
                affected.sort_unstable();
                affected.dedup();
                for l in affected {
                    if self.recompute(l) {
                        self.dirty.push(l);
                    }
                }
            }
        }
    }

    /// The initialization message of Algorithm 3:
    /// `S ← {(u, est[u]) : u ∈ V(x)}; send ⟨S⟩ to neighborH(x)`.
    ///
    /// In point-to-point mode the set is filtered per destination to the
    /// border nodes that destination cares about, per Algorithm 5.
    pub fn initial_flush(&mut self) -> Vec<Outgoing> {
        let mut sink = VecSink::default();
        self.initial_flush_with(&mut sink);
        sink.out
    }

    /// Sink-based variant of [`initial_flush`](Self::initial_flush):
    /// identical semantics and accounting, but each message's pairs are
    /// streamed into `sink` instead of materializing `Vec<Outgoing>`.
    /// Returns the number of `⟨S⟩` messages emitted.
    pub fn initial_flush_with(&mut self, sink: &mut dyn OutgoingSink) -> u64 {
        let mut messages = 0u64;
        match self.config.policy {
            DisseminationPolicy::Broadcast => {
                if !self.locals.is_empty() && !self.neighbor_hosts.is_empty() {
                    self.estimates_sent += self.locals.len() as u64;
                    self.messages_sent += 1;
                    messages = 1;
                    let est = &self.est;
                    let mut pairs = self.locals.iter().enumerate().map(|(i, &u)| (u, est[i]));
                    sink.message(Destination::AllHosts, &mut pairs);
                }
            }
            DisseminationPolicy::PointToPoint => {
                for (j, &y) in self.neighbor_hosts.iter().enumerate() {
                    if self.border[j].is_empty() {
                        continue;
                    }
                    self.estimates_sent += self.border[j].len() as u64;
                    self.messages_sent += 1;
                    messages += 1;
                    let (locals, est) = (&self.locals, &self.est);
                    let mut pairs = self.border[j]
                        .iter()
                        .map(|&i| (locals[i as usize], est[i as usize]));
                    sink.message(Destination::Host(y), &mut pairs);
                }
            }
        }
        // Everything below the initial values has just been announced;
        // clear the flags set by the constructor's improveEstimate...
        //
        // ...except in PerRound mode, where the constructor's single pass
        // may still have pending internal propagation: keep those flags so
        // the cascade continues through subsequent rounds.
        if self.config.emulation != EmulationMode::PerRound {
            self.changed.iter_mut().for_each(|c| *c = false);
        }
        messages
    }

    /// Handles an incoming `⟨S⟩` message: `foreach (v, k) ∈ S: if k <
    /// est[v] then est[v] ← k`, followed by `improveEstimate(est)`.
    ///
    /// Pairs about nodes this host does not know (possible on a broadcast
    /// medium) are ignored.
    pub fn receive(&mut self, pairs: &[(NodeId, u32)]) {
        self.receive_iter(pairs.iter().copied());
    }

    /// Iterator variant of [`receive`](Self::receive) — identical
    /// semantics, without requiring the pairs to be materialized as a
    /// slice of `(NodeId, u32)` (engines store staging arenas as raw
    /// `(u32, u32)` pairs).
    pub fn receive_iter<I>(&mut self, pairs: I)
    where
        I: IntoIterator<Item = (NodeId, u32)>,
    {
        if self.config.emulation == EmulationMode::Worklist {
            // Fast path: push drop events straight onto the cascade stack;
            // no recomputation scans and no per-call allocation.
            for (v, k) in pairs {
                if let Some(s) = self.slot(v) {
                    self.apply_drop(s, k);
                }
            }
            self.cascade();
            return;
        }
        let mut dropped: Vec<u32> = Vec::new();
        for (v, k) in pairs {
            if let Some(s) = self.slot(v) {
                if self.apply_drop_recompute(s, k) {
                    dropped.push(s);
                }
            }
        }
        if !dropped.is_empty() {
            self.emulate(&dropped);
        }
    }

    /// Slot-addressed variant of [`receive`](Self::receive): every pair is
    /// `(slot, estimate)` in **this host's** slot space, as produced by a
    /// sender's [`round_flush_staged`](Self::round_flush_staged) through
    /// the engine's translation tables. Identical semantics, but delivery
    /// costs one array access per pair instead of a node lookup.
    ///
    /// # Panics
    ///
    /// May panic (or corrupt state) if a slot is out of range — the
    /// translation tables own that invariant.
    pub fn receive_slots(&mut self, pairs: &[(u32, u32)]) {
        if self.config.emulation == EmulationMode::Worklist {
            for &(s, k) in pairs {
                self.apply_drop(s, k);
            }
            self.cascade();
            return;
        }
        let mut dropped: Vec<u32> = Vec::new();
        for &(s, k) in pairs {
            if self.apply_drop_recompute(s, k) {
                dropped.push(s);
            }
        }
        if !dropped.is_empty() {
            self.emulate(&dropped);
        }
    }

    /// Worklist-mode receive step for one `(slot, estimate)` pair: record
    /// the drop and queue the cascade event.
    #[inline]
    fn apply_drop(&mut self, s: u32, k: u32) {
        let si = s as usize;
        let old = self.est[si];
        if k < old {
            self.est[si] = k;
            // A local estimate lowered from outside must be re-announced
            // too, and its index bounded so later walks start from the
            // right level.
            if si < self.locals.len() {
                self.changed[si] = true;
                self.idx[si].force_bound(k);
            }
            self.work.push_back((s, old, k));
        }
    }

    /// Recompute-mode receive step for one `(slot, estimate)` pair;
    /// returns `true` iff the estimate dropped (the slot then seeds
    /// [`Self::emulate`]).
    #[inline]
    fn apply_drop_recompute(&mut self, s: u32, k: u32) -> bool {
        let si = s as usize;
        if k < self.est[si] {
            self.est[si] = k;
            // A local estimate lowered from outside must be re-announced
            // too.
            if si < self.locals.len() {
                self.changed[si] = true;
            }
            true
        } else {
            false
        }
    }

    /// The periodic block of Algorithms 3/5: collect the changed local
    /// estimates, clear the flags, and produce the outgoing messages for
    /// the configured policy. Returns an empty vector when quiescent.
    pub fn round_flush(&mut self) -> Vec<Outgoing> {
        let mut sink = VecSink::default();
        self.round_flush_with(&mut sink);
        sink.out
    }

    /// Sink-based variant of [`round_flush`](Self::round_flush): identical
    /// semantics and accounting (flag handling, border intersection, the
    /// PerRound trailing emulation), but each message's pairs stream into
    /// `sink` and the changed-local list lives in a reused scratch buffer,
    /// so the hot path allocates nothing once warm. Returns the number of
    /// `⟨S⟩` messages emitted (0 when quiescent).
    pub fn round_flush_with(&mut self, sink: &mut dyn OutgoingSink) -> u64 {
        let mut changed_locals = std::mem::take(&mut self.scratch_changed);
        changed_locals.clear();
        changed_locals.extend((0..self.locals.len() as u32).filter(|&i| self.changed[i as usize]));
        if changed_locals.is_empty() {
            self.scratch_changed = changed_locals;
            return 0;
        }
        for &i in &changed_locals {
            self.changed[i as usize] = false;
        }
        let mut messages = 0u64;
        match self.config.policy {
            DisseminationPolicy::Broadcast => {
                self.estimates_sent += changed_locals.len() as u64;
                self.messages_sent += 1;
                messages = 1;
                let (locals, est) = (&self.locals, &self.est);
                let mut pairs = changed_locals
                    .iter()
                    .map(|&i| (locals[i as usize], est[i as usize]));
                sink.message(Destination::AllHosts, &mut pairs);
            }
            DisseminationPolicy::PointToPoint => {
                for (j, &y) in self.neighbor_hosts.iter().enumerate() {
                    // Single pass over the sorted border[j] × changed_locals
                    // intersection: peek for the non-empty guarantee, count
                    // while the sink drains for the accounting.
                    let (locals, est) = (&self.locals, &self.est);
                    let mut pairs = intersect_sorted(&self.border[j], &changed_locals)
                        .map(|i| (locals[i as usize], est[i as usize]))
                        .peekable();
                    if pairs.peek().is_none() {
                        continue;
                    }
                    let mut count = 0u64;
                    {
                        let mut counted = pairs.inspect(|_| count += 1);
                        sink.message(Destination::Host(y), &mut counted);
                    }
                    self.estimates_sent += count;
                    self.messages_sent += 1;
                    messages += 1;
                }
            }
        }
        // PerRound ablation: propagate the just-flushed changes one more
        // internal step, setting up the next round.
        if self.config.emulation == EmulationMode::PerRound {
            let dropped = std::mem::take(&mut self.dirty);
            // The flushed locals themselves are the sources.
            let mut sources = changed_locals.clone();
            sources.extend(dropped);
            sources.sort_unstable();
            sources.dedup();
            self.emulate(&sources);
        }
        self.scratch_changed = changed_locals;
        messages
    }

    /// Engine-facing variant of [`initial_flush`](Self::initial_flush):
    /// identical semantics and accounting, but point-to-point messages are
    /// emitted slot-translated through `xlat` (see
    /// [`round_flush_staged`](Self::round_flush_staged)). Returns the
    /// number of `⟨S⟩` messages emitted.
    pub fn initial_flush_staged(&mut self, xlat: &[Box<[u32]>], sink: &mut dyn StagedSink) -> u64 {
        let mut messages = 0u64;
        match self.config.policy {
            DisseminationPolicy::Broadcast => {
                if !self.locals.is_empty() && !self.neighbor_hosts.is_empty() {
                    self.estimates_sent += self.locals.len() as u64;
                    self.messages_sent += 1;
                    messages = 1;
                    let est = &self.est;
                    let mut pairs = self.locals.iter().enumerate().map(|(i, &u)| (u, est[i]));
                    sink.broadcast(&mut pairs);
                }
            }
            DisseminationPolicy::PointToPoint => {
                for (j, &y) in self.neighbor_hosts.iter().enumerate() {
                    if self.border[j].is_empty() {
                        continue;
                    }
                    let est = &self.est;
                    let table = &xlat[j];
                    let mut pairs = self.border[j]
                        .iter()
                        .enumerate()
                        .map(|(pos, &i)| (table[pos], est[i as usize]));
                    let n = sink.p2p(y, &mut pairs);
                    debug_assert_eq!(n, self.border[j].len() as u64, "sink must drain");
                    self.estimates_sent += n;
                    self.messages_sent += 1;
                    messages += 1;
                }
            }
        }
        if self.config.emulation != EmulationMode::PerRound {
            self.changed.iter_mut().for_each(|c| *c = false);
        }
        messages
    }

    /// Engine-facing variant of [`round_flush`](Self::round_flush):
    /// identical semantics and accounting (flag handling, border
    /// intersection, the PerRound trailing emulation), but point-to-point
    /// messages are emitted **slot-translated**: `xlat` holds, per
    /// neighbor host `j` (parallel to [`neighbor_hosts`](Self::neighbor_hosts)),
    /// a table parallel to [`border(j)`](Self::border) mapping each border
    /// node to its slot in the destination host's slot space. The
    /// destination applies the message with
    /// [`receive_slots`](Self::receive_slots) — one array access per pair,
    /// no node lookups. Returns the number of `⟨S⟩` messages emitted.
    ///
    /// `xlat` is unused (may be empty) under the broadcast policy, where
    /// recipients are unknown at flush time and pairs stay by-name.
    pub fn round_flush_staged(&mut self, xlat: &[Box<[u32]>], sink: &mut dyn StagedSink) -> u64 {
        let mut changed_locals = std::mem::take(&mut self.scratch_changed);
        changed_locals.clear();
        changed_locals.extend((0..self.locals.len() as u32).filter(|&i| self.changed[i as usize]));
        if changed_locals.is_empty() {
            self.scratch_changed = changed_locals;
            return 0;
        }
        for &i in &changed_locals {
            self.changed[i as usize] = false;
        }
        let mut messages = 0u64;
        match self.config.policy {
            DisseminationPolicy::Broadcast => {
                self.estimates_sent += changed_locals.len() as u64;
                self.messages_sent += 1;
                messages = 1;
                let (locals, est) = (&self.locals, &self.est);
                let mut pairs = changed_locals
                    .iter()
                    .map(|&i| (locals[i as usize], est[i as usize]));
                sink.broadcast(&mut pairs);
            }
            DisseminationPolicy::PointToPoint => {
                for (j, &y) in self.neighbor_hosts.iter().enumerate() {
                    let est = &self.est;
                    let table = &xlat[j];
                    let mut pairs = intersect_sorted_positions(&self.border[j], &changed_locals)
                        .map(|(pos, i)| (table[pos], est[i as usize]));
                    let n = sink.p2p(y, &mut pairs);
                    if n == 0 {
                        continue;
                    }
                    self.estimates_sent += n;
                    self.messages_sent += 1;
                    messages += 1;
                }
            }
        }
        if self.config.emulation == EmulationMode::PerRound {
            let dropped = std::mem::take(&mut self.dirty);
            let mut sources = changed_locals.clone();
            sources.extend(dropped);
            sources.sort_unstable();
            sources.dedup();
            self.emulate(&sources);
        }
        self.scratch_changed = changed_locals;
        messages
    }

    /// Internal: consumes a freshly constructed protocol, handing its
    /// topology and Algorithm 3-initialized state to the pure machine core
    /// (`crate::machine::HostMachine`) — builder shared by construction,
    /// so the two cannot disagree about slot spaces, borders, or the
    /// initial `improveEstimate`.
    #[allow(clippy::type_complexity)] // one-shot transfer of parallel arrays, not an API
    pub(crate) fn into_machine_parts(
        self,
    ) -> (
        HostId,
        Vec<NodeId>,
        Vec<NodeId>,
        Vec<Box<[u32]>>,
        Vec<HostId>,
        Vec<Box<[u32]>>,
        Vec<u32>,
        Vec<bool>,
    ) {
        (
            self.host,
            self.locals,
            self.ext,
            self.adj,
            self.neighbor_hosts,
            self.border,
            self.est,
            self.changed,
        )
    }
}

/// Iterator over `(position in a, value)` for values present in both
/// sorted `u32` slices — the staged flush uses the position to index the
/// slot translation table parallel to `a`.
fn intersect_sorted_positions<'a>(
    a: &'a [u32],
    b: &'a [u32],
) -> impl Iterator<Item = (usize, u32)> + 'a {
    let mut i = 0;
    let mut j = 0;
    std::iter::from_fn(move || {
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let v = (i, a[i]);
                    i += 1;
                    j += 1;
                    return Some(v);
                }
            }
        }
        None
    })
}

/// Iterator over values present in both sorted `u32` slices. Shared with
/// the pure machine core (`crate::machine::HostMachine`), whose flush must
/// intersect borders with changed locals exactly like [`HostProtocol`].
pub(crate) fn intersect_sorted<'a>(a: &'a [u32], b: &'a [u32]) -> impl Iterator<Item = u32> + 'a {
    let mut i = 0;
    let mut j = 0;
    std::iter::from_fn(move || {
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let v = a[i];
                    i += 1;
                    j += 1;
                    return Some(v);
                }
            }
        }
        None
    })
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index loops mutate two arrays side by side
mod tests {
    use super::*;
    use crate::one_to_many::AssignmentPolicy;
    use crate::seq::batagelj_zaversnik;
    use dkcore_graph::generators::{complete, gnp, path, star, worst_case};
    use dkcore_graph::Graph;

    /// Synchronous driver for host protocols, used only by these tests;
    /// the real engine lives in `dkcore-sim`.
    fn run_hosts(g: &Graph, hosts: usize, config: OneToManyConfig) -> (Vec<u32>, u32, u64) {
        run_hosts_with(g, hosts, config, &AssignmentPolicy::Modulo)
    }

    fn run_hosts_with(
        g: &Graph,
        hosts: usize,
        config: OneToManyConfig,
        policy: &AssignmentPolicy,
    ) -> (Vec<u32>, u32, u64) {
        let assignment = Assignment::new(g, hosts, policy);
        let mut protos = HostProtocol::for_assignment(g, &assignment, config);
        let mut inboxes: Vec<Vec<Vec<(NodeId, u32)>>> = vec![Vec::new(); hosts];
        let deliver =
            |msgs: Vec<Outgoing>, from: usize, inboxes: &mut Vec<Vec<Vec<(NodeId, u32)>>>| {
                for m in msgs {
                    match m.dest {
                        Destination::AllHosts => {
                            for h in 0..hosts {
                                if h != from {
                                    inboxes[h].push(m.pairs.clone());
                                }
                            }
                        }
                        Destination::Host(y) => inboxes[y.index()].push(m.pairs.clone()),
                    }
                }
            };
        let mut rounds = 0u32;
        let mut any = false;
        for h in 0..hosts {
            let msgs = protos[h].initial_flush();
            any = any || !msgs.is_empty();
            deliver(msgs, h, &mut inboxes);
        }
        if any {
            rounds += 1;
        }
        loop {
            for h in 0..hosts {
                let batches = std::mem::take(&mut inboxes[h]);
                for pairs in batches {
                    protos[h].receive(&pairs);
                }
            }
            let mut active = false;
            for h in 0..hosts {
                let msgs = protos[h].round_flush();
                active = active || !msgs.is_empty();
                deliver(msgs, h, &mut inboxes);
            }
            if !active {
                break;
            }
            rounds += 1;
        }
        let mut cores = vec![0u32; g.node_count()];
        let mut estimates = 0u64;
        for p in &protos {
            for (u, e) in p.local_estimates() {
                cores[u.index()] = e;
            }
            estimates += p.estimates_sent();
        }
        (cores, rounds, estimates)
    }

    #[test]
    fn construction_slots_and_borders() {
        // Path 0-1-2-3-4-5, 2 hosts mod 2: host 0 owns {0,2,4}.
        let g = path(6);
        let a = Assignment::new(&g, 2, &AssignmentPolicy::Modulo);
        let h0 = HostProtocol::new(&g, &a, HostId(0), OneToManyConfig::default());
        assert_eq!(h0.local_nodes(), &[NodeId(0), NodeId(2), NodeId(4)]);
        assert_eq!(h0.neighbor_hosts(), &[HostId(1)]);
        // Ext neighbors of {0,2,4} are {1,3,5}.
        assert_eq!(h0.estimate_of(NodeId(1)), Some(INFINITY_EST));
        assert_eq!(h0.estimate_of(NodeId(3)), Some(INFINITY_EST));
        assert_eq!(h0.estimate_of(NodeId(42)), None);
    }

    #[test]
    fn initialization_runs_improve_estimate() {
        // Host owning an entire triangle + pendant: internal emulation at
        // init should already settle the pendant effect.
        // Graph: triangle 0-2-4 plus pendant 6 on 0 — all on host 0 (mod 2).
        let g = Graph::from_edges(8, [(0, 2), (2, 4), (4, 0), (0, 6)]).unwrap();
        let a = Assignment::new(&g, 2, &AssignmentPolicy::Modulo);
        let h0 = HostProtocol::new(&g, &a, HostId(0), OneToManyConfig::default());
        // Node 0 has degree 3 but compute_index over (2:2, 4:2, 6:1) gives 2
        // immediately at init.
        assert_eq!(h0.estimate_of(NodeId(0)), Some(2));
        assert_eq!(h0.estimate_of(NodeId(6)), Some(1));
    }

    #[test]
    fn single_host_computes_everything_locally() {
        let g = gnp(60, 0.08, 4);
        let (cores, rounds, estimates) = run_hosts(&g, 1, OneToManyConfig::default());
        assert_eq!(cores, batagelj_zaversnik(&g));
        // One host, no neighbors: initialization already settles all and
        // nothing is ever sent.
        assert_eq!(rounds, 0);
        assert_eq!(estimates, 0);
    }

    #[test]
    fn converges_to_bz_broadcast() {
        for hosts in [2, 3, 7] {
            for seed in 0..4 {
                let g = gnp(50, 0.1, seed);
                let cfg = OneToManyConfig {
                    policy: DisseminationPolicy::Broadcast,
                    emulation: EmulationMode::Worklist,
                };
                let (cores, _, _) = run_hosts(&g, hosts, cfg);
                assert_eq!(cores, batagelj_zaversnik(&g), "hosts {hosts} seed {seed}");
            }
        }
    }

    #[test]
    fn converges_to_bz_point_to_point() {
        for hosts in [2, 5, 16] {
            for seed in 0..4 {
                let g = gnp(50, 0.1, seed + 10);
                let cfg = OneToManyConfig {
                    policy: DisseminationPolicy::PointToPoint,
                    emulation: EmulationMode::Worklist,
                };
                let (cores, _, _) = run_hosts(&g, hosts, cfg);
                assert_eq!(cores, batagelj_zaversnik(&g), "hosts {hosts} seed {seed}");
            }
        }
    }

    #[test]
    fn all_emulation_modes_agree() {
        let g = gnp(40, 0.12, 21);
        let truth = batagelj_zaversnik(&g);
        for emulation in [
            EmulationMode::Worklist,
            EmulationMode::Sweep,
            EmulationMode::PerRound,
        ] {
            for policy in [
                DisseminationPolicy::Broadcast,
                DisseminationPolicy::PointToPoint,
            ] {
                let cfg = OneToManyConfig { policy, emulation };
                let (cores, _, _) = run_hosts(&g, 4, cfg);
                assert_eq!(cores, truth, "{emulation:?}/{policy:?}");
            }
        }
    }

    #[test]
    fn per_round_needs_more_rounds_than_worklist() {
        // The internal-emulation ablation: without intra-round cascades a
        // long path assigned to few hosts converges much more slowly.
        let g = path(40);
        let worklist = OneToManyConfig {
            policy: DisseminationPolicy::PointToPoint,
            emulation: EmulationMode::Worklist,
        };
        let per_round = OneToManyConfig {
            policy: DisseminationPolicy::PointToPoint,
            emulation: EmulationMode::PerRound,
        };
        // Block assignment gives each host a contiguous half of the path,
        // so internal emulation has real intra-host work to shortcut.
        let (_, r_fast, _) = run_hosts_with(&g, 2, worklist, &AssignmentPolicy::Block);
        let (_, r_slow, _) = run_hosts_with(&g, 2, per_round, &AssignmentPolicy::Block);
        assert!(r_slow > r_fast, "per-round {r_slow} vs worklist {r_fast}");
    }

    #[test]
    fn one_host_per_node_equals_one_to_one_semantics() {
        // H == N: the one-to-many protocol degenerates to one-to-one
        // (paper §1: the one-to-one scenario is the special case).
        let g = gnp(30, 0.15, 2);
        let (cores, _, _) = run_hosts(&g, 30, OneToManyConfig::default());
        assert_eq!(cores, batagelj_zaversnik(&g));
    }

    #[test]
    fn broadcast_overhead_is_low() {
        // §5.2: with a broadcast medium "the average number of estimates
        // sent per node is extremely low, always smaller than 3". Our
        // accounting includes the initial announcements (1 per node), so
        // allow a small margin above 3 in this unit check; the figure5
        // bench reports the per-dataset values.
        let g = gnp(100, 0.08, 6);
        let cfg = OneToManyConfig {
            policy: DisseminationPolicy::Broadcast,
            emulation: EmulationMode::Worklist,
        };
        let (_, _, estimates) = run_hosts(&g, 8, cfg);
        let per_node = estimates as f64 / g.node_count() as f64;
        assert!(per_node < 3.5, "broadcast overhead per node = {per_node}");
    }

    #[test]
    fn p2p_overhead_grows_with_hosts() {
        let g = gnp(100, 0.08, 6);
        let cfg = OneToManyConfig {
            policy: DisseminationPolicy::PointToPoint,
            emulation: EmulationMode::Worklist,
        };
        let (_, _, est_few) = run_hosts(&g, 2, cfg);
        let (_, _, est_many) = run_hosts(&g, 64, cfg);
        assert!(
            est_many > est_few,
            "p2p estimates should grow with host count: {est_few} -> {est_many}"
        );
    }

    #[test]
    fn worst_case_and_stars_converge() {
        for (name, g) in [
            ("worst_case", worst_case(15)),
            ("star", star(20)),
            ("complete", complete(10)),
        ] {
            let (cores, _, _) = run_hosts(&g, 4, OneToManyConfig::default());
            assert_eq!(cores, batagelj_zaversnik(&g), "{name}");
        }
    }

    #[test]
    fn receive_ignores_unknown_nodes_and_stale_values() {
        let g = path(6);
        let a = Assignment::new(&g, 2, &AssignmentPolicy::Modulo);
        let mut h0 = HostProtocol::new(&g, &a, HostId(0), OneToManyConfig::default());
        let before: Vec<u32> = h0.local_estimates().map(|(_, e)| e).collect();
        // Node 5 is ext (neighbor of 4); node 3 is ext; but a node from a
        // disconnected region would be unknown — simulate with large id.
        h0.receive(&[(NodeId(3), 10)]); // stale: 10 > current everything
        let after: Vec<u32> = h0.local_estimates().map(|(_, e)| e).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn intersect_sorted_works() {
        let a = [1u32, 3, 5, 7, 9];
        let b = [2u32, 3, 4, 7, 10];
        let got: Vec<u32> = intersect_sorted(&a, &b).collect();
        assert_eq!(got, vec![3, 7]);
        assert_eq!(intersect_sorted(&[], &b).count(), 0);
        assert_eq!(intersect_sorted(&a, &a).count(), a.len());
    }

    #[test]
    fn sink_flush_matches_vec_flush() {
        // Drive two clones of every host in lock-step: one through the
        // Vec-returning flushes, one through an OutgoingSink that records
        // the same structure. They must agree message for message, pair
        // for pair, and in all counters.
        struct Recorder(Vec<Outgoing>);
        impl OutgoingSink for Recorder {
            fn message(
                &mut self,
                dest: Destination,
                pairs: &mut dyn Iterator<Item = (NodeId, u32)>,
            ) {
                self.0.push(Outgoing {
                    dest,
                    pairs: pairs.collect(),
                });
            }
        }
        for emulation in [
            EmulationMode::Worklist,
            EmulationMode::Sweep,
            EmulationMode::PerRound,
        ] {
            for policy in [
                DisseminationPolicy::Broadcast,
                DisseminationPolicy::PointToPoint,
            ] {
                let g = gnp(40, 0.12, 31);
                let cfg = OneToManyConfig { policy, emulation };
                let assignment = Assignment::new(&g, 4, &AssignmentPolicy::Modulo);
                let mut via_vec = HostProtocol::for_assignment(&g, &assignment, cfg);
                let mut via_sink = via_vec.clone();
                let mut inboxes: Vec<Vec<Vec<(NodeId, u32)>>> = vec![Vec::new(); 4];
                for h in 0..4 {
                    let out = via_vec[h].initial_flush();
                    let mut rec = Recorder(Vec::new());
                    let n = via_sink[h].initial_flush_with(&mut rec);
                    assert_eq!(rec.0, out, "{emulation:?}/{policy:?} initial");
                    assert_eq!(n, out.len() as u64);
                    for m in out {
                        match m.dest {
                            Destination::AllHosts => {
                                for (i, inbox) in inboxes.iter_mut().enumerate() {
                                    if i != h {
                                        inbox.push(m.pairs.clone());
                                    }
                                }
                            }
                            Destination::Host(y) => inboxes[y.index()].push(m.pairs),
                        }
                    }
                }
                for _round in 0..30 {
                    let mut quiet = true;
                    for h in 0..4 {
                        for batch in std::mem::take(&mut inboxes[h]) {
                            via_vec[h].receive(&batch);
                            via_sink[h].receive(&batch);
                        }
                    }
                    for h in 0..4 {
                        let out = via_vec[h].round_flush();
                        let mut rec = Recorder(Vec::new());
                        let n = via_sink[h].round_flush_with(&mut rec);
                        assert_eq!(rec.0, out, "{emulation:?}/{policy:?} round");
                        assert_eq!(n, out.len() as u64);
                        assert_eq!(
                            via_vec[h].estimates_sent(),
                            via_sink[h].estimates_sent(),
                            "estimates_sent"
                        );
                        assert_eq!(
                            via_vec[h].messages_sent(),
                            via_sink[h].messages_sent(),
                            "messages_sent"
                        );
                        quiet = quiet && out.is_empty();
                        for m in out {
                            match m.dest {
                                Destination::AllHosts => {
                                    for (i, inbox) in inboxes.iter_mut().enumerate() {
                                        if i != h {
                                            inbox.push(m.pairs.clone());
                                        }
                                    }
                                }
                                Destination::Host(y) => inboxes[y.index()].push(m.pairs),
                            }
                        }
                    }
                    if quiet {
                        break;
                    }
                }
                let a: Vec<Vec<(NodeId, u32)>> = via_vec
                    .iter()
                    .map(|p| p.local_estimates().collect())
                    .collect();
                let b: Vec<Vec<(NodeId, u32)>> = via_sink
                    .iter()
                    .map(|p| p.local_estimates().collect())
                    .collect();
                assert_eq!(a, b, "{emulation:?}/{policy:?} final estimates");
            }
        }
    }

    #[test]
    fn empty_host_is_silent() {
        let g = path(3);
        let a = Assignment::new(&g, 5, &AssignmentPolicy::Modulo);
        let mut h4 = HostProtocol::new(&g, &a, HostId(4), OneToManyConfig::default());
        assert!(h4.initial_flush().is_empty());
        assert!(h4.round_flush().is_empty());
        assert!(!h4.has_pending_changes());
    }
}
