//! Per-host state machine of Algorithms 3–5.

use std::collections::VecDeque;

use dkcore_graph::{Graph, NodeId};

use super::{Assignment, DisseminationPolicy, HostId};
use crate::{compute_index, IncrementalIndex, INFINITY_EST};

/// How the internal emulation of Algorithm 4 (`improveEstimate`) is
/// executed. All modes converge to the same estimates; they differ in how
/// much work happens per message and how many rounds the system needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EmulationMode {
    /// Worklist-driven cascade to fixpoint: only nodes whose inputs changed
    /// are recomputed. Semantically identical to [`Sweep`](Self::Sweep)
    /// with better complexity; the default.
    #[default]
    Worklist,
    /// The paper's literal Algorithm 4: repeated full sweeps over `V(x)`
    /// until no estimate changes.
    Sweep,
    /// Ablation: **no** intra-round cascade. Each receive triggers a single
    /// recomputation pass, and internal consequences propagate one step per
    /// round (as if local nodes messaged each other through the round
    /// loop). Quantifies the value of internal emulation (experiment E8/E9
    /// companion; see `DESIGN.md`).
    PerRound,
}

/// Configuration for the one-to-many host protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OneToManyConfig {
    /// Dissemination policy used by flushes (§3.2.1).
    pub policy: DisseminationPolicy,
    /// Internal-emulation strategy (Algorithm 4).
    pub emulation: EmulationMode,
}

/// Addressee of an outgoing host message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Destination {
    /// Every host hears the message (broadcast medium, Algorithm 3).
    AllHosts,
    /// A single host (point-to-point, Algorithm 5).
    Host(HostId),
}

/// An outgoing estimate-update message `⟨S⟩`: a set of `(node, estimate)`
/// pairs addressed to [`Destination`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outgoing {
    /// Where the message is headed.
    pub dest: Destination,
    /// The changed estimates being announced.
    pub pairs: Vec<(NodeId, u32)>,
}

/// Per-host state machine of Algorithm 3 (with Algorithm 4's
/// `improveEstimate` and Algorithm 5's point-to-point variant).
///
/// The host stores estimates for `V(x) ∪ neighborV(x)` in a single array
/// (the paper: "we store all their estimates in `est[]` instead of having a
/// separate array `core[]`"), keeps a `changed` flag per local node, and
/// exposes the same receive/flush lifecycle as the one-to-one
/// [`NodeProtocol`](crate::one_to_one::NodeProtocol).
///
/// # Example
///
/// ```
/// use dkcore::one_to_many::{Assignment, AssignmentPolicy, HostId, HostProtocol,
///     OneToManyConfig};
/// use dkcore_graph::{generators::complete, NodeId};
///
/// let g = complete(4);
/// let a = Assignment::new(&g, 2, &AssignmentPolicy::Modulo);
/// let mut host = HostProtocol::new(&g, &a, HostId(0), OneToManyConfig::default());
/// // Estimates start at the local degrees (3 in K4).
/// assert_eq!(host.estimate_of(NodeId(0)), Some(3));
/// let initial = host.initial_flush();
/// assert!(!initial.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct HostProtocol {
    host: HostId,
    config: OneToManyConfig,
    /// `V(x)`, sorted by node id. Slot `i` of `est`/`changed` is `locals[i]`.
    locals: Vec<NodeId>,
    /// External neighbors (`neighborV(x) \ V(x)`), sorted. Slot
    /// `locals.len() + j` of `est` is `ext[j]`.
    ext: Vec<NodeId>,
    /// Estimates for `V(x) ∪ neighborV(x)`.
    est: Vec<u32>,
    /// Changed-since-last-flush flags, parallel to `locals`.
    changed: Vec<bool>,
    /// Adjacency of local nodes in slot space.
    adj: Vec<Box<[u32]>>,
    /// Reverse adjacency: for each slot, the local indices adjacent to it.
    rev: Vec<Box<[u32]>>,
    /// Neighbor hosts (`neighborH(x)`), sorted.
    neighbor_hosts: Vec<HostId>,
    /// For each neighbor host (parallel to `neighbor_hosts`): sorted local
    /// indices having at least one neighbor owned by that host.
    border: Vec<Box<[u32]>>,
    /// Slots whose estimate dropped since the last emulation pass
    /// (only used by [`EmulationMode::PerRound`]).
    dirty: Vec<u32>,
    /// Per-local incremental `computeIndex` state, parallel to `locals`
    /// (only maintained by [`EmulationMode::Worklist`], the default).
    idx: Vec<IncrementalIndex>,
    /// Reusable drop-event queue `(slot, old, new)` driving the worklist
    /// cascade; FIFO so that successive drops of one slot are applied in
    /// chronological order. Kept across calls so the hot loop never
    /// allocates once warm.
    work: VecDeque<(u32, u32, u32)>,
    /// Total `(node, estimate)` pairs sent — the paper's Figure 5
    /// "overhead (estimates sent)" numerator.
    estimates_sent: u64,
    /// Total `⟨S⟩` messages sent.
    messages_sent: u64,
}

impl HostProtocol {
    /// Builds the state for `host` from the graph and assignment, running
    /// the initialization of Algorithm 3 (`est[u] ← d(u)` for locals, `+∞`
    /// for external neighbors, then `improveEstimate`).
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range for `assignment`.
    pub fn new(g: &Graph, assignment: &Assignment, host: HostId, config: OneToManyConfig) -> Self {
        let locals: Vec<NodeId> = assignment.nodes_of(host).to_vec();
        debug_assert!(locals.windows(2).all(|w| w[0] < w[1]));

        // Collect external neighbors and neighbor hosts.
        let mut ext: Vec<NodeId> = Vec::new();
        let mut neighbor_hosts: Vec<HostId> = Vec::new();
        for &u in &locals {
            for &v in g.neighbors(u) {
                let h = assignment.host_of(v);
                if h != host {
                    ext.push(v);
                    neighbor_hosts.push(h);
                }
            }
        }
        ext.sort_unstable();
        ext.dedup();
        neighbor_hosts.sort_unstable();
        neighbor_hosts.dedup();

        let slot_of = |v: NodeId| -> u32 {
            match locals.binary_search(&v) {
                Ok(i) => i as u32,
                Err(_) => {
                    let j = ext
                        .binary_search(&v)
                        .expect("neighbor must be local or ext");
                    (locals.len() + j) as u32
                }
            }
        };

        // Adjacency in slot space + reverse adjacency.
        let slot_count = locals.len() + ext.len();
        let mut adj: Vec<Box<[u32]>> = Vec::with_capacity(locals.len());
        let mut rev: Vec<Vec<u32>> = vec![Vec::new(); slot_count];
        for (i, &u) in locals.iter().enumerate() {
            let slots: Vec<u32> = g.neighbors(u).iter().map(|&v| slot_of(v)).collect();
            for &s in &slots {
                rev[s as usize].push(i as u32);
            }
            adj.push(slots.into_boxed_slice());
        }

        // Border lists per neighbor host.
        let mut border: Vec<Vec<u32>> = vec![Vec::new(); neighbor_hosts.len()];
        for (i, &u) in locals.iter().enumerate() {
            let mut hosts_of_u: Vec<HostId> = g
                .neighbors(u)
                .iter()
                .map(|&v| assignment.host_of(v))
                .filter(|&h| h != host)
                .collect();
            hosts_of_u.sort_unstable();
            hosts_of_u.dedup();
            for h in hosts_of_u {
                let j = neighbor_hosts
                    .binary_search(&h)
                    .expect("known neighbor host");
                border[j].push(i as u32);
            }
        }

        // Estimates: locals start at their degree, externals at +∞.
        let mut est = vec![INFINITY_EST; slot_count];
        for (i, &u) in locals.iter().enumerate() {
            est[i] = g.degree(u);
        }

        let mut this = HostProtocol {
            host,
            config,
            changed: vec![false; locals.len()],
            locals,
            ext,
            est,
            adj,
            rev: rev.into_iter().map(Vec::into_boxed_slice).collect(),
            neighbor_hosts,
            border: border.into_iter().map(Vec::into_boxed_slice).collect(),
            dirty: Vec::new(),
            idx: Vec::new(),
            work: VecDeque::new(),
            estimates_sent: 0,
            messages_sent: 0,
        };
        // Algorithm 3 initialization ends with improveEstimate(est): local
        // degrees already constrain each other before anything is sent.
        if this.config.emulation == EmulationMode::Worklist {
            this.init_indexes();
        } else {
            let all: Vec<u32> = (0..this.locals.len() as u32).collect();
            this.emulate(&all);
        }
        this
    }

    /// Builds the protocol state of every host in the assignment.
    pub fn for_assignment(
        g: &Graph,
        assignment: &Assignment,
        config: OneToManyConfig,
    ) -> Vec<HostProtocol> {
        assignment
            .hosts()
            .map(|h| HostProtocol::new(g, assignment, h, config))
            .collect()
    }

    /// This host's identifier.
    pub fn id(&self) -> HostId {
        self.host
    }

    /// The nodes this host is responsible for (`V(x)`), sorted.
    pub fn local_nodes(&self) -> &[NodeId] {
        &self.locals
    }

    /// The hosts owning at least one neighbor of a local node
    /// (`neighborH(x)`), sorted.
    pub fn neighbor_hosts(&self) -> &[HostId] {
        &self.neighbor_hosts
    }

    /// The current estimate this host holds for `v`, local or external;
    /// `None` if `v` is unknown here.
    pub fn estimate_of(&self, v: NodeId) -> Option<u32> {
        self.slot(v).map(|s| self.est[s as usize])
    }

    /// Iterator over `(node, current estimate)` for the local nodes.
    pub fn local_estimates(&self) -> impl Iterator<Item = (NodeId, u32)> + '_ {
        self.locals
            .iter()
            .enumerate()
            .map(|(i, &u)| (u, self.est[i]))
    }

    /// Whether any local estimate changed since the last flush.
    pub fn has_pending_changes(&self) -> bool {
        self.changed.iter().any(|&c| c)
    }

    /// Total `(node, estimate)` pairs sent so far — the numerator of the
    /// paper's Figure 5 overhead metric ("the average number of times a
    /// node generates a new estimate that has to be sent to another host").
    pub fn estimates_sent(&self) -> u64 {
        self.estimates_sent
    }

    /// Total `⟨S⟩` messages sent so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    fn slot(&self, v: NodeId) -> Option<u32> {
        match self.locals.binary_search(&v) {
            Ok(i) => Some(i as u32),
            Err(_) => self
                .ext
                .binary_search(&v)
                .ok()
                .map(|j| (self.locals.len() + j) as u32),
        }
    }

    /// Builds the per-local [`IncrementalIndex`] state and runs the
    /// initialization `improveEstimate` as a drop-event cascade — the
    /// worklist-mode fast path of Algorithm 4.
    fn init_indexes(&mut self) {
        let nlocal = self.locals.len();
        let mut idx = Vec::with_capacity(nlocal);
        for i in 0..nlocal {
            let cap = self.est[i];
            idx.push(IncrementalIndex::from_estimates(
                self.adj[i].iter().map(|&s| self.est[s as usize]),
                cap,
            ));
        }
        self.idx = idx;
        // The indexes were built from the pristine initial estimates, so
        // first collect every local whose own estimate is immediately
        // improvable, then let the cascade propagate the drops.
        for i in 0..nlocal {
            let new = self.idx[i].core();
            if new < self.est[i] {
                let old = self.est[i];
                self.est[i] = new;
                self.changed[i] = true;
                self.work.push_back((i as u32, old, new));
            }
        }
        self.cascade();
    }

    /// Drains the drop-event stack to the internal fixpoint: each event
    /// `(slot, old, new)` feeds the incremental indexes of the local
    /// nodes adjacent to `slot`; locals whose value drops emit follow-up
    /// events. Amortized O(1) per event, allocation-free after warmup —
    /// the worklist-mode replacement for repeated `computeIndex` rescans.
    fn cascade(&mut self) {
        while let Some((s, old, new)) = self.work.pop_front() {
            for t in 0..self.rev[s as usize].len() {
                let l = self.rev[s as usize][t] as usize;
                if self.idx[l].update(old, new) {
                    let old_l = self.est[l];
                    let new_l = self.idx[l].core();
                    self.est[l] = new_l;
                    self.changed[l] = true;
                    self.work.push_back((l as u32, old_l, new_l));
                }
            }
        }
    }

    /// Recomputes local node `i`'s estimate; returns `true` if it dropped.
    fn recompute(&mut self, i: u32) -> bool {
        let cur = self.est[i as usize];
        let t = compute_index(
            self.adj[i as usize].iter().map(|&s| self.est[s as usize]),
            cur,
        );
        if t < cur {
            self.est[i as usize] = t;
            self.changed[i as usize] = true;
            true
        } else {
            false
        }
    }

    /// Algorithm 4 for the recompute-based ablation modes, seeded by the
    /// slots whose estimates just dropped. [`EmulationMode::Worklist`]
    /// never reaches here — it runs the incremental-index cascade
    /// ([`Self::init_indexes`] / [`Self::cascade`]) instead.
    fn emulate(&mut self, dropped_slots: &[u32]) {
        match self.config.emulation {
            EmulationMode::Worklist => {
                unreachable!("Worklist mode is routed to init_indexes/cascade")
            }
            EmulationMode::Sweep => {
                // The paper's literal loop: full passes until quiescence.
                let mut again = true;
                while again {
                    again = false;
                    for l in 0..self.locals.len() as u32 {
                        if self.recompute(l) {
                            again = true;
                        }
                    }
                }
            }
            EmulationMode::PerRound => {
                // One propagation step only: recompute the locals adjacent
                // to the dropped slots, once. Remember newly dropped local
                // slots so the *next* round can continue the cascade.
                let mut affected: Vec<u32> = Vec::new();
                for &s in dropped_slots {
                    affected.extend_from_slice(&self.rev[s as usize]);
                }
                affected.sort_unstable();
                affected.dedup();
                for l in affected {
                    if self.recompute(l) {
                        self.dirty.push(l);
                    }
                }
            }
        }
    }

    /// The initialization message of Algorithm 3:
    /// `S ← {(u, est[u]) : u ∈ V(x)}; send ⟨S⟩ to neighborH(x)`.
    ///
    /// In point-to-point mode the set is filtered per destination to the
    /// border nodes that destination cares about, per Algorithm 5.
    pub fn initial_flush(&mut self) -> Vec<Outgoing> {
        let out = match self.config.policy {
            DisseminationPolicy::Broadcast => {
                if self.locals.is_empty() || self.neighbor_hosts.is_empty() {
                    Vec::new()
                } else {
                    let pairs: Vec<(NodeId, u32)> = self
                        .locals
                        .iter()
                        .enumerate()
                        .map(|(i, &u)| (u, self.est[i]))
                        .collect();
                    self.estimates_sent += pairs.len() as u64;
                    self.messages_sent += 1;
                    vec![Outgoing {
                        dest: Destination::AllHosts,
                        pairs,
                    }]
                }
            }
            DisseminationPolicy::PointToPoint => {
                let mut out = Vec::new();
                for (j, &y) in self.neighbor_hosts.iter().enumerate() {
                    let pairs: Vec<(NodeId, u32)> = self.border[j]
                        .iter()
                        .map(|&i| (self.locals[i as usize], self.est[i as usize]))
                        .collect();
                    if !pairs.is_empty() {
                        self.estimates_sent += pairs.len() as u64;
                        self.messages_sent += 1;
                        out.push(Outgoing {
                            dest: Destination::Host(y),
                            pairs,
                        });
                    }
                }
                out
            }
        };
        // Everything below the initial values has just been announced;
        // clear the flags set by the constructor's improveEstimate...
        //
        // ...except in PerRound mode, where the constructor's single pass
        // may still have pending internal propagation: keep those flags so
        // the cascade continues through subsequent rounds.
        if self.config.emulation != EmulationMode::PerRound {
            self.changed.iter_mut().for_each(|c| *c = false);
        }
        out
    }

    /// Handles an incoming `⟨S⟩` message: `foreach (v, k) ∈ S: if k <
    /// est[v] then est[v] ← k`, followed by `improveEstimate(est)`.
    ///
    /// Pairs about nodes this host does not know (possible on a broadcast
    /// medium) are ignored.
    pub fn receive(&mut self, pairs: &[(NodeId, u32)]) {
        if self.config.emulation == EmulationMode::Worklist {
            // Fast path: push drop events straight onto the cascade stack;
            // no recomputation scans and no per-call allocation.
            for &(v, k) in pairs {
                if let Some(s) = self.slot(v) {
                    let si = s as usize;
                    let old = self.est[si];
                    if k < old {
                        self.est[si] = k;
                        // A local estimate lowered from outside must be
                        // re-announced too, and its index bounded so
                        // later walks start from the right level.
                        if si < self.locals.len() {
                            self.changed[si] = true;
                            self.idx[si].force_bound(k);
                        }
                        self.work.push_back((s, old, k));
                    }
                }
            }
            self.cascade();
            return;
        }
        let mut dropped: Vec<u32> = Vec::new();
        for &(v, k) in pairs {
            if let Some(s) = self.slot(v) {
                if k < self.est[s as usize] {
                    self.est[s as usize] = k;
                    // A local estimate lowered from outside must be
                    // re-announced too.
                    if (s as usize) < self.locals.len() {
                        self.changed[s as usize] = true;
                    }
                    dropped.push(s);
                }
            }
        }
        if !dropped.is_empty() {
            self.emulate(&dropped);
        }
    }

    /// The periodic block of Algorithms 3/5: collect the changed local
    /// estimates, clear the flags, and produce the outgoing messages for
    /// the configured policy. Returns an empty vector when quiescent.
    pub fn round_flush(&mut self) -> Vec<Outgoing> {
        let changed_locals: Vec<u32> = (0..self.locals.len() as u32)
            .filter(|&i| self.changed[i as usize])
            .collect();
        if changed_locals.is_empty() {
            return Vec::new();
        }
        for &i in &changed_locals {
            self.changed[i as usize] = false;
        }
        let out = match self.config.policy {
            DisseminationPolicy::Broadcast => {
                let pairs: Vec<(NodeId, u32)> = changed_locals
                    .iter()
                    .map(|&i| (self.locals[i as usize], self.est[i as usize]))
                    .collect();
                self.estimates_sent += pairs.len() as u64;
                self.messages_sent += 1;
                vec![Outgoing {
                    dest: Destination::AllHosts,
                    pairs,
                }]
            }
            DisseminationPolicy::PointToPoint => {
                let mut out = Vec::new();
                for (j, &y) in self.neighbor_hosts.iter().enumerate() {
                    // Intersect sorted border[j] with changed_locals.
                    let pairs: Vec<(NodeId, u32)> =
                        intersect_sorted(&self.border[j], &changed_locals)
                            .map(|i| (self.locals[i as usize], self.est[i as usize]))
                            .collect();
                    if !pairs.is_empty() {
                        self.estimates_sent += pairs.len() as u64;
                        self.messages_sent += 1;
                        out.push(Outgoing {
                            dest: Destination::Host(y),
                            pairs,
                        });
                    }
                }
                out
            }
        };
        // PerRound ablation: propagate the just-flushed changes one more
        // internal step, setting up the next round.
        if self.config.emulation == EmulationMode::PerRound {
            let dropped = std::mem::take(&mut self.dirty);
            // The flushed locals themselves are the sources.
            let mut sources = changed_locals;
            sources.extend(dropped);
            sources.sort_unstable();
            sources.dedup();
            self.emulate(&sources);
        }
        out
    }
}

/// Iterator over values present in both sorted `u32` slices.
fn intersect_sorted<'a>(a: &'a [u32], b: &'a [u32]) -> impl Iterator<Item = u32> + 'a {
    let mut i = 0;
    let mut j = 0;
    std::iter::from_fn(move || {
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let v = a[i];
                    i += 1;
                    j += 1;
                    return Some(v);
                }
            }
        }
        None
    })
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index loops mutate two arrays side by side
mod tests {
    use super::*;
    use crate::one_to_many::AssignmentPolicy;
    use crate::seq::batagelj_zaversnik;
    use dkcore_graph::generators::{complete, gnp, path, star, worst_case};
    use dkcore_graph::Graph;

    /// Synchronous driver for host protocols, used only by these tests;
    /// the real engine lives in `dkcore-sim`.
    fn run_hosts(g: &Graph, hosts: usize, config: OneToManyConfig) -> (Vec<u32>, u32, u64) {
        run_hosts_with(g, hosts, config, &AssignmentPolicy::Modulo)
    }

    fn run_hosts_with(
        g: &Graph,
        hosts: usize,
        config: OneToManyConfig,
        policy: &AssignmentPolicy,
    ) -> (Vec<u32>, u32, u64) {
        let assignment = Assignment::new(g, hosts, policy);
        let mut protos = HostProtocol::for_assignment(g, &assignment, config);
        let mut inboxes: Vec<Vec<Vec<(NodeId, u32)>>> = vec![Vec::new(); hosts];
        let deliver =
            |msgs: Vec<Outgoing>, from: usize, inboxes: &mut Vec<Vec<Vec<(NodeId, u32)>>>| {
                for m in msgs {
                    match m.dest {
                        Destination::AllHosts => {
                            for h in 0..hosts {
                                if h != from {
                                    inboxes[h].push(m.pairs.clone());
                                }
                            }
                        }
                        Destination::Host(y) => inboxes[y.index()].push(m.pairs.clone()),
                    }
                }
            };
        let mut rounds = 0u32;
        let mut any = false;
        for h in 0..hosts {
            let msgs = protos[h].initial_flush();
            any = any || !msgs.is_empty();
            deliver(msgs, h, &mut inboxes);
        }
        if any {
            rounds += 1;
        }
        loop {
            for h in 0..hosts {
                let batches = std::mem::take(&mut inboxes[h]);
                for pairs in batches {
                    protos[h].receive(&pairs);
                }
            }
            let mut active = false;
            for h in 0..hosts {
                let msgs = protos[h].round_flush();
                active = active || !msgs.is_empty();
                deliver(msgs, h, &mut inboxes);
            }
            if !active {
                break;
            }
            rounds += 1;
        }
        let mut cores = vec![0u32; g.node_count()];
        let mut estimates = 0u64;
        for p in &protos {
            for (u, e) in p.local_estimates() {
                cores[u.index()] = e;
            }
            estimates += p.estimates_sent();
        }
        (cores, rounds, estimates)
    }

    #[test]
    fn construction_slots_and_borders() {
        // Path 0-1-2-3-4-5, 2 hosts mod 2: host 0 owns {0,2,4}.
        let g = path(6);
        let a = Assignment::new(&g, 2, &AssignmentPolicy::Modulo);
        let h0 = HostProtocol::new(&g, &a, HostId(0), OneToManyConfig::default());
        assert_eq!(h0.local_nodes(), &[NodeId(0), NodeId(2), NodeId(4)]);
        assert_eq!(h0.neighbor_hosts(), &[HostId(1)]);
        // Ext neighbors of {0,2,4} are {1,3,5}.
        assert_eq!(h0.estimate_of(NodeId(1)), Some(INFINITY_EST));
        assert_eq!(h0.estimate_of(NodeId(3)), Some(INFINITY_EST));
        assert_eq!(h0.estimate_of(NodeId(42)), None);
    }

    #[test]
    fn initialization_runs_improve_estimate() {
        // Host owning an entire triangle + pendant: internal emulation at
        // init should already settle the pendant effect.
        // Graph: triangle 0-2-4 plus pendant 6 on 0 — all on host 0 (mod 2).
        let g = Graph::from_edges(8, [(0, 2), (2, 4), (4, 0), (0, 6)]).unwrap();
        let a = Assignment::new(&g, 2, &AssignmentPolicy::Modulo);
        let h0 = HostProtocol::new(&g, &a, HostId(0), OneToManyConfig::default());
        // Node 0 has degree 3 but compute_index over (2:2, 4:2, 6:1) gives 2
        // immediately at init.
        assert_eq!(h0.estimate_of(NodeId(0)), Some(2));
        assert_eq!(h0.estimate_of(NodeId(6)), Some(1));
    }

    #[test]
    fn single_host_computes_everything_locally() {
        let g = gnp(60, 0.08, 4);
        let (cores, rounds, estimates) = run_hosts(&g, 1, OneToManyConfig::default());
        assert_eq!(cores, batagelj_zaversnik(&g));
        // One host, no neighbors: initialization already settles all and
        // nothing is ever sent.
        assert_eq!(rounds, 0);
        assert_eq!(estimates, 0);
    }

    #[test]
    fn converges_to_bz_broadcast() {
        for hosts in [2, 3, 7] {
            for seed in 0..4 {
                let g = gnp(50, 0.1, seed);
                let cfg = OneToManyConfig {
                    policy: DisseminationPolicy::Broadcast,
                    emulation: EmulationMode::Worklist,
                };
                let (cores, _, _) = run_hosts(&g, hosts, cfg);
                assert_eq!(cores, batagelj_zaversnik(&g), "hosts {hosts} seed {seed}");
            }
        }
    }

    #[test]
    fn converges_to_bz_point_to_point() {
        for hosts in [2, 5, 16] {
            for seed in 0..4 {
                let g = gnp(50, 0.1, seed + 10);
                let cfg = OneToManyConfig {
                    policy: DisseminationPolicy::PointToPoint,
                    emulation: EmulationMode::Worklist,
                };
                let (cores, _, _) = run_hosts(&g, hosts, cfg);
                assert_eq!(cores, batagelj_zaversnik(&g), "hosts {hosts} seed {seed}");
            }
        }
    }

    #[test]
    fn all_emulation_modes_agree() {
        let g = gnp(40, 0.12, 21);
        let truth = batagelj_zaversnik(&g);
        for emulation in [
            EmulationMode::Worklist,
            EmulationMode::Sweep,
            EmulationMode::PerRound,
        ] {
            for policy in [
                DisseminationPolicy::Broadcast,
                DisseminationPolicy::PointToPoint,
            ] {
                let cfg = OneToManyConfig { policy, emulation };
                let (cores, _, _) = run_hosts(&g, 4, cfg);
                assert_eq!(cores, truth, "{emulation:?}/{policy:?}");
            }
        }
    }

    #[test]
    fn per_round_needs_more_rounds_than_worklist() {
        // The internal-emulation ablation: without intra-round cascades a
        // long path assigned to few hosts converges much more slowly.
        let g = path(40);
        let worklist = OneToManyConfig {
            policy: DisseminationPolicy::PointToPoint,
            emulation: EmulationMode::Worklist,
        };
        let per_round = OneToManyConfig {
            policy: DisseminationPolicy::PointToPoint,
            emulation: EmulationMode::PerRound,
        };
        // Block assignment gives each host a contiguous half of the path,
        // so internal emulation has real intra-host work to shortcut.
        let (_, r_fast, _) = run_hosts_with(&g, 2, worklist, &AssignmentPolicy::Block);
        let (_, r_slow, _) = run_hosts_with(&g, 2, per_round, &AssignmentPolicy::Block);
        assert!(r_slow > r_fast, "per-round {r_slow} vs worklist {r_fast}");
    }

    #[test]
    fn one_host_per_node_equals_one_to_one_semantics() {
        // H == N: the one-to-many protocol degenerates to one-to-one
        // (paper §1: the one-to-one scenario is the special case).
        let g = gnp(30, 0.15, 2);
        let (cores, _, _) = run_hosts(&g, 30, OneToManyConfig::default());
        assert_eq!(cores, batagelj_zaversnik(&g));
    }

    #[test]
    fn broadcast_overhead_is_low() {
        // §5.2: with a broadcast medium "the average number of estimates
        // sent per node is extremely low, always smaller than 3". Our
        // accounting includes the initial announcements (1 per node), so
        // allow a small margin above 3 in this unit check; the figure5
        // bench reports the per-dataset values.
        let g = gnp(100, 0.08, 6);
        let cfg = OneToManyConfig {
            policy: DisseminationPolicy::Broadcast,
            emulation: EmulationMode::Worklist,
        };
        let (_, _, estimates) = run_hosts(&g, 8, cfg);
        let per_node = estimates as f64 / g.node_count() as f64;
        assert!(per_node < 3.5, "broadcast overhead per node = {per_node}");
    }

    #[test]
    fn p2p_overhead_grows_with_hosts() {
        let g = gnp(100, 0.08, 6);
        let cfg = OneToManyConfig {
            policy: DisseminationPolicy::PointToPoint,
            emulation: EmulationMode::Worklist,
        };
        let (_, _, est_few) = run_hosts(&g, 2, cfg);
        let (_, _, est_many) = run_hosts(&g, 64, cfg);
        assert!(
            est_many > est_few,
            "p2p estimates should grow with host count: {est_few} -> {est_many}"
        );
    }

    #[test]
    fn worst_case_and_stars_converge() {
        for (name, g) in [
            ("worst_case", worst_case(15)),
            ("star", star(20)),
            ("complete", complete(10)),
        ] {
            let (cores, _, _) = run_hosts(&g, 4, OneToManyConfig::default());
            assert_eq!(cores, batagelj_zaversnik(&g), "{name}");
        }
    }

    #[test]
    fn receive_ignores_unknown_nodes_and_stale_values() {
        let g = path(6);
        let a = Assignment::new(&g, 2, &AssignmentPolicy::Modulo);
        let mut h0 = HostProtocol::new(&g, &a, HostId(0), OneToManyConfig::default());
        let before: Vec<u32> = h0.local_estimates().map(|(_, e)| e).collect();
        // Node 5 is ext (neighbor of 4); node 3 is ext; but a node from a
        // disconnected region would be unknown — simulate with large id.
        h0.receive(&[(NodeId(3), 10)]); // stale: 10 > current everything
        let after: Vec<u32> = h0.local_estimates().map(|(_, e)| e).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn intersect_sorted_works() {
        let a = [1u32, 3, 5, 7, 9];
        let b = [2u32, 3, 4, 7, 10];
        let got: Vec<u32> = intersect_sorted(&a, &b).collect();
        assert_eq!(got, vec![3, 7]);
        assert_eq!(intersect_sorted(&[], &b).count(), 0);
        assert_eq!(intersect_sorted(&a, &a).count(), a.len());
    }

    #[test]
    fn empty_host_is_silent() {
        let g = path(3);
        let a = Assignment::new(&g, 5, &AssignmentPolicy::Modulo);
        let mut h4 = HostProtocol::new(&g, &a, HostId(4), OneToManyConfig::default());
        assert!(h4.initial_flush().is_empty());
        assert!(h4.round_flush().is_empty());
        assert!(!h4.has_pending_changes());
    }
}
