//! Distributed k-core decomposition — a faithful Rust implementation of
//! *"Distributed k-Core Decomposition"* (Alberto Montresor, Francesco De
//! Pellegrini, Daniele Miorandi; PODC 2011, arXiv:1103.5320).
//!
//! A **k-core** of an undirected graph is the maximal subgraph in which
//! every node has degree at least `k`; a node's **coreness** is the largest
//! `k` such that it belongs to the k-core. The paper contributes
//! distributed algorithms computing the coreness of every node in two
//! deployment scenarios, both available here:
//!
//! * [`one_to_one`] — *one host, one node* (§3.1, Algorithms 1–2): every
//!   node keeps a coreness estimate, initialized to its degree, and
//!   repeatedly lowers it by applying the locality theorem to its
//!   neighbors' estimates, broadcasting changes once per round. Includes
//!   the §3.1.2 message-suppression optimization.
//! * [`one_to_many`] — *one host, many nodes* (§3.2, Algorithms 3–5): a
//!   host responsible for a set of nodes runs the same logic on their
//!   behalf, cascading estimate changes *internally* until quiescence
//!   before disseminating them, either on a broadcast medium or with
//!   per-destination point-to-point messages.
//! * [`machine`] — the protocols refactored into pure transition cores
//!   (`state × action → (state, outputs)`) plus explorable network models
//!   for the `dkcore-model` bounded checker, which proves the safety and
//!   convergence theorems exhaustively on tiny instances.
//! * [`seq`] — sequential baselines: the Batagelj–Zaveršnik `O(m)`
//!   algorithm (the paper's reference \[3\]) used as ground truth, and a
//!   naive peeling algorithm for cross-validation.
//! * [`termination`] — the three termination-detection strategies of §3.3:
//!   centralized, decentralized epidemic aggregation, and fixed-round.
//! * [`dynamic`] / [`stream`] — maintenance under edge churn (the paper's
//!   §1 live-overlay scenario): per-mutation repair and the batched
//!   streaming engine with distributed warm starts.
//!
//! # Quick start
//!
//! ```
//! use dkcore::CoreDecomposition;
//! use dkcore_graph::{Graph, NodeId};
//!
//! // A 4-cycle with two pendant nodes: the cycle is the 2-core, the
//! // pendants have coreness 1.
//! let g = Graph::from_edges(6, [
//!     (0, 1),                  // pendant
//!     (1, 2), (1, 3),
//!     (2, 3), (2, 4),
//!     (3, 4),
//!     (4, 5),                  // pendant
//! ])?;
//! let decomp = CoreDecomposition::compute(&g);
//! assert_eq!(decomp.coreness(NodeId(0)), 1);
//! assert_eq!(decomp.coreness(NodeId(2)), 2);
//! assert_eq!(decomp.max_coreness(), 2);
//! # Ok::<(), dkcore_graph::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compute_index;
mod decomposition;
mod incremental;

pub mod dynamic;
pub mod machine;
pub mod one_to_many;
pub mod one_to_one;
pub mod seq;
pub mod stream;
pub mod termination;

pub use compute_index::compute_index;
pub use decomposition::CoreDecomposition;
pub use incremental::IncrementalIndex;

/// Estimate value representing the paper's `+∞` initialization: "in the
/// absence of more precise information, all entries are initialized to +∞".
pub const INFINITY_EST: u32 = u32::MAX;
