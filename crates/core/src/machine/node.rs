//! Pure transition core of the one-to-one protocol (§3.1) and its
//! explorable network model.

use dkcore_graph::{Graph, NodeId};
use dkcore_model::Machine;

use crate::one_to_one::OneToOneConfig;
use crate::seq::batagelj_zaversnik;
use crate::{IncrementalIndex, INFINITY_EST};

/// The mutable protocol state of Algorithm 1 for one node: everything that
/// changes as messages arrive, and nothing that doesn't.
///
/// `Eq`/`Hash` make whole-system states explorable; the representation is
/// canonical (fixed-length arrays indexed by the immutable neighbor list),
/// so structural equality is semantic equality.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NodeState {
    /// The local coreness estimate (`core` of Algorithm 1).
    core: u32,
    /// Freshest known neighbor estimates, parallel to
    /// [`NodeMachine::neighbors`]; [`INFINITY_EST`] is the `+∞` init.
    est: Box<[u32]>,
    /// Incrementally maintained `computeIndex` over `est`.
    index: IncrementalIndex,
    /// Whether `core` changed since the last flush.
    changed: bool,
}

impl NodeState {
    /// Current local coreness estimate.
    pub fn core(&self) -> u32 {
        self.core
    }

    /// Whether the estimate changed since the last flush.
    pub fn is_changed(&self) -> bool {
        self.changed
    }

    /// The neighbor-estimate array, parallel to
    /// [`NodeMachine::neighbors`].
    pub fn estimates(&self) -> &[u32] {
        &self.est
    }
}

/// One atomic event of the one-to-one protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeAction {
    /// An incoming `⟨v, k⟩` message (the `on receive` block).
    Receive {
        /// Sending neighbor.
        from: NodeId,
        /// Its announced estimate.
        k: u32,
    },
    /// The periodic flush (`repeat every δ time units`).
    Flush,
}

/// The immutable context plus pure transition functions of Algorithm 1 for
/// one node: `step(state, action) → (state, messages)`.
///
/// [`NodeProtocol`](crate::one_to_one::NodeProtocol) is a thin driver over
/// this core (it adds only message accounting), so driver and machine
/// cannot diverge. The `apply_*` methods are the in-place forms the driver
/// uses; [`step`](Self::step) is the pure form the model checker explores.
#[derive(Debug, Clone)]
pub struct NodeMachine {
    id: NodeId,
    neighbors: Box<[NodeId]>,
    config: OneToOneConfig,
}

impl NodeMachine {
    /// Builds the context for node `u` of `g`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range for `g`.
    pub fn new(g: &Graph, u: NodeId, config: OneToOneConfig) -> Self {
        NodeMachine {
            id: u,
            neighbors: g.neighbors(u).into(),
            config,
        }
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's sorted neighbor list (slot `i` of
    /// [`NodeState::estimates`] is `neighbors()[i]`).
    pub fn neighbors(&self) -> &[NodeId] {
        &self.neighbors
    }

    /// The node's degree (also its initial estimate).
    pub fn degree(&self) -> u32 {
        self.neighbors.len() as u32
    }

    /// The protocol configuration.
    pub fn config(&self) -> &OneToOneConfig {
        &self.config
    }

    /// The initialization of Algorithm 1: `core ← d(u)`, `est[v] ← +∞`.
    pub fn initial_state(&self) -> NodeState {
        let d = self.degree();
        NodeState {
            core: d,
            est: vec![INFINITY_EST; d as usize].into_boxed_slice(),
            index: IncrementalIndex::new(d),
            changed: false,
        }
    }

    /// A warm-start state: like [`initial_state`](Self::initial_state) but
    /// with `core` forced down to `initial` (clamped by the degree) — the
    /// re-convergence entry point after a graph mutation.
    pub fn warm_state(&self, initial: u32) -> NodeState {
        let mut s = self.initial_state();
        s.core = initial.min(self.degree());
        s.index.force_bound(s.core);
        s
    }

    /// The freshest estimate `s` holds for neighbor `v`, or `None` if `v`
    /// is not a neighbor.
    pub fn estimate_of(&self, s: &NodeState, v: NodeId) -> Option<u32> {
        self.neighbors.binary_search(&v).ok().map(|i| s.est[i])
    }

    /// The `on receive ⟨v, k⟩` transition, in place. Returns `true` iff
    /// the local estimate dropped. Messages from non-neighbors and stale
    /// (non-decreasing) values are ignored.
    pub fn apply_receive(&self, s: &mut NodeState, from: NodeId, k: u32) -> bool {
        let Ok(i) = self.neighbors.binary_search(&from) else {
            return false;
        };
        let old = s.est[i];
        if k >= old {
            return false;
        }
        s.est[i] = k;
        // O(1) amortized incremental form of the paper's
        // `computeIndex(est, u, core)` rescan; bit-identical result.
        if s.index.update(old, k) {
            s.core = s.index.core();
            s.changed = true;
            true
        } else {
            false
        }
    }

    /// The periodic-flush transition, in place: if `changed`, clear the
    /// flag and offer `⟨u, core⟩` to each addressed neighbor via `sink`.
    /// With [`OneToOneConfig::send_optimization`] the recipients are
    /// filtered to those with `core < est[v]`.
    ///
    /// Returns `Some((core, recipients))` when at least one message was
    /// emitted, `None` otherwise.
    pub fn apply_flush<F>(&self, s: &mut NodeState, mut sink: F) -> Option<(u32, u64)>
    where
        F: FnMut(NodeId, u32),
    {
        if !s.changed {
            return None;
        }
        s.changed = false;
        let mut count = 0u64;
        if self.config.send_optimization {
            for (&v, &est) in self.neighbors.iter().zip(s.est.iter()) {
                if s.core < est {
                    sink(v, s.core);
                    count += 1;
                }
            }
        } else {
            for &v in self.neighbors.iter() {
                sink(v, s.core);
                count += 1;
            }
        }
        if count == 0 {
            return None;
        }
        Some((s.core, count))
    }

    /// The initialization broadcast: offer `⟨u, core⟩` to every neighbor.
    /// Does not touch the state (the flag semantics of Algorithm 1 start
    /// clean). Returns `Some((core, neighbors))` unless isolated.
    pub fn emit_initial<F>(&self, s: &NodeState, mut sink: F) -> Option<(u32, u64)>
    where
        F: FnMut(NodeId, u32),
    {
        if self.neighbors.is_empty() {
            return None;
        }
        for &v in self.neighbors.iter() {
            sink(v, s.core);
        }
        Some((s.core, self.neighbors.len() as u64))
    }

    /// The pure transition function: the successor of `s` under `a`, plus
    /// the emitted `(recipient, estimate)` messages.
    pub fn step(&self, s: &NodeState, a: &NodeAction) -> (NodeState, Vec<(NodeId, u32)>) {
        let mut next = s.clone();
        let mut out = Vec::new();
        match *a {
            NodeAction::Receive { from, k } => {
                self.apply_receive(&mut next, from, k);
            }
            NodeAction::Flush => {
                self.apply_flush(&mut next, |v, c| out.push((v, c)));
            }
        }
        (next, out)
    }
}

/// Explorable model of a whole one-to-one system: every node's
/// [`NodeState`] plus the multiset of in-flight messages, with per-message
/// delivery and per-node flushes as the nondeterministic actions.
///
/// Checked properties (see the `dkcore_model` crate docs):
///
/// * **invariant** — every estimate stays ≥ the true coreness (Theorem 2);
/// * **step** — estimates are monotone non-increasing per node;
/// * **terminal** — a quiescent system (no messages, no pending flushes)
///   has every estimate equal to the Batagelj–Zaveršnik coreness.
pub struct NodeNetModel {
    machines: Vec<NodeMachine>,
    truth: Vec<u32>,
}

impl NodeNetModel {
    /// Builds the model for every node of `g`; ground truth is computed
    /// once with the sequential Batagelj–Zaveršnik baseline.
    pub fn new(g: &Graph, config: OneToOneConfig) -> Self {
        NodeNetModel {
            machines: g.nodes().map(|u| NodeMachine::new(g, u, config)).collect(),
            truth: batagelj_zaversnik(g),
        }
    }
}

/// Canonical whole-system state of [`NodeNetModel`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NodeNetState {
    nodes: Vec<NodeState>,
    /// In-flight `(from, to, k)` messages, kept sorted: the canonical
    /// multiset representation required by the [`Machine`] contract.
    inflight: Vec<(u32, u32, u32)>,
}

/// One nondeterministic event of [`NodeNetModel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeNetAction {
    /// Deliver one in-flight `⟨from, k⟩` message to `to`.
    Deliver {
        /// Sender.
        from: u32,
        /// Receiver.
        to: u32,
        /// The estimate carried.
        k: u32,
    },
    /// Run one node's periodic flush.
    Flush {
        /// The flushing node.
        node: u32,
    },
}

impl Machine for NodeNetModel {
    type State = NodeNetState;
    type Action = NodeNetAction;

    fn initial(&self) -> NodeNetState {
        let nodes: Vec<NodeState> = self.machines.iter().map(|m| m.initial_state()).collect();
        // Local event ordering puts each node's initialization broadcast
        // before any receive on that node, and the broadcast content (the
        // degree) is input-independent — so all initial messages can be
        // seeded in flight up front without losing interleavings.
        let mut inflight = Vec::new();
        for (u, m) in self.machines.iter().enumerate() {
            m.emit_initial(&nodes[u], |v, k| inflight.push((u as u32, v.0, k)));
        }
        inflight.sort_unstable();
        NodeNetState { nodes, inflight }
    }

    fn actions(&self, s: &NodeNetState, out: &mut Vec<NodeNetAction>) {
        // One Deliver per *distinct* in-flight message: delivering either
        // of two identical copies yields the same successor, so exploring
        // one is sound (and the remaining copy stays in flight).
        let mut prev = None;
        for &(from, to, k) in &s.inflight {
            if prev != Some((from, to, k)) {
                out.push(NodeNetAction::Deliver { from, to, k });
                prev = Some((from, to, k));
            }
        }
        for (u, n) in s.nodes.iter().enumerate() {
            if n.is_changed() {
                out.push(NodeNetAction::Flush { node: u as u32 });
            }
        }
    }

    fn step(&self, s: &NodeNetState, a: &NodeNetAction) -> NodeNetState {
        let mut next = s.clone();
        match *a {
            NodeNetAction::Deliver { from, to, k } => {
                let pos = next
                    .inflight
                    .iter()
                    .position(|&m| m == (from, to, k))
                    .expect("only enabled actions are stepped");
                next.inflight.remove(pos);
                self.machines[to as usize].apply_receive(
                    &mut next.nodes[to as usize],
                    NodeId(from),
                    k,
                );
            }
            NodeNetAction::Flush { node } => {
                let mut sent = Vec::new();
                self.machines[node as usize].apply_flush(&mut next.nodes[node as usize], |v, k| {
                    sent.push((node, v.0, k));
                });
                next.inflight.extend(sent);
                next.inflight.sort_unstable();
            }
        }
        next
    }

    fn invariant(&self, s: &NodeNetState) -> Result<(), String> {
        // Theorem 2 safety: no estimate ever drops below the true
        // coreness — neither a node's own nor any heard neighbor value.
        for (u, n) in s.nodes.iter().enumerate() {
            if n.core() < self.truth[u] {
                return Err(format!(
                    "node {u}: estimate {} below true coreness {}",
                    n.core(),
                    self.truth[u]
                ));
            }
            for (i, &v) in self.machines[u].neighbors().iter().enumerate() {
                if n.estimates()[i] < self.truth[v.index()] {
                    return Err(format!(
                        "node {u}: est[{v:?}] = {} below true coreness {}",
                        n.estimates()[i],
                        self.truth[v.index()]
                    ));
                }
            }
        }
        Ok(())
    }

    fn check_step(
        &self,
        from: &NodeNetState,
        a: &NodeNetAction,
        to: &NodeNetState,
    ) -> Result<(), String> {
        // Estimates are monotone non-increasing along every transition.
        for (u, (before, after)) in from.nodes.iter().zip(to.nodes.iter()).enumerate() {
            if after.core() > before.core() {
                return Err(format!(
                    "node {u}: estimate rose {} -> {} on {a:?}",
                    before.core(),
                    after.core()
                ));
            }
        }
        Ok(())
    }

    fn terminal(&self, s: &NodeNetState) -> Result<(), String> {
        // Quiescence implies convergence (Theorem 3 at this instance).
        for (u, n) in s.nodes.iter().enumerate() {
            if n.core() != self.truth[u] {
                return Err(format!(
                    "quiescent but node {u} holds {} instead of coreness {}",
                    n.core(),
                    self.truth[u]
                ));
            }
        }
        Ok(())
    }

    fn render_action(&self, a: &NodeNetAction) -> String {
        match *a {
            NodeNetAction::Deliver { from, to, k } => {
                format!("deliver from={from} to={to} k={k}")
            }
            NodeNetAction::Flush { node } => format!("flush node={node}"),
        }
    }

    fn render_state(&self, s: &NodeNetState) -> String {
        let cores: Vec<u32> = s.nodes.iter().map(NodeState::core).collect();
        format!("cores={cores:?} inflight={}", s.inflight.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkcore_graph::generators::{complete, path, star};
    use dkcore_model::{ExploreConfig, Explorer, Report};

    fn explore(g: &Graph, config: OneToOneConfig) -> Report {
        Explorer::new(ExploreConfig::default()).run(&NodeNetModel::new(g, config))
    }

    #[test]
    fn path3_every_interleaving_converges() {
        let report = explore(&path(3), OneToOneConfig::default());
        assert!(report.proved(), "{}", report.summary());
        assert!(report.terminals > 0);
    }

    #[test]
    fn path4_and_star4_prove_for_both_configs() {
        for g in [path(4), star(4)] {
            for send_optimization in [true, false] {
                let report = explore(&g, OneToOneConfig { send_optimization });
                assert!(
                    report.proved(),
                    "opt={send_optimization}: {}",
                    report.summary()
                );
            }
        }
    }

    #[test]
    fn triangle_proves_and_is_nontrivial() {
        let report = explore(&complete(3), OneToOneConfig::default());
        assert!(report.proved(), "{}", report.summary());
        // The exploration must actually branch (K3 has 6 initial
        // messages), or the "proof" is vacuous.
        assert!(report.states > 50, "only {} states", report.states);
    }

    #[test]
    fn path6_proves_exhaustively() {
        // A full 6-node instance: 16 384 states, every per-message
        // delivery and flush interleaving.
        let report = explore(&path(6), OneToOneConfig::default());
        assert!(report.proved(), "{}", report.summary());
        assert!(report.states > 10_000, "only {} states", report.states);
    }

    #[test]
    #[ignore = "exhaustive tier (CI model-check job): ~100k states"]
    fn star5_proves_exhaustively() {
        let report = explore(&star(5), OneToOneConfig::default());
        assert!(report.proved(), "{}", report.summary());
    }

    #[test]
    #[ignore = "exhaustive tier (CI model-check job): bounded sweep, ~1M states"]
    fn figure2_graph_is_violation_free_within_bound() {
        // The paper's §3.1.1 walkthrough graph: 6 nodes, degrees
        // [1, 3, 3, 3, 3, 1]. Its full interleaving space exceeds the
        // exhaustive budget (> 3M states), so this is an honest *bounded*
        // sweep: every state within the cap is checked, exhaustion is not
        // claimed.
        let g =
            Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (1, 3), (2, 4)]).unwrap();
        let report = Explorer::new(ExploreConfig {
            max_states: 1_000_000,
            ..ExploreConfig::default()
        })
        .run(&NodeNetModel::new(&g, OneToOneConfig::default()));
        assert!(report.counterexample().is_none(), "{}", report.summary());
    }

    #[test]
    fn seeded_mutation_yields_minimal_counterexample() {
        // A model whose flush is deliberately broken: it announces
        // `core - 1`. The checker must refute it with a minimal trace —
        // this is the meta-test that the harness actually catches bugs
        // of the class it claims to.
        struct Undershoot(NodeNetModel);
        impl Machine for Undershoot {
            type State = NodeNetState;
            type Action = NodeNetAction;
            fn initial(&self) -> NodeNetState {
                self.0.initial()
            }
            fn actions(&self, s: &NodeNetState, out: &mut Vec<NodeNetAction>) {
                self.0.actions(s, out);
            }
            fn step(&self, s: &NodeNetState, a: &NodeNetAction) -> NodeNetState {
                if let NodeNetAction::Deliver { from, to, k } = *a {
                    // The wire lies: every message arrives one lower than
                    // announced.
                    let mut next = s.clone();
                    let pos = next
                        .inflight
                        .iter()
                        .position(|&m| m == (from, to, k))
                        .expect("enabled");
                    next.inflight.remove(pos);
                    self.0.machines[to as usize].apply_receive(
                        &mut next.nodes[to as usize],
                        NodeId(from),
                        k.saturating_sub(1),
                    );
                    next
                } else {
                    self.0.step(s, a)
                }
            }
            fn invariant(&self, s: &NodeNetState) -> Result<(), String> {
                self.0.invariant(s)
            }
            fn check_step(
                &self,
                from: &NodeNetState,
                a: &NodeNetAction,
                to: &NodeNetState,
            ) -> Result<(), String> {
                self.0.check_step(from, a, to)
            }
            fn terminal(&self, s: &NodeNetState) -> Result<(), String> {
                self.0.terminal(s)
            }
            fn render_action(&self, a: &NodeNetAction) -> String {
                self.0.render_action(a)
            }
        }

        let model = Undershoot(NodeNetModel::new(&path(3), OneToOneConfig::default()));
        let report = Explorer::new(ExploreConfig::default()).run(&model);
        let cx = report
            .counterexample()
            .expect("undershooting deliveries must break Theorem 2");
        // BFS: one delivery suffices (an endpoint's ⟨1⟩ arrives as 0,
        // dragging the middle node below its coreness eventually — the
        // first violated check pins the exact step).
        assert!(cx.minimal);
        assert!(!cx.trace.is_empty());
        assert!(cx.render().contains("kind=violation"), "{}", cx.render());
    }

    #[test]
    fn driver_and_machine_cannot_disagree_on_a_trace() {
        use crate::one_to_one::NodeProtocol;
        // Quick in-module sanity (the full differential suite lives in
        // tests/machine_conformance.rs): replay one fixed trace through
        // the thin driver and the pure core; states must stay identical.
        let g = path(4);
        let cfg = OneToOneConfig::default();
        let mut driver = NodeProtocol::new(&g, NodeId(1), cfg);
        let machine = NodeMachine::new(&g, NodeId(1), cfg);
        let mut state = machine.initial_state();
        for (from, k) in [(0u32, 1u32), (2, 2), (0, 0), (2, 1)] {
            assert_eq!(
                driver.receive(NodeId(from), k),
                machine.apply_receive(&mut state, NodeId(from), k)
            );
            assert_eq!(driver.state(), &state);
            let mut a = Vec::new();
            let mut b = Vec::new();
            let ra = driver.round_flush_with(|v, c| a.push((v, c)));
            let rb = machine.apply_flush(&mut state, |v, c| b.push((v, c)));
            assert_eq!(ra, rb.map(|(c, _)| c));
            assert_eq!(a, b);
            assert_eq!(driver.state(), &state);
        }
    }
}
