//! Pure transition core of the one-to-many protocol (§3.2) and its
//! explorable network model.

use dkcore_graph::{Graph, NodeId};
use dkcore_model::Machine;

use crate::compute_index;
use crate::one_to_many::{
    intersect_sorted, Assignment, Destination, DisseminationPolicy, EmulationMode, HostId,
    HostProtocol, OneToManyConfig, Outgoing,
};
use crate::seq::batagelj_zaversnik;

/// The mutable protocol state of Algorithms 3–5 for one host: the
/// slot-space estimate array (`V(x)` first, then `neighborV(x)`) and the
/// per-local changed-since-last-flush flags.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HostState {
    est: Vec<u32>,
    changed: Vec<bool>,
}

impl HostState {
    /// The estimate array in slot space (locals first, then externals).
    pub fn estimates(&self) -> &[u32] {
        &self.est
    }

    /// The per-local changed flags.
    pub fn changed(&self) -> &[bool] {
        &self.changed
    }

    /// Whether any local estimate changed since the last flush.
    pub fn has_pending_changes(&self) -> bool {
        self.changed.iter().any(|&c| c)
    }
}

/// One atomic event of the one-to-many protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostAction {
    /// An incoming `⟨S⟩` batch of `(node, estimate)` pairs.
    Receive(Vec<(NodeId, u32)>),
    /// The periodic flush of Algorithms 3/5.
    Flush,
}

/// The immutable context plus pure transition functions of Algorithms 3–5
/// for one host: `step(state, action) → (state, outgoing batches)`.
///
/// Construction reuses [`HostProtocol`]'s builder (slot spaces, borders,
/// and the initial `improveEstimate` are shared by construction); the
/// transitions use the paper's literal sweep-to-fixpoint emulation
/// (Algorithm 4), which reaches the same fixpoints and sets the same
/// changed flags as the optimized worklist cascade — the
/// `machine_conformance` differential suite pins the two step-for-step,
/// message-for-message.
#[derive(Debug, Clone)]
pub struct HostMachine {
    host: HostId,
    /// `V(x)`, sorted; slot `i` is `locals[i]`.
    locals: Vec<NodeId>,
    /// `neighborV(x) \ V(x)`, sorted; slot `locals.len() + j` is `ext[j]`.
    ext: Vec<NodeId>,
    /// Adjacency of local nodes in slot space.
    adj: Vec<Box<[u32]>>,
    /// `neighborH(x)`, sorted.
    neighbor_hosts: Vec<HostId>,
    /// Per neighbor host: sorted local indices bordering it.
    border: Vec<Box<[u32]>>,
    policy: DisseminationPolicy,
    /// State right after Algorithm 3's initialization (local degrees,
    /// `+∞` externals, one `improveEstimate` pass; flags set for locals
    /// the pass lowered).
    init: HostState,
}

impl HostMachine {
    /// Builds the context for `host` under `assignment`, sharing
    /// [`HostProtocol`]'s construction.
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range for `assignment`.
    pub fn new(
        g: &Graph,
        assignment: &Assignment,
        host: HostId,
        policy: DisseminationPolicy,
    ) -> Self {
        let proto = HostProtocol::new(
            g,
            assignment,
            host,
            OneToManyConfig {
                policy,
                emulation: EmulationMode::Worklist,
            },
        );
        let (host, locals, ext, adj, neighbor_hosts, border, est, changed) =
            proto.into_machine_parts();
        HostMachine {
            host,
            locals,
            ext,
            adj,
            neighbor_hosts,
            border,
            policy,
            init: HostState { est, changed },
        }
    }

    /// This host's identifier.
    pub fn id(&self) -> HostId {
        self.host
    }

    /// The nodes this host is responsible for (`V(x)`), sorted.
    pub fn local_nodes(&self) -> &[NodeId] {
        &self.locals
    }

    /// The hosts owning at least one neighbor of a local node, sorted.
    pub fn neighbor_hosts(&self) -> &[HostId] {
        &self.neighbor_hosts
    }

    /// The node occupying slot `s` (locals first, then externals).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn node_of_slot(&self, s: u32) -> NodeId {
        let si = s as usize;
        if si < self.locals.len() {
            self.locals[si]
        } else {
            self.ext[si - self.locals.len()]
        }
    }

    /// The state right after Algorithm 3's initialization.
    pub fn initial_state(&self) -> HostState {
        self.init.clone()
    }

    fn slot(&self, v: NodeId) -> Option<usize> {
        match self.locals.binary_search(&v) {
            Ok(i) => Some(i),
            Err(_) => self
                .ext
                .binary_search(&v)
                .ok()
                .map(|j| self.locals.len() + j),
        }
    }

    /// Algorithm 4 (`improveEstimate`), the paper's literal form: full
    /// sweeps over the locals until no estimate changes.
    fn settle(&self, s: &mut HostState) {
        let mut again = true;
        while again {
            again = false;
            for l in 0..self.locals.len() {
                let cur = s.est[l];
                let t = compute_index(self.adj[l].iter().map(|&x| s.est[x as usize]), cur);
                if t < cur {
                    s.est[l] = t;
                    s.changed[l] = true;
                    again = true;
                }
            }
        }
    }

    /// The `on receive ⟨S⟩` transition, in place: apply every fresher
    /// pair, then cascade internally to quiescence. Pairs about unknown
    /// nodes are ignored.
    pub fn apply_receive<I>(&self, s: &mut HostState, pairs: I)
    where
        I: IntoIterator<Item = (NodeId, u32)>,
    {
        let mut any = false;
        for (v, k) in pairs {
            if let Some(si) = self.slot(v) {
                if k < s.est[si] {
                    s.est[si] = k;
                    if si < self.locals.len() {
                        s.changed[si] = true;
                    }
                    any = true;
                }
            }
        }
        if any {
            self.settle(s);
        }
    }

    /// The initialization message of Algorithm 3/5, in place: announce the
    /// initial local estimates (whole set on broadcast, per-destination
    /// border subsets point-to-point) and clear the flags. Returns
    /// `(messages, estimate pairs)` emitted.
    pub fn emit_initial(&self, s: &mut HostState, out: &mut Vec<Outgoing>) -> (u64, u64) {
        let mut messages = 0u64;
        let mut estimates = 0u64;
        match self.policy {
            DisseminationPolicy::Broadcast => {
                if !self.locals.is_empty() && !self.neighbor_hosts.is_empty() {
                    messages = 1;
                    estimates = self.locals.len() as u64;
                    out.push(Outgoing {
                        dest: Destination::AllHosts,
                        pairs: self
                            .locals
                            .iter()
                            .enumerate()
                            .map(|(i, &u)| (u, s.est[i]))
                            .collect(),
                    });
                }
            }
            DisseminationPolicy::PointToPoint => {
                for (j, &y) in self.neighbor_hosts.iter().enumerate() {
                    if self.border[j].is_empty() {
                        continue;
                    }
                    messages += 1;
                    estimates += self.border[j].len() as u64;
                    out.push(Outgoing {
                        dest: Destination::Host(y),
                        pairs: self.border[j]
                            .iter()
                            .map(|&i| (self.locals[i as usize], s.est[i as usize]))
                            .collect(),
                    });
                }
            }
        }
        s.changed.iter_mut().for_each(|c| *c = false);
        (messages, estimates)
    }

    /// The periodic flush of Algorithms 3/5, in place: collect the changed
    /// locals, clear their flags, and emit the policy's messages. Returns
    /// `(messages, estimate pairs)` emitted — `(0, 0)` when quiescent.
    pub fn apply_flush(&self, s: &mut HostState, out: &mut Vec<Outgoing>) -> (u64, u64) {
        let changed_locals: Vec<u32> = (0..self.locals.len() as u32)
            .filter(|&i| s.changed[i as usize])
            .collect();
        if changed_locals.is_empty() {
            return (0, 0);
        }
        for &i in &changed_locals {
            s.changed[i as usize] = false;
        }
        let mut messages = 0u64;
        let mut estimates = 0u64;
        match self.policy {
            DisseminationPolicy::Broadcast => {
                messages = 1;
                estimates = changed_locals.len() as u64;
                out.push(Outgoing {
                    dest: Destination::AllHosts,
                    pairs: changed_locals
                        .iter()
                        .map(|&i| (self.locals[i as usize], s.est[i as usize]))
                        .collect(),
                });
            }
            DisseminationPolicy::PointToPoint => {
                for (j, &y) in self.neighbor_hosts.iter().enumerate() {
                    let pairs: Vec<(NodeId, u32)> =
                        intersect_sorted(&self.border[j], &changed_locals)
                            .map(|i| (self.locals[i as usize], s.est[i as usize]))
                            .collect();
                    if pairs.is_empty() {
                        continue;
                    }
                    messages += 1;
                    estimates += pairs.len() as u64;
                    out.push(Outgoing {
                        dest: Destination::Host(y),
                        pairs,
                    });
                }
            }
        }
        (messages, estimates)
    }

    /// The pure transition function: the successor of `s` under `a`, plus
    /// the emitted `⟨S⟩` batches.
    pub fn step(&self, s: &HostState, a: &HostAction) -> (HostState, Vec<Outgoing>) {
        let mut next = s.clone();
        let mut out = Vec::new();
        match a {
            HostAction::Receive(pairs) => {
                self.apply_receive(&mut next, pairs.iter().copied());
            }
            HostAction::Flush => {
                self.apply_flush(&mut next, &mut out);
            }
        }
        (next, out)
    }
}

/// Explorable model of a whole one-to-many system: every host's
/// [`HostState`] plus the multiset of in-flight `⟨S⟩` batches, with
/// per-batch delivery and per-host flushes as the nondeterministic
/// actions (a broadcast is one in-flight batch per hearing host, each
/// delivered independently — hosts hear it at different times).
///
/// Checked properties mirror [`NodeNetModel`](super::NodeNetModel):
/// Theorem 2 safety as a state invariant (every slot ≥ true coreness),
/// monotone non-increasing estimates per transition, and quiescence ⇒
/// local estimates ≡ Batagelj–Zaveršnik coreness.
pub struct HostNetModel {
    machines: Vec<HostMachine>,
    truth: Vec<u32>,
}

impl HostNetModel {
    /// Builds the model for every host of `assignment`.
    pub fn new(g: &Graph, assignment: &Assignment, policy: DisseminationPolicy) -> Self {
        HostNetModel {
            machines: assignment
                .hosts()
                .map(|h| HostMachine::new(g, assignment, h, policy))
                .collect(),
            truth: batagelj_zaversnik(g),
        }
    }

    /// Expands one outgoing batch from `from` into per-receiver in-flight
    /// entries (`(to, pairs)` with `NodeId` flattened to raw ids).
    fn expand(&self, from: usize, m: &Outgoing, inflight: &mut Vec<(u32, Vec<(u32, u32)>)>) {
        let raw: Vec<(u32, u32)> = m.pairs.iter().map(|&(v, k)| (v.0, k)).collect();
        match m.dest {
            Destination::AllHosts => {
                for h in 0..self.machines.len() {
                    if h != from {
                        inflight.push((h as u32, raw.clone()));
                    }
                }
            }
            Destination::Host(y) => inflight.push((y.index() as u32, raw)),
        }
    }
}

/// Canonical whole-system state of [`HostNetModel`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HostNetState {
    hosts: Vec<HostState>,
    /// In-flight `(to, pairs)` batches, kept sorted: the canonical
    /// multiset representation required by the [`Machine`] contract.
    inflight: Vec<(u32, Vec<(u32, u32)>)>,
}

/// One nondeterministic event of [`HostNetModel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostNetAction {
    /// Deliver one in-flight batch to `to`.
    Deliver {
        /// Receiving host.
        to: u32,
        /// The `(node, estimate)` pairs carried.
        pairs: Vec<(u32, u32)>,
    },
    /// Run one host's periodic flush.
    Flush {
        /// The flushing host.
        host: u32,
    },
}

impl Machine for HostNetModel {
    type State = HostNetState;
    type Action = HostNetAction;

    fn initial(&self) -> HostNetState {
        let mut hosts: Vec<HostState> = self.machines.iter().map(|m| m.initial_state()).collect();
        let mut inflight = Vec::new();
        for (h, m) in self.machines.iter().enumerate() {
            let mut out = Vec::new();
            m.emit_initial(&mut hosts[h], &mut out);
            for msg in &out {
                self.expand(h, msg, &mut inflight);
            }
        }
        inflight.sort_unstable();
        HostNetState { hosts, inflight }
    }

    fn actions(&self, s: &HostNetState, out: &mut Vec<HostNetAction>) {
        let mut prev: Option<&(u32, Vec<(u32, u32)>)> = None;
        for m in &s.inflight {
            if prev != Some(m) {
                out.push(HostNetAction::Deliver {
                    to: m.0,
                    pairs: m.1.clone(),
                });
                prev = Some(m);
            }
        }
        for (h, hs) in s.hosts.iter().enumerate() {
            if hs.has_pending_changes() {
                out.push(HostNetAction::Flush { host: h as u32 });
            }
        }
    }

    fn step(&self, s: &HostNetState, a: &HostNetAction) -> HostNetState {
        let mut next = s.clone();
        match a {
            HostNetAction::Deliver { to, pairs } => {
                let key = (*to, pairs.clone());
                let pos = next
                    .inflight
                    .iter()
                    .position(|m| *m == key)
                    .expect("only enabled actions are stepped");
                next.inflight.remove(pos);
                self.machines[*to as usize].apply_receive(
                    &mut next.hosts[*to as usize],
                    pairs.iter().map(|&(v, k)| (NodeId(v), k)),
                );
            }
            HostNetAction::Flush { host } => {
                let h = *host as usize;
                let mut out = Vec::new();
                self.machines[h].apply_flush(&mut next.hosts[h], &mut out);
                for msg in &out {
                    self.expand(h, msg, &mut next.inflight);
                }
                next.inflight.sort_unstable();
            }
        }
        next
    }

    fn invariant(&self, s: &HostNetState) -> Result<(), String> {
        // Theorem 2 safety, host form: every stored estimate — a local's
        // own or a heard external value — stays ≥ that node's coreness.
        for (h, (m, hs)) in self.machines.iter().zip(s.hosts.iter()).enumerate() {
            for (slot, &e) in hs.estimates().iter().enumerate() {
                let v = m.node_of_slot(slot as u32);
                if e < self.truth[v.index()] {
                    return Err(format!(
                        "host {h}: est[{v:?}] = {e} below true coreness {}",
                        self.truth[v.index()]
                    ));
                }
            }
        }
        Ok(())
    }

    fn check_step(
        &self,
        from: &HostNetState,
        a: &HostNetAction,
        to: &HostNetState,
    ) -> Result<(), String> {
        for (h, (before, after)) in from.hosts.iter().zip(to.hosts.iter()).enumerate() {
            for (slot, (&b, &x)) in before
                .estimates()
                .iter()
                .zip(after.estimates().iter())
                .enumerate()
            {
                if x > b {
                    return Err(format!(
                        "host {h} slot {slot}: estimate rose {b} -> {x} on {a:?}"
                    ));
                }
            }
        }
        Ok(())
    }

    fn terminal(&self, s: &HostNetState) -> Result<(), String> {
        for (h, (m, hs)) in self.machines.iter().zip(s.hosts.iter()).enumerate() {
            for (l, &u) in m.local_nodes().iter().enumerate() {
                let e = hs.estimates()[l];
                if e != self.truth[u.index()] {
                    return Err(format!(
                        "quiescent but host {h} holds est[{u:?}] = {e} instead of coreness {}",
                        self.truth[u.index()]
                    ));
                }
            }
        }
        Ok(())
    }

    fn render_action(&self, a: &HostNetAction) -> String {
        match a {
            HostNetAction::Deliver { to, pairs } => {
                format!("deliver to={to} pairs={pairs:?}")
            }
            HostNetAction::Flush { host } => format!("flush host={host}"),
        }
    }

    fn render_state(&self, s: &HostNetState) -> String {
        let ests: Vec<&[u32]> = s.hosts.iter().map(HostState::estimates).collect();
        format!("est={ests:?} inflight={}", s.inflight.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::one_to_many::AssignmentPolicy;
    use dkcore_graph::generators::{path, star};
    use dkcore_model::{ExploreConfig, Explorer, Report};

    fn explore(g: &Graph, hosts: usize, policy: DisseminationPolicy) -> Report {
        let a = Assignment::new(g, hosts, &AssignmentPolicy::Modulo);
        Explorer::new(ExploreConfig::default()).run(&HostNetModel::new(g, &a, policy))
    }

    #[test]
    fn path4_two_hosts_proves_for_both_policies() {
        for policy in [
            DisseminationPolicy::Broadcast,
            DisseminationPolicy::PointToPoint,
        ] {
            let report = explore(&path(4), 2, policy);
            assert!(report.proved(), "{policy:?}: {}", report.summary());
            assert!(report.terminals > 0);
        }
    }

    #[test]
    fn star4_three_hosts_proves() {
        let report = explore(&star(4), 3, DisseminationPolicy::PointToPoint);
        assert!(report.proved(), "{}", report.summary());
    }

    #[test]
    fn single_host_settles_at_initialization() {
        // One host owns everything: internal emulation converges during
        // construction and nothing is ever in flight.
        let report = explore(&path(5), 1, DisseminationPolicy::PointToPoint);
        assert!(report.proved(), "{}", report.summary());
        assert_eq!(report.states, 1);
        assert_eq!(report.terminals, 1);
    }

    #[test]
    fn figure2_graph_two_hosts_proves() {
        // The paper's §3.1.1 walkthrough graph at the batch level: with
        // two hosts the interleaving space is small (internal emulation
        // settles most of it), and fully proved.
        let g =
            Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (1, 3), (2, 4)]).unwrap();
        let report = explore(&g, 2, DisseminationPolicy::PointToPoint);
        assert!(report.proved(), "{}", report.summary());
    }

    #[test]
    #[ignore = "exhaustive tier (CI model-check job): ~75k transitions"]
    fn figure2_graph_three_hosts_proves_for_both_policies() {
        let g =
            Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (1, 3), (2, 4)]).unwrap();
        for policy in [
            DisseminationPolicy::Broadcast,
            DisseminationPolicy::PointToPoint,
        ] {
            let report = explore(&g, 3, policy);
            assert!(report.proved(), "{policy:?}: {}", report.summary());
            assert!(report.states > 5_000, "only {} states", report.states);
        }
    }

    #[test]
    fn machine_flush_matches_protocol_flush_on_a_fixed_trace() {
        // Quick in-module sanity (the full differential suite lives in
        // tests/machine_conformance.rs).
        let g = path(6);
        let a = Assignment::new(&g, 2, &AssignmentPolicy::Modulo);
        for policy in [
            DisseminationPolicy::Broadcast,
            DisseminationPolicy::PointToPoint,
        ] {
            let cfg = OneToManyConfig {
                policy,
                emulation: EmulationMode::Worklist,
            };
            let mut proto = HostProtocol::new(&g, &a, HostId(0), cfg);
            let machine = HostMachine::new(&g, &a, HostId(0), policy);
            let mut state = machine.initial_state();

            let mut out = Vec::new();
            assert_eq!(machine.emit_initial(&mut state, &mut out).0, {
                let msgs = proto.initial_flush();
                assert_eq!(out, msgs);
                msgs.len() as u64
            });

            let batch = [(NodeId(1), 1u32), (NodeId(3), 2)];
            proto.receive(&batch);
            machine.apply_receive(&mut state, batch.iter().copied());
            let proto_est: Vec<(NodeId, u32)> = proto.local_estimates().collect();
            let machine_est: Vec<(NodeId, u32)> = machine
                .local_nodes()
                .iter()
                .enumerate()
                .map(|(i, &u)| (u, state.estimates()[i]))
                .collect();
            assert_eq!(proto_est, machine_est);

            let mut out = Vec::new();
            machine.apply_flush(&mut state, &mut out);
            assert_eq!(out, proto.round_flush());
        }
    }
}
