//! Pure transition cores of the protocol state machines, and their
//! explorable network models.
//!
//! The imperative protocol drivers ([`NodeProtocol`] and [`HostProtocol`])
//! interleave three concerns: the transition logic of the paper's
//! algorithms, message accounting, and allocation-conscious plumbing
//! (sinks, scratch buffers, staging arenas). This module factors the
//! *transition logic* out into explicit `state × action → (state, outputs)`
//! cores:
//!
//! * [`NodeMachine`] — the one-to-one protocol (§3.1, Algorithm 1) over a
//!   [`NodeState`] (estimate array +
//!   [`IncrementalIndex`](crate::IncrementalIndex) + changed flag).
//!   [`NodeProtocol`] is a thin driver over this core, so the two cannot
//!   diverge by construction.
//! * [`HostMachine`] — the one-to-many protocol (§3.2, Algorithms 3–5)
//!   over a [`HostState`] (slot-space estimates + per-local changed
//!   flags). The optimized [`HostProtocol`] keeps its worklist/
//!   incremental-index hot path and is pinned step-for-step to this core
//!   by the `machine_conformance` differential suite; the core itself uses
//!   the paper's literal sweep-to-fixpoint emulation, which computes the
//!   same fixpoints and changed flags.
//!
//! On top of each core sits a *network model* implementing
//! [`dkcore_model::Machine`]: the whole system (every node or host, plus
//! the multiset of in-flight messages) becomes one canonical, hashable
//! state, and the bounded explorer enumerates **every** delivery and flush
//! interleaving on tiny instances, checking the paper's safety and
//! convergence theorems exhaustively (see [`NodeNetModel`] and
//! [`HostNetModel`], and the property table in the `dkcore_model` crate
//! docs).
//!
//! [`NodeProtocol`]: crate::one_to_one::NodeProtocol
//! [`HostProtocol`]: crate::one_to_many::HostProtocol

mod host;
mod node;

pub use host::{HostAction, HostMachine, HostNetModel, HostNetState, HostState};
pub use node::{NodeAction, NodeMachine, NodeNetModel, NodeNetState, NodeState};
