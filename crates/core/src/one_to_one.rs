//! The *one host, one node* protocol (§3.1 of the paper, Algorithms 1–2).
//!
//! Every node `u` runs a [`NodeProtocol`]: it keeps
//!
//! * `core` — the local coreness estimate, initialized to the degree
//!   `d(u)`;
//! * `est[v]` — the freshest known estimate of each neighbor `v`,
//!   initialized to `+∞` ([`crate::INFINITY_EST`]);
//! * `changed` — whether `core` changed since the last broadcast.
//!
//! On receiving `⟨v, k⟩` with `k < est[v]`, the node updates `est[v]` and
//! recomputes its estimate with [`compute_index`] (Algorithm 2); once per
//! round, a changed estimate is broadcast to the neighbors. Estimates only
//! ever decrease (the safety invariant of Theorem 2) and converge from
//! above to the true coreness (liveness, Theorem 3).
//!
//! The transport loop (synchronous rounds, random-order cycles, or real
//! threads) lives elsewhere — `dkcore-sim` and `dkcore-runtime` both drive
//! this same state machine.
//!
//! # Example
//!
//! ```
//! use dkcore::one_to_one::{NodeProtocol, OneToOneConfig};
//! use dkcore_graph::{Graph, NodeId};
//!
//! let g = Graph::from_edges(3, [(0, 1), (1, 2)])?;
//! let mut node1 = NodeProtocol::new(&g, NodeId(1), OneToOneConfig::default());
//! assert_eq!(node1.core(), 2); // initialized to its degree
//!
//! // Node 0 (an endpoint, degree 1) announces ⟨0, 1⟩:
//! node1.receive(NodeId(0), 1);
//! assert_eq!(node1.core(), 1); // one neighbor >= 1 justifies exactly 1
//! # Ok::<(), dkcore_graph::GraphError>(())
//! ```

use dkcore_graph::{Graph, NodeId};

use crate::machine::{NodeMachine, NodeState};

/// Configuration for the one-to-one protocol.
///
/// # Example
///
/// ```
/// use dkcore::one_to_one::OneToOneConfig;
///
/// let plain = OneToOneConfig { send_optimization: false };
/// assert!(OneToOneConfig::default().send_optimization);
/// assert!(!plain.send_optimization);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OneToOneConfig {
    /// The §3.1.2 optimization: send `⟨u, core⟩` to neighbor `v` only if
    /// `core < est[v]`, i.e. only when the value could still lower `v`'s
    /// estimate. The paper measured ≈50 % fewer messages with this on.
    ///
    /// Defaults to `true`, matching the configuration behind Table 1.
    pub send_optimization: bool,
}

impl Default for OneToOneConfig {
    fn default() -> Self {
        OneToOneConfig {
            send_optimization: true,
        }
    }
}

/// An outgoing round of messages from one node: the estimate `core` of
/// `from`, addressed to `recipients`.
///
/// With a broadcast medium this is one physical message; with point-to-point
/// transport it is `recipients.len()` messages (the accounting used by the
/// paper's `m_avg`/`m_max` columns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Broadcast {
    /// Sending node.
    pub from: NodeId,
    /// The estimate being announced.
    pub core: u32,
    /// Neighbors the message is addressed to.
    pub recipients: Vec<NodeId>,
}

/// Per-node state machine of Algorithm 1.
///
/// A thin driver over the pure transition core
/// [`NodeMachine`](crate::machine::NodeMachine): the machine owns the
/// transition logic (`receive`/`flush` over a [`NodeState`]), this type
/// adds only the message accounting — so the imperative protocol and the
/// model-checked core cannot diverge by construction.
///
/// See the [module documentation](self) for the protocol description.
#[derive(Debug, Clone)]
pub struct NodeProtocol {
    machine: NodeMachine,
    state: NodeState,
    messages_sent: u64,
}

impl NodeProtocol {
    /// Creates the protocol state for node `u` of graph `g`:
    /// `core ← d(u)`, `est[v] ← +∞` for every neighbor.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range for `g`.
    pub fn new(g: &Graph, u: NodeId, config: OneToOneConfig) -> Self {
        let machine = NodeMachine::new(g, u, config);
        let state = machine.initial_state();
        NodeProtocol {
            machine,
            state,
            messages_sent: 0,
        }
    }

    /// Builds the protocol state for every node of `g`, indexed by
    /// [`NodeId::index`].
    pub fn for_graph(g: &Graph, config: OneToOneConfig) -> Vec<NodeProtocol> {
        g.nodes().map(|u| NodeProtocol::new(g, u, config)).collect()
    }

    /// Creates the protocol state for node `u` with a *warm-start*
    /// estimate instead of the degree — used to re-converge after a graph
    /// mutation (see [`crate::dynamic::warm_start_estimates`]).
    ///
    /// `initial` is clamped by the degree. **Safety requirement:** the
    /// resulting estimate must upper-bound `u`'s true coreness, or the
    /// protocol converges to a value below it.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range for `g`.
    pub fn with_initial_estimate(
        g: &Graph,
        u: NodeId,
        initial: u32,
        config: OneToOneConfig,
    ) -> Self {
        let machine = NodeMachine::new(g, u, config);
        let state = machine.warm_state(initial);
        NodeProtocol {
            machine,
            state,
            messages_sent: 0,
        }
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.machine.id()
    }

    /// Current local coreness estimate (the variable `core` of
    /// Algorithm 1). Always ≥ the true coreness (Theorem 2) and
    /// non-increasing over the execution.
    pub fn core(&self) -> u32 {
        self.state.core()
    }

    /// The node's degree (also its initial estimate).
    pub fn degree(&self) -> u32 {
        self.machine.degree()
    }

    /// The node's neighbor list.
    pub fn neighbors(&self) -> &[NodeId] {
        self.machine.neighbors()
    }

    /// Whether `core` changed since the last flush (the `changed` flag of
    /// Algorithm 1).
    pub fn is_changed(&self) -> bool {
        self.state.is_changed()
    }

    /// The freshest estimate this node holds for neighbor `v`, or `None`
    /// if `v` is not a neighbor. `INFINITY_EST` means no message from `v`
    /// has arrived yet.
    pub fn estimate_of(&self, v: NodeId) -> Option<u32> {
        self.machine.estimate_of(&self.state, v)
    }

    /// The underlying pure transition core (the immutable context).
    pub fn machine(&self) -> &NodeMachine {
        &self.machine
    }

    /// The current protocol state, in the machine's canonical
    /// representation — what the differential suites compare bit-for-bit
    /// against an independently driven [`NodeMachine`].
    pub fn state(&self) -> &NodeState {
        &self.state
    }

    /// Total point-to-point messages sent by this node so far (each
    /// recipient of each flush counts as one message).
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// The initialization broadcast: `send ⟨u, core⟩ to neighborV(u)`.
    ///
    /// Returns `None` for isolated nodes (no neighbors to notify).
    ///
    /// Allocates a fresh recipient vector per call; round-based engines
    /// should prefer [`initial_broadcast_with`](Self::initial_broadcast_with).
    pub fn initial_broadcast(&mut self) -> Option<Broadcast> {
        let mut recipients = Vec::new();
        self.initial_broadcast_with(|v, _| recipients.push(v))
            .map(|core| Broadcast {
                from: self.machine.id(),
                core,
                recipients,
            })
    }

    /// Allocation-free variant of [`initial_broadcast`](Self::initial_broadcast):
    /// invokes `sink(recipient, core)` once per neighbor and returns the
    /// announced estimate, or `None` for isolated nodes.
    pub fn initial_broadcast_with<F>(&mut self, sink: F) -> Option<u32>
    where
        F: FnMut(NodeId, u32),
    {
        let (core, count) = self.machine.emit_initial(&self.state, sink)?;
        self.messages_sent += count;
        Some(core)
    }

    /// Handles an incoming `⟨v, k⟩` message (the `on receive` block of
    /// Algorithm 1). Returns `true` iff the local estimate `core` dropped.
    ///
    /// Messages from non-neighbors are ignored (they can only appear on a
    /// broadcast medium where everyone hears everyone).
    pub fn receive(&mut self, from: NodeId, k: u32) -> bool {
        self.machine.apply_receive(&mut self.state, from, k)
    }

    /// The periodic block of Algorithm 1 (`repeat every δ time units`): if
    /// the estimate changed since the last flush, emit it and clear the
    /// flag.
    ///
    /// With [`OneToOneConfig::send_optimization`] the recipient list is
    /// filtered down to neighbors for which `core < est[v]`; `None` is
    /// returned when nothing needs sending (no change, or every neighbor
    /// already knows a value ≤ `core`).
    ///
    /// Allocates a fresh recipient vector per call; round-based engines
    /// should prefer [`round_flush_with`](Self::round_flush_with).
    pub fn round_flush(&mut self) -> Option<Broadcast> {
        let mut recipients = Vec::new();
        self.round_flush_with(|v, _| recipients.push(v))
            .map(|core| Broadcast {
                from: self.machine.id(),
                core,
                recipients,
            })
    }

    /// Allocation-free variant of [`round_flush`](Self::round_flush):
    /// invokes `sink(recipient, core)` once per addressed neighbor and
    /// returns the announced estimate, or `None` when nothing was sent.
    ///
    /// Exactly the same semantics (flag handling, §3.1.2 filter, message
    /// accounting) without materializing a `recipients` vector — this is
    /// the hot path used by the `dkcore-sim` engines.
    pub fn round_flush_with<F>(&mut self, sink: F) -> Option<u32>
    where
        F: FnMut(NodeId, u32),
    {
        let (core, count) = self.machine.apply_flush(&mut self.state, sink)?;
        self.messages_sent += count;
        Some(core)
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index loops mutate two arrays side by side
mod tests {
    use super::*;
    use crate::seq::batagelj_zaversnik;
    use crate::INFINITY_EST;
    use dkcore_graph::generators::{complete, gnp, path, star, worst_case};

    /// Minimal synchronous driver used only by this module's tests; the
    /// full engines live in `dkcore-sim`.
    fn run_sync(g: &Graph, config: OneToOneConfig) -> (Vec<u32>, u32, u64) {
        let mut nodes = NodeProtocol::for_graph(g, config);
        let mut inboxes: Vec<Vec<(NodeId, u32)>> = vec![Vec::new(); g.node_count()];
        let mut rounds = 0u32;
        // Round 1: initial broadcasts.
        let mut sent_any = false;
        for u in 0..nodes.len() {
            if let Some(b) = nodes[u].initial_broadcast() {
                sent_any = true;
                for r in b.recipients {
                    inboxes[r.index()].push((b.from, b.core));
                }
            }
        }
        if sent_any {
            rounds += 1;
        }
        loop {
            // Deliver.
            for u in 0..nodes.len() {
                let msgs = std::mem::take(&mut inboxes[u]);
                for (from, k) in msgs {
                    nodes[u].receive(from, k);
                }
            }
            // Flush.
            let mut active = false;
            for u in 0..nodes.len() {
                if let Some(b) = nodes[u].round_flush() {
                    active = true;
                    for r in b.recipients {
                        inboxes[r.index()].push((b.from, b.core));
                    }
                }
            }
            if !active {
                break;
            }
            rounds += 1;
        }
        let cores = nodes.iter().map(|n| n.core()).collect();
        let msgs = nodes.iter().map(|n| n.messages_sent()).sum();
        (cores, rounds, msgs)
    }

    #[test]
    fn initialization_matches_paper() {
        let g = path(3);
        let node = NodeProtocol::new(&g, NodeId(1), OneToOneConfig::default());
        assert_eq!(node.core(), 2);
        assert_eq!(node.degree(), 2);
        assert_eq!(node.estimate_of(NodeId(0)), Some(INFINITY_EST));
        assert_eq!(node.estimate_of(NodeId(2)), Some(INFINITY_EST));
        assert_eq!(node.estimate_of(NodeId(1)), None); // not its own neighbor
        assert!(!node.is_changed());
    }

    #[test]
    fn isolated_node_is_silent() {
        let g = Graph::from_edges(1, []).unwrap();
        let mut node = NodeProtocol::new(&g, NodeId(0), OneToOneConfig::default());
        assert_eq!(node.core(), 0);
        assert!(node.initial_broadcast().is_none());
        assert!(node.round_flush().is_none());
    }

    #[test]
    fn receive_ignores_stale_and_foreign_messages() {
        let g = path(3);
        let mut node = NodeProtocol::new(&g, NodeId(1), OneToOneConfig::default());
        assert!(!node.receive(NodeId(1), 0)); // self: not a neighbor
        node.receive(NodeId(0), 1);
        let before = node.core();
        assert!(!node.receive(NodeId(0), 5)); // stale (higher) estimate
        assert_eq!(node.core(), before);
    }

    #[test]
    fn estimates_are_monotone_nonincreasing() {
        let g = star(5);
        let mut hub = NodeProtocol::new(&g, NodeId(0), OneToOneConfig::default());
        let mut last = hub.core();
        for leaf in 1..5u32 {
            hub.receive(NodeId(leaf), 1);
            assert!(hub.core() <= last);
            last = hub.core();
        }
        assert_eq!(hub.core(), 1);
    }

    #[test]
    fn paper_figure2_walkthrough() {
        // §3.1.1: path 1-2-3-4-5-6 with extra edges making nodes 2..5 have
        // degree 3: edges (2,4) and (3,5) in paper numbering.
        // Zero-based: path 0-1-2-3-4-5 plus (1,3) and (2,4).
        let g = Graph::from_edges(
            6,
            [
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5), // the chain
                (1, 3),
                (2, 4), // making middle degree 3
            ],
        )
        .unwrap();
        assert_eq!(g.degrees(), vec![1, 3, 3, 3, 3, 1]);
        let (cores, rounds, _) = run_sync(&g, OneToOneConfig::default());
        // "Finally, core = 2 for v = 2,3,4,5 and core = 1 for v = 1,6."
        assert_eq!(cores, vec![1, 2, 2, 2, 2, 1]);
        // The example converges after three rounds of message exchange.
        assert!(rounds <= 4, "rounds = {rounds}");
        assert_eq!(cores, batagelj_zaversnik(&g));
    }

    #[test]
    fn converges_to_bz_on_random_graphs() {
        for seed in 0..8 {
            let g = gnp(60, 0.08, seed);
            let (cores, _, _) = run_sync(&g, OneToOneConfig::default());
            assert_eq!(cores, batagelj_zaversnik(&g), "seed {seed}");
        }
    }

    #[test]
    fn converges_without_optimization_too() {
        for seed in 0..4 {
            let g = gnp(50, 0.1, seed);
            let cfg = OneToOneConfig {
                send_optimization: false,
            };
            let (cores, _, _) = run_sync(&g, cfg);
            assert_eq!(cores, batagelj_zaversnik(&g), "seed {seed}");
        }
    }

    #[test]
    fn optimization_reduces_messages() {
        // §3.1.2: "this optimization has shown to be able to reduce the
        // number of exchanged messages by approximately 50%".
        let g = gnp(120, 0.06, 3);
        let (_, _, with_opt) = run_sync(
            &g,
            OneToOneConfig {
                send_optimization: true,
            },
        );
        let (_, _, without) = run_sync(
            &g,
            OneToOneConfig {
                send_optimization: false,
            },
        );
        assert!(
            with_opt < without,
            "optimization should reduce messages: {with_opt} vs {without}"
        );
    }

    #[test]
    fn complete_graph_converges_in_one_active_round() {
        // Every estimate is immediately correct (degree == coreness);
        // only the initial broadcast happens, then silence.
        let (cores, rounds, _) = run_sync(&complete(6), OneToOneConfig::default());
        assert_eq!(cores, vec![5; 6]);
        assert_eq!(rounds, 1);
    }

    #[test]
    fn worst_case_converges_correctly() {
        let g = worst_case(12);
        let (cores, rounds, _) = run_sync(&g, OneToOneConfig::default());
        assert!(cores.iter().all(|&c| c == 2));
        // Exactness of the N-1 bound is asserted by the sim crate's
        // synchronous engine; here just sanity-check it's in that regime.
        assert!(rounds >= 8, "rounds = {rounds}");
    }

    #[test]
    fn safety_invariant_holds_during_execution() {
        // Theorem 2: core(u) >= k(u) at every point in time.
        let g = gnp(40, 0.15, 1);
        let truth = batagelj_zaversnik(&g);
        let mut nodes = NodeProtocol::for_graph(&g, OneToOneConfig::default());
        let mut inboxes: Vec<Vec<(NodeId, u32)>> = vec![Vec::new(); g.node_count()];
        for u in 0..nodes.len() {
            if let Some(b) = nodes[u].initial_broadcast() {
                for r in b.recipients {
                    inboxes[r.index()].push((b.from, b.core));
                }
            }
        }
        for _ in 0..100 {
            for u in 0..nodes.len() {
                let msgs = std::mem::take(&mut inboxes[u]);
                for (from, k) in msgs {
                    nodes[u].receive(from, k);
                    // invariant after *every* message
                    assert!(nodes[u].core() >= truth[u]);
                }
            }
            for u in 0..nodes.len() {
                if let Some(b) = nodes[u].round_flush() {
                    for r in b.recipients {
                        inboxes[r.index()].push((b.from, b.core));
                    }
                }
            }
        }
    }

    #[test]
    fn flush_respects_optimization_filter() {
        let g = star(4);
        let mut hub = NodeProtocol::new(&g, NodeId(0), OneToOneConfig::default());
        // All leaves report 1; hub drops 3 -> 1.
        for leaf in 1..4u32 {
            hub.receive(NodeId(leaf), 1);
        }
        // est[v] == 1 for all leaves and core == 1: nothing to send.
        assert_eq!(hub.core(), 1);
        assert!(hub.round_flush().is_none());
        assert!(!hub.is_changed());
    }

    #[test]
    fn flush_without_optimization_sends_to_all() {
        let g = star(4);
        let cfg = OneToOneConfig {
            send_optimization: false,
        };
        let mut hub = NodeProtocol::new(&g, NodeId(0), cfg);
        for leaf in 1..4u32 {
            hub.receive(NodeId(leaf), 1);
        }
        let b = hub.round_flush().expect("must broadcast");
        assert_eq!(b.recipients.len(), 3);
        assert_eq!(b.core, 1);
        assert_eq!(hub.messages_sent(), 3);
    }
}
