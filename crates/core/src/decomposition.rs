use dkcore_graph::{Graph, NodeId};

use crate::seq::batagelj_zaversnik;

/// The result of a k-core decomposition: the coreness of every node.
///
/// Produced either by the sequential baseline ([`CoreDecomposition::compute`])
/// or from the converged estimates of a distributed run
/// ([`CoreDecomposition::from_coreness`]). Provides the derived quantities
/// the paper's evaluation reports: maximum and average coreness (the
/// `k_max` and `k_avg` columns of Table 1), shell sizes (the `#` column of
/// Table 2), and k-core subgraph extraction.
///
/// # Example
///
/// ```
/// use dkcore::CoreDecomposition;
/// use dkcore_graph::{generators, NodeId};
///
/// let g = generators::complete(4);
/// let d = CoreDecomposition::compute(&g);
/// assert_eq!(d.max_coreness(), 3);
/// assert_eq!(d.avg_coreness(), 3.0);
/// assert_eq!(d.shell_sizes(), vec![0, 0, 0, 4]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreDecomposition {
    coreness: Vec<u32>,
}

impl CoreDecomposition {
    /// Computes the decomposition of `g` with the Batagelj–Zaveršnik
    /// sequential algorithm (the paper's reference \[3\]).
    pub fn compute(g: &Graph) -> Self {
        CoreDecomposition {
            coreness: batagelj_zaversnik(g),
        }
    }

    /// Wraps an externally computed coreness vector (e.g. the converged
    /// estimates of a distributed run), indexed by [`NodeId::index`].
    pub fn from_coreness(coreness: Vec<u32>) -> Self {
        CoreDecomposition { coreness }
    }

    /// Coreness of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn coreness(&self, u: NodeId) -> u32 {
        self.coreness[u.index()]
    }

    /// All coreness values, indexed by [`NodeId::index`].
    pub fn values(&self) -> &[u32] {
        &self.coreness
    }

    /// Consumes the decomposition, returning the coreness vector.
    pub fn into_values(self) -> Vec<u32> {
        self.coreness
    }

    /// Number of nodes covered by the decomposition.
    pub fn len(&self) -> usize {
        self.coreness.len()
    }

    /// Whether the decomposition covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.coreness.is_empty()
    }

    /// Largest coreness in the graph (`k_max` of Table 1); 0 for an empty
    /// graph. Equals the graph's degeneracy.
    pub fn max_coreness(&self) -> u32 {
        self.coreness.iter().copied().max().unwrap_or(0)
    }

    /// Mean coreness over all nodes (`k_avg` of Table 1); 0.0 for an empty
    /// graph.
    pub fn avg_coreness(&self) -> f64 {
        if self.coreness.is_empty() {
            0.0
        } else {
            self.coreness.iter().map(|&c| c as f64).sum::<f64>() / self.coreness.len() as f64
        }
    }

    /// Shell sizes: `sizes[k]` is the number of nodes with coreness exactly
    /// `k` (the k-shell of the paper's Definition 2). The vector has length
    /// `max_coreness + 1`.
    pub fn shell_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.max_coreness() as usize + 1];
        for &c in &self.coreness {
            sizes[c as usize] += 1;
        }
        if self.coreness.is_empty() {
            sizes.clear();
        }
        sizes
    }

    /// Node ids of the k-shell: nodes with coreness exactly `k`.
    pub fn shell(&self, k: u32) -> Vec<NodeId> {
        self.coreness
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == k)
            .map(|(i, _)| NodeId::from_index(i))
            .collect()
    }

    /// Membership mask of the k-core: `mask[u]` is `true` iff node `u`
    /// belongs to the k-core (coreness ≥ k). Cores are concentric: the
    /// (k+1)-core mask implies the k-core mask.
    pub fn k_core_mask(&self, k: u32) -> Vec<bool> {
        self.coreness.iter().map(|&c| c >= k).collect()
    }

    /// Extracts the k-core of `g` as an induced subgraph, together with the
    /// mapping from new ids to original ids.
    ///
    /// By Definition 1, every node of the returned subgraph has degree
    /// ≥ `k` within it (checked by the test suite).
    ///
    /// # Panics
    ///
    /// Panics if the decomposition does not cover exactly the nodes of `g`.
    pub fn k_core(&self, g: &Graph, k: u32) -> (Graph, Vec<NodeId>) {
        assert_eq!(
            g.node_count(),
            self.coreness.len(),
            "decomposition does not match graph"
        );
        g.induced_subgraph(&self.k_core_mask(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkcore_graph::generators::{complete, gnp, path, star};

    #[test]
    fn compute_matches_manual_values() {
        let d = CoreDecomposition::compute(&path(4));
        assert_eq!(d.values(), &[1, 1, 1, 1]);
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
    }

    #[test]
    fn from_coreness_roundtrip() {
        let d = CoreDecomposition::from_coreness(vec![1, 2, 3]);
        assert_eq!(d.coreness(NodeId(2)), 3);
        assert_eq!(d.into_values(), vec![1, 2, 3]);
    }

    #[test]
    fn empty_decomposition() {
        let d = CoreDecomposition::from_coreness(Vec::new());
        assert!(d.is_empty());
        assert_eq!(d.max_coreness(), 0);
        assert_eq!(d.avg_coreness(), 0.0);
        assert!(d.shell_sizes().is_empty());
    }

    #[test]
    fn shells_partition_nodes() {
        let g = gnp(100, 0.06, 2);
        let d = CoreDecomposition::compute(&g);
        let total: usize = d.shell_sizes().iter().sum();
        assert_eq!(total, g.node_count());
        for k in 0..=d.max_coreness() {
            let shell = d.shell(k);
            assert_eq!(shell.len(), d.shell_sizes()[k as usize]);
            for u in shell {
                assert_eq!(d.coreness(u), k);
            }
        }
    }

    #[test]
    fn cores_are_concentric() {
        // Paper Figure 1: "by definition cores are concentric ... nodes
        // belonging to the 3-core belong to the 2-core and 1-core as well."
        let g = gnp(80, 0.1, 7);
        let d = CoreDecomposition::compute(&g);
        for k in 1..=d.max_coreness() {
            let inner = d.k_core_mask(k);
            let outer = d.k_core_mask(k - 1);
            for u in 0..inner.len() {
                assert!(!inner[u] || outer[u], "k-core not nested at k={k}");
            }
        }
    }

    #[test]
    fn k_core_subgraph_has_min_degree_k() {
        // Definition 1: within the k-core every node has degree >= k.
        let g = gnp(120, 0.07, 11);
        let d = CoreDecomposition::compute(&g);
        for k in 1..=d.max_coreness() {
            let (sub, _) = d.k_core(&g, k);
            for u in sub.nodes() {
                assert!(sub.degree(u) >= k, "degree {} < k {}", sub.degree(u), k);
            }
        }
    }

    #[test]
    fn k_core_is_maximal() {
        // No node outside the k-core could be added: it must have < k
        // neighbors inside. (Follows from coreness < k, checked directly.)
        let g = gnp(100, 0.08, 13);
        let d = CoreDecomposition::compute(&g);
        for k in 1..=d.max_coreness() {
            let mask = d.k_core_mask(k);
            for u in g.nodes() {
                if !mask[u.index()] {
                    let inside = g.neighbors(u).iter().filter(|v| mask[v.index()]).count();
                    assert!(
                        inside < k as usize,
                        "node {u} outside the {k}-core has {inside} neighbors inside"
                    );
                }
            }
        }
    }

    #[test]
    fn table1_style_statistics() {
        let d = CoreDecomposition::compute(&complete(10));
        assert_eq!(d.max_coreness(), 9);
        assert_eq!(d.avg_coreness(), 9.0);
        let d = CoreDecomposition::compute(&star(11));
        assert_eq!(d.max_coreness(), 1);
        assert!((d.avg_coreness() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "decomposition does not match graph")]
    fn k_core_size_mismatch_panics() {
        let d = CoreDecomposition::from_coreness(vec![1, 1]);
        let g = complete(3);
        let _ = d.k_core(&g, 1);
    }
}
