//! Incremental maintenance of `computeIndex` (Algorithm 2) under
//! monotonically decreasing neighbor estimates.
//!
//! The paper's Algorithm 1 recomputes `computeIndex(est, u, k)` from
//! scratch on **every** received estimate, an `O(degree + k)` scan per
//! message. Over a whole execution that is the dominant cost: the
//! experimental-evaluation literature on this protocol (see `PAPERS.md`)
//! identifies incremental bucket maintenance as the key to scaling it to
//! millions of nodes.
//!
//! [`IncrementalIndex`] exploits the protocol's central safety invariant
//! (Theorem 2: estimates only ever decrease) to maintain the same value in
//! **O(1) amortized** time per update with **zero allocation** per
//! message:
//!
//! * `cnt[i]` — a histogram of the neighbor estimates clamped to the
//!   node's degree `d` (the initial local estimate, and an upper bound on
//!   everything the index can ever return);
//! * `core` — the current value of `computeIndex`, i.e. the largest `i`
//!   such that at least `i` neighbors have (clamped) estimate `≥ i`;
//! * `ge_core` — the number of neighbors with clamped estimate `≥ core`.
//!
//! An estimate drop `old → new` moves one histogram entry and adjusts
//! `ge_core`; `core` must then drop exactly when `ge_core < core`, and the
//! new value is found by walking `i` downward while accumulating suffix
//! counts. Because both `core` and every estimate are non-increasing over
//! an execution, the total walk work is bounded by `d` across **all**
//! updates — each message costs amortized constant time, versus the
//! `O(degree + k)` full rescan of [`compute_index`](crate::compute_index).
//!
//! The result is *bit-identical* to calling `compute_index` after every
//! message (asserted by the property tests in this module and in
//! `crates/core/tests/properties.rs`): this is a pure fast path behind the
//! same protocol semantics, used by
//! [`NodeProtocol`](crate::one_to_one::NodeProtocol) and by the worklist
//! emulation mode of [`HostProtocol`](crate::one_to_many::HostProtocol).
//!
//! # Example
//!
//! ```
//! use dkcore::IncrementalIndex;
//!
//! // A node of degree 3: all neighbors start at +∞, so the index starts
//! // at the degree, exactly like Algorithm 1's `core ← d(u)`.
//! let mut idx = IncrementalIndex::new(3);
//! assert_eq!(idx.core(), 3);
//!
//! // One neighbor announces estimate 1 (was +∞): two neighbors ≥ 2 now.
//! assert!(idx.update(u32::MAX, 1));
//! assert_eq!(idx.core(), 2);
//!
//! // Another neighbor drops 7 → 2: still two neighbors ≥ 2.
//! assert!(!idx.update(7, 2));
//! assert_eq!(idx.core(), 2);
//! ```

/// Incrementally maintained `computeIndex` value over one node's neighbor
/// estimates. See the [module documentation](self) for the data structure
/// and complexity argument.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IncrementalIndex {
    /// `cnt[i]`, `0 ≤ i ≤ cap`: number of neighbors whose estimate,
    /// clamped to `cap`, equals `i`. `cap` is the node's degree (or the
    /// explicit cap of [`from_estimates`](Self::from_estimates)). Kept as
    /// a `Vec` so [`rebuild`](Self::rebuild) can recycle the allocation;
    /// `len() == cap + 1` is an invariant.
    cnt: Vec<u32>,
    /// Current index value (the protocol's `core` variable).
    core: u32,
    /// Number of neighbors with clamped estimate `≥ core`. Meaningless
    /// (and unused) once `core == 0`.
    ge_core: u32,
}

impl IncrementalIndex {
    /// Index for a node of degree `degree` whose neighbors all start at
    /// the `+∞` initialization ([`crate::INFINITY_EST`]): the value starts
    /// at the degree, matching Algorithm 1's `core ← d(u)`.
    pub fn new(degree: u32) -> Self {
        let mut cnt = vec![0u32; degree as usize + 1];
        cnt[degree as usize] = degree;
        IncrementalIndex {
            cnt,
            core: degree,
            ge_core: degree,
        }
    }

    /// Index over explicit initial estimates with upper bound `cap` (the
    /// node's current estimate; its degree at protocol start).
    ///
    /// The starting value equals `compute_index(estimates, cap)`.
    pub fn from_estimates<I>(estimates: I, cap: u32) -> Self
    where
        I: IntoIterator<Item = u32>,
    {
        let mut this = IncrementalIndex {
            cnt: Vec::new(),
            core: 0,
            ge_core: 0,
        };
        this.rebuild(estimates, cap);
        this
    }

    /// Re-initializes this index over new estimates and cap, recycling
    /// the histogram allocation — the batched streaming engine rebuilds
    /// one pooled index per touched node per repair, so this keeps the
    /// descent allocation-free once the pool is warm.
    ///
    /// Equivalent to `*self = Self::from_estimates(estimates, cap)`.
    pub fn rebuild<I>(&mut self, estimates: I, cap: u32)
    where
        I: IntoIterator<Item = u32>,
    {
        self.cnt.clear();
        self.cnt.resize(cap as usize + 1, 0);
        for est in estimates {
            self.cnt[(est as usize).min(cap as usize)] += 1;
        }
        self.core = cap;
        self.ge_core = self.cnt[cap as usize];
        if self.ge_core < self.core {
            self.walk_down();
        }
    }

    /// The current index value: the largest `i` (≤ the initial cap and
    /// every forced bound since) such that at least `i` neighbors have
    /// estimate `≥ i`, or 0 when no neighbor has a positive estimate.
    #[inline]
    pub fn core(&self) -> u32 {
        self.core
    }

    /// Records a neighbor's estimate drop `old → new`, updating the index
    /// value. Returns `true` iff the value dropped.
    ///
    /// Amortized `O(1)`; allocation-free.
    ///
    /// # Panics
    ///
    /// May panic (or corrupt the histogram) if `old` does not match an
    /// estimate previously inserted — callers own that bookkeeping, which
    /// the protocols get for free from their `est[]` arrays.
    #[inline]
    pub fn update(&mut self, old: u32, new: u32) -> bool {
        debug_assert!(new < old, "estimates only decrease (Theorem 2)");
        let cap = (self.cnt.len() - 1) as u32;
        let o = old.min(cap);
        let n = new.min(cap);
        if o == n {
            // Both clamp to the same bucket: no observable change.
            return false;
        }
        self.cnt[o as usize] -= 1;
        self.cnt[n as usize] += 1;
        if self.core == 0 {
            return false;
        }
        if o >= self.core && n < self.core {
            self.ge_core -= 1;
        }
        if self.ge_core >= self.core {
            return false;
        }
        self.walk_down();
        true
    }

    /// Forces the value down to at most `bound` (no-op if already ≤).
    /// Returns `true` iff the value dropped.
    ///
    /// Used when the protocol's estimate is lowered *directly* — a host
    /// hearing about one of its own nodes from a neighbor host, or a
    /// warm start from a previous decomposition — rather than through a
    /// neighbor-estimate update. Total cost across a whole execution is
    /// `O(degree)` (the walk is monotone).
    pub fn force_bound(&mut self, bound: u32) -> bool {
        if bound >= self.core {
            return false;
        }
        // ge_core at the new, lower level: add the buckets in between.
        for i in bound..self.core {
            self.ge_core += self.cnt[i as usize];
        }
        self.core = bound;
        true
    }

    /// Lowers `core` to the largest justified value below its current
    /// one. Precondition: `ge_core < core` (the current value is no
    /// longer justified) and `core > 0`.
    fn walk_down(&mut self) {
        let mut t = self.core - 1;
        let mut running = self.ge_core;
        loop {
            if t == 0 {
                break;
            }
            running += self.cnt[t as usize];
            if running >= t {
                break;
            }
            t -= 1;
        }
        self.core = t;
        self.ge_core = running;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compute_index, INFINITY_EST};
    use rand::prelude::*;

    #[test]
    fn matches_initialization() {
        for d in 0..20 {
            let idx = IncrementalIndex::new(d);
            assert_eq!(idx.core(), compute_index(vec![INFINITY_EST; d as usize], d));
        }
    }

    #[test]
    fn from_estimates_matches_compute_index() {
        let cases: &[(&[u32], u32)] = &[
            (&[], 0),
            (&[], 3),
            (&[1], 1),
            (&[2, 2, 3], 3),
            (&[1, 3, 3], 3),
            (&[5, 5, 5, 5, 5], 2),
            (&[0, 0, 0], 3),
            (&[0, 2, 2], 3),
            (&[1, 2, 2, 3], 4),
            (&[INFINITY_EST; 4], 4),
        ];
        for &(ests, cap) in cases {
            let idx = IncrementalIndex::from_estimates(ests.iter().copied(), cap);
            assert_eq!(
                idx.core(),
                compute_index(ests.iter().copied(), cap),
                "{ests:?} cap {cap}"
            );
        }
    }

    /// The heart of the tentpole: random monotone-decreasing update
    /// traces, checked step by step against the from-scratch Algorithm 2.
    #[test]
    fn random_traces_match_recomputation() {
        let mut rng = StdRng::seed_from_u64(0xD15C0);
        for trial in 0..200 {
            let degree = rng.random_range(0u32..40);
            let mut est = vec![INFINITY_EST; degree as usize];
            let mut idx = IncrementalIndex::new(degree);
            let mut core = degree;
            for step in 0..200 {
                if degree == 0 {
                    break;
                }
                let i = rng.random_range(0..degree as usize);
                if est[i] == 0 {
                    continue;
                }
                // A strictly lower replacement estimate, occasionally 0.
                let cur = est[i].min(degree + 3);
                let new = rng.random_range(0..cur);
                let dropped = idx.update(est[i], new);
                est[i] = new;
                // Reference: Algorithm 1 recomputes with the current core
                // as the clamp.
                let t = compute_index(est.iter().copied(), core);
                let expect_drop = t < core;
                core = core.min(t);
                assert_eq!(idx.core(), core, "trial {trial} step {step} est {est:?}");
                assert_eq!(dropped, expect_drop, "trial {trial} step {step}");
            }
        }
    }

    #[test]
    fn force_bound_matches_clamped_recomputation() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let degree = rng.random_range(1u32..30);
            let mut est = vec![INFINITY_EST; degree as usize];
            let mut idx = IncrementalIndex::new(degree);
            let mut core = degree;
            for _ in 0..60 {
                if rng.random_bool(0.3) {
                    let bound = rng.random_range(0..=core.max(1));
                    let expect = bound < core;
                    assert_eq!(idx.force_bound(bound), expect);
                    core = core.min(bound);
                } else {
                    let i = rng.random_range(0..degree as usize);
                    if est[i] == 0 {
                        continue;
                    }
                    let new = rng.random_range(0..est[i].min(degree + 2));
                    idx.update(est[i], new);
                    est[i] = new;
                    let t = compute_index(est.iter().copied(), core);
                    core = core.min(t);
                }
                assert_eq!(idx.core(), core);
            }
        }
    }

    #[test]
    fn rebuild_recycles_and_matches_fresh_construction() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut idx = IncrementalIndex::new(5);
        for _ in 0..50 {
            let cap = rng.random_range(0u32..20);
            let ests: Vec<u32> = (0..rng.random_range(0..25))
                .map(|_| rng.random_range(0..30))
                .collect();
            idx.rebuild(ests.iter().copied(), cap);
            assert_eq!(
                idx,
                IncrementalIndex::from_estimates(ests.iter().copied(), cap)
            );
            assert_eq!(idx.core(), compute_index(ests.iter().copied(), cap));
        }
    }

    #[test]
    fn update_above_cap_is_invisible() {
        // Drops entirely above the degree clamp never change anything.
        let mut idx = IncrementalIndex::new(3);
        assert!(!idx.update(INFINITY_EST, 900));
        assert!(!idx.update(900, 3));
        assert_eq!(idx.core(), 3);
    }

    #[test]
    fn isolated_node() {
        let mut idx = IncrementalIndex::new(0);
        assert_eq!(idx.core(), 0);
        assert!(!idx.force_bound(0));
    }

    #[test]
    fn drop_to_zero_estimates() {
        let mut idx = IncrementalIndex::new(2);
        assert!(idx.update(INFINITY_EST, 0));
        assert_eq!(idx.core(), 1);
        assert!(idx.update(INFINITY_EST, 0));
        assert_eq!(idx.core(), 0);
        // Further churn on a dead index is a no-op.
        assert!(!idx.force_bound(0));
    }
}
