//! Termination detection for the distributed protocols (§3.3 of the paper).
//!
//! The estimate-propagation protocol quiesces on its own, but hosts need to
//! *detect* that quiescence to start using the computed coreness. The paper
//! lists three alternatives, all implemented here behind the
//! [`TerminationDetector`] trait:
//!
//! * [`CentralizedDetector`] — "each host may inform a centralized server
//!   whenever no new estimate is generated during a round; when all hosts
//!   are in this state ... the protocol can be terminated". Exact, but
//!   needs a master.
//! * [`GossipDetector`] — decentralized: hosts run epidemic max-aggregation
//!   (the `dkcore-gossip` substrate) of the last round in which *any* host
//!   generated an estimate; "when this value has not been updated for a
//!   while, hosts may detect the termination".
//! * [`FixedRoundsDetector`] — stop after a predefined number of rounds;
//!   §5 shows the estimate error is already tiny after a few tens of
//!   rounds, so this gives a good approximate decomposition.
//!
//! # Example
//!
//! ```
//! use dkcore::termination::{CentralizedDetector, TerminationDetector};
//!
//! let mut det = CentralizedDetector::new();
//! assert!(!det.observe_round(1, &[true, false]));  // a host is active
//! assert!(det.observe_round(2, &[false, false]));  // all quiescent: stop
//! ```

use dkcore_gossip::{Aggregate, GossipNetwork, MaxAggregate};

/// Round-by-round termination decision logic.
///
/// After every protocol round the engine reports which hosts were *active*
/// (generated at least one new estimate / sent at least one message); the
/// detector answers whether the computation should stop.
pub trait TerminationDetector {
    /// Observes the activity vector of round `round` (one flag per host).
    /// Returns `true` when the protocol should terminate.
    fn observe_round(&mut self, round: u32, active: &[bool]) -> bool;

    /// Human-readable detector name for reports.
    fn name(&self) -> &'static str;
}

/// Master/slave detection: terminate as soon as a round passes in which no
/// host generated a new estimate. Exact — fires on the first truly
/// quiescent round — but requires a central server collecting one bit per
/// host per round (the paper: "particularly suited for the one-to-many
/// scenario, where it corresponds to a master-slaves approach").
#[derive(Debug, Clone, Copy, Default)]
pub struct CentralizedDetector {
    fired: bool,
}

impl CentralizedDetector {
    /// Creates the detector.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TerminationDetector for CentralizedDetector {
    fn observe_round(&mut self, _round: u32, active: &[bool]) -> bool {
        if active.iter().all(|&a| !a) {
            self.fired = true;
        }
        self.fired
    }

    fn name(&self) -> &'static str {
        "centralized"
    }
}

/// Fixed-round budget: stop unconditionally after `budget` rounds. The
/// approximate-decomposition option of §3.3/§5.1 ("if an approximate k-core
/// decomposition could be sufficient, running the protocol for a fixed
/// number of rounds is an option").
#[derive(Debug, Clone, Copy)]
pub struct FixedRoundsDetector {
    budget: u32,
}

impl FixedRoundsDetector {
    /// Stops after `budget` rounds.
    pub fn new(budget: u32) -> Self {
        FixedRoundsDetector { budget }
    }

    /// The configured budget.
    pub fn budget(&self) -> u32 {
        self.budget
    }
}

impl TerminationDetector for FixedRoundsDetector {
    fn observe_round(&mut self, round: u32, _active: &[bool]) -> bool {
        round >= self.budget
    }

    fn name(&self) -> &'static str {
        "fixed-rounds"
    }
}

/// Decentralized detection by epidemic max-aggregation (paper §3.3,
/// building on Jelasity et al. \[6\]).
///
/// Each host holds a [`MaxAggregate`] of "the last round in which any host
/// generated a new estimate". One gossip exchange round is piggybacked on
/// every protocol round; a host considers the computation finished when its
/// aggregate has not increased for [`patience`](GossipDetector::patience)
/// rounds, and the detector reports termination when **every** host
/// believes so.
///
/// `patience` must exceed the `O(log |H|)` dissemination latency of the
/// gossip substrate, or hosts may give up while an update is still in
/// flight; [`GossipDetector::recommended_patience`] provides a safe
/// default.
#[derive(Debug)]
pub struct GossipDetector {
    net: GossipNetwork<MaxAggregate>,
    patience: u32,
}

impl GossipDetector {
    /// Creates the detector for `host_count` hosts.
    ///
    /// # Panics
    ///
    /// Panics if `patience == 0`.
    pub fn new(host_count: usize, patience: u32, seed: u64) -> Self {
        assert!(patience > 0, "patience must be positive");
        GossipDetector {
            net: GossipNetwork::new((0..host_count).map(|_| MaxAggregate::new(0.0)), seed),
            patience,
        }
    }

    /// A patience value safely above the gossip convergence latency:
    /// `2·⌈log₂ |H|⌉ + 4` rounds.
    pub fn recommended_patience(host_count: usize) -> u32 {
        2 * (host_count.max(2) as f64).log2().ceil() as u32 + 4
    }

    /// The configured patience (rounds of silence before giving up).
    pub fn patience(&self) -> u32 {
        self.patience
    }
}

impl TerminationDetector for GossipDetector {
    fn observe_round(&mut self, round: u32, active: &[bool]) -> bool {
        debug_assert_eq!(active.len(), self.net.len());
        // Active hosts raise their local "last active round" knowledge...
        for (h, &is_active) in active.iter().enumerate() {
            if is_active {
                self.net.agent_mut(h).raise(round as f64);
            }
        }
        // ...and one epidemic exchange round runs alongside the protocol.
        self.net.round();
        // Every host must believe the system has been silent for
        // `patience` rounds.
        self.net
            .agents()
            .iter()
            .all(|a| round as f64 - a.value() >= self.patience as f64)
    }

    fn name(&self) -> &'static str {
        "gossip"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a detector over a synthetic activity trace; returns the round
    /// at which it fired (1-based), or None.
    fn fire_round(det: &mut dyn TerminationDetector, trace: &[Vec<bool>]) -> Option<u32> {
        for (i, active) in trace.iter().enumerate() {
            if det.observe_round(i as u32 + 1, active) {
                return Some(i as u32 + 1);
            }
        }
        None
    }

    /// Activity trace: `hosts` hosts all active until round `busy`, then
    /// silent for `silent` rounds.
    fn trace(hosts: usize, busy: u32, silent: u32) -> Vec<Vec<bool>> {
        let mut t = Vec::new();
        for _ in 0..busy {
            t.push(vec![true; hosts]);
        }
        for _ in 0..silent {
            t.push(vec![false; hosts]);
        }
        t
    }

    #[test]
    fn centralized_fires_on_first_quiet_round() {
        let mut det = CentralizedDetector::new();
        assert_eq!(fire_round(&mut det, &trace(4, 7, 5)), Some(8));
        assert_eq!(det.name(), "centralized");
    }

    #[test]
    fn centralized_latches() {
        let mut det = CentralizedDetector::new();
        det.observe_round(1, &[false, false]);
        // Even if activity resumes, the decision stands (single-shot).
        assert!(det.observe_round(2, &[true, true]));
    }

    #[test]
    fn centralized_never_fires_while_active() {
        let mut det = CentralizedDetector::new();
        assert_eq!(fire_round(&mut det, &trace(4, 10, 0)), None);
    }

    #[test]
    fn fixed_rounds_fires_exactly_at_budget() {
        let mut det = FixedRoundsDetector::new(5);
        assert_eq!(det.budget(), 5);
        assert_eq!(fire_round(&mut det, &trace(3, 100, 0)), Some(5));
        assert_eq!(det.name(), "fixed-rounds");
    }

    #[test]
    fn gossip_fires_after_patience_plus_spread() {
        let hosts = 32;
        let patience = GossipDetector::recommended_patience(hosts);
        let mut det = GossipDetector::new(hosts, patience, 7);
        let fired = fire_round(&mut det, &trace(hosts, 10, 100)).expect("fires");
        // Cannot fire before the silence has lasted `patience` rounds.
        assert!(
            fired >= 10 + patience,
            "fired at {fired}, patience {patience}"
        );
        // Should fire within a small constant of patience after silence.
        assert!(fired <= 10 + 2 * patience + 8, "fired too late: {fired}");
        assert_eq!(det.name(), "gossip");
    }

    #[test]
    fn gossip_does_not_fire_during_steady_activity() {
        let hosts = 16;
        let mut det = GossipDetector::new(hosts, 6, 3);
        assert_eq!(fire_round(&mut det, &trace(hosts, 50, 0)), None);
    }

    #[test]
    fn gossip_single_host() {
        let mut det = GossipDetector::new(1, 3, 0);
        let fired = fire_round(&mut det, &trace(1, 2, 20)).expect("fires");
        assert!(fired >= 5);
    }

    #[test]
    fn gossip_handles_straggler_activity() {
        // One host briefly active again late (before the patience window
        // from the earlier activity has elapsed): detection must be pushed
        // out past the straggler's round plus patience.
        let hosts = 8;
        let patience = GossipDetector::recommended_patience(hosts); // 10
        let mut det = GossipDetector::new(hosts, patience, 9);
        let mut t = trace(hosts, 5, 5); // active 1..=5, silent 6..=10
                                        // At round 11, host 3 is active once more.
        let mut late = vec![false; hosts];
        late[3] = true;
        t.push(late);
        t.extend(trace(hosts, 0, 60));
        let fired = fire_round(&mut det, &t).expect("fires");
        assert!(
            fired >= 11 + patience,
            "straggler must reset the clock (fired {fired})"
        );
    }

    #[test]
    fn recommended_patience_grows_with_hosts() {
        assert!(
            GossipDetector::recommended_patience(512) > GossipDetector::recommended_patience(4)
        );
        assert!(GossipDetector::recommended_patience(1) >= 5);
    }

    #[test]
    #[should_panic(expected = "patience must be positive")]
    fn zero_patience_panics() {
        let _ = GossipDetector::new(4, 0, 0);
    }
}
