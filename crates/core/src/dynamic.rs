//! Coreness maintenance under edge churn — the natural extension of the
//! paper's *live system* scenario (§1: a P2P overlay "needs to inspect
//! itself" at run time; real overlays gain and lose edges continuously).
//!
//! Two pieces:
//!
//! * [`DynamicCore`] — an incremental maintenance structure: after an
//!   edge insertion or removal it repairs the coreness of exactly the
//!   *candidate* nodes that can change (the affected k-shell region
//!   reachable through that shell), instead of recomputing the whole
//!   decomposition. Single-edge changes move any coreness by at most 1,
//!   and only nodes with coreness `min(k(u), k(v))` can move — the
//!   classic traversal/subcore insight.
//! * [`warm_start_estimates`] — translates a mutation into safe initial
//!   estimates for the *distributed* protocol: unaffected nodes keep
//!   their (still correct) coreness, candidates are bumped to a safe
//!   upper bound, and the ordinary descending protocol re-converges in a
//!   handful of rounds instead of a full cold start (safety requires
//!   every initial estimate to upper-bound the new coreness — removals
//!   only lower coreness, and insertion candidates can gain at most 1).
//!
//! `DynamicCore` repairs **one mutation at a time**; adjacency lives in
//! the shared slotted-CSR [`AdjacencyArena`](crate::stream::AdjacencyArena)
//! (binary-search insert/remove, no per-node vectors). For whole batches
//! of churn — where per-edge repairs waste a traversal per edge — use the
//! amortized [`StreamCore`](crate::stream::StreamCore) instead.
//!
//! # Example
//!
//! ```
//! use dkcore::dynamic::DynamicCore;
//! use dkcore_graph::{generators::path, NodeId};
//!
//! // A path has coreness 1 everywhere; closing it into a cycle raises
//! // everyone to 2.
//! let mut dc = DynamicCore::new(&path(5));
//! assert!(dc.values().iter().all(|&k| k == 1));
//! let stats = dc.insert_edge(NodeId(0), NodeId(4)).unwrap();
//! assert!(dc.values().iter().all(|&k| k == 2));
//! assert_eq!(stats.changed, 5);
//! ```

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use dkcore_graph::{Graph, NodeId};

use crate::seq::batagelj_zaversnik;
use crate::stream::AdjacencyArena;

/// Error for invalid dynamic-graph mutations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MutationError {
    /// The edge already exists (insertion) or does not exist (removal).
    EdgeState {
        /// First endpoint.
        u: NodeId,
        /// Second endpoint.
        v: NodeId,
        /// Whether the edge was present at the time of the mutation.
        present: bool,
    },
    /// An endpoint is out of range or the endpoints coincide.
    InvalidEndpoints {
        /// First endpoint.
        u: NodeId,
        /// Second endpoint.
        v: NodeId,
    },
}

impl fmt::Display for MutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MutationError::EdgeState {
                u,
                v,
                present: true,
            } => {
                write!(f, "edge {{{u}, {v}}} already present")
            }
            MutationError::EdgeState {
                u,
                v,
                present: false,
            } => {
                write!(f, "edge {{{u}, {v}}} not present")
            }
            MutationError::InvalidEndpoints { u, v } => {
                write!(f, "invalid endpoints {{{u}, {v}}}")
            }
        }
    }
}

impl Error for MutationError {}

/// Statistics of one incremental repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UpdateStats {
    /// Nodes examined as candidates (the repair's working set).
    pub candidates: usize,
    /// Nodes whose coreness actually changed.
    pub changed: usize,
}

/// Incrementally maintained k-core decomposition of a mutable graph.
///
/// See the [module docs](self) for the algorithmic background.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynamicCore {
    /// Sorted adjacency in one slotted-CSR arena (shared representation
    /// with the batched [`StreamCore`](crate::stream::StreamCore)):
    /// mutations are a binary search plus an in-slot shift, never a
    /// per-node vector rebuild.
    adj: AdjacencyArena,
    /// Current coreness of every node.
    core: Vec<u32>,
}

impl DynamicCore {
    /// Builds the structure from a static graph (full Batagelj–Zaveršnik
    /// pass).
    pub fn new(g: &Graph) -> Self {
        DynamicCore {
            adj: AdjacencyArena::from_graph(g),
            core: batagelj_zaversnik(g),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.node_count()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.adj.edge_count()
    }

    /// Current coreness of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn coreness(&self, u: NodeId) -> u32 {
        self.core[u.index()]
    }

    /// Current coreness of every node.
    pub fn values(&self) -> &[u32] {
        &self.core
    }

    /// Current degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn degree(&self, u: NodeId) -> u32 {
        self.adj.degree(u.index())
    }

    /// Whether the edge `{u, v}` currently exists (a binary search in
    /// `u`'s sorted slot).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u.index() < self.adj.node_count() && self.adj.has_edge(u.index(), v.0)
    }

    /// Snapshot of the current graph.
    pub fn to_graph(&self) -> Graph {
        self.adj.to_graph()
    }

    fn check_endpoints(&self, u: NodeId, v: NodeId) -> Result<(), MutationError> {
        let n = self.adj.node_count();
        if u == v || u.index() >= n || v.index() >= n {
            return Err(MutationError::InvalidEndpoints { u, v });
        }
        Ok(())
    }

    /// Inserts the edge `{u, v}` and repairs the decomposition.
    ///
    /// Only nodes with coreness `k_min = min(k(u), k(v))` that are
    /// reachable from the lower endpoint(s) through the `k_min`-shell can
    /// gain (exactly) one level; the repair walks that region and prunes
    /// it with the standard candidate-degree test.
    ///
    /// # Errors
    ///
    /// Returns [`MutationError`] if the edge already exists or the
    /// endpoints are invalid.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> Result<UpdateStats, MutationError> {
        self.check_endpoints(u, v)?;
        if self.has_edge(u, v) {
            return Err(MutationError::EdgeState {
                u,
                v,
                present: true,
            });
        }
        self.adj.insert_edge(u, v);

        let k_min = self.core[u.index()].min(self.core[v.index()]);
        // Roots: the endpoint(s) sitting exactly at k_min.
        let roots: Vec<NodeId> = [u, v]
            .into_iter()
            .filter(|w| self.core[w.index()] == k_min)
            .collect();

        // Candidate region: k_min-shell nodes reachable from the roots
        // through the k_min-shell.
        let n = self.adj.node_count();
        let mut in_candidates = vec![false; n];
        let mut candidates: Vec<NodeId> = Vec::new();
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        for r in roots {
            if !in_candidates[r.index()] {
                in_candidates[r.index()] = true;
                candidates.push(r);
                queue.push_back(r);
            }
        }
        while let Some(w) = queue.pop_front() {
            for &x in self.adj.neighbors(w.index()) {
                let x = NodeId(x);
                if self.core[x.index()] == k_min && !in_candidates[x.index()] {
                    in_candidates[x.index()] = true;
                    candidates.push(x);
                    queue.push_back(x);
                }
            }
        }

        // Candidate degree: neighbors that could support level k_min + 1 —
        // higher-core neighbors plus surviving candidates.
        let mut cd = vec![0u32; n];
        for &w in &candidates {
            cd[w.index()] = self
                .adj
                .neighbors(w.index())
                .iter()
                .filter(|&&x| self.core[x as usize] > k_min || in_candidates[x as usize])
                .count() as u32;
        }
        // Prune candidates that cannot reach k_min + 1.
        let mut evicted = vec![false; n];
        let mut peel: VecDeque<NodeId> = candidates
            .iter()
            .copied()
            .filter(|w| cd[w.index()] <= k_min)
            .collect();
        for w in &peel {
            evicted[w.index()] = true;
        }
        while let Some(w) = peel.pop_front() {
            for &x in self.adj.neighbors(w.index()) {
                let x = x as usize;
                if in_candidates[x] && !evicted[x] {
                    cd[x] -= 1;
                    if cd[x] <= k_min {
                        evicted[x] = true;
                        peel.push_back(NodeId(x as u32));
                    }
                }
            }
        }

        let mut changed = 0usize;
        for &w in &candidates {
            if !evicted[w.index()] {
                self.core[w.index()] = k_min + 1;
                changed += 1;
            }
        }
        Ok(UpdateStats {
            candidates: candidates.len(),
            changed,
        })
    }

    /// Removes the edge `{u, v}` and repairs the decomposition.
    ///
    /// Only `k_min`-shell nodes reachable from the endpoint(s) at `k_min`
    /// can lose (exactly) one level; the repair peels the region with a
    /// support cascade.
    ///
    /// # Errors
    ///
    /// Returns [`MutationError`] if the edge does not exist or the
    /// endpoints are invalid.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<UpdateStats, MutationError> {
        self.check_endpoints(u, v)?;
        if !self.has_edge(u, v) {
            return Err(MutationError::EdgeState {
                u,
                v,
                present: false,
            });
        }
        let k_min = self.core[u.index()].min(self.core[v.index()]);
        self.adj.remove_edge(u, v);

        let roots: Vec<NodeId> = [u, v]
            .into_iter()
            .filter(|w| self.core[w.index()] == k_min)
            .collect();

        // Candidate region, as for insertion (over the post-removal graph;
        // the roots are included regardless of reachability).
        let n = self.adj.node_count();
        let mut in_candidates = vec![false; n];
        let mut candidates: Vec<NodeId> = Vec::new();
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        for r in roots {
            if !in_candidates[r.index()] {
                in_candidates[r.index()] = true;
                candidates.push(r);
                queue.push_back(r);
            }
        }
        while let Some(w) = queue.pop_front() {
            for &x in self.adj.neighbors(w.index()) {
                let x = NodeId(x);
                if self.core[x.index()] == k_min && !in_candidates[x.index()] {
                    in_candidates[x.index()] = true;
                    candidates.push(x);
                    queue.push_back(x);
                }
            }
        }

        // Support: neighbors at coreness >= k_min keep a node at k_min.
        let mut support = vec![0u32; n];
        for &w in &candidates {
            support[w.index()] = self
                .adj
                .neighbors(w.index())
                .iter()
                .filter(|&&x| self.core[x as usize] >= k_min)
                .count() as u32;
        }
        let mut dropped = vec![false; n];
        let mut peel: VecDeque<NodeId> = candidates
            .iter()
            .copied()
            .filter(|w| support[w.index()] < k_min)
            .collect();
        for w in &peel {
            dropped[w.index()] = true;
        }
        let mut changed = 0usize;
        while let Some(w) = peel.pop_front() {
            self.core[w.index()] = k_min.saturating_sub(1);
            changed += 1;
            for &x in self.adj.neighbors(w.index()) {
                let x = x as usize;
                if in_candidates[x] && !dropped[x] {
                    support[x] -= 1;
                    if support[x] < k_min {
                        dropped[x] = true;
                        peel.push_back(NodeId(x as u32));
                    }
                }
            }
        }
        Ok(UpdateStats {
            candidates: candidates.len(),
            changed,
        })
    }
}

/// Safe initial estimates for re-running the *distributed* protocol after
/// a mutation that [`DynamicCore`] has already analyzed: every node gets
/// an upper bound on its new coreness, so the ordinary descending
/// protocol (warm-started from these values) converges to the new
/// decomposition.
///
/// * `old_core` — coreness before the mutation;
/// * `new_graph` — the graph after the mutation;
/// * `inserted` — the endpoints if the mutation was an insertion (`None`
///   for a removal).
///
/// For a removal, the old coreness values are already upper bounds. For
/// an insertion, the `k_min`-shell region reachable from the lower
/// endpoint(s) is bumped by one (capped by the new degree).
///
/// # Example
///
/// ```
/// use dkcore::dynamic::warm_start_estimates;
/// use dkcore_graph::{generators::path, Graph, NodeId};
///
/// let old = vec![1, 1, 1, 1, 1];
/// let cycle = Graph::from_edges(5, [(0,1),(1,2),(2,3),(3,4),(4,0)])?;
/// let est = warm_start_estimates(&old, &cycle, Some((NodeId(0), NodeId(4))));
/// assert!(est.iter().all(|&e| e == 2)); // everyone may now reach 2
/// # Ok::<(), dkcore_graph::GraphError>(())
/// ```
pub fn warm_start_estimates(
    old_core: &[u32],
    new_graph: &Graph,
    inserted: Option<(NodeId, NodeId)>,
) -> Vec<u32> {
    let mut est: Vec<u32> = old_core.to_vec();
    if let Some((u, v)) = inserted {
        let k_min = old_core[u.index()].min(old_core[v.index()]);
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        let mut seen = vec![false; new_graph.node_count()];
        for r in [u, v] {
            if old_core[r.index()] == k_min && !seen[r.index()] {
                seen[r.index()] = true;
                queue.push_back(r);
            }
        }
        while let Some(w) = queue.pop_front() {
            est[w.index()] = (k_min + 1).min(new_graph.degree(w));
            for &x in new_graph.neighbors(w) {
                if old_core[x.index()] == k_min && !seen[x.index()] {
                    seen[x.index()] = true;
                    queue.push_back(x);
                }
            }
        }
    }
    // Degrees always cap estimates (a removal can lower a degree below
    // the old coreness only when the old coreness was degree-limited,
    // in which case the new coreness dropped too).
    for u in new_graph.nodes() {
        est[u.index()] = est[u.index()].min(new_graph.degree(u));
    }
    est
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkcore_graph::generators::{complete, cycle, gnp, path, star};

    #[test]
    fn cycle_close_and_open() {
        let mut dc = DynamicCore::new(&path(6));
        assert!(dc.values().iter().all(|&k| k == 1));
        dc.insert_edge(NodeId(0), NodeId(5)).unwrap();
        assert!(dc.values().iter().all(|&k| k == 2), "closed into a cycle");
        dc.remove_edge(NodeId(2), NodeId(3)).unwrap();
        assert!(
            dc.values().iter().all(|&k| k == 1),
            "opened back into a path"
        );
    }

    #[test]
    fn insert_between_isolated_nodes() {
        let g = Graph::from_edges(3, []).unwrap();
        let mut dc = DynamicCore::new(&g);
        let stats = dc.insert_edge(NodeId(0), NodeId(2)).unwrap();
        assert_eq!(dc.values(), &[1, 0, 1]);
        assert_eq!(stats.changed, 2);
    }

    #[test]
    fn remove_to_isolation() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let mut dc = DynamicCore::new(&g);
        dc.remove_edge(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(dc.values(), &[0, 0]);
        assert_eq!(dc.edge_count(), 0);
    }

    #[test]
    fn errors_on_bad_mutations() {
        let mut dc = DynamicCore::new(&path(3));
        assert!(matches!(
            dc.insert_edge(NodeId(0), NodeId(1)),
            Err(MutationError::EdgeState { present: true, .. })
        ));
        assert!(matches!(
            dc.remove_edge(NodeId(0), NodeId(2)),
            Err(MutationError::EdgeState { present: false, .. })
        ));
        assert!(matches!(
            dc.insert_edge(NodeId(1), NodeId(1)),
            Err(MutationError::InvalidEndpoints { .. })
        ));
        assert!(matches!(
            dc.remove_edge(NodeId(0), NodeId(9)),
            Err(MutationError::InvalidEndpoints { .. })
        ));
        assert!(MutationError::EdgeState {
            u: NodeId(0),
            v: NodeId(1),
            present: true
        }
        .to_string()
        .contains("already present"));
    }

    #[test]
    fn repair_matches_full_recompute_on_random_traces() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for trial in 0..10 {
            let g = gnp(60, 0.06, trial);
            let mut dc = DynamicCore::new(&g);
            for step in 0..80 {
                let a = NodeId(rng.random_range(0..60));
                let b = NodeId(rng.random_range(0..60));
                if a == b {
                    continue;
                }
                if dc.has_edge(a, b) {
                    dc.remove_edge(a, b).unwrap();
                } else {
                    dc.insert_edge(a, b).unwrap();
                }
                let expected = batagelj_zaversnik(&dc.to_graph());
                assert_eq!(
                    dc.values(),
                    expected.as_slice(),
                    "trial {trial}, step {step}, after mutating {{{a}, {b}}}"
                );
            }
        }
    }

    #[test]
    fn repair_working_set_is_local() {
        // Inserting one edge at the edge of a large graph should examine
        // far fewer nodes than the whole graph. The working-set size is
        // sensitive to the sampled graph, so pin a seed with a comfortable
        // margin under the offline rand shim.
        let g = gnp(2_000, 0.005, 5);
        let mut dc = DynamicCore::new(&g);
        let mut total_candidates = 0usize;
        let mut mutations = 0usize;
        for i in 0..50u32 {
            let a = NodeId(i);
            let b = NodeId(1_000 + i);
            if !dc.has_edge(a, b) {
                total_candidates += dc.insert_edge(a, b).unwrap().candidates;
                mutations += 1;
            }
        }
        let avg = total_candidates as f64 / mutations as f64;
        assert!(
            avg < 2_000.0 / 2.0,
            "repairs should be local, avg working set {avg}"
        );
    }

    #[test]
    fn dense_graph_updates() {
        let mut dc = DynamicCore::new(&complete(8));
        assert!(dc.values().iter().all(|&k| k == 7));
        dc.remove_edge(NodeId(0), NodeId(1)).unwrap();
        let expected = batagelj_zaversnik(&dc.to_graph());
        assert_eq!(dc.values(), expected.as_slice());
    }

    #[test]
    fn star_hub_gains_from_leaf_links() {
        let mut dc = DynamicCore::new(&star(6));
        assert!(dc.values().iter().all(|&k| k == 1));
        // Connect two leaves: a triangle with the hub appears.
        dc.insert_edge(NodeId(1), NodeId(2)).unwrap();
        assert_eq!(dc.coreness(NodeId(0)), 2);
        assert_eq!(dc.coreness(NodeId(1)), 2);
        assert_eq!(dc.coreness(NodeId(2)), 2);
        assert_eq!(dc.coreness(NodeId(3)), 1);
    }

    #[test]
    fn high_degree_hub_mutations_stay_sorted_and_correct() {
        // Regression for the adjacency fast path: a 20k-leaf star hub is
        // churned hundreds of times. Sorted-insertion via binary search +
        // in-slot shift must keep `has_edge`/repair correct at high
        // degree (a linear-scan or rebuild-based adjacency would blow up
        // quadratically here).
        const LEAVES: u32 = 20_000;
        let g = star(LEAVES as usize + 1);
        let mut dc = DynamicCore::new(&g);
        assert_eq!(dc.degree(NodeId(0)), LEAVES);
        // Remove and re-insert hub edges scattered across the slot.
        for i in 0..400u32 {
            let leaf = NodeId(1 + (i * 37) % LEAVES);
            dc.remove_edge(NodeId(0), leaf).unwrap();
            assert!(!dc.has_edge(NodeId(0), leaf));
            dc.insert_edge(NodeId(0), leaf).unwrap();
            assert!(dc.has_edge(NodeId(0), leaf));
        }
        assert_eq!(dc.degree(NodeId(0)), LEAVES);
        // Leaf-to-leaf chords trigger hub-region repairs at full degree.
        for i in 0..50u32 {
            dc.insert_edge(NodeId(1 + 2 * i), NodeId(2 + 2 * i))
                .unwrap();
        }
        let expected = batagelj_zaversnik(&dc.to_graph());
        assert_eq!(dc.values(), expected.as_slice());
        assert_eq!(dc.coreness(NodeId(0)), 2);
    }

    #[test]
    fn to_graph_roundtrip() {
        let g = gnp(50, 0.1, 3);
        let dc = DynamicCore::new(&g);
        assert_eq!(dc.to_graph(), g);
        assert_eq!(dc.node_count(), 50);
        assert_eq!(dc.edge_count(), g.edge_count());
    }

    #[test]
    fn warm_start_estimates_are_upper_bounds() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let g = gnp(80, 0.05, 5);
        let mut dc = DynamicCore::new(&g);
        for _ in 0..40 {
            let a = NodeId(rng.random_range(0..80));
            let b = NodeId(rng.random_range(0..80));
            if a == b {
                continue;
            }
            let old = dc.values().to_vec();
            let inserted = if dc.has_edge(a, b) {
                dc.remove_edge(a, b).unwrap();
                None
            } else {
                dc.insert_edge(a, b).unwrap();
                Some((a, b))
            };
            let new_graph = dc.to_graph();
            let est = warm_start_estimates(&old, &new_graph, inserted);
            for u in new_graph.nodes() {
                assert!(
                    est[u.index()] >= dc.coreness(u),
                    "warm start below new coreness at {u}"
                );
            }
        }
    }

    #[test]
    fn warm_start_on_cycle_example() {
        let old = vec![1, 1, 1, 1, 1];
        let c = cycle(5);
        let est = warm_start_estimates(&old, &c, Some((NodeId(0), NodeId(4))));
        assert_eq!(est, vec![2; 5]);
    }
}
