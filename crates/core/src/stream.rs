//! Batched streaming maintenance of the k-core decomposition — the
//! engine behind edge-churn streams, where mutations arrive in batches
//! and the decomposition must re-converge without per-edge rescans.
//!
//! [`DynamicCore`](crate::dynamic::DynamicCore) repairs one mutation at a
//! time: every call walks a candidate region and allocates working maps
//! over the whole node set. Over a stream of `B` mutations that is `B`
//! traversals and `O(B·N)` of scratch traffic. This module amortizes the
//! whole batch into **one** repair:
//!
//! * [`AdjacencyArena`] — a slotted-CSR adjacency that supports in-place
//!   sorted insertion/removal (binary search + shift inside a node's
//!   slot, amortized relocation on growth) with all neighbor lists in one
//!   flat arena — no `Vec<Vec<_>>`, no per-mutation rebuilds.
//! * [`EdgeBatch`] — an atomically validated set of insertions and
//!   removals.
//! * [`StreamCore`] — the batched maintenance structure: one call to
//!   [`apply_batch`](StreamCore::apply_batch) applies every mutation and
//!   repairs all coreness values, touching each affected node **once per
//!   batch** instead of once per edge.
//! * [`warm_start_estimates_batch`] — the batch generalization of
//!   [`warm_start_estimates`](crate::dynamic::warm_start_estimates):
//!   safe initial estimates that let the *distributed* protocol
//!   re-converge from a handful of candidate nodes.
//!
//! # The batched repair
//!
//! A batch is applied in two phases:
//!
//! 1. **Removal phase.** All removed edges are taken out of the arena and
//!    a *descent* (below) runs seeded with the removal endpoints only.
//!    Removals never increase coreness, so the pre-batch values are
//!    already safe upper bounds and no candidate analysis is needed; the
//!    descent converges to the exact decomposition of the pruned graph.
//! 2. **Insertion phase.** All inserted edges enter the arena, the
//!    *union candidate set* is computed in one pass (below), candidate
//!    estimates are bumped to a safe upper bound, and a second descent —
//!    seeded from the candidates only — converges to the final
//!    decomposition.
//!
//! The **descent** is the sequential analog of the paper's distributed
//! protocol: every node's estimate only decreases, and a node re-derives
//! its estimate from its neighbors' estimates with Algorithm 2. It reuses
//! the [`IncrementalIndex`] suffix-count histograms: a touched node is
//! scanned **once** to build its histogram, after which every neighbor
//! drop costs `O(1)` amortized — no node is rescanned per edge. Nodes
//! whose inputs never change are never examined at all.
//!
//! # Safety argument (why the upper bounds are upper bounds)
//!
//! Let `core₁` be the exact coreness after the removal phase, `E⁺` the
//! inserted edges, and `G'` the final graph.
//!
//! **Theorem (reach).** If `core'(w) > core₁(w)` for some node `w`, then
//! `w` is connected to an endpoint of some inserted edge by a path whose
//! nodes `x` all satisfy `core₁(x) < core'(w) ≤ core'(x)`.
//!
//! *Proof.* Let `k = core'(w)` and `H` the k-core of `G'`, so `w ∈ H`.
//! Let `P` be the connected component of `w` in `H_< = {x ∈ H :
//! core₁(x) < k}`. If no node of `P` touches an inserted edge inside `H`,
//! then every `x ∈ P` has ≥ `k` `H`-neighbors via *old* edges, each lying
//! in `P` or in `H_≥ = {x ∈ H : core₁(x) ≥ k}`. `H_≥` is contained in the
//! k-core of the pre-insertion graph, so `P ∪ (k-core)` is a subgraph of
//! the pre-insertion graph with min degree ≥ `k` — contradicting
//! `core₁(x) < k` for `x ∈ P`. ∎
//!
//! **Theorem (grouping).** Partition `E⁺` into groups `G_i` and grow for
//! each a region `R_i` containing its endpoints, *closed* under the rule
//! "`x ∈ R_i`, `y` adjacent in `G'`, `|core₁(x) − core₁(y)| ≤ |G_i| − 1`
//! ⇒ `y ∈ R_i`", merging groups whenever their regions touch (so regions
//! are pairwise disjoint and closure holds for the merged size). Then for
//! every node `w`:
//!
//! ```text
//! core'(w) ≤ min(deg'(w), core₁(w) + |G_i|)   if w ∈ R_i,
//! core'(w) = core₁(w)                          otherwise.
//! ```
//!
//! *Proof sketch.* Apply the insertions group by group, one edge at a
//! time, with the invariant `cur(x) ≤ core₁(x) + aᵢ(x)` where `aᵢ(x)`
//! counts applied edges of `x`'s group (`0` outside all regions). A
//! single insertion raises exactly the nodes at the current level
//! `k_e = min(cur(u), cur(v))` reachable from an endpoint through
//! equal-`cur` nodes, each by exactly 1 (the classic traversal insight
//! used by `DynamicCore`). Along such a path, consecutive nodes have
//! `|Δcore₁| ≤ max(a(x), a(y)) ≤ |G_i| − 1`, so by closure and region
//! disjointness the path — and therefore every raised node — stays inside
//! the group's region, preserving the invariant. ∎
//!
//! The descent then converges to the exact coreness from any pointwise
//! upper bound that is capped by the degree: iterates are sandwiched
//! between the true coreness (safety: Algorithm 2 never undershoots an
//! estimate vector that upper-bounds coreness) and the run started from
//! plain degrees, which the paper proves converges (Theorem 3). At the
//! internal fixpoint the estimates are locally justified, and a locally
//! justified assignment is a lower-bound certificate — so the fixpoint
//! *is* the coreness.
//!
//! # Parallel region descent
//!
//! The merged candidate regions are pairwise disjoint and closed under
//! the traversal rule, which makes them an embarrassingly parallel work
//! decomposition: with [`StreamCore::set_threads`] the descent of each
//! region runs on a scoped worker thread against a private overlay map
//! (reads fall through to the shared pre-descent estimates; writes stay
//! local), and the per-region results merge back in region order. The
//! result is **bit-identical** to the sequential descent because a
//! worker's frozen view of foreign estimates is exact at every decisive
//! threshold: two adjacent nodes in different regions have
//! `|core₁(x) − core₁(y)| > window` by region closure, so a foreign
//! neighbor's estimate — which moves only inside
//! `[final, core₁ + bump] ⊆ [core₁ − slack, core₁ + bump]` — never
//! crosses a threshold the local node's histogram can be decided by
//! (thresholds are capped by the local node's own bumped estimate).
//! The local fixpoint therefore satisfies exactly the same equations as
//! the sequential one restricted to the region, and descending fixpoints
//! from a common upper bound are unique. The set of examined nodes is
//! schedule-independent too (`seeds ∪ N(droppers)`, and which nodes drop
//! at all depends only on the fixpoint), so the per-batch
//! [`last_touched`](StreamCore::last_touched) delta has the same
//! *contents* either way — only its order within a batch differs.
//!
//! # Example
//!
//! ```
//! use dkcore::stream::{EdgeBatch, StreamCore};
//! use dkcore::seq::batagelj_zaversnik;
//! use dkcore_graph::{generators::path, NodeId};
//!
//! let mut sc = StreamCore::new(&path(6));
//! let mut batch = EdgeBatch::new();
//! batch.insert(NodeId(0), NodeId(5)); // close the cycle
//! batch.remove(NodeId(2), NodeId(3)); // ... and cut it elsewhere
//! let stats = sc.apply_batch(&batch).unwrap();
//! assert_eq!(sc.values(), batagelj_zaversnik(&sc.to_graph()).as_slice());
//! assert_eq!(stats.inserted, 1);
//! assert_eq!(stats.removed, 1);
//! ```

use std::collections::{HashMap, HashSet, VecDeque};
use std::thread;
use std::time::Instant;

use dkcore_graph::{Graph, GraphBuilder, NodeId};

use crate::dynamic::MutationError;
use crate::seq::batagelj_zaversnik;
use crate::IncrementalIndex;

/// One edge mutation of a churn stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Insert the (currently absent) edge `{u, v}`.
    Insert(NodeId, NodeId),
    /// Remove the (currently present) edge `{u, v}`.
    Remove(NodeId, NodeId),
}

impl Mutation {
    /// The mutation's endpoints.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        match *self {
            Mutation::Insert(u, v) | Mutation::Remove(u, v) => (u, v),
        }
    }
}

/// A batch of edge mutations with *set* semantics: all removals are
/// validated against the pre-batch graph, all insertions against the
/// post-removal graph, and the whole batch is applied atomically (a
/// validation error leaves the structure untouched). An edge may appear
/// in both lists — it is removed and re-inserted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeBatch {
    insertions: Vec<(NodeId, NodeId)>,
    removals: Vec<(NodeId, NodeId)>,
}

impl EdgeBatch {
    /// An empty batch.
    pub fn new() -> Self {
        EdgeBatch::default()
    }

    /// Builds a batch from a mutation sequence.
    pub fn from_mutations<I: IntoIterator<Item = Mutation>>(mutations: I) -> Self {
        let mut b = EdgeBatch::new();
        for m in mutations {
            match m {
                Mutation::Insert(u, v) => b.insert(u, v),
                Mutation::Remove(u, v) => b.remove(u, v),
            };
        }
        b
    }

    /// Queues the insertion of `{u, v}`.
    pub fn insert(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.insertions.push(ordered(u, v));
        self
    }

    /// Queues the removal of `{u, v}`.
    pub fn remove(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.removals.push(ordered(u, v));
        self
    }

    /// The queued insertions, endpoints ordered.
    pub fn insertions(&self) -> &[(NodeId, NodeId)] {
        &self.insertions
    }

    /// The queued removals, endpoints ordered.
    pub fn removals(&self) -> &[(NodeId, NodeId)] {
        &self.removals
    }

    /// Total number of queued mutations.
    pub fn len(&self) -> usize {
        self.insertions.len() + self.removals.len()
    }

    /// Whether the batch holds no mutations.
    pub fn is_empty(&self) -> bool {
        self.insertions.is_empty() && self.removals.is_empty()
    }

    /// The inverse batch: applying `self` then `self.inverse()` restores
    /// the original edge set. Removals become insertions and vice versa.
    ///
    /// This is the replay/rollback hook for batch-log consumers: a
    /// replica catching up replays logged batches forward, and a writer
    /// aborting a failed batch attempt applies the inverse to roll its
    /// adjacency back to the last published epoch.
    pub fn inverse(&self) -> EdgeBatch {
        EdgeBatch {
            insertions: self.removals.clone(),
            removals: self.insertions.clone(),
        }
    }

    /// Validates the batch against a graph with `n` nodes whose edge set
    /// is exposed through `has_edge`: all removals must name present
    /// edges, all insertions absent ones (unless the same batch also
    /// removes them), duplicates and bad endpoints are rejected. This is
    /// the exact rule [`StreamCore::apply_batch`] enforces, exported so
    /// other batch appliers (e.g. the sharded serving layer) stay
    /// bit-compatible with it.
    ///
    /// # Errors
    ///
    /// Returns the first [`MutationError`] found.
    pub fn validate_against<F>(&self, n: usize, has_edge: F) -> Result<(), MutationError>
    where
        F: Fn(NodeId, NodeId) -> bool,
    {
        let endpoints_ok = |&(u, v): &(NodeId, NodeId)| -> Result<(), MutationError> {
            if u == v || u.index() >= n || v.index() >= n {
                return Err(MutationError::InvalidEndpoints { u, v });
            }
            Ok(())
        };
        let mut removals = self.removals().to_vec();
        removals.sort_unstable();
        for (i, r) in removals.iter().enumerate() {
            endpoints_ok(r)?;
            let &(u, v) = r;
            if i > 0 && removals[i - 1] == (u, v) {
                // A duplicate removal: the second one targets a missing edge.
                return Err(MutationError::EdgeState {
                    u,
                    v,
                    present: false,
                });
            }
            if !has_edge(u, v) {
                return Err(MutationError::EdgeState {
                    u,
                    v,
                    present: false,
                });
            }
        }
        let mut insertions = self.insertions().to_vec();
        insertions.sort_unstable();
        for (i, ins) in insertions.iter().enumerate() {
            endpoints_ok(ins)?;
            let &(u, v) = ins;
            let dup = i > 0 && insertions[i - 1] == (u, v);
            let present = has_edge(u, v);
            let also_removed = removals.binary_search(&(u, v)).is_ok();
            if dup || (present && !also_removed) {
                return Err(MutationError::EdgeState {
                    u,
                    v,
                    present: true,
                });
            }
        }
        Ok(())
    }
}

fn ordered(u: NodeId, v: NodeId) -> (NodeId, NodeId) {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

/// Statistics of one [`StreamCore::apply_batch`] repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchStats {
    /// Edges inserted.
    pub inserted: usize,
    /// Edges removed.
    pub removed: usize,
    /// Distinct nodes examined by the repair (candidate regions plus
    /// descent cascades) — the batch's working set.
    pub candidates: usize,
    /// Nodes whose coreness differs from before the batch.
    pub changed: usize,
    /// Insertion candidate groups after region merging (0 for pure
    /// removal batches).
    pub regions: usize,
}

/// Wall-clock split of the most recent [`StreamCore::apply_batch`]
/// repair, populated only when phase timing is on
/// ([`StreamCore::set_phase_timing`]).
///
/// Deliberately *not* part of [`BatchStats`]: stats are asserted
/// bit-identical between the sequential and region-parallel engines,
/// and wall times never can be. Telemetry layers read this through
/// [`StreamCore::last_phase_times`] and feed it into their own
/// histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseTimes {
    /// Removal arc mutation + exact removal descent (Phase A).
    pub removal_us: u64,
    /// Candidate-region growth (union-find merge + BFS closure).
    pub region_us: u64,
    /// Insertion bump + descent to the fixpoint (Phase B remainder).
    pub insert_us: u64,
    /// Delta tally over the touched set (the export snapshot builders
    /// consume).
    pub export_us: u64,
}

/// Slotted-CSR adjacency: every node's sorted neighbor list lives in a
/// contiguous slot of one flat arena, with amortized-doubling relocation
/// on overflow. Insertions and removals keep the list sorted with a
/// binary search plus an in-slot shift — the mutable counterpart of the
/// immutable [`Graph`] CSR, with no per-node heap allocations.
#[derive(Debug, Clone)]
pub struct AdjacencyArena {
    /// Slot start of node `u` in `pool`.
    start: Vec<usize>,
    /// Live neighbors of node `u` (prefix of the slot).
    len: Vec<u32>,
    /// Slot capacity of node `u`.
    cap: Vec<u32>,
    /// The arena. Slots are disjoint; relocation leaves dead ranges that
    /// are reclaimed by [`compact`](Self::compact).
    pool: Vec<u32>,
    /// Total live slot capacity (for the compaction trigger).
    live: usize,
}

impl AdjacencyArena {
    /// Builds the arena from a static graph (one packed copy).
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.node_count();
        let mut start = Vec::with_capacity(n);
        let mut len = Vec::with_capacity(n);
        let mut pool = Vec::with_capacity(g.arc_count());
        for u in g.nodes() {
            start.push(pool.len());
            let nbrs = g.neighbors(u);
            pool.extend(nbrs.iter().map(|v| v.0));
            len.push(nbrs.len() as u32);
        }
        AdjacencyArena {
            start,
            cap: len.clone(),
            len,
            live: pool.len(),
            pool,
        }
    }

    /// Builds the arena from explicit sorted neighbor lists — the
    /// constructor for slot spaces that are not `0..n` graph ids, such as
    /// a shard arena whose slots are shard-local node indices while the
    /// stored values stay global.
    ///
    /// Each list must be strictly ascending (debug-asserted).
    pub fn from_sorted_lists<I, J>(lists: I) -> Self
    where
        I: IntoIterator<Item = J>,
        J: IntoIterator<Item = u32>,
    {
        let mut start = Vec::new();
        let mut len = Vec::new();
        let mut pool: Vec<u32> = Vec::new();
        for list in lists {
            let s = pool.len();
            start.push(s);
            pool.extend(list);
            debug_assert!(
                pool[s..].windows(2).all(|w| w[0] < w[1]),
                "neighbor lists must be strictly ascending"
            );
            len.push((pool.len() - s) as u32);
        }
        AdjacencyArena {
            start,
            cap: len.clone(),
            len,
            live: pool.len(),
            pool,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.len.len()
    }

    /// Current degree of `u`.
    pub fn degree(&self, u: usize) -> u32 {
        self.len[u]
    }

    /// Sorted neighbors of `u`.
    #[inline]
    pub fn neighbors(&self, u: usize) -> &[u32] {
        &self.pool[self.start[u]..self.start[u] + self.len[u] as usize]
    }

    /// Whether the edge `{u, v}` exists.
    pub fn has_edge(&self, u: usize, v: u32) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.len.iter().map(|&l| l as usize).sum::<usize>() / 2
    }

    /// Inserts the undirected edge `{u, v}` (both arcs). Returns `false`
    /// (and changes nothing) if it was already present.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range; callers validate.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if !self.insert_arc(u.index(), v.0) {
            return false;
        }
        let inserted = self.insert_arc(v.index(), u.0);
        debug_assert!(inserted, "arc directions in sync");
        true
    }

    /// Removes the undirected edge `{u, v}` (both arcs). Returns `false`
    /// (and changes nothing) if it was absent.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range; callers validate.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if !self.remove_arc(u.index(), v.0) {
            return false;
        }
        let removed = self.remove_arc(v.index(), u.0);
        debug_assert!(removed, "arc directions in sync");
        true
    }

    /// Inserts `v` into `u`'s sorted list (one direction). Returns `false`
    /// if already present.
    ///
    /// Public for callers that manage both arc directions themselves —
    /// e.g. a sharded service whose slots are shard-local while the
    /// stored values are global node ids, so the matching reverse arc
    /// lives in a *different* arena.
    pub fn insert_arc(&mut self, u: usize, v: u32) -> bool {
        let Err(pos) = self.neighbors(u).binary_search(&v) else {
            return false;
        };
        if self.len[u] == self.cap[u] {
            self.grow(u);
        }
        let s = self.start[u];
        let l = self.len[u] as usize;
        // Shift the tail right by one inside the slot.
        self.pool.copy_within(s + pos..s + l, s + pos + 1);
        self.pool[s + pos] = v;
        self.len[u] += 1;
        true
    }

    /// Removes `v` from `u`'s sorted list (one direction). Returns `false`
    /// if absent. See [`insert_arc`](Self::insert_arc) for when one-sided
    /// arc maintenance is the right tool.
    pub fn remove_arc(&mut self, u: usize, v: u32) -> bool {
        let Ok(pos) = self.neighbors(u).binary_search(&v) else {
            return false;
        };
        let s = self.start[u];
        let l = self.len[u] as usize;
        self.pool.copy_within(s + pos + 1..s + l, s + pos);
        self.len[u] -= 1;
        true
    }

    /// Relocates `u`'s slot to the arena end with doubled capacity.
    fn grow(&mut self, u: usize) {
        let new_cap = (self.cap[u] * 2).max(4);
        let s = self.start[u];
        let l = self.len[u] as usize;
        let new_start = self.pool.len();
        self.pool.extend_from_within(s..s + l);
        self.pool.resize(new_start + new_cap as usize, u32::MAX);
        self.start[u] = new_start;
        self.live += (new_cap - self.cap[u]) as usize;
        self.cap[u] = new_cap;
        // Reclaim dead ranges once they dominate the arena.
        if self.pool.len() > 2 * self.live.max(64) {
            self.compact();
        }
    }

    /// Repacks all slots front to back, dropping dead ranges.
    fn compact(&mut self) {
        let mut pool = Vec::with_capacity(self.live);
        for u in 0..self.len.len() {
            let s = self.start[u];
            let l = self.len[u] as usize;
            self.start[u] = pool.len();
            pool.extend_from_slice(&self.pool[s..s + l]);
            pool.resize(self.start[u] + self.cap[u] as usize, u32::MAX);
        }
        self.pool = pool;
    }

    /// Snapshot as an immutable [`Graph`].
    pub fn to_graph(&self) -> Graph {
        let mut b = GraphBuilder::new(self.node_count()).expect("node count fits");
        for u in 0..self.node_count() {
            for &v in self.neighbors(u) {
                if (u as u32) < v {
                    b.add_edge(NodeId(u as u32), NodeId(v));
                }
            }
        }
        b.build()
    }
}

impl PartialEq for AdjacencyArena {
    /// Logical equality: same node count and same neighbor lists (slot
    /// layout and dead arena ranges are representation details).
    fn eq(&self, other: &Self) -> bool {
        self.node_count() == other.node_count()
            && (0..self.node_count()).all(|u| self.neighbors(u) == other.neighbors(u))
    }
}

impl Eq for AdjacencyArena {}

/// Batched streaming k-core maintenance. See the [module docs](self) for
/// the algorithm and its safety argument.
#[derive(Debug, Clone)]
pub struct StreamCore {
    adj: AdjacencyArena,
    /// Current coreness (exact between batches; the descending estimate
    /// during a repair).
    core: Vec<u32>,

    // --- persistent, stamp-invalidated scratch (no per-batch O(N) work) ---
    /// Phase counter: bumping it invalidates `seen` and the index table.
    phase: u64,
    /// Batch counter: bumping it invalidates `claimed` and `touched_mark`.
    batch: u64,
    /// Node examined this phase (enqueued or histogram built).
    seen: Vec<u64>,
    /// Node has a live histogram this phase; its pool slot is `idx_of`.
    idx_built: Vec<u64>,
    /// Pool slot of a node's histogram, valid when `idx_built` matches.
    idx_of: Vec<u32>,
    /// Recycled histogram pool: slots `0..idx_used` are live this phase,
    /// the rest keep their allocations for rebuilding.
    idx_pool: Vec<IncrementalIndex>,
    /// Live prefix of `idx_pool` this phase.
    idx_used: usize,
    /// Node recorded in `touched` this batch.
    touched_mark: Vec<u64>,
    /// `(node, pre-batch coreness)` of every examined node.
    touched: Vec<(u32, u32)>,
    /// Descent worklist.
    queue: VecDeque<u32>,
    /// Drop-event queue `(node, old, new)` driving the cascade.
    events: VecDeque<(u32, u32, u32)>,
    /// Worker threads for the region-parallel descent (`0`/`1` =
    /// sequential). See [`set_threads`](Self::set_threads).
    threads: usize,
    /// Whether [`apply_batch`](Self::apply_batch) wall-clocks its repair
    /// phases into `phase_times` (off by default: four `Instant` reads
    /// per batch are cheap but not free).
    time_phases: bool,
    /// Phase split of the most recent batch when `time_phases` is on.
    phase_times: PhaseTimes,
}

/// Minimum total candidate members before a phase is worth dispatching
/// to worker threads; below this the spawn cost dominates the descent.
const PAR_MIN_NODES: usize = 32;

impl StreamCore {
    /// Builds the structure from a static graph (full Batagelj–Zaveršnik
    /// pass).
    pub fn new(g: &Graph) -> Self {
        let n = g.node_count();
        StreamCore {
            adj: AdjacencyArena::from_graph(g),
            core: batagelj_zaversnik(g),
            phase: 0,
            batch: 0,
            seen: vec![0; n],
            idx_built: vec![0; n],
            idx_of: vec![0; n],
            idx_pool: Vec::new(),
            idx_used: 0,
            touched_mark: vec![0; n],
            touched: Vec::new(),
            queue: VecDeque::new(),
            events: VecDeque::new(),
            threads: 0,
            time_phases: false,
            phase_times: PhaseTimes::default(),
        }
    }

    /// Sets the number of descent worker threads for subsequent batches.
    ///
    /// `0` or `1` keeps the fully sequential repair (the default). With
    /// more, [`apply_batch`](Self::apply_batch) descends disjoint
    /// candidate regions on scoped worker threads whenever a phase has
    /// at least two regions and enough candidate members to amortize the
    /// spawn. Results are bit-identical to the sequential repair — same
    /// coreness values, same [`BatchStats`], same
    /// [`last_touched`](Self::last_touched) contents (the delta's order
    /// within a batch may differ); see the [module
    /// docs](self#parallel-region-descent) for the argument.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
    }

    /// Builder-style [`set_threads`](Self::set_threads).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.set_threads(threads);
        self
    }

    /// Turns per-phase wall-clock timing of
    /// [`apply_batch`](Self::apply_batch) on or off (default off); read
    /// the split with [`last_phase_times`](Self::last_phase_times).
    pub fn set_phase_timing(&mut self, on: bool) {
        self.time_phases = on;
    }

    /// Builder-style [`set_phase_timing`](Self::set_phase_timing).
    #[must_use]
    pub fn with_phase_timing(mut self, on: bool) -> Self {
        self.set_phase_timing(on);
        self
    }

    /// Phase split of the most recent batch; all zeros when phase timing
    /// is off or before the first batch.
    pub fn last_phase_times(&self) -> PhaseTimes {
        self.phase_times
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.core.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.adj.edge_count()
    }

    /// Current coreness of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn coreness(&self, u: NodeId) -> u32 {
        self.core[u.index()]
    }

    /// Current coreness of every node.
    pub fn values(&self) -> &[u32] {
        &self.core
    }

    /// Current degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn degree(&self, u: NodeId) -> u32 {
        self.adj.degree(u.index())
    }

    /// Whether the edge `{u, v}` currently exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u.index() < self.adj.node_count() && self.adj.has_edge(u.index(), v.0)
    }

    /// Snapshot of the current graph.
    pub fn to_graph(&self) -> Graph {
        self.adj.to_graph()
    }

    /// Current degree of every node, read straight off the arena.
    ///
    /// Together with [`values`](Self::values) and
    /// [`adjacency`](Self::adjacency) this is the cheap read-only state
    /// export consumed by snapshot builders (e.g. `dkcore-serve`): the
    /// coreness values are exact between batches, so nothing has to be
    /// re-derived with a fresh decomposition pass.
    pub fn degrees(&self) -> Vec<u32> {
        (0..self.adj.node_count())
            .map(|u| self.adj.degree(u))
            .collect()
    }

    /// Read-only view of the slotted-CSR adjacency arena.
    pub fn adjacency(&self) -> &AdjacencyArena {
        &self.adj
    }

    /// The per-batch delta: every node the most recent
    /// [`apply_batch`](Self::apply_batch) examined, with its *pre-batch*
    /// coreness. Nodes not listed are untouched — their coreness,
    /// degree, and adjacency are identical to the previous batch
    /// boundary (adjacency additionally changes only at the batch's own
    /// edge endpoints).
    ///
    /// This is the export incremental snapshot builders (e.g.
    /// `dkcore-serve`) consume to publish an epoch in `O(|touched|)`
    /// instead of rebuilding `O(N + M)` state. Valid until the next
    /// `apply_batch` call; empty before the first one.
    pub fn last_touched(&self) -> &[(u32, u32)] {
        &self.touched
    }

    /// `(node, old, new)` for every node whose coreness changed in the
    /// most recent [`apply_batch`](Self::apply_batch) — the filtered
    /// view of [`last_touched`](Self::last_touched).
    pub fn last_coreness_changes(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        self.touched
            .iter()
            .filter(|&&(u, old)| self.core[u as usize] != old)
            .map(|&(u, old)| (u, old, self.core[u as usize]))
    }

    /// Inserts one edge — a batch of one.
    ///
    /// # Errors
    ///
    /// Returns [`MutationError`] if the edge exists or the endpoints are
    /// invalid.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> Result<BatchStats, MutationError> {
        let mut b = EdgeBatch::new();
        b.insert(u, v);
        self.apply_batch(&b)
    }

    /// Removes one edge — a batch of one.
    ///
    /// # Errors
    ///
    /// Returns [`MutationError`] if the edge is absent or the endpoints
    /// are invalid.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<BatchStats, MutationError> {
        let mut b = EdgeBatch::new();
        b.remove(u, v);
        self.apply_batch(&b)
    }

    /// Applies a whole batch atomically and repairs the decomposition.
    ///
    /// Removals are validated against the pre-batch graph, insertions
    /// against the post-removal graph; on any validation error nothing is
    /// mutated. See the [module docs](self) for the repair itself.
    ///
    /// # Errors
    ///
    /// Returns the first [`MutationError`] found during validation.
    pub fn apply_batch(&mut self, batch: &EdgeBatch) -> Result<BatchStats, MutationError> {
        self.validate(batch)?;
        self.batch += 1;
        self.touched.clear();
        self.phase_times = PhaseTimes::default();

        // --- Phase A: removals, exact descent from the old coreness. ---
        let clock = self.time_phases.then(Instant::now);
        for &(u, v) in batch.removals() {
            self.adj.remove_arc(u.index(), v.0);
            self.adj.remove_arc(v.index(), u.0);
        }
        if !batch.removals().is_empty() && !self.parallel_removal_phase(batch.removals()) {
            self.begin_phase();
            for &(u, v) in batch.removals() {
                self.enqueue(u.0);
                self.enqueue(v.0);
            }
            self.descend();
        }
        if let Some(t) = clock {
            self.phase_times.removal_us = t.elapsed().as_micros() as u64;
        }

        // --- Phase B: insertions, candidate regions + bumped descent. ---
        for &(u, v) in batch.insertions() {
            self.adj.insert_arc(u.index(), v.0);
            self.adj.insert_arc(v.index(), u.0);
        }
        let mut regions = 0usize;
        if !batch.insertions().is_empty() {
            regions = self.insertion_phase(batch.insertions());
        }

        let clock = self.time_phases.then(Instant::now);
        let changed = self
            .touched
            .iter()
            .filter(|&&(u, old)| self.core[u as usize] != old)
            .count();
        if let Some(t) = clock {
            self.phase_times.export_us = t.elapsed().as_micros() as u64;
        }
        Ok(BatchStats {
            inserted: batch.insertions().len(),
            removed: batch.removals().len(),
            candidates: self.touched.len(),
            changed,
            regions,
        })
    }

    /// Validates the whole batch against the current graph without
    /// mutating anything.
    fn validate(&self, batch: &EdgeBatch) -> Result<(), MutationError> {
        batch.validate_against(self.adj.node_count(), |u, v| {
            self.adj.has_edge(u.index(), v.0)
        })
    }

    /// Opens a fresh descent phase: invalidates every histogram and
    /// every `seen` stamp in O(1). Pool allocations are kept for
    /// recycling.
    fn begin_phase(&mut self) {
        self.phase += 1;
        self.idx_used = 0;
        self.queue.clear();
        self.events.clear();
    }

    /// Marks a node examined (for stats) and queues it for the descent.
    fn enqueue(&mut self, u: u32) {
        self.touch(u);
        if self.seen[u as usize] != self.phase {
            self.seen[u as usize] = self.phase;
            self.queue.push_back(u);
        }
    }

    /// Records a node's pre-batch coreness once per batch.
    fn touch(&mut self, u: u32) {
        if self.touched_mark[u as usize] != self.batch {
            self.touched_mark[u as usize] = self.batch;
            self.touched.push((u, self.core[u as usize]));
        }
    }

    /// Runs the descent to its fixpoint: pops queued nodes, lazily builds
    /// their histograms from the *current* estimates (one neighbor scan
    /// per touched node per phase), and cascades drops through already
    /// built histograms in amortized O(1) per event.
    fn descend(&mut self) {
        while let Some(w) = self.queue.pop_front() {
            let wi = w as usize;
            if self.idx_built[wi] != self.phase {
                let cap = self.core[wi];
                let slot = self.idx_used;
                if slot == self.idx_pool.len() {
                    self.idx_pool.push(IncrementalIndex::from_estimates(
                        self.adj
                            .neighbors(wi)
                            .iter()
                            .map(|&y| self.core[y as usize]),
                        cap,
                    ));
                } else {
                    self.idx_pool[slot].rebuild(
                        self.adj
                            .neighbors(wi)
                            .iter()
                            .map(|&y| self.core[y as usize]),
                        cap,
                    );
                }
                self.idx_used += 1;
                self.idx_built[wi] = self.phase;
                self.idx_of[wi] = slot as u32;
            }
            let t = self.idx_pool[self.idx_of[wi] as usize].core();
            if t < self.core[wi] {
                self.drop_to(w, t);
            }
        }
    }

    /// Lowers `w`'s estimate and drains the resulting drop cascade.
    /// Invariant: the event queue is empty when histograms are built, so
    /// a histogram sees exactly the drops that occur after its creation.
    fn drop_to(&mut self, w: u32, new: u32) {
        self.touch(w);
        let old = self.core[w as usize];
        self.core[w as usize] = new;
        self.events.push_back((w, old, new));
        while let Some((s, o, n)) = self.events.pop_front() {
            let (a, b) = (
                self.adj.start[s as usize],
                self.adj.start[s as usize] + self.adj.len[s as usize] as usize,
            );
            for p in a..b {
                let y = self.adj.pool[p];
                let yi = y as usize;
                if self.idx_built[yi] == self.phase {
                    let idx = &mut self.idx_pool[self.idx_of[yi] as usize];
                    if idx.update(o, n) {
                        self.touch(y);
                        let oy = self.core[yi];
                        let ny = self.idx_pool[self.idx_of[yi] as usize].core();
                        self.core[yi] = ny;
                        self.events.push_back((y, oy, ny));
                    }
                } else if self.seen[yi] != self.phase {
                    self.touch(y);
                    self.seen[yi] = self.phase;
                    self.queue.push_back(y);
                }
            }
        }
    }

    /// Insertion phase: grows the merged candidate regions, bumps
    /// candidate estimates to the proven upper bound, and descends.
    /// Returns the number of merged regions.
    fn insertion_phase(&mut self, insertions: &[(NodeId, NodeId)]) -> usize {
        // The removal phase already ran, so `core` is exact for the
        // post-removal graph and no removal slack is needed here.
        let clock = self.time_phases.then(Instant::now);
        let regions = {
            let adj = &self.adj;
            candidate_regions(self.core.len(), insertions, &[], &self.core, |x| {
                adj.neighbors(x as usize).iter().copied()
            })
        };
        let clock = clock.map(|t| {
            self.phase_times.region_us = t.elapsed().as_micros() as u64;
            Instant::now()
        });
        let count = regions.len();
        if !self.parallel_insertion_phase(&regions) {
            // Bump and seed: est ← min(deg', core₁ + group insertions).
            self.begin_phase();
            for region in regions {
                let bump = region.insertions;
                for w in region.members {
                    let wi = w as usize;
                    self.touch(w); // record core₁ before the bump
                    let est = (self.core[wi] + bump).min(self.adj.degree(wi));
                    self.core[wi] = self.core[wi].max(est);
                    self.enqueue(w);
                }
            }
            self.descend();
        }
        if let Some(t) = clock {
            self.phase_times.insert_us = t.elapsed().as_micros() as u64;
        }
        count
    }

    /// Region-parallel insertion descent. Returns `false` (without
    /// mutating anything) when the phase should run sequentially:
    /// threading is off, there is only one region, or the candidate set
    /// is too small to amortize the dispatch.
    fn parallel_insertion_phase(&mut self, regions: &[CandidateRegion]) -> bool {
        if self.threads < 2 || regions.len() < 2 {
            return false;
        }
        let total: usize = regions.iter().map(|r| r.members.len()).sum();
        if total < PAR_MIN_NODES {
            return false;
        }
        // Record core₁ and bump every member on the main thread first —
        // the exact sequential seed loop minus the enqueue — so workers
        // observe every region (own and foreign) at its bumped upper
        // bound, which is what the bit-identity argument freezes.
        for region in regions {
            let bump = region.insertions;
            for &w in &region.members {
                let wi = w as usize;
                self.touch(w); // record core₁ before the bump
                let est = (self.core[wi] + bump).min(self.adj.degree(wi));
                self.core[wi] = self.core[wi].max(est);
            }
        }
        let jobs: Vec<(&[u32], &[u32])> = regions
            .iter()
            .map(|r| (r.members.as_slice(), r.members.as_slice()))
            .collect();
        let outcomes = descend_regions(&self.core, &self.adj, &jobs, self.threads);
        self.merge_outcomes(outcomes);
        true
    }

    /// Region-parallel removal descent. Returns `false` (without
    /// mutating anything) when the phase should run sequentially — the
    /// sequential removal phase needs no region analysis at all, so this
    /// only pays for [`candidate_regions`] once threading is on.
    fn parallel_removal_phase(&mut self, removals: &[(NodeId, NodeId)]) -> bool {
        if self.threads < 2 || removals.len() < 2 {
            return false;
        }
        let regions = {
            let adj = &self.adj;
            candidate_regions(self.core.len(), &[], removals, &self.core, |x| {
                adj.neighbors(x as usize).iter().copied()
            })
        };
        if regions.len() < 2 {
            return false;
        }
        let total: usize = regions.iter().map(|r| r.members.len()).sum();
        if total < PAR_MIN_NODES {
            return false;
        }
        // Route each removal's endpoints to its region's seed list,
        // preserving batch order within every region — the sequential
        // enqueue order restricted to that region. Both endpoints of a
        // removal always share a region (the edge seeds one group).
        let endpoints: HashSet<u32> = removals.iter().flat_map(|&(u, v)| [u.0, v.0]).collect();
        let mut region_of: HashMap<u32, usize> = HashMap::with_capacity(endpoints.len());
        for (ri, r) in regions.iter().enumerate() {
            for &m in &r.members {
                if endpoints.contains(&m) {
                    region_of.insert(m, ri);
                }
            }
        }
        let mut seeds: Vec<Vec<u32>> = vec![Vec::new(); regions.len()];
        for &(u, v) in removals {
            let ri = region_of[&u.0];
            seeds[ri].push(u.0);
            seeds[ri].push(v.0);
        }
        let jobs: Vec<(&[u32], &[u32])> = seeds
            .iter()
            .zip(&regions)
            .map(|(s, r)| (s.as_slice(), r.members.as_slice()))
            .collect();
        let outcomes = descend_regions(&self.core, &self.adj, &jobs, self.threads);
        self.merge_outcomes(outcomes);
        true
    }

    /// Folds per-region worker outcomes back into the shared state, in
    /// region order. `touched_mark` dedups nodes examined by several
    /// workers (and keeps the main thread's core₁ record for bumped
    /// members); coreness writes are unique per region by disjointness.
    fn merge_outcomes(&mut self, outcomes: Vec<RegionOutcome>) {
        for outcome in outcomes {
            for (u, pre) in outcome.touched {
                if self.touched_mark[u as usize] != self.batch {
                    self.touched_mark[u as usize] = self.batch;
                    self.touched.push((u, pre));
                }
            }
            for (u, v) in outcome.changes {
                self.core[u as usize] = v;
            }
        }
    }
}

/// What one region worker hands back to the merge step.
struct RegionOutcome {
    /// `(node, shared estimate at first examination)` in examination
    /// order — the worker-local slice of the batch delta. Workers never
    /// write the shared estimates, so for every node this is the value
    /// the sequential descent would have recorded at its first touch
    /// (foreign bumped members are recorded at their bump, but the merge
    /// drops those in favor of the main thread's core₁ record).
    touched: Vec<(u32, u32)>,
    /// `(member, new estimate)` for the region's own members whose value
    /// moved, in member order. Foreign overlay entries are discarded —
    /// by region disjointness their true value belongs to their own
    /// region's worker.
    changes: Vec<(u32, u32)>,
}

/// Runs [`region_descend`] for every `(seeds, members)` job, fanning the
/// jobs over `min(threads, jobs)` scoped workers round-robin, and
/// returns the outcomes in job order. Worker panics propagate.
fn descend_regions(
    core: &[u32],
    adj: &AdjacencyArena,
    jobs: &[(&[u32], &[u32])],
    threads: usize,
) -> Vec<RegionOutcome> {
    let workers = threads.min(jobs.len());
    thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                s.spawn(move || {
                    let mut out = Vec::new();
                    let mut ri = w;
                    while ri < jobs.len() {
                        let (seeds, members) = jobs[ri];
                        out.push((ri, region_descend(core, adj, seeds, members)));
                        ri += workers;
                    }
                    out
                })
            })
            .collect();
        let mut slots: Vec<Option<RegionOutcome>> = Vec::new();
        slots.resize_with(jobs.len(), || None);
        for h in handles {
            for (ri, outcome) in h.join().expect("region descent worker panicked") {
                slots[ri] = Some(outcome);
            }
        }
        slots
            .into_iter()
            .map(|o| o.expect("every region job descended"))
            .collect()
    })
}

/// One worker's descent of one candidate region, mirroring
/// [`StreamCore::descend`]/[`StreamCore::drop_to`] against a private
/// overlay: estimate reads fall through `est` to the shared `core`
/// slice, writes stay in the overlay. See the [module
/// docs](self#parallel-region-descent) for why the frozen foreign
/// estimates leave the fixpoint bit-identical.
fn region_descend(
    core: &[u32],
    adj: &AdjacencyArena,
    seeds: &[u32],
    members: &[u32],
) -> RegionOutcome {
    let read = |est: &HashMap<u32, u32>, y: u32| -> u32 {
        est.get(&y).copied().unwrap_or(core[y as usize])
    };
    let mut est: HashMap<u32, u32> = HashMap::new();
    let mut idx: HashMap<u32, IncrementalIndex> = HashMap::new();
    let mut seen: HashSet<u32> = HashSet::new();
    let mut touched: Vec<(u32, u32)> = Vec::new();
    let mut queue: VecDeque<u32> = VecDeque::new();
    let mut events: VecDeque<(u32, u32, u32)> = VecDeque::new();

    for &sd in seeds {
        if seen.insert(sd) {
            touched.push((sd, core[sd as usize]));
            queue.push_back(sd);
        }
    }
    while let Some(w) = queue.pop_front() {
        let t = idx
            .entry(w)
            .or_insert_with(|| {
                IncrementalIndex::from_estimates(
                    adj.neighbors(w as usize).iter().map(|&y| read(&est, y)),
                    read(&est, w),
                )
            })
            .core();
        if t >= read(&est, w) {
            continue;
        }
        // Drop cascade; same invariant as `drop_to` — the event queue is
        // empty whenever a histogram is built.
        let old = read(&est, w);
        est.insert(w, t);
        events.push_back((w, old, t));
        while let Some((sv, o, n)) = events.pop_front() {
            for &y in adj.neighbors(sv as usize) {
                if let Some(h) = idx.get_mut(&y) {
                    if h.update(o, n) {
                        let oy = read(&est, y);
                        let ny = h.core();
                        est.insert(y, ny);
                        events.push_back((y, oy, ny));
                    }
                } else if seen.insert(y) {
                    touched.push((y, core[y as usize]));
                    queue.push_back(y);
                }
            }
        }
    }
    let changes = members
        .iter()
        .filter_map(|&m| {
            est.get(&m)
                .copied()
                .filter(|&v| v != core[m as usize])
                .map(|v| (m, v))
        })
        .collect();
    RegionOutcome { touched, changes }
}

/// One merged candidate region of [`candidate_regions`]: the nodes whose
/// coreness the group's mutations may change, together with the group's
/// mutation counts (the insertion count is the proven estimate bump).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateRegion {
    /// Inserted edges merged into this group — members' coreness can rise
    /// by at most this much.
    pub insertions: u32,
    /// Removed edges merged into this group — the group's share of the
    /// removal slack (widens the traversal window, never the bump).
    pub removals: u32,
    /// The region's nodes.
    pub members: Vec<u32>,
}

/// Grows the merged candidate regions of the [module](self) theorem:
/// union-find over edge groups (every inserted *and* removed edge seeds
/// its own group), each region closed under the "`|Δcore| ≤ window`"
/// traversal rule with `window = max(insertions − 1, 0) + removals`
/// counted *per group*, groups merged whenever their regions touch.
///
/// Seeding the removals as groups of their own is what regionalizes the
/// removal slack: a removal's influence (the nodes whose coreness its
/// drop cascade can lower) stays connected to its endpoints through
/// nodes whose pre-batch coreness differs by at most the number of
/// removals compounding there — two adjacent nodes that were at the same
/// *current* level when a drop propagated satisfy
/// `|core₁(x) − core₁(y)| = |δ(x) − δ(y)| ≤ r` once every removal
/// affecting them is merged into the same group of `r` removals, and the
/// merge fixpoint below guarantees exactly that. Removals that never
/// touch an insertion region therefore contribute **no** slack to it,
/// instead of the former global `+removed_count` on every window.
///
/// Merges widen a group's window, so its members must be re-expanded;
/// re-expansion is deferred to drain rounds (all merges of a round are
/// re-pushed together, and a node is skipped unless its group's window
/// grew since its last scan), keeping the growth near-linear in the
/// final region size instead of `O(merges × region)`.
///
/// `core` is the pre-batch coreness, `neighbors` the **post-batch**
/// adjacency. Exported for warm-start planners outside this module (the
/// sharded serving layer grows its cross-shard candidate regions through
/// a shard-backed `neighbors` closure).
pub fn candidate_regions<N, I>(
    n: usize,
    insertions: &[(NodeId, NodeId)],
    removals: &[(NodeId, NodeId)],
    core: &[u32],
    neighbors: N,
) -> Vec<CandidateRegion>
where
    N: Fn(u32) -> I,
    I: Iterator<Item = u32>,
{
    let b = insertions.len() + removals.len();
    if b == 0 {
        return Vec::new();
    }
    let mut parent: Vec<u32> = (0..b as u32).collect();
    // Per-group mutation counts, authoritative at the group root.
    let mut ins: Vec<u32> = vec![0; b];
    let mut rem: Vec<u32> = vec![0; b];
    ins[..insertions.len()].fill(1);
    rem[insertions.len()..].fill(1);
    // Region member lists, authoritative at the group root.
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); b];
    let mut region_of: Vec<u32> = vec![u32::MAX; n];
    // Window a node was last expanded with, stored as `window + 1`
    // (`0` = never scanned).
    let mut scanned: Vec<u32> = vec![0; n];
    let mut dirty: Vec<bool> = vec![false; b];
    let mut frontier: VecDeque<u32> = VecDeque::new();

    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }

    fn window(ins: u32, rem: u32) -> u32 {
        ins.saturating_sub(1) + rem
    }

    /// Claims `w` for (the root of) `g`; on contact with another region
    /// the groups union and the root is marked for re-expansion.
    #[allow(clippy::too_many_arguments)]
    fn claim(
        w: u32,
        g: u32,
        parent: &mut [u32],
        ins: &mut [u32],
        rem: &mut [u32],
        members: &mut [Vec<u32>],
        region_of: &mut [u32],
        frontier: &mut VecDeque<u32>,
        dirty: &mut [bool],
    ) {
        let g = find(parent, g);
        let wi = w as usize;
        if region_of[wi] == u32::MAX {
            region_of[wi] = g;
            members[g as usize].push(w);
            frontier.push_back(w);
            return;
        }
        let h = find(parent, region_of[wi]);
        if h == g {
            return;
        }
        // Union by member-list size; the child's list moves to the root.
        let (root, child) = if members[g as usize].len() >= members[h as usize].len() {
            (g, h)
        } else {
            (h, g)
        };
        parent[child as usize] = root;
        ins[root as usize] += ins[child as usize];
        rem[root as usize] += rem[child as usize];
        let moved = std::mem::take(&mut members[child as usize]);
        members[root as usize].extend_from_slice(&moved);
        dirty[root as usize] = true;
        dirty[child as usize] = false;
    }

    // Seed with the mutated endpoints (merging shared endpoints).
    for (ei, &(u, v)) in insertions.iter().chain(removals.iter()).enumerate() {
        for w in [u.0, v.0] {
            claim(
                w,
                ei as u32,
                &mut parent,
                &mut ins,
                &mut rem,
                &mut members,
                &mut region_of,
                &mut frontier,
                &mut dirty,
            );
        }
    }
    loop {
        while let Some(x) = frontier.pop_front() {
            let g = find(&mut parent, region_of[x as usize]);
            let win = window(ins[g as usize], rem[g as usize]);
            if scanned[x as usize] > win {
                continue; // already expanded at this window or wider
            }
            scanned[x as usize] = win + 1;
            let cx = core[x as usize];
            for y in neighbors(x) {
                if core[y as usize].abs_diff(cx) <= win {
                    claim(
                        y,
                        g,
                        &mut parent,
                        &mut ins,
                        &mut rem,
                        &mut members,
                        &mut region_of,
                        &mut frontier,
                        &mut dirty,
                    );
                }
            }
        }
        // Merges widened some windows: re-expand those groups' members.
        let mut any = false;
        for gi in 0..b {
            if dirty[gi] && parent[gi] == gi as u32 {
                dirty[gi] = false;
                any = true;
                frontier.extend(members[gi].iter().copied());
            }
        }
        if !any {
            break;
        }
    }
    (0..b)
        .filter(|&gi| parent[gi] == gi as u32)
        .map(|gi| CandidateRegion {
            insertions: ins[gi],
            removals: rem[gi],
            members: std::mem::take(&mut members[gi]),
        })
        .collect()
}

/// Safe initial estimates for re-running the **distributed** protocol
/// after a whole batch of mutations — the batch generalization of
/// [`warm_start_estimates`](crate::dynamic::warm_start_estimates).
///
/// * `old_core` — exact coreness *before* the batch;
/// * `new_graph` — the graph *after* the batch;
/// * `inserted` — the batch's inserted edges;
/// * `removed` — the batch's removed edges.
///
/// Every returned estimate upper-bounds the node's new coreness, so a
/// warm-started descending protocol (e.g.
/// `dkcore_sim::ActiveSetEngine::with_estimates`) converges to the new
/// decomposition in a handful of rounds: unaffected nodes confirm their
/// old value immediately and only the candidate regions exchange
/// messages.
///
/// The bound is the one-pass variant of the [module](self) theorem run
/// directly on the *old* coreness (no exact removal phase is available
/// here): [`candidate_regions`] grows merged regions seeded by both the
/// inserted and the removed edges, with window
/// `(group insertions − 1) + group removals` — the removal slack is
/// counted **per region**, so removals that never touch an insertion's
/// neighborhood no longer widen its window the way the former global
/// `removed_count` slack did. Region members are bumped by the group's
/// insertion count, capped by the new degree; nodes outside every region
/// keep their old value (also capped by the new degree, which removals
/// may have lowered).
///
/// # Example
///
/// ```
/// use dkcore::stream::warm_start_estimates_batch;
/// use dkcore_graph::{Graph, NodeId};
///
/// // Close a 5-path into a cycle: everyone may now reach 2.
/// let old = vec![1, 1, 1, 1, 1];
/// let cycle = Graph::from_edges(5, [(0,1),(1,2),(2,3),(3,4),(4,0)])?;
/// let est = warm_start_estimates_batch(&old, &cycle, &[(NodeId(0), NodeId(4))], &[]);
/// assert!(est.iter().all(|&e| e == 2));
/// # Ok::<(), dkcore_graph::GraphError>(())
/// ```
pub fn warm_start_estimates_batch(
    old_core: &[u32],
    new_graph: &Graph,
    inserted: &[(NodeId, NodeId)],
    removed: &[(NodeId, NodeId)],
) -> Vec<u32> {
    let n = new_graph.node_count();
    assert_eq!(old_core.len(), n, "one old coreness per node");
    let mut est: Vec<u32> = old_core.to_vec();

    if !inserted.is_empty() {
        let regions = candidate_regions(n, inserted, removed, old_core, |x| {
            new_graph.neighbors(NodeId(x)).iter().map(|v| v.0)
        });
        for region in regions {
            if region.insertions == 0 {
                continue; // removal-only region: no bump to apply
            }
            for w in region.members {
                est[w as usize] = old_core[w as usize] + region.insertions;
            }
        }
    }

    // Degrees always cap estimates (see `warm_start_estimates`).
    for u in new_graph.nodes() {
        est[u.index()] = est[u.index()].min(new_graph.degree(u));
    }
    est
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkcore_graph::generators::{complete, gnp, path, star, worst_case};
    use rand::prelude::*;

    #[test]
    fn arena_roundtrip_and_mutation() {
        let g = gnp(200, 0.04, 9);
        let mut a = AdjacencyArena::from_graph(&g);
        assert_eq!(a.to_graph(), g);
        assert!(a.insert_arc(0, 199));
        assert!(a.insert_arc(199, 0));
        assert!(!a.insert_arc(0, 199), "duplicate insert rejected");
        assert!(a.has_edge(0, 199));
        assert!(a.remove_arc(0, 199));
        assert!(a.remove_arc(199, 0));
        assert!(!a.remove_arc(0, 199), "double remove rejected");
        assert_eq!(a.to_graph(), g);
        // Sortedness is maintained through arbitrary churn.
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..2_000 {
            let u = rng.random_range(0..200u32);
            let v = rng.random_range(0..200u32);
            if u == v {
                continue;
            }
            if a.has_edge(u as usize, v) {
                a.remove_arc(u as usize, v);
                a.remove_arc(v as usize, u);
            } else {
                a.insert_arc(u as usize, v);
                a.insert_arc(v as usize, u);
            }
            assert!(a.neighbors(u as usize).windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn arena_growth_compacts() {
        // A node that keeps growing forces relocations and eventually a
        // compaction; the logical content must survive both.
        let g = Graph::from_edges(600, []).unwrap();
        let mut a = AdjacencyArena::from_graph(&g);
        for v in 1..600u32 {
            assert!(a.insert_arc(0, v));
            assert!(a.insert_arc(v as usize, 0));
        }
        assert_eq!(a.degree(0), 599);
        assert!(a.neighbors(0).windows(2).all(|w| w[0] < w[1]));
        for v in 1..600u32 {
            assert!(a.has_edge(v as usize, 0));
        }
    }

    #[test]
    fn inverse_batch_restores_the_edge_set() {
        let g = gnp(80, 0.05, 9);
        let mut sc = StreamCore::new(&g);
        let mut b = EdgeBatch::new();
        for (u, v) in [(NodeId(0), NodeId(79)), (NodeId(1), NodeId(78))] {
            if g.neighbors(u).contains(&v) {
                b.remove(u, v);
            } else {
                b.insert(u, v);
            }
        }
        let removable: Vec<_> = g.edges().filter(|&(u, _)| u.0 >= 2).take(3).collect();
        for (u, v) in removable {
            b.remove(u, v);
        }
        sc.apply_batch(&b).unwrap();
        sc.apply_batch(&b.inverse()).unwrap();
        assert_eq!(sc.to_graph(), g);
        assert_eq!(sc.values(), batagelj_zaversnik(&g).as_slice());
        assert_eq!(b.inverse().inverse(), b);
    }

    #[test]
    fn batch_matches_ground_truth_on_cycle_example() {
        let mut sc = StreamCore::new(&path(6));
        let mut b = EdgeBatch::new();
        b.insert(NodeId(0), NodeId(5));
        let stats = sc.apply_batch(&b).unwrap();
        assert!(sc.values().iter().all(|&k| k == 2));
        assert_eq!(stats.changed, 6);
        assert_eq!(stats.regions, 1);
    }

    #[test]
    fn mixed_batch_is_atomic_on_validation_failure() {
        let g = path(5);
        let mut sc = StreamCore::new(&g);
        let before = sc.clone();
        let mut b = EdgeBatch::new();
        b.insert(NodeId(0), NodeId(2));
        b.remove(NodeId(0), NodeId(4)); // not an edge: whole batch fails
        assert!(matches!(
            sc.apply_batch(&b),
            Err(MutationError::EdgeState { present: false, .. })
        ));
        assert_eq!(sc.values(), before.values());
        assert_eq!(sc.to_graph(), g);
    }

    #[test]
    fn validation_catches_duplicates_and_bad_endpoints() {
        let mut sc = StreamCore::new(&path(5));
        let mut b = EdgeBatch::new();
        b.insert(NodeId(0), NodeId(0));
        assert!(matches!(
            sc.apply_batch(&b),
            Err(MutationError::InvalidEndpoints { .. })
        ));
        let mut b = EdgeBatch::new();
        b.insert(NodeId(0), NodeId(2));
        b.insert(NodeId(2), NodeId(0)); // duplicate (unordered) insertion
        assert!(matches!(
            sc.apply_batch(&b),
            Err(MutationError::EdgeState { present: true, .. })
        ));
        let mut b = EdgeBatch::new();
        b.remove(NodeId(0), NodeId(1));
        b.remove(NodeId(1), NodeId(0)); // duplicate removal
        assert!(matches!(
            sc.apply_batch(&b),
            Err(MutationError::EdgeState { present: false, .. })
        ));
        let mut b = EdgeBatch::new();
        b.insert(NodeId(0), NodeId(1)); // already present
        assert!(matches!(
            sc.apply_batch(&b),
            Err(MutationError::EdgeState { present: true, .. })
        ));
    }

    #[test]
    fn remove_and_reinsert_same_edge_in_one_batch() {
        let g = gnp(40, 0.1, 3);
        let mut sc = StreamCore::new(&g);
        let (u, v) = {
            let u = NodeId(0);
            let v = *g.neighbors(u).first().expect("node 0 has a neighbor");
            (u, v)
        };
        let mut b = EdgeBatch::new();
        b.remove(u, v);
        b.insert(u, v);
        sc.apply_batch(&b).unwrap();
        assert_eq!(sc.to_graph(), g, "net no-op on the graph");
        assert_eq!(sc.values(), batagelj_zaversnik(&g).as_slice());
    }

    #[test]
    fn random_batches_match_bz_across_families() {
        let mut rng = StdRng::seed_from_u64(0xBA7C);
        for (name, g) in [
            ("gnp", gnp(120, 0.05, 1)),
            ("star", star(40)),
            ("complete", complete(10)),
            ("worst_case", worst_case(30)),
            ("path", path(50)),
        ] {
            let mut sc = StreamCore::new(&g);
            for step in 0..12 {
                let n = sc.node_count() as u32;
                let mut b = EdgeBatch::new();
                let mut seen: Vec<(u32, u32)> = Vec::new();
                for _ in 0..10 {
                    let x = rng.random_range(0..n);
                    let y = rng.random_range(0..n);
                    if x == y {
                        continue;
                    }
                    let key = (x.min(y), x.max(y));
                    if seen.contains(&key) {
                        continue;
                    }
                    seen.push(key);
                    if sc.has_edge(NodeId(x), NodeId(y)) {
                        b.remove(NodeId(x), NodeId(y));
                    } else {
                        b.insert(NodeId(x), NodeId(y));
                    }
                }
                sc.apply_batch(&b).unwrap();
                assert_eq!(
                    sc.values(),
                    batagelj_zaversnik(&sc.to_graph()).as_slice(),
                    "{name}, step {step}"
                );
            }
        }
    }

    #[test]
    fn batch_of_one_agrees_with_dynamic_core() {
        use crate::dynamic::DynamicCore;
        let g = gnp(80, 0.06, 7);
        let mut sc = StreamCore::new(&g);
        let mut dc = DynamicCore::new(&g);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..60 {
            let u = NodeId(rng.random_range(0..80));
            let v = NodeId(rng.random_range(0..80));
            if u == v {
                continue;
            }
            if sc.has_edge(u, v) {
                sc.remove_edge(u, v).unwrap();
                dc.remove_edge(u, v).unwrap();
            } else {
                sc.insert_edge(u, v).unwrap();
                dc.insert_edge(u, v).unwrap();
            }
            assert_eq!(sc.values(), dc.values());
        }
    }

    #[test]
    fn phase_timing_is_opt_in_and_does_not_perturb_results() {
        let g = gnp(120, 0.05, 21);
        let mut plain = StreamCore::new(&g);
        let mut timed = StreamCore::new(&g).with_phase_timing(true);
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..8 {
            let mut b = EdgeBatch::new();
            while b.len() < 12 {
                let u = NodeId(rng.random_range(0..120));
                let v = NodeId(rng.random_range(0..120));
                if u == v {
                    continue;
                }
                if plain.has_edge(u, v) {
                    if !b.removals().contains(&ordered(u, v)) {
                        b.remove(u, v);
                    }
                } else if !b.insertions().contains(&ordered(u, v)) {
                    b.insert(u, v);
                }
            }
            let sp = plain.apply_batch(&b).unwrap();
            let st = timed.apply_batch(&b).unwrap();
            assert_eq!(sp, st, "timing must not change repair statistics");
            assert_eq!(plain.values(), timed.values());
            // Timing off: the split stays zeroed.
            assert_eq!(plain.last_phase_times(), PhaseTimes::default());
        }
        // Flipping timing off again re-zeroes on the next batch.
        timed.set_phase_timing(false);
        let mut b = EdgeBatch::new();
        b.insert(NodeId(0), NodeId(1));
        if timed.has_edge(NodeId(0), NodeId(1)) {
            b = EdgeBatch::new();
            b.remove(NodeId(0), NodeId(1));
        }
        timed.apply_batch(&b).unwrap();
        assert_eq!(timed.last_phase_times(), PhaseTimes::default());
    }

    #[test]
    fn working_set_is_local_for_scattered_batches() {
        // Candidate regions cannot cross component boundaries, so a
        // batch scattered over a few of many disjoint components must
        // leave the rest untouched. (On a single homogeneous component
        // the safe region may legitimately span the whole level set.)
        const BLOCKS: u32 = 50;
        const SIZE: u32 = 80;
        let mut rng = StdRng::seed_from_u64(2);
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for blk in 0..BLOCKS {
            let base = blk * SIZE;
            for i in 0..SIZE {
                for j in (i + 1)..SIZE {
                    if rng.random_bool(0.05) {
                        edges.push((base + i, base + j));
                    }
                }
            }
        }
        let g = Graph::from_edges((BLOCKS * SIZE) as usize, edges).unwrap();
        let mut sc = StreamCore::new(&g);
        let mut total = 0usize;
        let mut batches = 0usize;
        for step in 0..10u32 {
            // 4 insertions confined to 2 blocks per batch.
            let mut b = EdgeBatch::new();
            let mut tried = 0;
            while b.len() < 4 && tried < 200 {
                tried += 1;
                let blk = (2 * step + rng.random_range(0..2u32)) % BLOCKS;
                let u = NodeId(blk * SIZE + rng.random_range(0..SIZE));
                let v = NodeId(blk * SIZE + rng.random_range(0..SIZE));
                if u == v || sc.has_edge(u, v) || b.insertions().contains(&ordered(u, v)) {
                    continue;
                }
                b.insert(u, v);
            }
            let stats = sc.apply_batch(&b).unwrap();
            total += stats.candidates;
            batches += 1;
        }
        let avg = total as f64 / batches as f64;
        assert!(
            avg <= (2 * SIZE) as f64,
            "repairs should stay within the mutated blocks: avg {avg}"
        );
    }

    #[test]
    fn snapshot_accessors_match_ground_truth_after_every_batch() {
        // The read-only export (`values` + `degrees` + `adjacency`) must
        // agree with a fresh Batagelj–Zaveršnik pass and the materialized
        // graph after every applied batch — snapshot builders rely on it
        // instead of re-deriving state.
        let g = gnp(120, 0.05, 21);
        let mut sc = StreamCore::new(&g);
        let mut rng = StdRng::seed_from_u64(0x5EED);
        for _ in 0..10 {
            let mut b = EdgeBatch::new();
            let mut seen: Vec<(u32, u32)> = Vec::new();
            for _ in 0..8 {
                let x = rng.random_range(0..120u32);
                let y = rng.random_range(0..120u32);
                if x == y {
                    continue;
                }
                let key = (x.min(y), x.max(y));
                if seen.contains(&key) {
                    continue;
                }
                seen.push(key);
                if sc.has_edge(NodeId(x), NodeId(y)) {
                    b.remove(NodeId(x), NodeId(y));
                } else {
                    b.insert(NodeId(x), NodeId(y));
                }
            }
            sc.apply_batch(&b).unwrap();
            let graph = sc.to_graph();
            assert_eq!(sc.values(), batagelj_zaversnik(&graph).as_slice());
            assert_eq!(sc.degrees(), graph.degrees());
            for u in 0..sc.node_count() {
                let nbrs: Vec<u32> = graph
                    .neighbors(NodeId(u as u32))
                    .iter()
                    .map(|v| v.0)
                    .collect();
                assert_eq!(sc.adjacency().neighbors(u), nbrs.as_slice());
            }
        }
    }

    #[test]
    fn empty_batch_is_a_cheap_no_op() {
        let g = gnp(50, 0.1, 4);
        let mut sc = StreamCore::new(&g);
        let stats = sc.apply_batch(&EdgeBatch::new()).unwrap();
        assert_eq!(stats, BatchStats::default());
        assert_eq!(sc.values(), batagelj_zaversnik(&g).as_slice());
    }

    #[test]
    fn warm_start_batch_estimates_are_upper_bounds() {
        let mut rng = StdRng::seed_from_u64(0x57AB);
        for trial in 0..8 {
            let g = gnp(100, 0.05, 40 + trial);
            let mut sc = StreamCore::new(&g);
            for _ in 0..5 {
                let old = sc.values().to_vec();
                let mut b = EdgeBatch::new();
                let mut ins: Vec<(NodeId, NodeId)> = Vec::new();
                for _ in 0..12 {
                    let u = NodeId(rng.random_range(0..100));
                    let v = NodeId(rng.random_range(0..100));
                    if u == v {
                        continue;
                    }
                    let key = ordered(u, v);
                    if b.insertions().contains(&key) || b.removals().contains(&key) {
                        continue;
                    }
                    if sc.has_edge(u, v) {
                        b.remove(u, v);
                    } else {
                        b.insert(u, v);
                        ins.push(key);
                    }
                }
                sc.apply_batch(&b).unwrap();
                let new_graph = sc.to_graph();
                let est = warm_start_estimates_batch(&old, &new_graph, &ins, b.removals());
                for u in new_graph.nodes() {
                    assert!(
                        est[u.index()] >= sc.coreness(u),
                        "trial {trial}: estimate below new coreness at {u}"
                    );
                    assert!(est[u.index()] <= new_graph.degree(u));
                }
            }
        }
    }

    #[test]
    fn warm_start_batch_reduces_to_single_edge_helper() {
        use crate::dynamic::warm_start_estimates;
        let g = gnp(60, 0.08, 13);
        let mut sc = StreamCore::new(&g);
        let (u, v) = {
            let mut found = None;
            'outer: for a in 0..60u32 {
                for b in (a + 1)..60 {
                    if !sc.has_edge(NodeId(a), NodeId(b)) {
                        found = Some((NodeId(a), NodeId(b)));
                        break 'outer;
                    }
                }
            }
            found.expect("sparse graph has a non-edge")
        };
        let old = sc.values().to_vec();
        sc.insert_edge(u, v).unwrap();
        let new_graph = sc.to_graph();
        let batch = warm_start_estimates_batch(&old, &new_graph, &[(u, v)], &[]);
        let single = warm_start_estimates(&old, &new_graph, Some((u, v)));
        // Both are safe; the batch region may be a slight superset (it
        // expands from both endpoints), so batch ≥ single pointwise.
        for i in 0..60 {
            assert!(batch[i] >= single[i] || batch[i] >= sc.values()[i]);
            assert!(batch[i] >= sc.values()[i]);
        }
    }

    #[test]
    fn removal_slack_is_regional_not_global() {
        // Two disjoint dense blocks. Removals confined to block A must not
        // widen the warm-start bounds of an insertion inside block B: with
        // the former global slack (`window += total removals`), B's region
        // flooded the whole block and every member was bumped; with
        // per-region slack the insertion's window stays `insertions − 1 = 0`.
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for base in [0u32, 40] {
            for i in 0..40 {
                for j in (i + 1)..40 {
                    if (i + j) % 3 != 0 {
                        edges.push((base + i, base + j));
                    }
                }
            }
        }
        let g = Graph::from_edges(80, edges).unwrap();
        let mut sc = StreamCore::new(&g);
        let old = sc.values().to_vec();

        let mut b = EdgeBatch::new();
        // Five removals inside block A.
        let mut removed = 0;
        'outer: for i in 0..40u32 {
            for j in (i + 1)..40 {
                if sc.has_edge(NodeId(i), NodeId(j)) {
                    b.remove(NodeId(i), NodeId(j));
                    removed += 1;
                    if removed == 5 {
                        break 'outer;
                    }
                }
            }
        }
        // One insertion inside block B.
        let (u, v) = {
            let mut found = None;
            'search: for i in 40..80u32 {
                for j in (i + 1)..80 {
                    if !sc.has_edge(NodeId(i), NodeId(j)) {
                        found = Some((NodeId(i), NodeId(j)));
                        break 'search;
                    }
                }
            }
            found.expect("block B has a non-edge")
        };
        b.insert(u, v);
        sc.apply_batch(&b).unwrap();
        let new_graph = sc.to_graph();

        let est = warm_start_estimates_batch(&old, &new_graph, &[ordered(u, v)], b.removals());
        // Safety first: still an upper bound everywhere.
        for w in new_graph.nodes() {
            assert!(est[w.index()] >= sc.coreness(w), "unsafe bound at {w}");
        }
        // Tightness: block B's region grew with window 0 (single
        // insertion, no nearby removals), so only nodes at the endpoints'
        // coreness level can be bumped — nodes in B at other levels keep
        // their old estimate exactly.
        let window_levels: Vec<u32> = vec![old[u.index()], old[v.index()]];
        for w in 40..80usize {
            if !window_levels.contains(&old[w]) {
                assert!(
                    est[w] <= old[w],
                    "node {w} (old core {}) picked up removal slack from block A",
                    old[w]
                );
            }
        }
    }

    #[test]
    fn candidate_regions_merge_removals_with_touching_insertions() {
        // An insertion whose region overlaps a removal's influence region
        // must absorb its slack (the merged group widens), while a far
        // removal stays a separate region.
        let g = path(12);
        let core = vec![1u32; 12];
        let regions = candidate_regions(
            12,
            &[(NodeId(2), NodeId(4))],
            &[(NodeId(3), NodeId(4)), (NodeId(9), NodeId(10))],
            &core,
            |x| g.neighbors(NodeId(x)).iter().map(|v| v.0),
        );
        // Path is one uniform level set: the insertion at {2,4} and the
        // removal at {3,4} share node 4 and merge; {9,10} is claimed by
        // the flood of the merged region (equal coreness everywhere), so
        // at minimum every region is accounted for and the merged region
        // carries both kinds of counts.
        let total_ins: u32 = regions.iter().map(|r| r.insertions).sum();
        let total_rem: u32 = regions.iter().map(|r| r.removals).sum();
        assert_eq!(total_ins, 1);
        assert_eq!(total_rem, 2);
        let merged = regions
            .iter()
            .find(|r| r.insertions > 0)
            .expect("insertion region");
        assert!(merged.removals >= 1, "touching removal must merge");
        assert!(merged.members.contains(&2) && merged.members.contains(&4));
    }

    #[test]
    fn last_touched_delta_covers_every_change() {
        // After every batch, the exported delta must (a) list every node
        // whose coreness changed with the right old value, and (b) list
        // nothing with a wrong old value — the contract incremental
        // snapshot publishers rely on.
        let g = gnp(150, 0.05, 17);
        let mut sc = StreamCore::new(&g);
        assert!(sc.last_touched().is_empty(), "no delta before any batch");
        let mut rng = StdRng::seed_from_u64(0xDE17A);
        for _ in 0..12 {
            let before = sc.values().to_vec();
            let mut b = EdgeBatch::new();
            let mut seen: Vec<(u32, u32)> = Vec::new();
            for _ in 0..9 {
                let x = rng.random_range(0..150u32);
                let y = rng.random_range(0..150u32);
                if x == y {
                    continue;
                }
                let key = (x.min(y), x.max(y));
                if seen.contains(&key) {
                    continue;
                }
                seen.push(key);
                if sc.has_edge(NodeId(x), NodeId(y)) {
                    b.remove(NodeId(x), NodeId(y));
                } else {
                    b.insert(NodeId(x), NodeId(y));
                }
            }
            sc.apply_batch(&b).unwrap();
            let touched: std::collections::HashMap<u32, u32> =
                sc.last_touched().iter().copied().collect();
            assert_eq!(touched.len(), sc.last_touched().len(), "no duplicates");
            for (u, &old) in before.iter().enumerate() {
                if sc.values()[u] != old {
                    assert_eq!(
                        touched.get(&(u as u32)),
                        Some(&old),
                        "changed node {u} missing from delta"
                    );
                }
            }
            for &(u, old) in sc.last_touched() {
                assert_eq!(before[u as usize], old, "wrong old value for {u}");
            }
            let changes: Vec<(u32, u32, u32)> = sc.last_coreness_changes().collect();
            for &(u, old, new) in &changes {
                assert_eq!(before[u as usize], old);
                assert_eq!(sc.values()[u as usize], new);
                assert_ne!(old, new);
            }
            let changed_count = before
                .iter()
                .enumerate()
                .filter(|&(u, &old)| sc.values()[u] != old)
                .count();
            assert_eq!(changes.len(), changed_count);
        }
    }

    #[test]
    fn arena_from_sorted_lists_roundtrips() {
        let g = gnp(60, 0.1, 3);
        let a = AdjacencyArena::from_sorted_lists((0..60u32).map(|u| {
            g.neighbors(NodeId(u))
                .iter()
                .map(|v| v.0)
                .collect::<Vec<_>>()
        }));
        assert_eq!(a.to_graph(), g);
        // Arbitrary value spaces work: slots are local, values global.
        let mut b = AdjacencyArena::from_sorted_lists([vec![5u32, 900], vec![7]]);
        assert_eq!(b.node_count(), 2);
        assert_eq!(b.neighbors(0), &[5, 900]);
        assert!(b.insert_arc(1, 900));
        assert_eq!(b.neighbors(1), &[7, 900]);
        assert!(b.remove_arc(0, 5));
        assert_eq!(b.neighbors(0), &[900]);
    }

    #[test]
    fn dense_removal_batches_cascade_correctly() {
        // Peeling a complete graph edge by edge in batches exercises the
        // removal descent's multi-level drops.
        let g = complete(9);
        let mut sc = StreamCore::new(&g);
        let mut b = EdgeBatch::new();
        for v in 1..9u32 {
            b.remove(NodeId(0), NodeId(v));
        }
        let stats = sc.apply_batch(&b).unwrap();
        assert_eq!(sc.coreness(NodeId(0)), 0);
        assert_eq!(sc.values(), batagelj_zaversnik(&sc.to_graph()).as_slice());
        assert!(stats.changed >= 1);
    }
}
