/// The paper's Algorithm 2: `computeIndex(est, u, k)`.
///
/// Returns the largest value `i ≤ k` such that at least `i` of the given
/// neighbor estimates are `≥ i` — the best coreness upper bound node `u`
/// can justify from its current knowledge, per the locality theorem
/// (Theorem 1): *"the coreness of node u is the largest value k such that u
/// has at least k neighbors that belong to a k-core or a larger core"*.
///
/// `k` is the node's current estimate (`core` in Algorithm 1, `est[u]` in
/// Algorithm 4); values above `k` are clamped since the result can never
/// exceed it. Estimates still at the `+∞` initialization are passed as
/// [`crate::INFINITY_EST`] and clamp the same way.
///
/// Runs in `O(degree + k)` time and `O(k)` space, exactly like the paper's
/// counting implementation — but allocation-free: small `k` counts on the
/// stack, large `k` reuses a thread-local scratch buffer. (Protocol hot
/// paths avoid even this via [`crate::IncrementalIndex`].)
///
/// # Example
///
/// ```
/// use dkcore::compute_index;
///
/// // A node with current estimate 3 whose neighbors report 2, 2, 3:
/// // two neighbors have estimate >= 2, so the node can justify 2.
/// assert_eq!(compute_index([2, 2, 3], 3), 2);
///
/// // Three neighbors at >= 3 justify 3.
/// assert_eq!(compute_index([3, 4, 5], 3), 3);
/// ```
pub fn compute_index<I>(neighbor_estimates: I, k: u32) -> u32
where
    I: IntoIterator<Item = u32>,
{
    if k == 0 {
        // Isolated node: coreness 0, nothing to count.
        return 0;
    }
    let k = k as usize;
    // Counting space: a stack buffer covers the common small-degree case;
    // larger nodes reuse a per-thread scratch vector. Either way the hot
    // path performs no heap allocation per call.
    const STACK_CAP: usize = 64;
    if k < STACK_CAP {
        let mut count = [0u32; STACK_CAP];
        return compute_with_counts(&mut count[..=k], neighbor_estimates);
    }
    std::thread_local! {
        static SCRATCH: std::cell::RefCell<Vec<u32>> = const { std::cell::RefCell::new(Vec::new()) };
    }
    SCRATCH.with(|scratch| match scratch.try_borrow_mut() {
        Ok(mut buf) => {
            buf.clear();
            buf.resize(k + 1, 0);
            compute_with_counts(&mut buf, neighbor_estimates)
        }
        // Reentrant call (an estimate iterator that itself runs
        // compute_index): fall back to a one-off allocation.
        Err(_) => compute_with_counts(&mut vec![0u32; k + 1], neighbor_estimates),
    })
}

/// Algorithm 2's counting pass over a zeroed `count` buffer of length
/// `k + 1`.
fn compute_with_counts<I>(count: &mut [u32], neighbor_estimates: I) -> u32
where
    I: IntoIterator<Item = u32>,
{
    let k = count.len() - 1;
    // count[i], 1 <= i <= k: number of neighbors with min(k, est) == i.
    let mut any = false;
    for est in neighbor_estimates {
        let j = (est as usize).min(k);
        // est == 0 can only be reported by an isolated node, which has no
        // neighbors and therefore never sends; guard anyway.
        count[j] += u32::from(j > 0);
        any = any || j > 0;
    }
    if !any {
        return 0;
    }
    // Suffix-sum: count[i] becomes the number of neighbors with est >= i.
    for i in (2..=k).rev() {
        count[i - 1] += count[i];
    }
    // Largest i with count[i] >= i.
    let mut i = k;
    while i > 1 && count[i] < i as u32 {
        i -= 1;
    }
    i as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::INFINITY_EST;

    #[test]
    fn isolated_node_returns_zero() {
        assert_eq!(compute_index([], 0), 0);
        assert_eq!(compute_index([5, 5], 0), 0);
    }

    #[test]
    fn no_neighbors_with_positive_cap_returns_zero() {
        // Degenerate: cap > 0 but no estimates at all.
        assert_eq!(compute_index([], 3), 0);
    }

    #[test]
    fn single_neighbor_gives_one() {
        assert_eq!(compute_index([1], 1), 1);
        assert_eq!(compute_index([INFINITY_EST], 1), 1);
        assert_eq!(compute_index([7], 1), 1);
    }

    #[test]
    fn infinity_estimates_clamp_to_cap() {
        // All-infinite estimates behave like "degree" initialization.
        assert_eq!(compute_index([INFINITY_EST; 4], 4), 4);
        assert_eq!(compute_index([INFINITY_EST; 4], 3), 3);
    }

    #[test]
    fn paper_figure2_node2_update() {
        // Node 2 of Figure 2 (degree 3, estimate 3) hears 1 from node 1 and
        // 3 from nodes 3 and 4: two neighbors at >= 2 justify exactly 2.
        assert_eq!(compute_index([1, 3, 3], 3), 2);
    }

    #[test]
    fn threshold_exactness() {
        // i neighbors at exactly i.
        for i in 1..10u32 {
            let ests: Vec<u32> = vec![i; i as usize];
            assert_eq!(compute_index(ests.clone(), i), i);
            // One fewer neighbor: falls to i - 1 (down to 0 when the last
            // supporting neighbor disappears).
            let short = &ests[1..];
            assert_eq!(compute_index(short.iter().copied(), i), i - 1);
        }
    }

    #[test]
    fn cap_clamps_result() {
        // Plenty of support for 5, but cap is 2.
        assert_eq!(compute_index([5, 5, 5, 5, 5], 2), 2);
    }

    #[test]
    fn mixed_estimates() {
        // Classic: est = [1, 2, 2, 3], k = 4.
        // >=1: 4, >=2: 3, >=3: 1, >=4: 0 -> answer 2.
        assert_eq!(compute_index([1, 2, 2, 3], 4), 2);
    }

    #[test]
    fn zero_estimates_are_ignored() {
        assert_eq!(compute_index([0, 0, 0], 3), 0);
        assert_eq!(compute_index([0, 2, 2], 3), 2);
    }

    #[test]
    fn monotone_in_estimates() {
        // Raising any single estimate can never lower the result.
        let base = [1u32, 2, 3, 2];
        let k = 4;
        let r0 = compute_index(base, k);
        for i in 0..base.len() {
            let mut hi = base;
            hi[i] += 2;
            assert!(compute_index(hi, k) >= r0);
        }
    }
}
