//! Sequential k-core decomposition baselines.
//!
//! The paper's reference \[3\] — Batagelj & Zaveršnik, *"An O(m) algorithm
//! for cores decomposition of networks"* — is the standard centralized
//! algorithm and serves as ground truth for every distributed run in this
//! workspace. A naive peeling implementation cross-validates it.

use dkcore_graph::{Graph, NodeId};

/// The Batagelj–Zaveršnik `O(m)` core-decomposition algorithm.
///
/// Processes nodes in non-decreasing order of their *current* degree using
/// a bucket queue; when a node is removed its residual degree is its
/// coreness, and its remaining neighbors' degrees drop by one.
///
/// Returns the coreness of every node, indexed by [`NodeId::index`].
///
/// # Example
///
/// ```
/// use dkcore::seq::batagelj_zaversnik;
/// use dkcore_graph::generators::complete;
///
/// // Every node of K5 has coreness 4.
/// assert_eq!(batagelj_zaversnik(&complete(5)), vec![4; 5]);
/// ```
pub fn batagelj_zaversnik(g: &Graph) -> Vec<u32> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let mut deg: Vec<u32> = g.degrees();
    let md = *deg.iter().max().expect("non-empty") as usize;

    // bin[d] = index in `vert` where the block of degree-d nodes begins.
    let mut bin = vec![0usize; md + 2];
    for &d in &deg {
        bin[d as usize + 1] += 1;
    }
    for d in 0..=md {
        bin[d + 1] += bin[d];
    }
    // vert: nodes sorted by degree; pos: inverse permutation.
    let mut vert = vec![0u32; n];
    let mut pos = vec![0usize; n];
    {
        let mut next = bin.clone();
        for u in 0..n {
            let d = deg[u] as usize;
            vert[next[d]] = u as u32;
            pos[u] = next[d];
            next[d] += 1;
        }
    }

    for i in 0..n {
        let v = vert[i] as usize;
        // v is removed now; deg[v] is final coreness.
        for j in 0..g.degree(NodeId(v as u32)) as usize {
            let u = g.neighbors(NodeId(v as u32))[j].index();
            if deg[u] > deg[v] {
                // Move u to the front of its degree block, then shrink it.
                let du = deg[u] as usize;
                let pu = pos[u];
                let pw = bin[du];
                let w = vert[pw] as usize;
                if u != w {
                    vert.swap(pu, pw);
                    pos[u] = pw;
                    pos[w] = pu;
                }
                bin[du] += 1;
                deg[u] -= 1;
            }
        }
    }
    deg
}

/// Naive peeling algorithm: for `k = 0, 1, 2, …` repeatedly remove every
/// node whose residual degree is `≤ k`, assigning it coreness `k`.
///
/// `O(N + M)` amortized with the cascade queue, but with larger constants
/// than [`batagelj_zaversnik`]; kept as an independently-written
/// cross-check (the two must agree on every graph).
///
/// # Example
///
/// ```
/// use dkcore::seq::naive_peeling;
/// use dkcore_graph::generators::star;
///
/// // A star: hub and leaves all have coreness 1.
/// assert_eq!(naive_peeling(&star(5)), vec![1; 5]);
/// ```
pub fn naive_peeling(g: &Graph) -> Vec<u32> {
    let n = g.node_count();
    let mut deg: Vec<u32> = g.degrees();
    let mut coreness = vec![0u32; n];
    let mut removed = vec![false; n];
    let mut remaining = n;
    let mut k = 0u32;
    let mut queue: Vec<u32> = Vec::new();
    while remaining > 0 {
        // Collect everything currently peelable at level k.
        for u in 0..n {
            if !removed[u] && deg[u] <= k {
                queue.push(u as u32);
            }
        }
        if queue.is_empty() {
            k += 1;
            continue;
        }
        while let Some(u) = queue.pop() {
            let u = u as usize;
            if removed[u] {
                continue;
            }
            removed[u] = true;
            remaining -= 1;
            coreness[u] = k;
            for &v in g.neighbors(NodeId(u as u32)) {
                let v = v.index();
                if !removed[v] {
                    deg[v] -= 1;
                    if deg[v] <= k {
                        queue.push(v as u32);
                    }
                }
            }
        }
        k += 1;
    }
    coreness
}

/// A degeneracy ordering: nodes in the order the Batagelj–Zaveršnik
/// algorithm removes them (non-decreasing coreness). Useful for greedy
/// coloring and as a smallest-last ordering.
///
/// # Example
///
/// ```
/// use dkcore::seq::degeneracy_ordering;
/// use dkcore_graph::{generators::star, NodeId};
///
/// let order = degeneracy_ordering(&star(4));
/// assert_eq!(order.len(), 4);
/// // The hub is removed last (or among the last, all coreness 1).
/// assert_eq!(order.last(), Some(&NodeId(0)));
/// ```
pub fn degeneracy_ordering(g: &Graph) -> Vec<NodeId> {
    // Re-run BZ, recording removal order.
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let mut deg: Vec<u32> = g.degrees();
    let md = *deg.iter().max().expect("non-empty") as usize;
    let mut bin = vec![0usize; md + 2];
    for &d in &deg {
        bin[d as usize + 1] += 1;
    }
    for d in 0..=md {
        bin[d + 1] += bin[d];
    }
    let mut vert = vec![0u32; n];
    let mut pos = vec![0usize; n];
    {
        let mut next = bin.clone();
        for u in 0..n {
            let d = deg[u] as usize;
            vert[next[d]] = u as u32;
            pos[u] = next[d];
            next[d] += 1;
        }
    }
    let mut order = Vec::with_capacity(n);
    for i in 0..n {
        let v = vert[i] as usize;
        order.push(NodeId(v as u32));
        for j in 0..g.degree(NodeId(v as u32)) as usize {
            let u = g.neighbors(NodeId(v as u32))[j].index();
            if deg[u] > deg[v] {
                let du = deg[u] as usize;
                let pu = pos[u];
                let pw = bin[du];
                let w = vert[pw] as usize;
                if u != w {
                    vert.swap(pu, pw);
                    pos[u] = pw;
                    pos[w] = pu;
                }
                bin[du] += 1;
                deg[u] -= 1;
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkcore_graph::generators::{
        barabasi_albert, complete, cycle, gnp, grid, path, star, worst_case,
    };
    use dkcore_graph::Graph;

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, []).unwrap();
        assert!(batagelj_zaversnik(&g).is_empty());
        assert!(naive_peeling(&g).is_empty());
        assert!(degeneracy_ordering(&g).is_empty());
    }

    #[test]
    fn isolated_nodes_have_coreness_zero() {
        let g = Graph::from_edges(3, []).unwrap();
        assert_eq!(batagelj_zaversnik(&g), vec![0, 0, 0]);
        assert_eq!(naive_peeling(&g), vec![0, 0, 0]);
    }

    #[test]
    fn path_and_cycle() {
        assert_eq!(batagelj_zaversnik(&path(5)), vec![1; 5]);
        assert_eq!(batagelj_zaversnik(&cycle(5)), vec![2; 5]);
    }

    #[test]
    fn complete_graph() {
        assert_eq!(batagelj_zaversnik(&complete(7)), vec![6; 7]);
    }

    #[test]
    fn star_graph() {
        assert_eq!(batagelj_zaversnik(&star(8)), vec![1; 8]);
    }

    #[test]
    fn grid_interior_is_2core() {
        let core = batagelj_zaversnik(&grid(5, 5));
        assert!(
            core.iter().all(|&c| c == 2),
            "pure grids are uniformly 2-degenerate"
        );
    }

    #[test]
    fn paper_figure1_style_decomposition() {
        // Build a graph with known 3-core: K4 (nodes 0-3), attach a 2-core
        // ring (4,5) bridging into it, and pendant 6.
        let g = Graph::from_edges(
            7,
            [
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3), // K4
                (4, 0),
                (4, 5),
                (5, 1), // 2-ish appendage
                (6, 0), // pendant
            ],
        )
        .unwrap();
        let core = batagelj_zaversnik(&g);
        assert_eq!(&core[0..4], &[3, 3, 3, 3]);
        assert_eq!(core[4], 2);
        assert_eq!(core[5], 2);
        assert_eq!(core[6], 1);
    }

    #[test]
    fn worst_case_family_is_all_twos() {
        // §4.2: in the Figure 3 family every node ends with estimate 2.
        for n in [5, 8, 12, 19] {
            let core = batagelj_zaversnik(&worst_case(n));
            assert!(core.iter().all(|&c| c == 2), "N = {n}: {core:?}");
        }
    }

    #[test]
    fn bz_and_naive_agree_on_random_graphs() {
        for seed in 0..10 {
            let g = gnp(120, 0.04, seed);
            assert_eq!(batagelj_zaversnik(&g), naive_peeling(&g), "seed {seed}");
        }
        for seed in 0..5 {
            let g = barabasi_albert(200, 3, seed);
            assert_eq!(batagelj_zaversnik(&g), naive_peeling(&g), "ba seed {seed}");
        }
    }

    #[test]
    fn coreness_is_at_most_degree() {
        let g = gnp(100, 0.05, 3);
        let core = batagelj_zaversnik(&g);
        for u in g.nodes() {
            assert!(core[u.index()] <= g.degree(u));
        }
    }

    #[test]
    fn degeneracy_ordering_is_valid() {
        // In a degeneracy ordering, each node has at most `degeneracy`
        // neighbors appearing later in the order.
        let g = gnp(80, 0.08, 5);
        let core = batagelj_zaversnik(&g);
        let degeneracy = *core.iter().max().unwrap();
        let order = degeneracy_ordering(&g);
        assert_eq!(order.len(), g.node_count());
        let mut rank = vec![0usize; g.node_count()];
        for (i, &u) in order.iter().enumerate() {
            rank[u.index()] = i;
        }
        for &u in &order {
            let later = g
                .neighbors(u)
                .iter()
                .filter(|v| rank[v.index()] > rank[u.index()])
                .count();
            assert!(
                later as u32 <= degeneracy,
                "node {u} has {later} later neighbors > degeneracy {degeneracy}"
            );
        }
    }

    #[test]
    fn removal_order_has_nondecreasing_coreness() {
        let g = gnp(60, 0.1, 9);
        let core = batagelj_zaversnik(&g);
        let order = degeneracy_ordering(&g);
        for w in order.windows(2) {
            assert!(core[w[0].index()] <= core[w[1].index()]);
        }
    }
}
