//! Property-based tests for the k-core algorithms and the paper's
//! structural theorems.

use dkcore::seq::{batagelj_zaversnik, degeneracy_ordering, naive_peeling};
use dkcore::{compute_index, CoreDecomposition, INFINITY_EST};
use dkcore_graph::{Graph, NodeId};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (1usize..50).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..150);
        edges.prop_map(move |es| Graph::from_edges(n, es).expect("endpoints in range"))
    })
}

proptest! {
    /// The two sequential baselines agree on every graph.
    #[test]
    fn bz_equals_naive(g in arb_graph()) {
        prop_assert_eq!(batagelj_zaversnik(&g), naive_peeling(&g));
    }

    /// Coreness is bounded by degree.
    #[test]
    fn coreness_at_most_degree(g in arb_graph()) {
        let core = batagelj_zaversnik(&g);
        for u in g.nodes() {
            prop_assert!(core[u.index()] <= g.degree(u));
        }
    }

    /// Theorem 1 (locality): `k(u)` is the largest `i` such that `u` has at
    /// least `i` neighbors with coreness ≥ `i` — i.e. `computeIndex` over
    /// the true coreness values, capped by the degree, is a fixpoint.
    #[test]
    fn locality_theorem(g in arb_graph()) {
        let core = batagelj_zaversnik(&g);
        for u in g.nodes() {
            let neighbor_core = g.neighbors(u).iter().map(|v| core[v.index()]);
            let i = compute_index(neighbor_core, g.degree(u));
            prop_assert_eq!(i, core[u.index()], "locality violated at node {}", u);
        }
    }

    /// Definition 1: within the k-core every node has internal degree ≥ k,
    /// and the k-core is maximal (no outside node has k neighbors inside).
    #[test]
    fn k_core_definition(g in arb_graph()) {
        let d = CoreDecomposition::compute(&g);
        for k in 1..=d.max_coreness() {
            let mask = d.k_core_mask(k);
            let (sub, _) = d.k_core(&g, k);
            for u in sub.nodes() {
                prop_assert!(sub.degree(u) >= k);
            }
            for u in g.nodes() {
                if !mask[u.index()] {
                    let inside = g.neighbors(u).iter().filter(|v| mask[v.index()]).count();
                    prop_assert!((inside as u32) < k);
                }
            }
        }
    }

    /// Shell sizes sum to N and shells partition nodes by coreness.
    #[test]
    fn shells_partition(g in arb_graph()) {
        let d = CoreDecomposition::compute(&g);
        prop_assert_eq!(d.shell_sizes().iter().sum::<usize>(), g.node_count());
        let mut seen = vec![false; g.node_count()];
        for k in 0..=d.max_coreness() {
            for u in d.shell(k) {
                prop_assert!(!seen[u.index()]);
                seen[u.index()] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    /// A degeneracy ordering never gives a node more than `degeneracy`
    /// later neighbors.
    #[test]
    fn degeneracy_ordering_property(g in arb_graph()) {
        let core = batagelj_zaversnik(&g);
        let degeneracy = core.iter().copied().max().unwrap_or(0);
        let order = degeneracy_ordering(&g);
        let mut rank = vec![0usize; g.node_count()];
        for (i, &u) in order.iter().enumerate() {
            rank[u.index()] = i;
        }
        for u in g.nodes() {
            let later = g.neighbors(u).iter().filter(|v| rank[v.index()] > rank[u.index()]).count();
            prop_assert!(later as u32 <= degeneracy);
        }
    }

    /// `compute_index` returns a value that is actually supported (at least
    /// `i` estimates ≥ `i`) and maximal (unless clamped by the cap).
    #[test]
    fn compute_index_is_supported_maximum(
        ests in proptest::collection::vec(0u32..20, 0..30),
        cap in 0u32..25,
    ) {
        let i = compute_index(ests.iter().copied(), cap);
        prop_assert!(i <= cap);
        if i > 0 {
            let support = ests.iter().filter(|&&e| e >= i).count() as u32;
            prop_assert!(support >= i, "result {i} lacks support {support}");
        }
        if i < cap {
            // Not clamped: i+1 must NOT be supported.
            let support = ests.iter().filter(|&&e| e > i).count() as u32;
            prop_assert!(support < i + 1, "result {i} not maximal");
        }
    }

    /// `compute_index` treats `INFINITY_EST` like an arbitrarily large
    /// estimate.
    #[test]
    fn compute_index_infinity_equivalence(
        ests in proptest::collection::vec(0u32..20, 0..20),
        cap in 1u32..25,
    ) {
        let with_inf: Vec<u32> = ests.iter().copied().chain([INFINITY_EST]).collect();
        let with_big: Vec<u32> = ests.iter().copied().chain([1_000_000]).collect();
        prop_assert_eq!(
            compute_index(with_inf, cap),
            compute_index(with_big, cap)
        );
    }

    /// Removing an edge can lower coreness by at most 1 per endpoint and
    /// never raises it anywhere (monotonicity of the decomposition).
    #[test]
    fn edge_removal_monotonicity(g in arb_graph()) {
        let core = batagelj_zaversnik(&g);
        if let Some((u, v)) = g.edges().next() {
            let remaining: Vec<(u32, u32)> = g
                .edges()
                .filter(|&e| e != (u, v))
                .map(|(a, b)| (a.0, b.0))
                .collect();
            let g2 = Graph::from_edges(g.node_count(), remaining).unwrap();
            let core2 = batagelj_zaversnik(&g2);
            for w in g.nodes() {
                prop_assert!(core2[w.index()] <= core[w.index()],
                    "removing an edge raised coreness at {}", w);
            }
            prop_assert!(core[u.index()] - core2[u.index()] <= 1);
            prop_assert!(core[v.index()] - core2[v.index()] <= 1);
        }
    }
}

/// Non-proptest spot check: the locality fixpoint also holds on the
/// paper's worst-case family at several sizes.
#[test]
fn locality_on_worst_case_family() {
    for n in [5, 9, 12, 25, 40] {
        let g = dkcore_graph::generators::worst_case(n);
        let core = batagelj_zaversnik(&g);
        for u in g.nodes() {
            let i = compute_index(g.neighbors(u).iter().map(|v| core[v.index()]), g.degree(u));
            assert_eq!(i, core[u.index()], "N={n}, node {u}");
        }
    }
}

/// Coreness of NodeId(0) in a clique chain is the clique size - 1.
#[test]
fn clique_chain_coreness() {
    // Two K4s joined by a single bridge edge: all clique nodes coreness 3,
    // regardless of the bridge.
    let mut edges = Vec::new();
    for a in 0..4u32 {
        for b in (a + 1)..4 {
            edges.push((a, b));
            edges.push((a + 4, b + 4));
        }
    }
    edges.push((3, 4)); // bridge
    let g = Graph::from_edges(8, edges).unwrap();
    let core = batagelj_zaversnik(&g);
    assert_eq!(core, vec![3; 8]);
    let d = CoreDecomposition::from_coreness(core);
    assert_eq!(d.coreness(NodeId(0)), 3);
}
